// E12 — Ablation of Algorithm 2's design choices (DESIGN.md §5):
//   (b) the lookahead rule — force an open letter when taking a guarded
//       node would strand the remainder;
//   (c) the last-guarded-node delay rule (lines 8-11);
//   plus a naive bandwidth-greedy letter choice as a baseline.
// Each ablated policy still only accepts feasible throughputs, so its
// bisection value is a lower bound of T*_ac; the table shows how much of
// the optimum each rule is responsible for.
#include <algorithm>
#include <iostream>

#include "bmp/core/acyclic_search.hpp"
#include "bmp/core/bounds.hpp"
#include "bmp/gen/generator.hpp"
#include "bmp/util/stats.hpp"
#include "bmp/util/table.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  bmp::benchutil::CommonCli cli(argc, argv);
  const bmp::obs::PhaseScope bench_scope(cli.profiler(), "bench/ablation_greedy");
  using bmp::GreedyPolicy;
  using bmp::util::Table;
  const int reps = bmp::benchutil::env_int("BMP_ABLATION_REPS", 500);
  bmp::util::Xoshiro256 rng(0xAB1A);

  bmp::util::print_banner(std::cout,
                          "Ablation — GreedyTest rules vs. achieved throughput");

  const std::vector<std::pair<std::string, GreedyPolicy>> policies{
      {"paper (Algorithm 2)", GreedyPolicy::kPaper},
      {"no lookahead rule", GreedyPolicy::kNoLookahead},
      {"no last-guarded rule", GreedyPolicy::kNoLastGuardedRule},
      {"bandwidth-greedy", GreedyPolicy::kBandwidthGreedy},
  };

  Table t({"policy", "mean T/T*_ac", "min T/T*_ac", "% optimal", "losses>1%"});
  bool paper_always_optimal = true;
  for (const auto& [label, policy] : policies) {
    bmp::util::RunningStats ratio;
    int optimal_count = 0;
    int big_loss = 0;
    bmp::util::Xoshiro256 cell_rng = rng.fork(static_cast<std::uint64_t>(policy));
    for (int rep = 0; rep < reps; ++rep) {
      const int size = 3 + static_cast<int>(cell_rng.below(25));
      const bmp::Instance inst = bmp::gen::random_instance(
          {size, 0.2 + 0.6 * cell_rng.uniform(), bmp::gen::Dist::kUnif100},
          cell_rng);
      const double full = bmp::optimal_acyclic_throughput(inst);
      if (full <= 1e-9) continue;
      const double ablated = bmp::optimal_acyclic_throughput(inst, policy);
      const double r = ablated / full;
      ratio.add(r);
      if (r >= 1.0 - 1e-7) ++optimal_count;
      if (r < 0.99) ++big_loss;
    }
    if (policy == GreedyPolicy::kPaper) {
      paper_always_optimal = optimal_count == static_cast<int>(ratio.count());
    }
    t.add_row({label, Table::num(ratio.mean(), 5), Table::num(ratio.min(), 4),
               Table::num(100.0 * optimal_count / std::max<std::size_t>(1, ratio.count()), 1) + "%",
               Table::num(big_loss)});
  }
  t.print(std::cout);
  t.maybe_write_csv("ablation_greedy");

  // Discovered counterexamples: the smallest random instance on which each
  // ablated policy provably loses throughput.
  bmp::util::print_banner(std::cout, "discovered counterexamples per ablation");
  Table c({"policy", "instance (b0 | open | guarded)", "ablated T", "T*_ac"});
  for (const auto& [label, policy] : policies) {
    if (policy == GreedyPolicy::kPaper) continue;
    bmp::util::Xoshiro256 search_rng(0xCE);
    bool found = false;
    for (int size = 3; size <= 8 && !found; ++size) {
      for (int rep = 0; rep < 4000 && !found; ++rep) {
        const bmp::Instance inst = bmp::gen::random_instance(
            {size, 0.2 + 0.6 * search_rng.uniform(), bmp::gen::Dist::kUnif100},
            search_rng);
        const double full = bmp::optimal_acyclic_throughput(inst);
        const double ablated = bmp::optimal_acyclic_throughput(inst, policy);
        if (full > 1e-9 && ablated < full * (1.0 - 1e-6)) {
          std::string desc = Table::num(inst.b(0), 1) + " |";
          for (int i = 1; i <= inst.n(); ++i) desc += " " + Table::num(inst.b(i), 1);
          desc += " |";
          for (int i = inst.n() + 1; i < inst.size(); ++i) {
            desc += " " + Table::num(inst.b(i), 1);
          }
          c.add_row({label, desc, Table::num(ablated, 4), Table::num(full, 4)});
          found = true;
        }
      }
    }
    if (!found) c.add_row({label, "(none found at n+m <= 8)", "-", "-"});
  }
  c.print(std::cout);

  std::cout << (paper_always_optimal
                    ? "[OK] the full Algorithm 2 is exact; ablations lose throughput\n"
                    : "[WARN] the paper policy missed an optimum\n");
  return bmp::benchutil::finish(cli, "ablation_greedy", paper_always_optimal);
}
