// E4 — Theorem 6.2 / Figure 18: the tight 5/7 worst case. We sweep eps over
// the family {b0=1, open {1+2eps}, guarded {1/2-eps, 1/2-eps}} in exact
// rational arithmetic, printing T*_ac(sigma1), T*_ac(sigma2) (the paper's
// closed forms (2/3)(1+eps) and 3/4 - eps/2) and the exact optimum over all
// orders. The minimum is exactly 5/7 at eps = 1/14.
#include <iostream>

#include "bmp/core/bounds.hpp"
#include "bmp/core/exact.hpp"
#include "bmp/core/word_throughput.hpp"
#include "bmp/theory/instances.hpp"
#include "bmp/util/table.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  bmp::benchutil::CommonCli cli(argc, argv);
  const bmp::obs::PhaseScope bench_scope(cli.profiler(), "bench/worstcase_57");
  using bmp::util::Rational;
  using bmp::util::Table;

  bmp::util::print_banner(
      std::cout, "Theorem 6.2 / Figure 18 — the tight 5/7 acyclic/cyclic family");

  Table t({"eps", "T*_ac(OGG)=2(1+eps)/3", "T*_ac(GOG)=3/4-eps/2",
           "T*_ac (exact)", "T*", "ratio"});
  Rational worst(1);
  Rational worst_eps(0);
  std::vector<Rational> eps_grid;
  for (std::int64_t num = 0; num <= 12; ++num) eps_grid.emplace_back(num, 28);
  eps_grid.emplace_back(1, 14);  // the announced worst case

  for (const Rational& eps : eps_grid) {
    const bmp::RationalInstance inst = bmp::theory::fig18_rational(eps);
    const Rational t1 = bmp::word_throughput_exact(inst, bmp::make_word("OGG"));
    const Rational t2 = bmp::word_throughput_exact(inst, bmp::make_word("GOG"));
    const bmp::ExactAcyclic best = bmp::optimal_acyclic_exact(inst);
    const Rational t_star = bmp::cyclic_upper_bound(inst);
    const Rational ratio = best.throughput / t_star;
    if (ratio < worst) {
      worst = ratio;
      worst_eps = eps;
    }
    t.add_row({eps.str(), t1.str(), t2.str(), best.throughput.str(),
               t_star.str(), ratio.str() + " = " + Table::num(ratio.to_double(), 4)});
  }
  t.print(std::cout);
  t.maybe_write_csv("worstcase_57");

  std::cout << "\nminimum ratio " << worst << " at eps = " << worst_eps
            << "   (paper: 5/7 at eps = 1/14)\n";
  const bool ok = worst == Rational(5, 7) && worst_eps == Rational(1, 14);
  std::cout << (ok ? "[OK] exactly reproduces Theorem 6.2's tight instance\n"
                   : "[WARN] deviates from Theorem 6.2\n");
  return bmp::benchutil::finish(cli, "worstcase_57", ok);
}
