// E9 — Degree audit: empirical verification of the additive degree
// guarantees across random instances and all constructive algorithms:
//   Algorithm 1 (acyclic, open):          o_i <= ceil(b_i/T) + 1
//   Lemma 4.6 (acyclic, guarded), guarded: o_i <= ceil(b_i/T) + 1
//                                 open:    o_i <= ceil(b_i/T) + 2 (one +3)
//   Theorem 5.2 (cyclic, open):           o_i <= max(ceil(b_i/T) + 2, 4)
// Reports the distribution of observed overheads o_i - ceil(b_i/T).
#include <array>
#include <cmath>
#include <iostream>

#include "bmp/core/acyclic_open.hpp"
#include "bmp/core/acyclic_search.hpp"
#include "bmp/core/bounds.hpp"
#include "bmp/core/cyclic_open.hpp"
#include "bmp/gen/generator.hpp"
#include "bmp/util/table.hpp"
#include "bench_util.hpp"

namespace {

struct Audit {
  std::array<long, 8> overhead_histogram{};  // o_i - ceil(b_i/T), clipped to [0,7]
  int max_overhead = 0;
  long nodes = 0;

  void record(double b, double T, int degree) {
    if (T <= 0.0) return;
    const int base = static_cast<int>(std::ceil(b / T - 1e-9));
    const int overhead = std::max(0, degree - base);
    ++overhead_histogram[static_cast<std::size_t>(std::min(overhead, 7))];
    max_overhead = std::max(max_overhead, overhead);
    ++nodes;
  }
};

std::vector<std::string> row(const std::string& name, const Audit& a,
                             const std::string& guarantee) {
  using bmp::util::Table;
  std::vector<std::string> r{name, Table::num(a.nodes)};
  for (int k = 0; k <= 4; ++k) {
    r.push_back(Table::num(a.overhead_histogram[static_cast<std::size_t>(k)]));
  }
  r.push_back(Table::num(a.max_overhead));
  r.push_back(guarantee);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bmp::benchutil::CommonCli cli(argc, argv);
  const bmp::obs::PhaseScope bench_scope(cli.profiler(), "bench/degree_audit");
  using bmp::util::Table;
  const int reps = bmp::benchutil::env_int("BMP_AUDIT_REPS", 400);
  bmp::util::Xoshiro256 rng(0xDE6);

  bmp::util::print_banner(std::cout,
                          "Degree audit — observed o_i - ceil(b_i/T) histograms");

  Audit algo1;
  Audit cyclic;
  Audit lemma46_open;
  Audit lemma46_guarded;
  long plus3_nodes = 0;
  long lemma46_schemes = 0;

  for (int rep = 0; rep < reps; ++rep) {
    const int size = 2 + static_cast<int>(rng.below(40));
    // Open-only pass: Algorithm 1 + cyclic construction.
    {
      const bmp::Instance inst =
          bmp::gen::random_instance({size, 1.0, bmp::gen::Dist::kUnif100}, rng);
      const double t_ac = bmp::acyclic_open_optimal(inst);
      if (t_ac > 1e-9) {
        const bmp::BroadcastScheme s = bmp::build_acyclic_open(inst, t_ac);
        for (int i = 0; i < inst.size(); ++i) {
          algo1.record(inst.b(i), t_ac, s.out_degree(i));
        }
      }
      const double t_cyc = bmp::cyclic_open_optimal(inst);
      if (t_cyc > 1e-9) {
        const bmp::BroadcastScheme s = bmp::build_cyclic_open(inst, t_cyc);
        for (int i = 0; i < inst.size(); ++i) {
          cyclic.record(inst.b(i), t_cyc, s.out_degree(i));
        }
      }
    }
    // Mixed pass: Lemma 4.6 scheme at the acyclic optimum.
    {
      const bmp::Instance inst = bmp::gen::random_instance(
          {size, 0.3 + 0.6 * rng.uniform(), bmp::gen::Dist::kPlanetLab}, rng);
      const bmp::AcyclicSolution sol = bmp::solve_acyclic(inst);
      if (sol.throughput > 1e-9) {
        ++lemma46_schemes;
        int plus3_here = 0;
        for (int i = 0; i < inst.size(); ++i) {
          const int deg = sol.scheme.out_degree(i);
          if (inst.is_guarded(i)) {
            lemma46_guarded.record(inst.b(i), sol.throughput, deg);
          } else {
            lemma46_open.record(inst.b(i), sol.throughput, deg);
            const int base =
                static_cast<int>(std::ceil(inst.b(i) / sol.throughput - 1e-9));
            if (deg - base >= 3) ++plus3_here;
          }
        }
        plus3_nodes += plus3_here;
      }
    }
  }

  Table t({"algorithm", "nodes", "+0", "+1", "+2", "+3", "+4", "max",
           "guarantee"});
  t.add_row(row("Algorithm 1 (acyclic open)", algo1, "+1"));
  t.add_row(row("Lemma 4.6 guarded nodes", lemma46_guarded, "+1"));
  t.add_row(row("Lemma 4.6 open nodes", lemma46_open, "+2 (one node +3)"));
  t.add_row(row("Theorem 5.2 (cyclic open)", cyclic, "+2 (or degree 4)"));
  t.print(std::cout);
  t.maybe_write_csv("degree_audit");

  std::cout << "\nopen nodes at +3 across " << lemma46_schemes
            << " schemes: " << plus3_nodes << " (guarantee: at most one per scheme)\n";

  const bool ok =
      algo1.max_overhead <= 1 && lemma46_guarded.max_overhead <= 1 &&
      lemma46_open.max_overhead <= 3 &&
      plus3_nodes <= lemma46_schemes;
  std::cout << (ok ? "[OK] all additive degree guarantees hold empirically\n"
                   : "[WARN] a degree guarantee was violated\n");
  return bmp::benchutil::finish(cli, "degree_audit", ok);
}
