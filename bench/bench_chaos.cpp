// Chaos bench — the fault-tolerance headline numbers: on a live stream
// hit by a seeded storm (abrupt crashes, a partition that heals, payload
// corruption, a telemetry blackout, a planner outage), how much of the
// *post-storm survivor optimum* does the hardened runtime recover for its
// worst survivor, and how long after the heal does it take to get there?
//   * recovered-throughput ratio: worst survivor's clean-delivery rate
//     over the converged post-heal window / optimum of the surviving
//     platform (corrupted-but-accepted chunks do not count as delivered);
//   * time-to-recover: scenario time from the first fault until the worst
//     survivor's window rate first holds 70% of that optimum;
//   * the tolerance ledger (crashes detected, corruption caught, dark
//     windows skipped) and the wall-clock cost of the hardened loop.
// `--quick` (or BMP_CHAOS_QUICK=1) shrinks the platform for CI smoke.
// Observability CLI (benchutil::CommonCli): `--json` machine-readable
// report with the final metrics snapshot embedded, `--trace` timeline,
// `--profile` work attribution, `--metrics` Prometheus snapshot — all on
// the hardened run (the headline the perf gate tracks).
#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bmp/engine/planner.hpp"
#include "bmp/fault/fault.hpp"
#include "bmp/fault/injector.hpp"
#include "bmp/obs/export.hpp"
#include "bmp/obs/slo.hpp"
#include "bmp/obs/trace.hpp"
#include "bmp/runtime/runtime.hpp"
#include "bmp/runtime/scenario.hpp"
#include "bmp/util/table.hpp"
#include "bench_util.hpp"

namespace {

constexpr double kFraction = 0.5;   // channel's capacity share
constexpr double kStormStart = 3.0; // first fault lands here
constexpr double kHealTime = 7.5;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

bmp::runtime::ScenarioScript storm_script(int peers, double horizon,
                                          std::uint64_t seed) {
  bmp::runtime::Scenario scenario(horizon, seed);
  scenario.source(4000.0)
      .population({peers * 3 / 5, 0.7, bmp::gen::Dist::kUnif100})
      .population({peers * 2 / 5, 0.3, bmp::gen::Dist::kLogNormal1})
      .channel({0.0, -1.0, 1.0, kFraction});
  bmp::runtime::ScenarioScript script = scenario.build();

  // The storm scales with the platform: ~2% of the peers crash, ~4% land
  // behind a partition, two relays corrupt their egress, a few nodes go
  // telemetry-dark, and the planner is down through the worst of it.
  bmp::fault::FaultPlan plan;
  const int crashes = std::max(2, peers / 50);
  for (int k = 0; k < crashes; ++k) {
    plan.crashes.push_back(
        {kStormStart + 0.5 * k, 3 + k * std::max(1, peers / (crashes + 1))});
  }
  bmp::fault::PartitionSpec partition;
  partition.time = kStormStart + 1.0;
  partition.heal_time = kHealTime;
  const int island = std::max(4, peers / 25);
  for (int k = 0; k < island; ++k) {
    partition.group_b.push_back(peers / 2 + k);
  }
  plan.partitions.push_back(partition);
  plan.corruptions.push_back({kStormStart, -1.0, /*node=*/7, /*rate=*/0.4});
  plan.corruptions.push_back(
      {kStormStart, -1.0, /*node=*/peers / 3, /*rate=*/0.4});
  bmp::fault::BlackoutSpec blackout;
  blackout.time = kStormStart + 2.0;
  blackout.end_time = kHealTime + 0.5;
  for (int k = 0; k < 3; ++k) blackout.nodes.push_back(peers / 4 + k);
  plan.blackouts.push_back(blackout);
  plan.planner_outages.push_back({kStormStart + 1.0, kStormStart + 3.0});
  bmp::fault::Injector::inject(script, plan);
  return script;
}

struct ChaosResult {
  double worst_ratio = 0.0;    ///< worst survivor clean rate / optimum
  double recover_time = -1.0;  ///< first fault -> floor held (scenario s)
  double seconds = 0.0;        ///< wall clock of the whole run
  int stalled = 0;
  std::uint64_t crashes_detected = 0;
  std::uint64_t corrupt_dropped = 0;
  std::uint64_t corrupt_accepted = 0;
  std::uint64_t heal_pardons = 0;
  std::uint64_t stale_windows = 0;
  std::uint64_t planner_faults = 0;
  std::uint64_t events = 0;
  std::string metrics_json;
  std::string prometheus;
  std::vector<std::string> violations;
  // ---- straggler spread (scenario-time milestone latencies) ----
  double milestone_p50 = 0.0;   ///< grid time to reach the milestone, median
  double milestone_p99 = 0.0;
  double straggler_ratio = 1.0; ///< worst / median milestone time
  // ---- SLO monitor (hardened run only) ----
  std::uint64_t slo_pages = 0;
  std::uint64_t slo_warns = 0;
  bool slo_paged_in_storm = false;  ///< a page alert landed during the storm
  bool slo_ok_at_end = false;       ///< state returned to ok after the heal
  std::string slo_state;
  std::string slo_alerts_json;
};

ChaosResult run_storm(const bmp::runtime::ScenarioScript& script,
                      bool hardened, double optimum, double probe_at,
                      double horizon, bmp::obs::TraceSink* trace = nullptr,
                      bmp::obs::Profiler* profiler = nullptr) {
  bmp::runtime::RuntimeConfig config;
  config.collect_timing = false;
  config.broker_headroom = 0.05;
  config.dataplane.execute = true;
  config.dataplane.execution.chunk_size = optimum / 40.0;
  config.dataplane.execution.receiver_window = 16;
  config.control.enabled = hardened;
  config.control.slo_enabled = hardened;  // page during the storm, ok after
  if (!hardened) {
    config.dataplane.execution.verify_payloads = false;
    config.fault.detect_crashes = false;
  }
  config.trace = trace;
  config.profiler = profiler;

  const auto start = std::chrono::steady_clock::now();
  bmp::runtime::Runtime rt(config, script.source_bandwidth,
                           script.initial_peers);
  std::size_t next = 0;
  const auto run_until = [&](double t) {
    while (next < script.events.size() && script.events[next].time <= t) {
      rt.step(script.events[next++]);
      bmp::benchutil::selftest_sleep();  // perf-gate self-test hook (no-op)
    }
    bmp::runtime::Event marker;
    marker.type = bmp::runtime::EventType::kNodeJoin;  // clock only
    marker.time = t;
    rt.step(marker);
  };
  // Clean deliveries only: a corrupted chunk a defenseless receiver
  // swallowed is not a delivery, whatever the raw counter says.
  const auto snapshot = [&] {
    const bmp::dataplane::Execution* exec = rt.execution(0);
    const int emitted = exec->delivered(exec->origin());
    std::vector<int> clean(static_cast<std::size_t>(exec->num_nodes()), -1);
    for (int dp = 1; dp < exec->num_nodes(); ++dp) {
      if (!exec->node_alive(dp)) continue;
      int damaged = 0;
      for (int chunk = 0; chunk < emitted; ++chunk) {
        if (exec->chunk_corrupted(dp, chunk)) ++damaged;
      }
      clean[static_cast<std::size_t>(dp)] = exec->delivered(dp) - damaged;
    }
    return clean;
  };
  const auto worst_window_rate = [&](const std::vector<int>& before,
                                     const std::vector<int>& after,
                                     double window) {
    double worst = 1e300;
    for (std::size_t k = 1; k < after.size(); ++k) {
      if (after[k] < 0 || before[k] < 0) continue;
      worst = std::min(worst, (after[k] - before[k]) *
                                  config.dataplane.execution.chunk_size /
                                  window);
    }
    return worst;
  };

  // Sample the stream every half second so time-to-recover lands on a
  // half-second grid: first window whose worst survivor holds 70% of the
  // post-storm optimum, measured from the first fault.
  ChaosResult result;
  run_until(0.0);  // channel opens at t = 0: execution exists from here on
  std::vector<int> window_prev = snapshot();
  std::vector<int> baseline;
  std::vector<double> grid_times;
  std::vector<std::vector<int>> history;  // grid snapshots, straggler spread
  for (double t = 0.5; t <= horizon + 1e-9; t += 0.5) {
    run_until(t);
    std::vector<int> now = snapshot();
    if (result.recover_time < 0.0 && t > kHealTime &&
        worst_window_rate(window_prev, now, 0.5) >= 0.7 * optimum) {
      result.recover_time = t - kStormStart;
    }
    if (std::abs(t - probe_at) < 1e-9) baseline = now;
    grid_times.push_back(t);
    history.push_back(now);
    window_prev = std::move(now);
  }
  const std::vector<int>& after = window_prev;  // final snapshot
  // Straggler spread: scenario time for each survivor to reach half the
  // worst survivor's final clean count (a milestone every survivor hits),
  // read off the half-second grid. Worst/median is the tail the SLO pages
  // on and the lineage analyzer attributes.
  {
    int min_final = -1;
    for (std::size_t k = 1; k < after.size(); ++k) {
      if (after[k] < 0) continue;
      if (min_final < 0 || after[k] < min_final) min_final = after[k];
    }
    const int milestone = std::max(1, min_final / 2);
    std::vector<double> times;
    for (std::size_t k = 1; k < after.size(); ++k) {
      if (after[k] < milestone) continue;
      for (std::size_t i = 0; i < history.size(); ++i) {
        if (history[i][k] >= milestone) {
          times.push_back(grid_times[i]);
          break;
        }
      }
    }
    std::sort(times.begin(), times.end());
    if (!times.empty()) {
      const auto at = [&](double q) {
        return times[static_cast<std::size_t>(
            q * static_cast<double>(times.size() - 1) + 0.5)];
      };
      result.milestone_p50 = at(0.50);
      result.milestone_p99 = at(0.99);
      result.straggler_ratio =
          result.milestone_p50 > 0.0 ? times.back() / result.milestone_p50
                                     : 1.0;
    }
  }
  {
    // Execution stats and the leak audit must be read before drain()
    // closes the channel and tears the stream down.
    const bmp::dataplane::Execution* exec = rt.execution(0);
    result.corrupt_dropped = exec->corruptions();
    result.corrupt_accepted = exec->corrupted_accepted();
    result.violations = rt.validate();
  }
  if (const bmp::obs::SloMonitor* slo = rt.slo_monitor(0)) {
    result.slo_pages = slo->pages();
    result.slo_warns = slo->warns();
    result.slo_state = bmp::obs::to_string(slo->state());
    result.slo_ok_at_end = slo->state() == bmp::obs::SloState::kOk;
    for (const bmp::obs::SloAlert& alert : slo->alerts()) {
      if (alert.to == bmp::obs::SloState::kPage &&
          alert.time >= kStormStart && alert.time <= kHealTime + 2.0) {
        result.slo_paged_in_storm = true;
      }
    }
    result.slo_alerts_json = slo->alerts_json();
  }
  rt.drain(horizon);

  result.seconds = seconds_since(start);
  result.worst_ratio = 1e300;
  for (std::size_t k = 1; k < after.size(); ++k) {
    if (after[k] < 0 || baseline[k] < 0) continue;
    if (after[k] <= baseline[k]) ++result.stalled;
    result.worst_ratio = std::min(
        result.worst_ratio,
        (after[k] - baseline[k]) * config.dataplane.execution.chunk_size /
            ((horizon - probe_at) * optimum));
  }
  result.crashes_detected = rt.metrics().counter("fault.crashes_detected");
  result.heal_pardons = rt.metrics().counter("fault.heal_pardons");
  result.stale_windows = rt.metrics().counter("control.stale_nodes");
  result.planner_faults = rt.metrics().counter("fault.planner_faults") +
                          rt.metrics().counter("fault.opens_deferred");
  result.events = rt.metrics().counter("events.total");
  const bmp::runtime::MetricsSnapshot snap = rt.metrics().snapshot();
  result.metrics_json = bmp::obs::to_json(snap, /*include_timing=*/false);
  result.prometheus = bmp::obs::to_prometheus(snap);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bmp::benchutil::CommonCli cli(argc, argv);
  const bool quick =
      cli.quick || bmp::benchutil::env_int("BMP_CHAOS_QUICK", 0) != 0;
  const int peers =
      bmp::benchutil::env_int("BMP_CHAOS_PEERS", quick ? 150 : 500);
  const double horizon = quick ? 14.0 : 24.0;
  const double probe_at = quick ? 10.0 : 16.0;

  bmp::util::print_banner(std::cout, "Fault tolerance — chaos recovery");

  const bmp::runtime::ScenarioScript script =
      storm_script(peers, horizon, 2027);

  // The reference: the optimum of the platform as the storm leaves it —
  // the surviving population at nominal capacity, channel share applied.
  std::vector<char> crashed(script.initial_peers.size() + 1, 0);
  int crash_count = 0;
  for (const bmp::runtime::Event& event : script.events) {
    if (event.type != bmp::runtime::EventType::kFault) continue;
    for (const bmp::runtime::FaultAction& fault : event.faults) {
      if (fault.kind == bmp::runtime::FaultAction::Kind::kCrash) {
        crashed[static_cast<std::size_t>(fault.node)] = 1;
        ++crash_count;
      }
    }
  }
  std::vector<double> open_bw;
  std::vector<double> guarded_bw;
  for (std::size_t k = 0; k < script.initial_peers.size(); ++k) {
    if (crashed[k + 1]) continue;
    const bmp::runtime::NodeSpec& peer = script.initial_peers[k];
    (peer.guarded ? guarded_bw : open_bw)
        .push_back(peer.bandwidth * kFraction);
  }
  const bmp::Instance survivors(script.source_bandwidth * kFraction,
                                std::move(open_bw), std::move(guarded_bw));
  const double optimum =
      bmp::engine::Planner::plan_uncached(survivors,
                                          bmp::engine::Algorithm::kAcyclic, 0)
          .throughput;

  std::cout << peers << "-node stream; " << crash_count
            << " crashes, a partition healing at t = " << kHealTime
            << ", 2 corrupting relays, a telemetry blackout, a planner "
            << "outage" << (quick ? "  [quick]\n" : "\n")
            << "post-storm survivor optimum: " << optimum << "\n\n";

  bmp::obs::TraceSink trace;
  const ChaosResult hardened =
      run_storm(script, true, optimum, probe_at, horizon,
                cli.trace.empty() ? nullptr : &trace, cli.profiler());
  const ChaosResult frozen =
      run_storm(script, false, optimum, probe_at, horizon);

  bmp::util::Table table({"runtime", "worst/optimum", "recover s", "stalled",
                          "corrupt drop/accept", "crashes det", "wall s"});
  const auto row = [&](const char* name, const ChaosResult& r) {
    table.add_row({name, bmp::util::Table::num(r.worst_ratio, 4),
                   r.recover_time < 0.0 ? std::string("never")
                                        : bmp::util::Table::num(r.recover_time, 1),
                   bmp::util::Table::num(r.stalled),
                   bmp::util::Table::num(r.corrupt_dropped) + "/" +
                       bmp::util::Table::num(r.corrupt_accepted),
                   bmp::util::Table::num(r.crashes_detected),
                   bmp::util::Table::num(r.seconds, 2)});
  };
  row("hardened", hardened);
  row("defenseless", frozen);
  table.print(std::cout);
  table.maybe_write_csv("chaos");

  bool ok = true;
  const double bar = quick ? 0.70 : 0.80;
  ok = ok && hardened.worst_ratio >= bar;
  std::cout << (hardened.worst_ratio >= bar ? "\n[OK] " : "\n[WARN] ")
            << "hardened worst survivor recovered to "
            << 100.0 * hardened.worst_ratio
            << "% of the post-storm optimum (bar: " << 100.0 * bar << "%)\n";
  ok = ok && hardened.violations.empty() && hardened.stalled == 0 &&
       hardened.corrupt_accepted == 0;
  std::cout << (hardened.violations.empty() && hardened.stalled == 0
                    ? "[OK] "
                    : "[WARN] ")
            << "no stalled survivors, no leaked grants, no corruption "
            << "accepted\n";
  ok = ok && frozen.worst_ratio < hardened.worst_ratio;
  std::cout << (frozen.worst_ratio < hardened.worst_ratio ? "[OK] "
                                                          : "[WARN] ")
            << "defenseless clean floor: " << 100.0 * frozen.worst_ratio
            << "% — the tolerance machinery, not luck, held the stream\n"
            << "time-to-recover: " << hardened.recover_time
            << " s after the first fault (heal at t = " << kHealTime << ")\n";
  // The SLO monitor must page while the storm rages and stand down once
  // the stream recovers — deterministically, every run.
  const bool slo_ok = hardened.slo_paged_in_storm && hardened.slo_ok_at_end;
  ok = ok && slo_ok;
  std::cout << (slo_ok ? "[OK] " : "[WARN] ") << "SLO monitor paged during "
            << "the storm and returned to " << hardened.slo_state
            << " after the heal (" << hardened.slo_pages << " pages, "
            << hardened.slo_warns << " warns)\n"
            << "straggler spread: milestone p50 " << hardened.milestone_p50
            << "s, p99 " << hardened.milestone_p99 << "s, worst/median "
            << hardened.straggler_ratio << "x\n";

  bmp::benchutil::JsonReport json;
  bmp::benchutil::add_header(json, "chaos");
  json.add("peers", peers);
  json.add("post_storm_optimum", optimum);
  json.add("recovered_worst_ratio", hardened.worst_ratio);
  json.add("frozen_worst_ratio", frozen.worst_ratio);
  json.add("time_to_recover_s", hardened.recover_time);
  json.add("stalled_survivors", hardened.stalled);
  json.add("crashes_detected", hardened.crashes_detected);
  json.add("corrupt_dropped", hardened.corrupt_dropped);
  json.add("corrupt_accepted", hardened.corrupt_accepted);
  json.add("frozen_corrupt_accepted", frozen.corrupt_accepted);
  json.add("heal_pardons", hardened.heal_pardons);
  json.add("stale_windows", hardened.stale_windows);
  json.add("planner_faults", hardened.planner_faults);
  json.add("latency.milestone_p50", hardened.milestone_p50);
  json.add("latency.milestone_p99", hardened.milestone_p99);
  json.add("latency.straggler_ratio", hardened.straggler_ratio);
  json.add("slo_pages", hardened.slo_pages);
  json.add("slo_warns", hardened.slo_warns);
  json.add_string("slo_final_state", hardened.slo_state);
  json.add_raw("slo_alerts", hardened.slo_alerts_json.empty()
                                 ? "null"
                                 : hardened.slo_alerts_json);
  json.add("hardened_wall_seconds", hardened.seconds);
  json.add("events_per_s",
           hardened.seconds > 0.0
               ? static_cast<double>(hardened.events) / hardened.seconds
               : 0.0);
  json.add_string("status", ok ? "ok" : "warn");
  bmp::benchutil::add_profile(json, cli.prof);
  json.add_raw("metrics", hardened.metrics_json);
  if (!cli.json.empty()) {
    if (json.write(cli.json)) {
      std::cout << "json written to " << cli.json << "\n";
    } else {
      std::cout << "[WARN] could not write " << cli.json << "\n";
      ok = false;
    }
  }
  if (!cli.trace.empty()) {
    ok = trace.write(cli.trace) && ok;
    std::cout << "trace written to " << cli.trace << " (" << trace.spans()
              << " spans)\n";
  }
  if (!cli.metrics.empty()) {
    std::ofstream out(cli.metrics);
    out << hardened.prometheus;
    ok = static_cast<bool>(out) && ok;
  }
  ok = cli.write_profile() && ok;
  return ok ? 0 : 1;
}
