// E1/E2 — Reproduces the paper's worked example end to end:
//   * Figure 1 instance and its Lemma 5.1 closed form (T* = 4.4);
//   * Table I: the GreedyTest execution trace (O(π), G(π), W(π)) at T = 4;
//   * Figure 5: the low-degree scheme built from the greedy word;
//   * Figure 2: the scheme for the alternative valid word GOOGG.
#include <iostream>

#include "bmp/core/acyclic_search.hpp"
#include "bmp/core/bounds.hpp"
#include "bmp/core/greedy_test.hpp"
#include "bmp/core/word_schedule.hpp"
#include "bmp/flow/maxflow.hpp"
#include "bmp/theory/instances.hpp"
#include "bmp/util/table.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  bmp::benchutil::CommonCli cli(argc, argv);
  const bmp::obs::PhaseScope bench_scope(cli.profiler(), "bench/table1");
  using bmp::util::Table;
  const bmp::Instance inst = bmp::theory::fig1_instance();

  bmp::util::print_banner(std::cout, "Figure 1 instance (n=2 open, m=3 guarded)");
  {
    Table t({"node", "class", "b_i"});
    for (int i = 0; i < inst.size(); ++i) {
      t.add_row({"C" + std::to_string(i),
                 i == 0 ? "source" : (inst.is_guarded(i) ? "guarded" : "open"),
                 Table::num(inst.b(i), 1)});
    }
    t.print(std::cout);
    std::cout << "Lemma 5.1 closed form: T* = min(b0, (b0+O)/m, (b0+O+G)/(n+m))"
              << " = min(6, 16/3, 22/5) = "
              << Table::num(bmp::cyclic_upper_bound(inst), 2) << "  (paper: 4.4)\n";
  }

  bmp::util::print_banner(std::cout,
                          "Table I — GreedyTest(T=4) execution trace on Fig. 1");
  const double T = 4.0;
  const auto word = bmp::greedy_test(inst, T);
  if (!word.has_value()) {
    std::cerr << "GreedyTest unexpectedly failed\n";
    return 1;
  }
  const bmp::WordSchedule ws =
      bmp::build_scheme_from_word(inst, *word, T, /*with_trace=*/true);
  {
    Table t({"pi", "O(pi)", "G(pi)", "W(pi)"});
    for (const auto& row : ws.trace) {
      t.add_row({row.prefix.empty() ? "eps" : row.prefix,
                 Table::num(row.open_avail, 0), Table::num(row.guarded_avail, 0),
                 Table::num(row.open_open, 0)});
    }
    t.print(std::cout);
    t.maybe_write_csv("table1_trace");
    std::cout << "word = " << bmp::to_string(*word)
              << "   (paper Table I: O = 6,2,7,3,5,1; G = 0,4,0,1,0,1; "
                 "W = 0,0,0,0,3,3)\n";
  }

  const auto print_scheme = [&](const bmp::BroadcastScheme& s,
                                const std::string& title) {
    bmp::util::print_banner(std::cout, title);
    Table t({"edge", "rate"});
    for (int i = 0; i < s.num_nodes(); ++i) {
      for (const auto& [to, r] : s.out_edges(i)) {
        t.add_row({"C" + std::to_string(i) + " -> C" + std::to_string(to),
                   Table::num(r, 1)});
      }
    }
    t.print(std::cout);
    std::cout << "throughput (min max-flow) = "
              << Table::num(bmp::flow::scheme_throughput(s), 3)
              << ", max outdegree = " << s.max_out_degree()
              << ", acyclic = " << (s.is_acyclic() ? "yes" : "no") << "\n";
  };

  print_scheme(ws.scheme, "Figure 5 — scheme built from the greedy word GOGOG");
  const bmp::WordSchedule fig2 =
      bmp::build_scheme_from_word(inst, bmp::make_word("GOOGG"), T);
  print_scheme(fig2.scheme, "Figure 2 — scheme for the order sigma = 031245 (word GOOGG)");

  bmp::util::print_banner(std::cout, "Optimal acyclic throughput (dichotomic search)");
  const bmp::AcyclicSolution sol = bmp::solve_acyclic(inst);
  std::cout << "T*_ac = " << Table::num(sol.throughput, 6) << " with word "
            << bmp::to_string(sol.word) << " (ratio to cyclic T*: "
            << Table::num(sol.throughput / bmp::cyclic_upper_bound(inst), 4)
            << ")\n";
  return bmp::benchutil::finish(cli, "table1", true);
}
