// Telemetry-at-scale bench — the numbers the sharded rollup layer exists
// for (ISSUE 10):
//   * fleet: a 10k-node (--quick) / 50k-node population split into
//     per-shard runtimes, each running the adaptive brownout scenario with
//     the full observability stack on — tracing, shard telemetry registry,
//     SLO monitors and sampled lineage — and rolling up into one global
//     snapshot;
//   * memory: telemetry stays O(shards * series) — a shard's registry
//     footprint and its lineage sink's retained hops must not grow with
//     the node count (gated against a 5x smaller shard);
//   * overhead: the full stack costs <= 5% wall over the all-off baseline
//     (interleaved A/B, min-of-mins estimator, retries fold in more rounds);
//   * identity: the rolled-up global snapshot is byte-identical across
//     shard merge orders, tree shapes, repeat runs, and planner thread
//     counts — the determinism contract the offline obs_query relies on.
// `--quick` (or BMP_OBS_QUICK=1) shrinks the fleet for CI smoke.
// `--json <path>` writes the machine-readable report (git SHA stamped).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bmp/engine/planner.hpp"
#include "bmp/obs/export.hpp"
#include "bmp/obs/lineage.hpp"
#include "bmp/obs/rollup.hpp"
#include "bmp/obs/trace.hpp"
#include "bmp/runtime/runtime.hpp"
#include "bmp/runtime/scenario.hpp"
#include "bmp/util/table.hpp"
#include "bench_util.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// The adaptive brownout scenario from the control/lineage acceptance
/// tests, one instance per shard: two peer classes behind a half-share
/// channel, 10% of the nodes browned out 4x at t=3 for good.
bmp::runtime::ScenarioScript shard_script(int peers, double horizon,
                                          std::uint64_t seed) {
  bmp::runtime::Scenario scenario(horizon, seed);
  scenario.source(4000.0)
      .population({peers * 3 / 5, 0.7, bmp::gen::Dist::kUnif100})
      .population({peers * 2 / 5, 0.3, bmp::gen::Dist::kLogNormal1})
      .channel({0.0, -1.0, 1.0, /*fraction=*/0.5});
  bmp::runtime::BrownoutSpec brownout;
  brownout.time = 3.0;
  brownout.duration = -1.0;
  brownout.fraction = 0.10;
  brownout.capacity_factor = 0.25;
  scenario.brownout(brownout);
  return scenario.build();
}

/// Verified optimum of the post-brownout effective platform — sizes the
/// chunk so every shard emits a few hundred chunks over the horizon.
double post_brownout_optimum(const bmp::runtime::ScenarioScript& script,
                             double fraction) {
  std::vector<char> browned(script.initial_peers.size() + 1, 0);
  for (const bmp::runtime::Event& event : script.events) {
    if (event.type != bmp::runtime::EventType::kDegrade) continue;
    for (const bmp::runtime::Degradation& d : event.degrades) {
      browned[static_cast<std::size_t>(d.node)] = 1;
    }
    break;
  }
  std::vector<double> open_bw;
  std::vector<double> guarded_bw;
  for (std::size_t k = 0; k < script.initial_peers.size(); ++k) {
    const bmp::runtime::NodeSpec& peer = script.initial_peers[k];
    const double eff =
        peer.bandwidth * fraction * (browned[k + 1] ? 0.25 : 1.0);
    (peer.guarded ? guarded_bw : open_bw).push_back(eff);
  }
  bmp::Instance effective(script.source_bandwidth * fraction,
                          std::move(open_bw), std::move(guarded_bw));
  return bmp::engine::Planner::plan_uncached(
             effective, bmp::engine::Algorithm::kAcyclic, 0)
      .throughput;
}

/// Which observability surfaces a run attaches (all null/off = the A/B
/// baseline; everything set = the full stack the acceptance bar gates).
struct ObsHooks {
  bmp::obs::ShardRegistry* telemetry = nullptr;
  bmp::obs::LineageSink* lineage = nullptr;
  bmp::obs::TraceSink* trace = nullptr;
  bool slo = false;
  bmp::obs::Profiler* profiler = nullptr;
};

/// One shard: the scenario executed + adapted to the horizon. Returns the
/// wall seconds of the whole run (construction through the drain marker).
double run_shard(const bmp::runtime::ScenarioScript& script, double chunk,
                 double horizon, std::size_t planner_threads,
                 const std::string& prefix, const ObsHooks& obs) {
  bmp::runtime::RuntimeConfig config;
  config.collect_timing = false;
  config.broker_headroom = 0.05;
  config.planner.threads = planner_threads;
  config.dataplane.execute = true;
  config.dataplane.execution.chunk_size = chunk;
  config.dataplane.execution.receiver_window = 16;
  config.control.enabled = true;
  config.control.slo_enabled = obs.slo;
  config.telemetry = obs.telemetry;
  config.telemetry_node_prefix = prefix;
  config.lineage = obs.lineage;
  config.trace = obs.trace;
  config.profiler = obs.profiler;

  const auto start = std::chrono::steady_clock::now();
  bmp::runtime::Runtime rt(config, script.source_bandwidth,
                           script.initial_peers);
  std::size_t next = 0;
  while (next < script.events.size() && script.events[next].time <= horizon) {
    rt.step(script.events[next++]);
  }
  bmp::runtime::Event marker;
  marker.type = bmp::runtime::EventType::kNodeJoin;  // empty: clock only
  marker.time = horizon;
  rt.step(marker);
  return seconds_since(start);
}

}  // namespace

int main(int argc, char** argv) {
  bmp::benchutil::CommonCli cli(argc, argv);
  const bool quick =
      cli.quick || bmp::benchutil::env_int("BMP_OBS_QUICK", 0) != 0;
  const int shards =
      bmp::benchutil::env_int("BMP_OBS_SHARDS", quick ? 20 : 25);
  const int peers =
      bmp::benchutil::env_int("BMP_OBS_PEERS", quick ? 500 : 2000);
  const double horizon = quick ? 5.0 : 6.0;
  const int ab_rounds = quick ? 21 : 11;
  const std::size_t lineage_budget = 1u << 13;  // retained-hop target
  const std::size_t planner_threads = 4;

  bmp::util::print_banner(std::cout,
                          "Telemetry at scale — sharded rollup bench");
  std::cout << shards << " shards x " << peers << " peers = "
            << shards * peers << " nodes, full obs stack on"
            << (quick ? "  [quick]\n\n" : "\n\n");

  bmp::benchutil::JsonReport json;
  bmp::benchutil::add_header(json, "obs");
  json.add("bench_shards", shards);
  json.add("peers_per_shard", peers);
  json.add("total_nodes", shards * peers);
  bool ok = true;

  // Every shard is its own population (distinct seed), planned and adapted
  // independently; one chunk size serves the whole fleet.
  std::vector<bmp::runtime::ScenarioScript> scripts;
  scripts.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    scripts.push_back(shard_script(
        peers, horizon, 2026 + static_cast<std::uint64_t>(s)));
  }
  const double optimum = post_brownout_optimum(scripts.front(), 0.5);
  if (optimum <= 0.0) {
    std::cerr << "degenerate scenario: post-brownout optimum is zero\n";
    return 1;
  }
  const double chunk = optimum / 20.0;

  // ------------------------------------------------ fleet, full stack on
  bmp::obs::LineageConfig lineage_config;
  lineage_config.auto_sample_target = lineage_budget;
  std::vector<bmp::obs::ShardRegistry> regs(
      static_cast<std::size_t>(shards));
  std::vector<bmp::obs::LineageSink> sinks;
  sinks.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) sinks.emplace_back(lineage_config);

  const auto fleet_start = std::chrono::steady_clock::now();
  std::uint64_t trace_events = 0;
  for (int s = 0; s < shards; ++s) {
    bmp::obs::TraceSink trace;  // per-shard timeline, bounded ring
    ObsHooks obs;
    obs.telemetry = &regs[static_cast<std::size_t>(s)];
    obs.lineage = &sinks[static_cast<std::size_t>(s)];
    obs.trace = &trace;
    obs.slo = true;
    obs.profiler = s == 0 ? cli.profiler() : nullptr;
    run_shard(scripts[static_cast<std::size_t>(s)], chunk, horizon,
              planner_threads, "s" + std::to_string(s) + ":", obs);
    trace_events += trace.events();
  }
  const double fleet_s = seconds_since(fleet_start);

  std::vector<bmp::obs::RollupSnapshot> snaps;
  snaps.reserve(regs.size());
  for (const bmp::obs::ShardRegistry& reg : regs) {
    snaps.push_back(reg.snapshot());
  }
  const bmp::obs::RollupSnapshot global = bmp::obs::rollup(snaps);
  const std::uint64_t delivered =
      global.counters.count("dataplane.delivered") != 0
          ? global.counters.at("dataplane.delivered")
          : 0;
  const std::uint64_t latency_samples =
      global.sketches.count("dataplane.chunk_latency") != 0
          ? global.sketches.at("dataplane.chunk_latency").count()
          : 0;
  std::uint64_t lineage_recorded = 0;
  std::size_t lineage_retained = 0;
  for (bmp::obs::LineageSink& sink : sinks) {
    lineage_recorded += sink.recorded();
    lineage_retained = std::max(lineage_retained, sink.hops().size());
  }
  std::cout << "fleet: " << delivered << " chunks delivered, "
            << latency_samples << " latency samples sketched, "
            << lineage_recorded << " lineage hops recorded ("
            << fleet_s << "s wall, " << trace_events
            << " trace events on shard timelines)\n";
  ok = ok && delivered > 0 && latency_samples > 0;

  json.add("fleet_wall_seconds", fleet_s);
  json.add("delivered_total", delivered);
  json.add("latency_samples", latency_samples);
  json.add("lineage_recorded", lineage_recorded);
  json.add("trace_events", trace_events);

  // -------------------------------------- gate: byte-identical rollups
  // Merge order, tree shape, a repeat run, and the planner thread count
  // must all be invisible in the global snapshot's bytes.
  const std::string expected = global.to_json();
  std::vector<bmp::obs::RollupSnapshot> reversed(snaps.rbegin(),
                                                 snaps.rend());
  bool identical = bmp::obs::rollup(reversed).to_json() == expected;
  bmp::obs::RollupTree tree(3);
  for (const bmp::obs::RollupSnapshot& snap : snaps) tree.add(snap);
  identical = identical && tree.global().to_json() == expected;

  bmp::obs::ShardRegistry repeat_reg;
  bmp::obs::LineageSink repeat_sink(lineage_config);
  {
    ObsHooks obs;
    obs.telemetry = &repeat_reg;
    obs.lineage = &repeat_sink;
    obs.slo = true;
    run_shard(scripts.front(), chunk, horizon, planner_threads, "s0:", obs);
  }
  const bool repeat_identical =
      repeat_reg.snapshot().to_json() == snaps.front().to_json() &&
      repeat_sink.to_json() == sinks.front().to_json();
  bmp::obs::ShardRegistry serial_reg;
  {
    ObsHooks obs;
    obs.telemetry = &serial_reg;
    obs.slo = true;
    run_shard(scripts.front(), chunk, horizon, /*planner_threads=*/1, "s0:",
              obs);
  }
  const bool thread_identical =
      serial_reg.snapshot().to_json() == snaps.front().to_json();
  identical = identical && repeat_identical && thread_identical;
  ok = ok && identical;
  std::cout << (identical ? "[OK] " : "[WARN] ")
            << "global rollup byte-identical across merge orders, tree "
               "shapes, a repeat run, and planner threads 1 vs "
            << planner_threads << "\n";
  json.add("rollup_identical", identical ? 1 : 0);

  // ------------------------------------------- gate: memory stays O(series)
  // The same scenario on a 5x smaller shard must cost the same telemetry
  // memory: the registry is O(series) (sketch buckets and top-K capacity
  // are fixed), the lineage sink resamples itself to its hop budget.
  bmp::obs::ShardRegistry small_reg;
  bmp::obs::LineageSink small_sink(lineage_config);
  {
    const bmp::runtime::ScenarioScript small_script =
        shard_script(peers / 5, horizon, 2026);
    ObsHooks obs;
    obs.telemetry = &small_reg;
    obs.lineage = &small_sink;
    obs.slo = true;
    run_shard(small_script, chunk, horizon, planner_threads, "s0:", obs);
  }
  const std::size_t mem_large = regs.front().memory_bytes();
  const std::size_t mem_small = small_reg.memory_bytes();
  const double mem_growth =
      mem_small > 0 ? static_cast<double>(mem_large) /
                          static_cast<double>(mem_small)
                    : 0.0;
  const bool mem_bounded = regs.front().series() == small_reg.series() &&
                           mem_growth > 0.0 && mem_growth < 2.0 &&
                           lineage_retained <= lineage_budget &&
                           small_sink.hops().size() <= lineage_budget;
  ok = ok && mem_bounded;
  std::cout << (mem_bounded ? "[OK] " : "[WARN] ")
            << "telemetry memory bounded: " << mem_large << "B at " << peers
            << " peers vs " << mem_small << "B at " << peers / 5
            << " peers (" << mem_growth << "x for 5x the nodes, "
            << regs.front().series() << " series), lineage retains "
            << lineage_retained << " <= " << lineage_budget
            << " hops (1-in-" << sinks.front().sample_mod()
            << " chunk sample)\n";
  json.add("registry_bytes", static_cast<std::uint64_t>(mem_large));
  json.add("registry_bytes_small_shard",
           static_cast<std::uint64_t>(mem_small));
  json.add("registry_series",
           static_cast<std::uint64_t>(regs.front().series()));
  json.add("memory_growth_5x_nodes", mem_growth);
  json.add("lineage_retained", static_cast<std::uint64_t>(lineage_retained));
  json.add("lineage_sample_mod",
           static_cast<std::uint64_t>(sinks.front().sample_mod()));

  // ------------------------------------------- gate: <= 5% wall overhead
  // Full stack vs all-off on one shard. The two variants run back-to-back
  // within each round (order flips per round so ambient drift cannot tax
  // one side), and the reported overhead is the ratio of the two *min*
  // walls — scheduler noise only ever inflates a wall, so the per-variant
  // min over interleaved samples converges on the true cost. Up to two
  // retries fold extra rounds into the mins before declaring a regression.
  // The A/B rounds run the planner single-threaded: pool scheduling jitter
  // is identical noise on both sides and only widens the estimator's
  // tails, while the event-loop path the stack actually instruments is the
  // same either way (the threads=4 fleet and identity runs cover the
  // multi-threaded contract). Each round constructs its sinks fresh, so a
  // round's heap layout is its own draw and the min sheds the unlucky ones
  // along with the scheduler spikes.
  const auto ab_run = [&](bool obs_on) {
    bmp::obs::ShardRegistry reg;
    bmp::obs::LineageSink sink(lineage_config);
    bmp::obs::TraceSink trace;
    ObsHooks obs;
    if (obs_on) {
      obs.telemetry = &reg;
      obs.lineage = &sink;
      obs.trace = &trace;
      obs.slo = true;
    }
    return run_shard(scripts.front(), chunk, horizon, /*planner_threads=*/1,
                     "s0:", obs);
  };
  // Estimator: the *median of per-round ratios*. Within a round the two
  // variants run ~80 ms apart, so they share the host's clock state —
  // frequency scaling and slow ambient drift cancel out of the ratio,
  // which a min-of-mins across rounds cannot claim (a clocked-down stretch
  // inflates every wall in it, mins included). The median then sheds the
  // rounds where a scheduler spike landed on one side. Min walls are still
  // reported for scale.
  double ab_on_wall = 0.0;
  double ab_off_wall = 0.0;
  std::vector<double> ab_ratios;
  const auto ab_measure = [&] {
    for (int round = 0; round < ab_rounds; ++round) {
      const double first = ab_run(round % 2 == 0);
      const double second = ab_run(round % 2 != 0);
      const double on_wall = round % 2 == 0 ? first : second;
      const double off_wall = round % 2 == 0 ? second : first;
      ab_on_wall =
          ab_on_wall == 0.0 ? on_wall : std::min(ab_on_wall, on_wall);
      ab_off_wall =
          ab_off_wall == 0.0 ? off_wall : std::min(ab_off_wall, off_wall);
      if (off_wall > 0.0) ab_ratios.push_back(on_wall / off_wall);
    }
    std::sort(ab_ratios.begin(), ab_ratios.end());
    return ab_ratios.empty() ? 1.0 : ab_ratios[ab_ratios.size() / 2];
  };
  double overhead = ab_measure();
  for (int retry = 0; retry < 2 && overhead > 1.05; ++retry) {
    // More rounds, same estimator: the retry extends the ratio sample and
    // the median is recomputed over everything measured so far.
    overhead = ab_measure();
  }
  const bool cheap = overhead <= 1.05;
  ok = ok && cheap;
  std::cout << (cheap ? "[OK] " : "[WARN] ") << "full obs stack costs "
            << overhead << "x wall vs all-off (bar: <= 1.05x, baseline "
            << ab_off_wall * 1e3 << "ms)\n";
  json.add("obs_overhead_x", overhead);
  json.add("ab_on_wall_seconds", ab_on_wall);
  json.add("ab_off_wall_seconds", ab_off_wall);

  // ------------------------------------------------------- global rollup
  std::cout << "\n" << global.to_text();
  json.add_string("status", ok ? "ok" : "warn");
  bmp::benchutil::add_profile(json, cli.prof);
  json.add_raw("rollup", bmp::obs::to_json(global));
  if (!cli.json.empty()) {
    if (json.write(cli.json)) {
      std::cout << "json written to " << cli.json << "\n";
    } else {
      std::cout << "[WARN] could not write " << cli.json << "\n";
      ok = false;
    }
  }
  if (!cli.metrics.empty()) {
    std::ofstream out(cli.metrics);
    out << bmp::obs::to_prometheus(global);
    ok = static_cast<bool>(out) && ok;
  }
  if (!cli.lineage.empty()) {
    std::ofstream out(cli.lineage);
    out << sinks.front().to_json();
    ok = static_cast<bool>(out) && ok;
  }
  ok = cli.write_profile() && ok;
  return ok ? 0 : 1;
}
