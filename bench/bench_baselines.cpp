// E11 — Baseline comparison (§II.B positioning): the paper's optimal
// low-degree acyclic scheme and the cyclic closed form vs. star, chain,
// best k-ary tree, SplitStream-like stripes and a random mesh, across the
// six workload distributions. Reports throughput normalized by the cyclic
// optimum T* and the max outdegree of each overlay (the paper's point:
// SplitStream-class systems pay ~k times our degree for less throughput).
#include <iostream>
#include <vector>

#include "bmp/baselines/baselines.hpp"
#include "bmp/core/acyclic_search.hpp"
#include "bmp/core/bounds.hpp"
#include "bmp/gen/generator.hpp"
#include "bmp/util/stats.hpp"
#include "bmp/util/table.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  bmp::benchutil::CommonCli cli(argc, argv);
  const bmp::obs::PhaseScope bench_scope(cli.profiler(), "bench/baselines");
  using bmp::util::Table;
  const int reps = bmp::benchutil::env_int("BMP_BASELINE_REPS", 100);
  const int size = bmp::benchutil::env_int("BMP_BASELINE_SIZE", 40);

  bmp::util::print_banner(
      std::cout, "Baselines vs. the paper's algorithms (throughput / T*, degree)");
  std::cout << reps << " instances per distribution, " << size
            << " peers, p_open = 0.7\n";

  bool ours_always_best = true;
  for (const auto dist : bmp::gen::all_distributions()) {
    bmp::util::Xoshiro256 rng(0xBA5E ^ static_cast<std::uint64_t>(dist) * 977);
    struct Row {
      bmp::util::RunningStats ratio;
      bmp::util::RunningStats degree;
    };
    std::vector<std::string> names{"ours acyclic (Thm 4.1)", "star",
                                   "chain",  "best k-ary",
                                   "splitstream(4)",         "mesh(d=4)"};
    std::vector<Row> rows(names.size());

    for (int rep = 0; rep < reps; ++rep) {
      const bmp::Instance inst =
          bmp::gen::random_instance({size, 0.7, dist}, rng);
      const double t_star = bmp::cyclic_upper_bound(inst);
      if (t_star <= 0.0) continue;
      const bmp::AcyclicSolution ours = bmp::solve_acyclic(inst);
      const std::vector<bmp::baselines::BaselineResult> results{
          {"ours", bmp::BroadcastScheme(1), ours.throughput},
          bmp::baselines::star(inst),
          bmp::baselines::chain(inst),
          bmp::baselines::best_kary_tree(inst),
          bmp::baselines::splitstream_like(inst, 4, rng),
          bmp::baselines::random_mesh(inst, 4, rng),
      };
      for (std::size_t k = 0; k < results.size(); ++k) {
        rows[k].ratio.add(results[k].throughput / t_star);
        rows[k].degree.add(k == 0 ? ours.scheme.max_out_degree()
                                  : results[k].scheme.max_out_degree());
        if (k > 0 && results[k].throughput > ours.throughput + 1e-6) {
          ours_always_best = false;
        }
      }
    }

    Table t({"overlay (" + bmp::gen::name(dist) + ")", "mean T/T*", "min T/T*",
             "mean max degree"});
    for (std::size_t k = 0; k < names.size(); ++k) {
      t.add_row({names[k], Table::num(rows[k].ratio.mean(), 4),
                 Table::num(rows[k].ratio.min(), 4),
                 Table::num(rows[k].degree.mean(), 1)});
    }
    t.print(std::cout);
    t.maybe_write_csv("baselines_" + bmp::gen::name(dist));
  }

  std::cout << (ours_always_best
                    ? "[OK] the optimal acyclic scheme dominates every baseline "
                      "on every instance\n"
                    : "[WARN] a baseline beat the optimal acyclic scheme\n");
  return bmp::benchutil::finish(cli, "baselines", ours_always_best);
}
