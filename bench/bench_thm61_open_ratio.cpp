// E7 — Theorem 6.1: without guarded nodes T*_ac/T* >= 1 - 1/n. We measure
// the worst observed ratio over random open-only instances per n and
// compare with both the bound and the tight homogeneous instance that
// approaches it.
#include <algorithm>
#include <iostream>

#include "bmp/core/bounds.hpp"
#include "bmp/theory/instances.hpp"
#include "bmp/util/rng.hpp"
#include "bmp/util/table.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  bmp::benchutil::CommonCli cli(argc, argv);
  const bmp::obs::PhaseScope bench_scope(cli.profiler(), "bench/thm61_open_ratio");
  using bmp::util::Table;
  const int reps = bmp::benchutil::env_int("BMP_THM61_REPS", 2000);

  bmp::util::print_banner(
      std::cout, "Theorem 6.1 — open-only acyclic/cyclic ratio >= 1 - 1/n");

  Table t({"n", "bound 1-1/n", "worst random ratio", "tight-instance ratio"});
  bmp::util::Xoshiro256 rng(0x61);
  bool ok = true;
  for (const int n : {2, 3, 5, 10, 20, 50, 100}) {
    double worst = 1.0;
    for (int rep = 0; rep < reps; ++rep) {
      std::vector<double> open(static_cast<std::size_t>(n));
      for (auto& b : open) b = rng.uniform(0.0, 10.0);
      const bmp::Instance inst(rng.uniform(0.1, 10.0), std::move(open), {});
      const double ratio =
          bmp::acyclic_open_optimal(inst) / bmp::cyclic_open_optimal(inst);
      worst = std::min(worst, ratio);
    }
    // The homogeneous tight instance: ratio = (n^2-n+1)/n^2 -> 1 - 1/n.
    const bmp::Instance tight = bmp::theory::tight_homogeneous_open(n);
    const double tight_ratio =
        bmp::acyclic_open_optimal(tight) / bmp::cyclic_open_optimal(tight);
    const double bound = 1.0 - 1.0 / n;
    ok = ok && worst >= bound - 1e-9 && tight_ratio >= bound - 1e-9;
    t.add_row({Table::num(n), Table::num(bound, 4), Table::num(worst, 4),
               Table::num(tight_ratio, 4)});
  }
  t.print(std::cout);
  t.maybe_write_csv("thm61_open_ratio");
  std::cout << (ok ? "[OK] bound holds everywhere; ratio -> 1 as n grows\n"
                   : "[WARN] bound violated\n");
  return bmp::benchutil::finish(cli, "thm61_open_ratio", ok);
}
