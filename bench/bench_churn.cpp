// Extension bench — churn (§VII: "probably not resilient to churn", listed
// as an open perspective). Peers depart mid-stream; we measure the worst
// survivor's rate with no reaction vs. after replanning with the paper's
// algorithm, across failure fractions.
#include <iostream>

#include "bmp/gen/generator.hpp"
#include "bmp/sim/churn.hpp"
#include "bmp/util/stats.hpp"
#include "bmp/util/table.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  bmp::benchutil::CommonCli cli(argc, argv);
  const bmp::obs::PhaseScope bench_scope(cli.profiler(), "bench/churn");
  using bmp::util::Table;
  const int reps = bmp::benchutil::env_int("BMP_CHURN_REPS", 12);
  const int size = bmp::benchutil::env_int("BMP_CHURN_SIZE", 30);

  bmp::util::print_banner(
      std::cout, "Churn — abrupt departures under a fixed overlay vs. replanning");
  std::cout << reps << " platforms, " << size
            << " peers, PlanetLab-like bandwidths, stream load 0.85 T\n";

  Table t({"fail fraction", "healthy min-rate/T", "broken min-rate/T",
           "replanned T'/T", "replanned min-rate/T'", "starved runs"});
  bool ok = true;
  for (const double frac : {0.05, 0.1, 0.2, 0.35, 0.5}) {
    bmp::util::RunningStats healthy;
    bmp::util::RunningStats broken;
    bmp::util::RunningStats new_rate;
    bmp::util::RunningStats replanned;
    int starved = 0;
    bmp::util::Xoshiro256 rng(0xC0 + static_cast<std::uint64_t>(frac * 100));
    for (int rep = 0; rep < reps; ++rep) {
      const bmp::Instance inst = bmp::gen::random_instance(
          {size, 0.5, bmp::gen::Dist::kPlanetLab}, rng);
      const bmp::sim::ChurnResult r = bmp::sim::churn_experiment(
          inst, {frac, 0.85, 300.0, static_cast<std::uint64_t>(rep) + 1});
      if (r.design_rate <= 0.0) continue;
      healthy.add(r.pre_fail_min_rate / (0.85 * r.design_rate));
      broken.add(r.broken_min_rate / (0.85 * r.design_rate));
      if (r.broken_min_rate < 0.25 * 0.85 * r.design_rate) ++starved;
      new_rate.add(r.replanned_rate / r.design_rate);
      if (r.replanned_rate > 0.0) {
        replanned.add(r.replanned_min_rate / (0.85 * r.replanned_rate));
      }
    }
    t.add_row({Table::num(frac, 2), Table::num(healthy.mean(), 3),
               Table::num(broken.mean(), 3), Table::num(new_rate.mean(), 3),
               Table::num(replanned.mean(), 3), Table::num(starved)});
    // The paper's caveat: fixed overlays break under churn...
    if (frac >= 0.2 && broken.mean() > 0.7) ok = false;
    // ...but replanning restores near-full delivery.
    if (replanned.mean() < 0.85) ok = false;
  }
  t.print(std::cout);
  t.maybe_write_csv("churn");

  std::cout << (ok ? "[OK] fixed overlays starve survivors under churn; "
                     "replanning with the paper's algorithm recovers\n"
                   : "[WARN] unexpected churn behavior\n");
  return bmp::benchutil::finish(cli, "churn", ok);
}
