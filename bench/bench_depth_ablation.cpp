// Extension bench — scheme depth (§VII future work: "optimizing the depth
// of produced schemes in order to minimize delays"). Same optimal word,
// three feeding rules in the Lemma 4.6 scheduler:
//   earliest-first (the paper; low degree), latest-first (adversarial),
//   shallowest-first (depth-greedy).
// We measure max/weighted depth, max degree, and the mean piece delay
// observed by the randomized streaming simulator — showing depth is the
// right latency proxy and that the paper's rule is already near-shallow.
#include <iostream>

#include "bmp/core/acyclic_search.hpp"
#include "bmp/core/depth.hpp"
#include "bmp/gen/generator.hpp"
#include "bmp/sim/massoulie.hpp"
#include "bmp/util/stats.hpp"
#include "bmp/util/table.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  bmp::benchutil::CommonCli cli(argc, argv);
  const bmp::obs::PhaseScope bench_scope(cli.profiler(), "bench/depth_ablation");
  using bmp::util::Table;
  const int reps = bmp::benchutil::env_int("BMP_DEPTH_REPS", 60);
  const int size = bmp::benchutil::env_int("BMP_DEPTH_SIZE", 40);

  bmp::util::print_banner(
      std::cout, "Depth ablation — feeding order in the Lemma 4.6 scheduler");
  std::cout << reps << " instances, " << size << " peers, p_open = 0.5\n";

  struct Row {
    bmp::util::RunningStats max_depth;
    bmp::util::RunningStats weighted_depth;
    bmp::util::RunningStats max_degree;
    bmp::util::RunningStats sim_delay;
  };
  const std::vector<std::pair<std::string, bmp::FeedOrder>> orders{
      {"earliest-first (paper)", bmp::FeedOrder::kEarliestFirst},
      {"latest-first", bmp::FeedOrder::kLatestFirst},
      {"shallowest-first", bmp::FeedOrder::kShallowest},
  };
  std::vector<Row> rows(orders.size());

  bmp::util::Xoshiro256 rng(0xDEE9);
  for (int rep = 0; rep < reps; ++rep) {
    const bmp::Instance inst = bmp::gen::random_instance(
        {size, 0.5, bmp::gen::Dist::kUnif100}, rng);
    const bmp::AcyclicSolution sol = bmp::solve_acyclic(inst);
    if (sol.throughput <= 1e-9) continue;
    for (std::size_t k = 0; k < orders.size(); ++k) {
      const bmp::BroadcastScheme s = bmp::build_scheme_from_word_ordered(
          inst, sol.word, sol.throughput, orders[k].second);
      const bmp::DepthReport d = bmp::analyze_depth(s);
      rows[k].max_depth.add(d.max_depth);
      rows[k].weighted_depth.add(d.max_weighted_depth);
      rows[k].max_degree.add(s.max_out_degree());
      if (rep < 10) {  // simulation is the expensive part
        const bmp::sim::SimResult sim = bmp::sim::simulate_random_useful(
            s, {0.9, 300.0, 100.0, static_cast<std::uint64_t>(rep) + 1, true});
        double worst_delay = 0.0;
        for (std::size_t v = 1; v < sim.nodes.size(); ++v) {
          worst_delay = std::max(worst_delay, sim.nodes[v].mean_delay);
        }
        rows[k].sim_delay.add(worst_delay);
      }
    }
  }

  Table t({"feeding rule", "mean max depth", "mean weighted depth",
           "mean max degree", "sim worst mean delay"});
  for (std::size_t k = 0; k < orders.size(); ++k) {
    t.add_row({orders[k].first, Table::num(rows[k].max_depth.mean(), 2),
               Table::num(rows[k].weighted_depth.mean(), 2),
               Table::num(rows[k].max_degree.mean(), 2),
               Table::num(rows[k].sim_delay.mean(), 2)});
  }
  t.print(std::cout);
  t.maybe_write_csv("depth_ablation");

  const bool ok =
      rows[2].max_depth.mean() <= rows[1].max_depth.mean() + 1e-9 &&
      rows[0].max_depth.mean() <= rows[1].max_depth.mean() + 1e-9;
  std::cout << (ok ? "[OK] depth-greedy <= paper <= latest-first in depth; "
                     "the paper's rule keeps degrees smallest\n"
                   : "[WARN] unexpected depth ordering\n");
  return bmp::benchutil::finish(cli, "depth_ablation", ok);
}
