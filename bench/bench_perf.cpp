// E15 — Performance scaling (google-benchmark): Theorem 4.1 claims the
// feasibility test and scheme construction run in linear time, and the
// dichotomic search adds only a log(1/eps) factor. Measured over
// PlanetLab-like instances with n = m = N/2.
#include <benchmark/benchmark.h>

#include "bmp/core/acyclic_open.hpp"
#include "bmp/core/acyclic_search.hpp"
#include "bmp/core/bounds.hpp"
#include "bmp/core/cyclic_open.hpp"
#include "bmp/core/greedy_test.hpp"
#include "bmp/core/word_schedule.hpp"
#include "bmp/gen/generator.hpp"
#include "bmp/util/rng.hpp"

namespace {

bmp::Instance make_instance(int size, double p_open, std::uint64_t seed) {
  bmp::util::Xoshiro256 rng(seed);
  return bmp::gen::random_instance({size, p_open, bmp::gen::Dist::kPlanetLab},
                                   rng);
}

void BM_GreedyTest(benchmark::State& state) {
  const auto inst = make_instance(static_cast<int>(state.range(0)), 0.5, 1);
  const double T = 0.9 * bmp::cyclic_upper_bound(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bmp::greedy_test(inst, T));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GreedyTest)->RangeMultiplier(4)->Range(64, 65536)->Complexity(benchmark::oN);

void BM_DichotomicSearch(benchmark::State& state) {
  const auto inst = make_instance(static_cast<int>(state.range(0)), 0.5, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bmp::optimal_acyclic_throughput(inst));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DichotomicSearch)->RangeMultiplier(4)->Range(64, 16384)->Complexity(benchmark::oN);

void BM_SchemeFromWord(benchmark::State& state) {
  const auto inst = make_instance(static_cast<int>(state.range(0)), 0.5, 3);
  const double T = bmp::optimal_acyclic_throughput(inst);
  const auto word = bmp::greedy_test(inst, T * (1 - 1e-9));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bmp::build_scheme_from_word(inst, *word, T));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SchemeFromWord)->RangeMultiplier(4)->Range(64, 16384)->Complexity(benchmark::oN);

void BM_Algorithm1(benchmark::State& state) {
  const auto inst = make_instance(static_cast<int>(state.range(0)), 1.0, 4);
  const double T = bmp::acyclic_open_optimal(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bmp::build_acyclic_open(inst, T));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Algorithm1)->RangeMultiplier(4)->Range(64, 16384)->Complexity(benchmark::oN);

void BM_CyclicConstruction(benchmark::State& state) {
  const auto inst = make_instance(static_cast<int>(state.range(0)), 1.0, 5);
  const double T = bmp::cyclic_open_optimal(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bmp::build_cyclic_open(inst, T));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CyclicConstruction)->RangeMultiplier(4)->Range(64, 16384)->Complexity(benchmark::oN);

}  // namespace

BENCHMARK_MAIN();
