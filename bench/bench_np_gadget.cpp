// E10 — Theorem 3.1 made executable: the 3-PARTITION reduction of Fig. 8.
// For solvable inputs the reduction yields a throughput-T scheme where every
// node meets the degree floor ceil(b_i/T) exactly; for unsolvable inputs no
// such scheme exists (the solver proves it), while the throughput problem
// *without* the degree constraint remains easy (T is always reachable).
#include <chrono>
#include <cmath>
#include <iostream>

#include "bmp/core/acyclic_search.hpp"
#include "bmp/core/bounds.hpp"
#include "bmp/flow/maxflow.hpp"
#include "bmp/theory/np_gadget.hpp"
#include "bmp/util/table.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  bmp::benchutil::CommonCli cli(argc, argv);
  const bmp::obs::PhaseScope bench_scope(cli.profiler(), "bench/np_gadget");
  using bmp::util::Table;
  using bmp::theory::ThreePartition;

  bmp::util::print_banner(
      std::cout, "Theorem 3.1 — degree-constrained broadcast is 3-PARTITION");

  const std::vector<std::pair<std::string, ThreePartition>> cases{
      {"p=2 solvable", {{3, 3, 4, 3, 3, 4}, 10}},
      {"p=2 unsolvable", {{6, 6, 6, 6, 7, 9}, 20}},
      {"p=3 solvable", {{4, 4, 4, 4, 4, 4, 4, 4, 4}, 12}},
      {"p=3 unsolvable", {{6, 6, 6, 6, 6, 6, 7, 8, 9}, 20}},
      {"p=4 solvable", {{10, 7, 7, 9, 8, 7, 8, 8, 8, 9, 7, 8}, 24}},
      {"p=5 solvable", {{5, 5, 5, 4, 5, 6, 4, 6, 5, 6, 4, 5, 4, 6, 5}, 15}},
      {"malformed (window)", {{5, 5, 5, 4, 4, 4, 3, 3, 3}, 12}},
  };

  Table t({"case", "items", "well-formed", "3-partition", "scheme throughput",
           "degree = ceil(b/T) everywhere", "solve time"});
  bool ok = true;
  for (const auto& [label, tp] : cases) {
    const auto start = std::chrono::steady_clock::now();
    const auto triples = bmp::theory::solve_three_partition(tp);
    const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    std::string throughput = "-";
    std::string degree_ok = "-";
    if (triples.has_value()) {
      const bmp::Instance inst = bmp::theory::np_gadget_instance(tp);
      const bmp::BroadcastScheme s =
          bmp::theory::scheme_from_three_partition(tp, *triples);
      const double flow = bmp::flow::scheme_throughput(s);
      throughput = Table::num(flow, 2);
      bool tight = s.validate(inst).empty();
      for (int i = 0; i < inst.size() && tight; ++i) {
        const int base = inst.b(i) <= 0.0
                             ? 0
                             : static_cast<int>(
                                   std::ceil(inst.b(i) / tp.target - 1e-9));
        tight = s.out_degree(i) <= base;
      }
      degree_ok = tight ? "yes" : "NO";
      ok = ok && tight && std::abs(flow - tp.target) < 1e-6;
    }
    t.add_row({label, Table::num(static_cast<int>(tp.items.size())),
               tp.well_formed() ? "yes" : "no",
               triples.has_value() ? "found" : "none", throughput, degree_ok,
               std::to_string(micros) + "us"});
  }
  t.print(std::cout);

  // Without degrees, even the unsolvable gadget broadcasts at rate T.
  const ThreePartition hard{{6, 6, 6, 6, 7, 9}, 20};
  const bmp::Instance inst = bmp::theory::np_gadget_instance(hard);
  std::cout << "\nunsolvable gadget, no degree constraint: T*_ac = "
            << Table::num(bmp::optimal_acyclic_throughput(inst), 3)
            << " (= T = 20; the hardness lives entirely in the degree bound)\n";
  ok = ok && std::abs(bmp::optimal_acyclic_throughput(inst) - 20.0) < 1e-6;

  std::cout << (ok ? "[OK] reduction behaves as Theorem 3.1 predicts\n"
                   : "[WARN] reduction mismatch\n");
  return bmp::benchutil::finish(cli, "np_gadget", ok);
}
