// E3 — Figure 7: worst-case ratio T*_ac / T* over tight homogeneous
// instances for n, m in [0, 100]. For each (n, m) we sweep the free
// parameter Delta in [0, n] (the paper explores "all possible tight and
// homogeneous instances"; by the convexity argument of Lemma 11.3 the worst
// case lies on the sweep) and keep the minimum ratio. T* = 1 by
// construction; T*_ac comes from GreedyTest + dichotomic search.
//
// Expected shape (paper): a valley below 1 along m ~ 0.4254 n (Theorem 6.3,
// e.g. n=100, m=42), everything >= 5/7 ~ 0.714 (Theorem 6.2), and ratios
// above ~0.8 except for a few small instances.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bmp/core/acyclic_search.hpp"
#include "bmp/core/bounds.hpp"
#include "bmp/theory/instances.hpp"
#include "bmp/util/table.hpp"
#include "bmp/util/thread_pool.hpp"
#include "bench_util.hpp"

namespace {

/// Worst (minimum over Delta) acyclic/cyclic ratio for a tight homogeneous
/// (n, m) cell; n = 0 or m = 0 cells are closed-form.
double cell_ratio(int n, int m, int delta_steps) {
  if (n == 0 && m == 0) return 1.0;
  if (m == 0) {
    // Open-only tight instance: o = (n-1)/n, T* = 1,
    // T*_ac = min(1, S_{n-1}/n) = (n^2 - n + 1)/n^2.
    const bmp::Instance inst = bmp::theory::tight_homogeneous_open(n);
    return bmp::acyclic_open_optimal(inst);
  }
  if (n == 0) {
    // Only the source can feed guarded nodes; acyclic = cyclic = b0/m.
    return 1.0;
  }
  double worst = 1.0;
  for (int s = 0; s <= delta_steps; ++s) {
    const double delta = static_cast<double>(n) * s / delta_steps;
    const bmp::Instance inst = bmp::theory::tight_homogeneous(n, m, delta);
    worst = std::min(worst, bmp::optimal_acyclic_throughput(inst));
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  bmp::benchutil::CommonCli cli(argc, argv);
  const bmp::obs::PhaseScope bench_scope(cli.profiler(), "bench/fig7_grid");
  using bmp::util::Table;
  const int max_n = bmp::benchutil::env_int("BMP_FIG7_MAX", 100);
  const int delta_steps = bmp::benchutil::env_int("BMP_FIG7_DELTA_STEPS", 8);

  bmp::util::print_banner(
      std::cout, "Figure 7 — worst-case T*_ac/T* on tight homogeneous instances");
  std::cout << "grid: n,m in [0," << max_n << "], Delta sweep with "
            << delta_steps + 1 << " samples per cell\n";

  const int width = max_n + 1;
  std::vector<double> ratio(static_cast<std::size_t>(width) * width, 1.0);
  bmp::util::ThreadPool pool;
  bmp::util::parallel_for(pool, 0, static_cast<std::size_t>(width) * width,
                          [&](std::size_t cell) {
                            const int n = static_cast<int>(cell) / width;
                            const int m = static_cast<int>(cell) % width;
                            ratio[cell] = cell_ratio(n, m, delta_steps);
                          });

  // Coarse view of the surface (the paper's 3-D plot), sampled every 10.
  {
    std::vector<std::string> header{"n\\m"};
    for (int m = 0; m <= max_n; m += 10) header.push_back(std::to_string(m));
    Table t(header);
    for (int n = 0; n <= max_n; n += 10) {
      std::vector<std::string> row{std::to_string(n)};
      for (int m = 0; m <= max_n; m += 10) {
        row.push_back(Table::num(
            ratio[static_cast<std::size_t>(n) * width + m], 3));
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
  }

  // Full-resolution CSV when BMP_RESULTS_DIR is set.
  {
    Table full({"n", "m", "ratio"});
    for (int n = 0; n <= max_n; ++n) {
      for (int m = 0; m <= max_n; ++m) {
        full.add_row({Table::num(n), Table::num(m),
                      Table::num(ratio[static_cast<std::size_t>(n) * width + m], 6)});
      }
    }
    if (full.maybe_write_csv("fig7_grid")) {
      std::cout << "(full grid written to $BMP_RESULTS_DIR/fig7_grid.csv)\n";
    }
  }

  // Headline statistics the paper calls out.
  double global_min = 1.0;
  int min_n = 0;
  int min_m = 0;
  std::size_t below_08 = 0;
  std::size_t cells = 0;
  for (int n = 0; n <= max_n; ++n) {
    for (int m = 0; m <= max_n; ++m) {
      const double r = ratio[static_cast<std::size_t>(n) * width + m];
      ++cells;
      if (r < 0.8) ++below_08;
      if (r < global_min) {
        global_min = r;
        min_n = n;
        min_m = m;
      }
    }
  }
  const int valley_m = static_cast<int>(bmp::theory::thm63_alpha() * max_n + 0.5);
  const double valley =
      max_n >= 10 ? ratio[static_cast<std::size_t>(max_n) * width +
                          std::min(valley_m, max_n)]
                  : 1.0;

  Table summary({"quantity", "value", "paper reference"});
  summary.add_row({"global min ratio", Table::num(global_min, 4),
                   ">= 5/7 = 0.7143 (Thm 6.2)"});
  summary.add_row({"argmin (n, m)",
                   "(" + std::to_string(min_n) + ", " + std::to_string(min_m) + ")",
                   "small instances are worst"});
  summary.add_row({"cells below 0.8",
                   Table::num(below_08) + " / " + Table::num(cells),
                   "\"except for few small instances, ratio > 0.8\""});
  summary.add_row({"ratio at (n=" + std::to_string(max_n) + ", m=" +
                       std::to_string(valley_m) + ")",
                   Table::num(valley, 4),
                   "Thm 6.3 valley ~ (1+sqrt41)/8 = 0.9254, stays < 1"});
  summary.print(std::cout);

  const bool ok = global_min >= 5.0 / 7.0 - 1e-6 && valley < 0.99;
  std::cout << (ok ? "[OK] shape matches the paper\n"
                   : "[WARN] shape deviates from the paper\n");
  return bmp::benchutil::finish(cli, "fig7_grid", ok);
}
