// Control-plane bench — the closed loop's headline number: on a 500-node
// live stream where 10% of the peers suffer a 4x effective-capacity
// brownout mid-stream (the planner is not told), how much of the
// *post-brownout optimum* does the adaptive runtime recover for its worst
// node, against the frozen (non-adaptive) baseline?
//   * recovered-throughput ratio: worst-node delivered rate over the
//     converged window / optimum of the effective platform;
//   * detection-to-action latency and the controller's action ledger;
//   * wall-clock cost of running the loop (events/s with control on).
// `--quick` (or BMP_CONTROL_QUICK=1) shrinks the platform for CI smoke.
// Observability CLI (benchutil::CommonCli): `--json` machine-readable
// report with the final metrics snapshot embedded, `--trace` timeline,
// `--profile` work attribution, `--metrics` Prometheus snapshot — all on
// the adaptive run (the headline the perf gate tracks).
#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bmp/engine/planner.hpp"
#include "bmp/obs/export.hpp"
#include "bmp/obs/trace.hpp"
#include "bmp/runtime/runtime.hpp"
#include "bmp/runtime/scenario.hpp"
#include "bmp/util/table.hpp"
#include "bench_util.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

bmp::runtime::ScenarioScript degradation_script(int peers, double horizon,
                                                std::uint64_t seed) {
  bmp::runtime::Scenario scenario(horizon, seed);
  scenario.source(4000.0)
      .population({peers * 3 / 5, 0.7, bmp::gen::Dist::kUnif100})
      .population({peers * 2 / 5, 0.3, bmp::gen::Dist::kLogNormal1})
      .channel({0.0, -1.0, 1.0, /*fraction=*/0.5});
  bmp::runtime::BrownoutSpec brownout;
  brownout.time = 3.0;
  brownout.duration = -1.0;
  brownout.fraction = 0.10;
  brownout.capacity_factor = 0.25;
  scenario.brownout(brownout);
  return scenario.build();
}

struct LoopResult {
  double worst_ratio = 0.0;  ///< worst node / post-brownout optimum
  double p5_ratio = 0.0;
  double seconds = 0.0;
  std::uint64_t repairs = 0;
  std::uint64_t replans = 0;
  std::uint64_t demotions = 0;
  std::uint64_t restores = 0;
  std::uint64_t samples = 0;
  double first_action = -1.0;  ///< scenario time of the first adaptation
  std::uint64_t events = 0;    ///< events the loop processed
  std::string metrics_json;    ///< final snapshot (timing.* excluded)
  std::string prometheus;      ///< final snapshot, Prometheus exposition
};

LoopResult run_loop(const bmp::runtime::ScenarioScript& script, bool adaptive,
                    double optimum, double probe_at, double horizon,
                    bmp::obs::TraceSink* trace = nullptr,
                    bmp::obs::Profiler* profiler = nullptr) {
  bmp::runtime::RuntimeConfig config;
  config.collect_timing = false;
  config.broker_headroom = 0.05;
  config.dataplane.execute = true;
  config.dataplane.execution.chunk_size = optimum / 40.0;
  config.dataplane.execution.receiver_window = 16;
  config.control.enabled = adaptive;
  config.trace = trace;
  config.profiler = profiler;

  const auto start = std::chrono::steady_clock::now();
  bmp::runtime::Runtime rt(config, script.source_bandwidth,
                           script.initial_peers);
  std::size_t next = 0;
  const auto run_until = [&](double t) {
    while (next < script.events.size() && script.events[next].time <= t) {
      rt.step(script.events[next++]);
      // Perf-gate self-test hook: a no-op unless CI injects a deliberate
      // per-event slowdown to prove bench_diff catches wall regressions.
      bmp::benchutil::selftest_sleep();
    }
    bmp::runtime::Event marker;
    marker.type = bmp::runtime::EventType::kNodeJoin;  // clock only
    marker.time = t;
    rt.step(marker);
  };
  const auto snapshot = [&] {
    const bmp::dataplane::Execution* exec = rt.execution(0);
    std::vector<int> delivered;
    for (int dp = 1; dp < exec->num_nodes(); ++dp) {
      delivered.push_back(exec->delivered(dp));
    }
    return delivered;
  };
  run_until(probe_at);
  const std::vector<int> before = snapshot();
  run_until(horizon);
  const std::vector<int> after = snapshot();
  rt.drain(horizon);

  LoopResult result;
  result.seconds = seconds_since(start);
  std::vector<double> ratios;
  for (std::size_t k = 0; k < before.size(); ++k) {
    ratios.push_back((after[k] - before[k]) *
                     config.dataplane.execution.chunk_size /
                     ((horizon - probe_at) * optimum));
  }
  std::sort(ratios.begin(), ratios.end());
  result.worst_ratio = ratios.front();
  result.p5_ratio = ratios[ratios.size() / 20];
  result.repairs = rt.metrics().counter("control.repairs");
  result.replans = rt.metrics().counter("control.replans");
  result.demotions = rt.metrics().counter("control.demotions");
  result.restores = rt.metrics().counter("control.restores");
  result.samples = rt.metrics().counter("control.samples");
  if (!rt.control_log().empty()) {
    result.first_action = rt.control_log().front().time;
  }
  result.events = rt.metrics().counter("events.total");
  const bmp::runtime::MetricsSnapshot snap = rt.metrics().snapshot();
  result.metrics_json = bmp::obs::to_json(snap, /*include_timing=*/false);
  result.prometheus = bmp::obs::to_prometheus(snap);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bmp::benchutil::CommonCli cli(argc, argv);
  const bool quick =
      cli.quick || bmp::benchutil::env_int("BMP_CONTROL_QUICK", 0) != 0;
  const int peers =
      bmp::benchutil::env_int("BMP_CONTROL_PEERS", quick ? 150 : 500);
  const double horizon = quick ? 14.0 : 24.0;
  const double probe_at = quick ? 10.0 : 16.0;

  bmp::util::print_banner(std::cout,
                          "Adaptive control plane — brownout recovery");
  std::cout << peers << "-node stream, 10% of peers browned out 4x at t = 3"
            << (quick ? "  [quick]\n\n" : "\n\n");

  const bmp::runtime::ScenarioScript script =
      degradation_script(peers, horizon, 2026);

  // The reference: the optimum of the platform as the brownout left it.
  std::vector<char> browned(script.initial_peers.size() + 1, 0);
  for (const bmp::runtime::Event& event : script.events) {
    if (event.type != bmp::runtime::EventType::kDegrade) continue;
    for (const bmp::runtime::Degradation& d : event.degrades) {
      browned[static_cast<std::size_t>(d.node)] = 1;
    }
    break;
  }
  std::vector<double> open_bw;
  std::vector<double> guarded_bw;
  for (std::size_t k = 0; k < script.initial_peers.size(); ++k) {
    const bmp::runtime::NodeSpec& peer = script.initial_peers[k];
    const double eff = peer.bandwidth * 0.5 * (browned[k + 1] ? 0.25 : 1.0);
    (peer.guarded ? guarded_bw : open_bw).push_back(eff);
  }
  const bmp::Instance effective(script.source_bandwidth * 0.5,
                                std::move(open_bw), std::move(guarded_bw));
  const double optimum =
      bmp::engine::Planner::plan_uncached(effective,
                                          bmp::engine::Algorithm::kAcyclic, 0)
          .throughput;

  bmp::obs::TraceSink trace;
  const LoopResult adaptive =
      run_loop(script, true, optimum, probe_at, horizon,
               cli.trace.empty() ? nullptr : &trace, cli.profiler());
  const LoopResult frozen = run_loop(script, false, optimum, probe_at, horizon);

  bmp::util::Table table({"runtime", "worst/optimum", "p5/optimum",
                          "repairs", "replans", "demote/restore", "wall s"});
  table.add_row({"adaptive", bmp::util::Table::num(adaptive.worst_ratio, 4),
                 bmp::util::Table::num(adaptive.p5_ratio, 4),
                 bmp::util::Table::num(adaptive.repairs),
                 bmp::util::Table::num(adaptive.replans),
                 bmp::util::Table::num(adaptive.demotions) + "/" +
                     bmp::util::Table::num(adaptive.restores),
                 bmp::util::Table::num(adaptive.seconds, 2)});
  table.add_row({"frozen", bmp::util::Table::num(frozen.worst_ratio, 4),
                 bmp::util::Table::num(frozen.p5_ratio, 4), "0", "0", "0/0",
                 bmp::util::Table::num(frozen.seconds, 2)});
  table.print(std::cout);
  table.maybe_write_csv("control");

  bool ok = true;
  const double bar = quick ? 0.75 : 0.85;
  ok = ok && adaptive.worst_ratio >= bar;
  std::cout << (adaptive.worst_ratio >= bar ? "\n[OK] " : "\n[WARN] ")
            << "adaptive worst node recovered to "
            << 100.0 * adaptive.worst_ratio
            << "% of the post-brownout optimum (bar: " << 100.0 * bar
            << "%)\n";
  ok = ok && frozen.worst_ratio < bar;
  std::cout << (frozen.worst_ratio < bar ? "[OK] " : "[WARN] ")
            << "frozen baseline stayed at " << 100.0 * frozen.worst_ratio
            << "% — the loop, not luck, closed the gap\n";
  ok = ok && adaptive.repairs + adaptive.replans > 0;
  std::cout << "detection-to-action: first adaptation at t = "
            << adaptive.first_action << " (brownout at t = 3)\n";

  bmp::benchutil::JsonReport json;
  bmp::benchutil::add_header(json, "control");
  json.add("peers", peers);
  json.add("post_brownout_optimum", optimum);
  json.add("recovered_worst_ratio", adaptive.worst_ratio);
  json.add("recovered_p5_ratio", adaptive.p5_ratio);
  json.add("frozen_worst_ratio", frozen.worst_ratio);
  json.add("control_samples", adaptive.samples);
  json.add("control_repairs", adaptive.repairs);
  json.add("control_replans", adaptive.replans);
  json.add("control_demotions", adaptive.demotions);
  json.add("control_restores", adaptive.restores);
  json.add("first_action_time", adaptive.first_action);
  json.add("adaptive_wall_seconds", adaptive.seconds);
  json.add("events_per_s", adaptive.seconds > 0.0
                               ? static_cast<double>(adaptive.events) /
                                     adaptive.seconds
                               : 0.0);
  json.add_string("status", ok ? "ok" : "warn");
  bmp::benchutil::add_profile(json, cli.prof);
  json.add_raw("metrics", adaptive.metrics_json);
  if (!cli.json.empty()) {
    if (json.write(cli.json)) {
      std::cout << "json written to " << cli.json << "\n";
    } else {
      std::cout << "[WARN] could not write " << cli.json << "\n";
      ok = false;
    }
  }
  if (!cli.trace.empty()) {
    ok = trace.write(cli.trace) && ok;
    std::cout << "trace written to " << cli.trace << " (" << trace.spans()
              << " spans)\n";
  }
  if (!cli.metrics.empty()) {
    std::ofstream out(cli.metrics);
    out << adaptive.prometheus;
    ok = static_cast<bool>(out) && ok;
  }
  ok = cli.write_profile() && ok;
  return ok ? 0 : 1;
}
