// Runtime bench — the numbers the multi-channel subsystem exists for:
//   * event-loop throughput (events/sec) on a scenario mixing channel
//     arrivals, flash crowds, diurnal churn, correlated failures and
//     renegotiations over a large heterogeneous population;
//   * churn absorption: after every population event each live channel
//     must achieve >= 0.85x its broker-granted design rate;
//   * the shared-capacity invariant: no node oversubscribed, ever;
//   * replay determinism: identical seed => identical metrics snapshot.
// `--quick` (or BMP_RUNTIME_QUICK=1) shrinks the scenario for CI smoke.
// Observability CLI (benchutil::CommonCli): --json / --trace / --profile /
// --metrics, all attributing the measured (first) run.
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>

#include "bmp/obs/export.hpp"
#include "bmp/obs/trace.hpp"
#include "bmp/runtime/runtime.hpp"
#include "bmp/runtime/scenario.hpp"
#include "bmp/util/table.hpp"
#include "bench_util.hpp"

namespace {

bmp::runtime::ScenarioScript make_script(int peers, double horizon,
                                         std::uint64_t seed) {
  using namespace bmp::runtime;
  Scenario scenario(horizon, seed);
  scenario.source(2000.0)
      .population({peers * 3 / 5, 0.7, bmp::gen::Dist::kUnif100})
      .population({peers * 2 / 5, 0.3, bmp::gen::Dist::kLogNormal1})
      .channel({0.0, -1.0, /*weight=*/2.0, /*fraction=*/0.4})
      .channel({0.0, -1.0, 1.0, 0.2})
      .channel({0.2, -1.0, 1.0, 0.15})
      .poisson_channels({0.8, horizon / 4.0, 1.0, 0.1})
      .flash_crowd({horizon * 0.3, peers / 5,
                    {0, 0.8, bmp::gen::Dist::kUnif100}, 0.7, horizon * 0.2})
      .diurnal_churn({horizon / 2.0, 0.8, 8.0, 0.45,
                      {0, 0.5, bmp::gen::Dist::kUnif100}})
      .correlated_failure({horizon * 0.75, 0.10})
      .renegotiate_every(horizon / 5.0, 0.95);
  return scenario.build();
}

double run_once(const bmp::runtime::ScenarioScript& script,
                bmp::runtime::Runtime& runtime) {
  const auto start = std::chrono::steady_clock::now();
  runtime.run(script.events);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bmp::benchutil::CommonCli cli(argc, argv);
  const bool quick =
      cli.quick || bmp::benchutil::env_int("BMP_RUNTIME_QUICK", 0) != 0;
  const std::string& json_path = cli.json;
  const std::string& trace_path = cli.trace;
  const int peers =
      bmp::benchutil::env_int("BMP_RUNTIME_PEERS", quick ? 120 : 500);
  const double horizon = quick ? 6.0 : 20.0;
  const auto seed =
      static_cast<std::uint64_t>(bmp::benchutil::env_int("BMP_RUNTIME_SEED", 7));

  bmp::util::print_banner(std::cout, "Multi-channel runtime — event loop");
  const bmp::runtime::ScenarioScript script = make_script(peers, horizon, seed);
  std::cout << script.initial_peers.size() << " initial peers, "
            << script.events.size() << " events, horizon " << horizon
            << (quick ? "  [quick]\n\n" : "\n\n");

  bmp::runtime::RuntimeConfig config;
  config.broker_headroom = 0.05;
  bmp::obs::TraceSink trace;
  if (!trace_path.empty()) config.trace = &trace;
  config.profiler = cli.profiler();
  bmp::runtime::Runtime runtime(config, script.source_bandwidth,
                                script.initial_peers);
  const double elapsed = run_once(script, runtime);
  if (!trace_path.empty()) {
    std::cout << (trace.write(trace_path) ? "trace written to "
                                          : "[WARN] could not write ")
              << trace_path << " (" << trace.events() << " events, "
              << trace.spans() << " spans)\n";
  }

  const auto& metrics = runtime.metrics();
  bmp::util::Table t({"metric", "value"});
  t.add_row({"events/sec",
             bmp::util::Table::num(
                 static_cast<double>(script.events.size()) / elapsed, 0)});
  t.add_row({"channels admitted",
             bmp::util::Table::num(metrics.counter("broker.admitted"))});
  t.add_row({"admissions rejected",
             bmp::util::Table::num(metrics.counter("broker.rejected"))});
  t.add_row({"repairs incremental",
             bmp::util::Table::num(metrics.counter("repairs.incremental"))});
  t.add_row({"repairs full",
             bmp::util::Table::num(metrics.counter("repairs.full"))});
  t.add_row({"join replans",
             bmp::util::Table::num(metrics.counter("replans.join"))});
  t.add_row({"renegotiations",
             bmp::util::Table::num(metrics.counter("broker.renegotiated"))});
  if (const auto* latency = metrics.histogram("timing.event_loop_us")) {
    t.add_row({"event latency p50 us",
               bmp::util::Table::num(latency->quantile(0.5), 1)});
    t.add_row({"event latency p99 us",
               bmp::util::Table::num(latency->quantile(0.99), 1)});
  }
  if (const auto* vlat = metrics.histogram("timing.verify.us")) {
    t.add_row({"verify p50 us", bmp::util::Table::num(vlat->quantile(0.5), 1)});
  }
  t.add_row({"verify tier-1 sweeps",
             bmp::util::Table::num(metrics.counter("verify.tier_sweep"))});
  t.add_row({"verify tier-2 maxflow",
             bmp::util::Table::num(metrics.counter("verify.tier_maxflow"))});
  t.print(std::cout);
  t.maybe_write_csv("runtime");

  bool ok = true;

  // Shared-capacity invariant.
  const auto violations = runtime.validate();
  for (const auto& violation : violations) {
    std::cout << "[WARN] " << violation << "\n";
  }
  ok = ok && violations.empty();
  std::cout << (violations.empty() ? "[OK] " : "[WARN] ")
            << "summed per-channel allocations within every node budget\n";

  // Churn absorption bar.
  int below_bar = 0;
  for (const auto& report : runtime.churn_log()) {
    if (report.design_rate > 0.0 &&
        report.achieved_rate < 0.85 * report.design_rate - 1e-9) {
      ++below_bar;
    }
  }
  ok = ok && below_bar == 0;
  std::cout << (below_bar == 0 ? "[OK] " : "[WARN] ")
            << runtime.churn_log().size() << " churn reports, " << below_bar
            << " below 0.85x design rate\n";

  // Replay determinism: same seed, fresh runtime, identical snapshot.
  bmp::runtime::RuntimeConfig replay_config = config;
  replay_config.collect_timing = false;
  replay_config.profiler = nullptr;  // attribution covers the measured run
  bmp::runtime::Runtime replay(replay_config, script.source_bandwidth,
                               script.initial_peers);
  replay.run(script.events);
  const bool deterministic =
      replay.metrics().snapshot().to_string(false) ==
      metrics.snapshot().to_string(/*include_timing=*/false);
  ok = ok && deterministic;
  std::cout << (deterministic ? "[OK] " : "[WARN] ")
            << "replay reproduced the metrics snapshot byte-for-byte\n";

  if (!json_path.empty()) {
    bmp::benchutil::JsonReport json;
    bmp::benchutil::add_header(json, "runtime");
    json.add("peers", peers);
    json.add("events", static_cast<std::uint64_t>(script.events.size()));
    json.add("elapsed_s", elapsed);
    json.add("events_per_sec",
             static_cast<double>(script.events.size()) / elapsed);
    json.add("repairs_incremental", metrics.counter("repairs.incremental"));
    json.add("repairs_full", metrics.counter("repairs.full"));
    json.add("verify_calls", metrics.counter("verify.calls"));
    json.add("verify_tier_sweep", metrics.counter("verify.tier_sweep"));
    json.add("verify_tier_maxflow", metrics.counter("verify.tier_maxflow"));
    if (const auto* latency = metrics.histogram("timing.event_loop_us")) {
      json.add("event_latency_p50_us", latency->quantile(0.5));
      json.add("event_latency_p99_us", latency->quantile(0.99));
    }
    if (const auto* vlat = metrics.histogram("timing.verify.us")) {
      json.add("verify_p50_us", vlat->quantile(0.5));
      json.add("verify_p99_us", vlat->quantile(0.99));
    }
    json.add_string("status", ok ? "ok" : "warn");
    bmp::benchutil::add_profile(json, cli.prof);
    // The final metrics snapshot rides along whole, so a BENCH artifact is
    // self-describing without a re-run (timing.* excluded: not replayable).
    json.add_raw("metrics",
                 bmp::obs::to_json(metrics.snapshot(), /*include_timing=*/false));
    if (json.write(json_path)) {
      std::cout << "json written to " << json_path << "\n";
    } else {
      std::cout << "[WARN] could not write " << json_path << "\n";
      ok = false;
    }
  }
  if (!cli.metrics.empty()) {
    std::ofstream out(cli.metrics);
    out << bmp::obs::to_prometheus(metrics.snapshot());
    ok = static_cast<bool>(out) && ok;
  }
  ok = cli.write_profile() && ok;
  return ok ? 0 : 1;
}
