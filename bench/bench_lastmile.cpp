// E14 — LastMile estimation accuracy (the Bedibe substitute of §II.C):
// synthetic measurement matrices M = min(out_i, in_j) * lognormal noise,
// across noise levels and platform sizes. Reports parameter recovery error
// and the end-to-end impact: the throughput computed on the *estimated*
// instance vs. the ground-truth instance.
#include <cmath>
#include <iostream>

#include "bmp/core/acyclic_search.hpp"
#include "bmp/core/instance.hpp"
#include "bmp/gen/distributions.hpp"
#include "bmp/lastmile/estimator.hpp"
#include "bmp/util/stats.hpp"
#include "bmp/util/table.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  bmp::benchutil::CommonCli cli(argc, argv);
  const bmp::obs::PhaseScope bench_scope(cli.profiler(), "bench/lastmile");
  using bmp::util::Table;
  const int reps = bmp::benchutil::env_int("BMP_LASTMILE_REPS", 30);

  bmp::util::print_banner(
      std::cout, "LastMile (b_out, b_in) recovery from pairwise measurements");

  Table t({"N", "noise sigma", "median |err|/b_out", "fit RMSE",
           "throughput err", "iters"});
  bool ok = true;
  bmp::util::Xoshiro256 rng(0x1A57);
  for (const int N : {10, 30, 60}) {
    for (const double sigma : {0.0, 0.02, 0.05, 0.10}) {
      bmp::util::RunningStats param_err;
      bmp::util::RunningStats fit_rmse;
      bmp::util::RunningStats thr_err;
      bmp::util::RunningStats iters;
      for (int rep = 0; rep < reps; ++rep) {
        std::vector<double> out(static_cast<std::size_t>(N));
        std::vector<double> in(static_cast<std::size_t>(N));
        for (auto& b : out) b = bmp::gen::sample(bmp::gen::Dist::kPlanetLab, rng);
        // Downloads generously provisioned (the paper's LastMile premise is
        // that uplinks bind): identifiable regime.
        for (std::size_t i = 0; i < in.size(); ++i) {
          in[i] = 3.0 * *std::max_element(out.begin(), out.end());
        }
        const bmp::lastmile::Matrix m =
            bmp::lastmile::synthesize_matrix(out, in, sigma, rng);
        const bmp::lastmile::Estimate est = bmp::lastmile::fit(m);
        for (std::size_t i = 0; i < out.size(); ++i) {
          param_err.add(std::abs(est.out_bw[i] - out[i]) / out[i]);
        }
        fit_rmse.add(est.rmse);
        iters.add(est.iterations);

        const auto instance_of = [](const std::vector<double>& bw) {
          const std::vector<double> open(bw.begin() + 1, bw.end());
          return bmp::Instance(bw[0], open, {});
        };
        const double truth =
            bmp::optimal_acyclic_throughput(instance_of(out));
        const double recovered =
            bmp::optimal_acyclic_throughput(instance_of(est.out_bw));
        thr_err.add(std::abs(recovered - truth) / truth);
      }
      t.add_row({Table::num(N), Table::num(sigma, 2),
                 Table::num(param_err.mean(), 4), Table::num(fit_rmse.mean(), 4),
                 Table::num(thr_err.mean(), 4), Table::num(iters.mean(), 1)});
      if (sigma == 0.0 && param_err.mean() > 1e-6) ok = false;
      if (sigma <= 0.05 && thr_err.mean() > 0.1) ok = false;
    }
  }
  t.print(std::cout);
  t.maybe_write_csv("lastmile");
  std::cout << (ok ? "[OK] noiseless recovery exact; <=10% throughput error "
                     "up to 5% measurement noise\n"
                   : "[WARN] estimation accuracy below expectation\n");
  return bmp::benchutil::finish(cli, "lastmile", ok);
}
