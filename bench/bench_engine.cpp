// Planning-engine bench: plans/sec on a heavy request stream, cold vs.
// warm cache and 1..N worker threads, plus churn-session recovery. The
// headline numbers the subsystem exists for:
//   * warm-cache batch planning must beat cold single-threaded planning by
//     >= 5x on a 1000-request stream of ~100-node platforms;
//   * churn sessions must recover >= 90% of the design rate by incremental
//     repair (no full re-plan) on small departures.
// Observability CLI (benchutil::CommonCli): --json report, --profile work
// attribution of the max-thread warm batch (counters are thread-count
// independent, so the profile is comparable across machines).
#include <algorithm>
#include <chrono>
#include <iostream>
#include <vector>

#include "bmp/core/bounds.hpp"
#include "bmp/engine/plan_cache.hpp"
#include "bmp/engine/planner.hpp"
#include "bmp/engine/session.hpp"
#include "bmp/gen/generator.hpp"
#include "bmp/util/rng.hpp"
#include "bmp/util/stats.hpp"
#include "bmp/util/table.hpp"
#include "bench_util.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bmp::benchutil::CommonCli cli(argc, argv);
  using bmp::util::Table;
  const int requests = bmp::benchutil::env_int("BMP_ENGINE_REQUESTS", 1000);
  const int size = bmp::benchutil::env_int("BMP_ENGINE_SIZE", 100);
  const int distinct = bmp::benchutil::env_int("BMP_ENGINE_DISTINCT", 50);
  const int max_threads = bmp::benchutil::env_int("BMP_ENGINE_THREADS", 8);

  bmp::util::print_banner(std::cout,
                          "Planning engine — plans/sec, cold vs. warm cache");
  std::cout << requests << " requests over " << distinct
            << " distinct platforms, " << size << " peers each\n\n";

  // The request stream: `distinct` base platforms, revisited round-robin —
  // the shape of a deployment where the same overlays are re-requested as
  // viewers join.
  bmp::util::Xoshiro256 rng(97);
  std::vector<bmp::engine::PlanRequest> stream;
  stream.reserve(static_cast<std::size_t>(requests));
  {
    std::vector<bmp::Instance> bases;
    for (int k = 0; k < distinct; ++k) {
      bases.push_back(
          bmp::gen::random_instance({size, 0.5, bmp::gen::Dist::kUnif100}, rng));
    }
    for (int r = 0; r < requests; ++r) {
      stream.push_back(bmp::engine::PlanRequest{
          bases[static_cast<std::size_t>(r % distinct)],
          bmp::engine::Algorithm::kAcyclic, 0});
    }
  }

  // Baseline: cold, single-threaded, no cache — every request pays for a
  // full plan, the way the library worked before the engine existed.
  const auto cold_start = std::chrono::steady_clock::now();
  double checksum_cold = 0.0;
  for (const auto& request : stream) {
    checksum_cold += bmp::engine::Planner::plan_uncached(request).throughput;
  }
  const double cold_s = seconds_since(cold_start);
  std::cout << "cold 1-thread uncached: " << cold_s << " s  ("
            << static_cast<double>(requests) / cold_s << " plans/s)\n\n";

  Table t({"threads", "cold batch s", "warm batch s", "plans/s warm",
           "speedup vs cold-1t"});
  double best_warm = 0.0;
  double warm_plans_per_s = 0.0;
  for (int threads = 1; threads <= max_threads; threads *= 2) {
    bmp::engine::PlannerConfig config;
    config.threads = static_cast<std::size_t>(threads);
    // Attribute the widest configuration only, so the profile reflects one
    // run rather than summing the thread ladder.
    if (threads * 2 > max_threads) config.profiler = cli.profiler();
    bmp::engine::Planner planner(config);

    const auto cold_batch_start = std::chrono::steady_clock::now();
    auto responses = planner.plan_batch(stream);
    const double cold_batch_s = seconds_since(cold_batch_start);

    const auto warm_start = std::chrono::steady_clock::now();
    responses = planner.plan_batch(stream);
    const double warm_s = seconds_since(warm_start);

    double checksum = 0.0;
    for (const auto& response : responses) checksum += response.throughput;
    if (checksum < 0.999 * checksum_cold || checksum > 1.001 * checksum_cold) {
      std::cout << "[WARN] cached batch diverged from uncached planning\n";
    }

    const double speedup = cold_s / warm_s;
    best_warm = std::max(best_warm, speedup);
    warm_plans_per_s =
        std::max(warm_plans_per_s, static_cast<double>(requests) / warm_s);
    t.add_row({Table::num(threads), Table::num(cold_batch_s, 3),
               Table::num(warm_s, 4),
               Table::num(static_cast<double>(requests) / warm_s, 0),
               Table::num(speedup, 1)});
  }
  t.print(std::cout);
  t.maybe_write_csv("engine");

  bool ok = best_warm >= 5.0;
  std::cout << (ok ? "[OK] " : "[WARN] ") << "warm-cache batch planning is "
            << best_warm << "x cold single-threaded planning (need >= 5)\n\n";

  // Churn sessions: small departures (2% of peers per wave) must be
  // absorbed by incremental repair at >= 90% of the design rate.
  bmp::util::print_banner(std::cout, "Churn sessions — incremental repair");
  const int session_reps = bmp::benchutil::env_int("BMP_ENGINE_SESSIONS", 10);
  bmp::engine::Planner session_planner;
  bmp::util::RunningStats recovery;
  int incremental = 0;
  int full = 0;
  bmp::util::Xoshiro256 churn_rng(1234);
  for (int rep = 0; rep < session_reps; ++rep) {
    const bmp::Instance platform = bmp::gen::random_instance(
        {size, 0.5, bmp::gen::Dist::kUnif100}, churn_rng);
    bmp::engine::Session session(session_planner, platform);
    if (session.design_rate() <= 0.0) continue;
    for (int wave = 0; wave < 3; ++wave) {
      const int peers = session.instance().size() - 1;
      if (peers < 10) break;
      std::vector<int> departed;
      for (int k = 0; k < std::max(1, peers / 50); ++k) {
        const int id = 1 + static_cast<int>(churn_rng.below(
                               static_cast<std::size_t>(peers)));
        if (std::find(departed.begin(), departed.end(), id) == departed.end()) {
          departed.push_back(id);
        }
      }
      const bmp::engine::ChurnOutcome outcome = session.on_departure(departed);
      if (outcome.full_replan) {
        ++full;
      } else {
        ++incremental;
        recovery.add(outcome.achieved_rate / outcome.design_rate);
      }
    }
  }
  std::cout << incremental << " incremental / " << full << " full replans; "
            << "incremental recovery mean "
            << (recovery.count() > 0 ? recovery.mean() : 0.0) << " min "
            << (recovery.count() > 0 ? recovery.min() : 0.0)
            << " of design rate\n";
  const bool churn_ok =
      incremental > 0 && recovery.count() > 0 && recovery.min() >= 0.9 - 1e-6;
  ok = ok && churn_ok;
  std::cout << (churn_ok
                    ? "[OK] small departures absorbed incrementally at >= 90%\n"
                    : "[WARN] incremental repair under-recovered\n");

  if (!cli.json.empty()) {
    bmp::benchutil::JsonReport json;
    bmp::benchutil::add_header(json, "engine");
    json.add("requests", requests);
    json.add("distinct", distinct);
    json.add("cold_seconds", cold_s);
    json.add("cold_plans_per_s", static_cast<double>(requests) / cold_s);
    json.add("warm_plans_per_s", warm_plans_per_s);
    json.add("warm_speedup_vs_cold", best_warm);
    json.add("churn_incremental", incremental);
    json.add("churn_full", full);
    json.add("churn_recovery_min",
             recovery.count() > 0 ? recovery.min() : 0.0);
    json.add_string("status", ok ? "ok" : "warn");
    bmp::benchutil::add_profile(json, cli.prof);
    if (json.write(cli.json)) {
      std::cout << "json written to " << cli.json << "\n";
    } else {
      std::cout << "[WARN] could not write " << cli.json << "\n";
      ok = false;
    }
  }
  ok = cli.write_profile() && ok;
  return ok ? 0 : 1;
}
