// E5 — Theorem 6.3: for I(alpha, k) instances (kq opens at alpha = p/q,
// kp guardeds at 1/alpha) with alpha near alpha* = (sqrt(41)-3)/8, the
// acyclic/cyclic ratio stays bounded away from 1 as the instance grows,
// approaching (1+sqrt(41))/8 ~ 0.9254. We scale k and also sweep alpha to
// show the valley sits at alpha*.
#include <iostream>

#include "bmp/core/acyclic_search.hpp"
#include "bmp/core/bounds.hpp"
#include "bmp/theory/instances.hpp"
#include "bmp/util/table.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  bmp::benchutil::CommonCli cli(argc, argv);
  const bmp::obs::PhaseScope bench_scope(cli.profiler(), "bench/thm63_asymptotic");
  using bmp::util::Table;
  const int max_k = bmp::benchutil::env_int("BMP_THM63_MAXK", 16);

  bmp::util::print_banner(
      std::cout,
      "Theorem 6.3 — asymptotic acyclic/cyclic gap at alpha* = (sqrt41-3)/8");
  std::cout << "alpha* = " << Table::num(bmp::theory::thm63_alpha(), 6)
            << ", limit ratio (1+sqrt41)/8 = "
            << Table::num(bmp::theory::thm63_limit_ratio(), 6) << "\n";

  {
    Table t({"k", "n=47k", "m=20k", "T*", "T*_ac", "ratio", "limit"});
    for (int k = 1; k <= max_k; k *= 2) {
      const bmp::Instance inst = bmp::theory::thm63_instance(k);
      const double t_star = bmp::cyclic_upper_bound(inst);
      const double t_ac = bmp::optimal_acyclic_throughput(inst);
      t.add_row({Table::num(k), Table::num(inst.n()), Table::num(inst.m()),
                 Table::num(t_star, 4), Table::num(t_ac, 5),
                 Table::num(t_ac / t_star, 5),
                 Table::num(bmp::theory::thm63_limit_ratio(), 5)});
    }
    t.print(std::cout);
    t.maybe_write_csv("thm63_scaling");
  }

  bmp::util::print_banner(std::cout,
                          "alpha sweep at k*q ~ 470 opens (valley at alpha*)");
  double valley_ratio = 1.0;
  double valley_alpha = 0.0;
  {
    Table t({"alpha=p/q", "alpha", "ratio"});
    const std::pair<int, int> fractions[] = {{1, 4},  {3, 10}, {7, 20}, {2, 5},
                                             {20, 47}, {9, 20}, {1, 2},  {3, 5}};
    for (const auto& [p, q] : fractions) {
      const int k = std::max(1, 470 / q);
      const bmp::Instance inst = bmp::theory::thm63_instance(k, p, q);
      const double ratio = bmp::optimal_acyclic_throughput(inst) /
                           bmp::cyclic_upper_bound(inst);
      if (ratio < valley_ratio) {
        valley_ratio = ratio;
        valley_alpha = static_cast<double>(p) / q;
      }
      t.add_row({std::to_string(p) + "/" + std::to_string(q),
                 Table::num(static_cast<double>(p) / q, 4), Table::num(ratio, 5)});
    }
    t.print(std::cout);
  }
  std::cout << "valley: ratio " << Table::num(valley_ratio, 5) << " at alpha = "
            << Table::num(valley_alpha, 4) << " (alpha* = "
            << Table::num(bmp::theory::thm63_alpha(), 4) << ")\n";

  const bmp::Instance big = bmp::theory::thm63_instance(max_k);
  const double big_ratio =
      bmp::optimal_acyclic_throughput(big) / bmp::cyclic_upper_bound(big);
  const bool ok = big_ratio < 0.94 && big_ratio > 0.90 &&
                  std::abs(valley_alpha - bmp::theory::thm63_alpha()) < 0.06;
  std::cout << (ok ? "[OK] ratio converges to ~0.925 and the valley sits at alpha*\n"
                   : "[WARN] deviates from Theorem 6.3\n");
  return bmp::benchutil::finish(cli, "thm63_asymptotic", ok);
}
