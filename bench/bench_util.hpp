// Shared helpers for the experiment binaries.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace bmp::benchutil {

/// Integer env override with default (e.g. BMP_FIG19_REPS).
inline int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

/// Commit id for stamping JSON perf reports, so BENCH_*.json artifacts
/// line up into a trajectory across commits: GITHUB_SHA when CI provides
/// it, `git rev-parse HEAD` for local runs, "unknown" outside a checkout.
inline std::string git_sha() {
  if (const char* env = std::getenv("GITHUB_SHA");
      env != nullptr && *env != '\0') {
    return env;
  }
  std::string sha;
  if (FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buffer[128];
    if (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) sha = buffer;
    ::pclose(pipe);
  }
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
    sha.pop_back();
  }
  return sha.empty() ? "unknown" : sha;
}

/// Machine-readable bench output: a flat JSON object written next to the
/// human table so CI can archive one BENCH_<name>.json per run and chart
/// the perf trajectory across commits. Insertion order is preserved.
class JsonReport {
 public:
  void add(const std::string& key, double value) {
    // inf/nan are not JSON tokens; a degenerate measurement must not make
    // the whole artifact unparseable.
    if (!std::isfinite(value)) {
      fields_.emplace_back(key, "null");
      return;
    }
    std::ostringstream os;
    os.precision(17);
    os << value;
    fields_.emplace_back(key, os.str());
  }
  void add(const std::string& key, std::uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void add(const std::string& key, int value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void add_string(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + escaped(value) + "\"");
  }
  /// Embeds an already-serialized JSON value verbatim (e.g. the final
  /// obs::to_json metrics snapshot) — the caller vouches for validity.
  void add_raw(const std::string& key, const std::string& json) {
    fields_.emplace_back(key, json);
  }

  [[nodiscard]] std::string to_string() const {
    std::string out = "{\n";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      out += "  \"" + escaped(fields_[i].first) + "\": " + fields_[i].second;
      if (i + 1 < fields_.size()) out += ",";
      out += "\n";
    }
    out += "}\n";
    return out;
  }

  /// Writes the report; returns false (and prints nothing) on IO failure.
  bool write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << to_string();
    return static_cast<bool>(out);
  }

 private:
  static std::string escaped(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Parses `--<name> <value>` from argv; empty string when absent.
inline std::string arg_value(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return {};
}

/// Parses `--json <path>` from argv; empty string when absent.
inline std::string json_path_arg(int argc, char** argv) {
  return arg_value(argc, argv, "--json");
}

/// Parses `--trace <path>` from argv; empty string when absent.
inline std::string trace_path_arg(int argc, char** argv) {
  return arg_value(argc, argv, "--trace");
}

/// True when `flag` (e.g. "--quick") appears in argv.
inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

}  // namespace bmp::benchutil
