// Shared helpers for the experiment binaries.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bmp/obs/profiler.hpp"

namespace bmp::benchutil {

/// BENCH_*.json schema version. tools/bench_diff refuses to compare
/// reports across schema versions, so bump this whenever a field changes
/// meaning (adding fields is backward-compatible — the comparator walks
/// the intersection).
inline constexpr int kBenchSchema = 2;

/// Integer env override with default (e.g. BMP_FIG19_REPS).
inline int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

/// Commit id for stamping JSON perf reports, so BENCH_*.json artifacts
/// line up into a trajectory across commits: GITHUB_SHA when CI provides
/// it, `git rev-parse HEAD` for local runs, "unknown" outside a checkout.
inline std::string git_sha() {
  if (const char* env = std::getenv("GITHUB_SHA");
      env != nullptr && *env != '\0') {
    return env;
  }
  std::string sha;
  if (FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buffer[128];
    if (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) sha = buffer;
    ::pclose(pipe);
  }
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
    sha.pop_back();
  }
  return sha.empty() ? "unknown" : sha;
}

/// Machine-readable bench output: a flat JSON object written next to the
/// human table so CI can archive one BENCH_<name>.json per run and chart
/// the perf trajectory across commits. Insertion order is preserved.
class JsonReport {
 public:
  void add(const std::string& key, double value) {
    // inf/nan are not JSON tokens; a degenerate measurement must not make
    // the whole artifact unparseable.
    if (!std::isfinite(value)) {
      fields_.emplace_back(key, "null");
      return;
    }
    std::ostringstream os;
    os.precision(17);
    os << value;
    fields_.emplace_back(key, os.str());
  }
  void add(const std::string& key, std::uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void add(const std::string& key, int value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void add_string(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + escaped(value) + "\"");
  }
  /// Embeds an already-serialized JSON value verbatim (e.g. the final
  /// obs::to_json metrics snapshot) — the caller vouches for validity.
  void add_raw(const std::string& key, const std::string& json) {
    fields_.emplace_back(key, json);
  }

  [[nodiscard]] std::string to_string() const {
    std::string out = "{\n";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      out += "  \"" + escaped(fields_[i].first) + "\": " + fields_[i].second;
      if (i + 1 < fields_.size()) out += ",";
      out += "\n";
    }
    out += "}\n";
    return out;
  }

  /// Writes the report; returns false (and prints nothing) on IO failure.
  bool write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << to_string();
    return static_cast<bool>(out);
  }

 private:
  static std::string escaped(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Stamps a report with the trajectory header every BENCH_*.json carries:
/// schema version, bench name, commit, and the machine fields bench_diff
/// uses to warn when two reports came from different hardware or build
/// flavors. Call first so the header leads the artifact.
inline void add_header(JsonReport& report, const std::string& bench_name) {
  report.add("schema", kBenchSchema);
  report.add_string("bench", bench_name);
  report.add_string("git_sha", git_sha());
  report.add("machine_cores",
             static_cast<int>(std::thread::hardware_concurrency()));
#if defined(NDEBUG)
  report.add_string("build_type", "release");
#else
  report.add_string("build_type", "debug");
#endif
#if defined(__VERSION__)
  report.add_string("compiler", __VERSION__);
#else
  report.add_string("compiler", "unknown");
#endif
}

/// Embeds the profiler's flat per-phase summary under "profile" — the
/// deterministic counters bench_diff gates exactly (never wall time).
inline void add_profile(JsonReport& report, const obs::Profiler& profiler) {
  if (!profiler.empty()) report.add_raw("profile", profiler.summary_json());
}

/// Parses `--<name> <value>` from argv; empty string when absent.
inline std::string arg_value(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return {};
}

/// Parses `--json <path>` from argv; empty string when absent.
inline std::string json_path_arg(int argc, char** argv) {
  return arg_value(argc, argv, "--json");
}

/// Parses `--trace <path>` from argv; empty string when absent.
inline std::string trace_path_arg(int argc, char** argv) {
  return arg_value(argc, argv, "--trace");
}

/// True when `flag` (e.g. "--quick") appears in argv.
inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// The observability CLI every bench/example binary shares:
///   --quick            reduced problem sizes (bench-specific meaning)
///   --json <path>      machine-readable BENCH_*.json report
///   --trace <path>     Perfetto/Chrome trace of the run
///   --profile <path>   attribution profile: JSON report at <path>, a
///                      flamegraph-ready collapsed stack beside it, and a
///                      top-N table on stdout
///   --metrics <path>   final metrics snapshot in Prometheus exposition
///                      format (binaries with a metrics registry)
///   --lineage <path>   per-chunk delivery lineage dump plus the
///                      critical-path blame table ("<path>.blame.json";
///                      binaries that thread an obs::LineageSink)
///   --profile-wall     also record wall time per phase (off by default so
///                      --profile artifacts stay byte-identical per build)
/// Binaries parse once up front and thread `cli.profiler()` into their
/// configs; a null return keeps every hook on its disabled branch.
struct CommonCli {
  bool quick = false;
  std::string json;
  std::string trace;
  std::string profile;
  std::string metrics;
  std::string lineage;
  obs::Profiler prof;

  // The profiler member makes this non-copyable; parse in place.
  CommonCli(int argc, char** argv)
      : quick(has_flag(argc, argv, "--quick")),
        json(arg_value(argc, argv, "--json")),
        trace(arg_value(argc, argv, "--trace")),
        profile(arg_value(argc, argv, "--profile")),
        metrics(arg_value(argc, argv, "--metrics")),
        lineage(arg_value(argc, argv, "--lineage")),
        prof(obs::ProfilerConfig{has_flag(argc, argv, "--profile-wall")}) {}

  /// The profiler to thread into configs; null when --profile is absent so
  /// disabled runs pay nothing but the null checks.
  [[nodiscard]] obs::Profiler* profiler() {
    return profile.empty() ? nullptr : &prof;
  }

  /// Writes the --profile artifacts (JSON + "<path>.collapsed") and prints
  /// the attribution table. No-op without --profile. Returns false on IO
  /// failure.
  bool write_profile() {
    if (profile.empty()) return true;
    bool ok = prof.write_json(profile);
    ok = prof.write_collapsed(collapsed_path()) && ok;
    std::cout << prof.attribution_table();
    if (!ok) std::cerr << "failed to write profile to " << profile << "\n";
    return ok;
  }

  /// "<profile>.collapsed", with a ".json" suffix swapped out first.
  [[nodiscard]] std::string collapsed_path() const {
    std::string base = profile;
    const std::string suffix = ".json";
    if (base.size() > suffix.size() &&
        base.compare(base.size() - suffix.size(), suffix.size(), suffix) == 0) {
      base.resize(base.size() - suffix.size());
    }
    return base + ".collapsed";
  }
};

/// Wrap-up for binaries without a bespoke report: writes the minimal
/// BENCH_*.json (header + status + profile) when --json was given, emits
/// the --profile artifacts, and folds IO failures into the exit code.
inline int finish(CommonCli& cli, const std::string& name, bool ok) {
  if (!cli.json.empty()) {
    JsonReport json;
    add_header(json, name);
    json.add_string("status", ok ? "ok" : "warn");
    add_profile(json, cli.prof);
    if (json.write(cli.json)) {
      std::cout << "json written to " << cli.json << "\n";
    } else {
      std::cout << "[WARN] could not write " << cli.json << "\n";
      ok = false;
    }
  }
  if (!cli.write_profile()) ok = false;
  return ok ? 0 : 1;
}

/// CI regression-gate self-test hook: sleeps BMP_PERF_SELFTEST_SLEEP_US
/// microseconds (default none) inside one bench phase, so the perf-gate
/// job can inject a deliberate slowdown and assert that tools/bench_diff
/// catches it. Never set outside that self-test.
inline void selftest_sleep() {
  static const int us = env_int("BMP_PERF_SELFTEST_SLEEP_US", 0);
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace bmp::benchutil
