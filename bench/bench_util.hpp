// Shared helpers for the experiment binaries.
#pragma once

#include <cstdlib>
#include <string>

namespace bmp::benchutil {

/// Integer env override with default (e.g. BMP_FIG19_REPS).
inline int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

}  // namespace bmp::benchutil
