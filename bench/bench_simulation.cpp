// E13 — End-to-end operational check of the paper's positioning (§II.C):
// the overlays produced by our algorithms satisfy the preconditions of
// Massoulié's randomized broadcasting theorem, so random useful-piece
// forwarding on them should sustain stream rates close to the design
// throughput T. We stream at 80/90/95% of T over acyclic (guarded) and
// cyclic (open) overlays and report the delivered rates; the paper's claim
// is "theoretical results which can indeed be achieved in practice".
#include <iostream>

#include "bmp/core/acyclic_search.hpp"
#include "bmp/core/bounds.hpp"
#include "bmp/core/cyclic_open.hpp"
#include "bmp/gen/generator.hpp"
#include "bmp/sim/massoulie.hpp"
#include "bmp/trees/arborescence.hpp"
#include "bmp/util/table.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  bmp::benchutil::CommonCli cli(argc, argv);
  const bmp::obs::PhaseScope bench_scope(cli.profiler(), "bench/simulation");
  using bmp::util::Table;
  const int size = bmp::benchutil::env_int("BMP_SIM_SIZE", 24);
  const double duration = bmp::benchutil::env_int("BMP_SIM_DURATION", 400);

  bmp::util::print_banner(
      std::cout,
      "Randomized useful-piece streaming on the constructed overlays");

  bool ok = true;
  Table t({"overlay", "design T", "stream rate", "min node rate", "mean rate",
           "efficiency", "duplicates"});
  bmp::util::Xoshiro256 rng(0x51A);

  const auto run = [&](const std::string& name, const bmp::BroadcastScheme& s,
                       double T, double load) {
    const double rate = load * T;
    const bmp::sim::SimResult r = bmp::sim::simulate_random_useful(
        s, {rate, duration, duration / 4.0, 0xCAFE, true});
    const double efficiency = r.min_rate / rate;
    t.add_row({name + " @" + Table::num(load, 2), Table::num(T, 3),
               Table::num(rate, 3), Table::num(r.min_rate, 3),
               Table::num(r.mean_rate, 3), Table::num(efficiency, 3),
               Table::num(r.duplicates)});
    if (load <= 0.8 && efficiency < 0.85) ok = false;
  };

  // Acyclic overlay with guarded nodes (normalized rates).
  {
    bmp::Instance raw =
        bmp::gen::random_instance({size, 0.6, bmp::gen::Dist::kUnif100}, rng);
    std::vector<double> open;
    std::vector<double> guarded;
    const double scale = bmp::cyclic_upper_bound(raw);
    for (int i = 1; i <= raw.n(); ++i) open.push_back(raw.b(i) / scale);
    for (int i = raw.n() + 1; i < raw.size(); ++i) {
      guarded.push_back(raw.b(i) / scale);
    }
    const bmp::Instance inst(raw.b(0) / scale, open, guarded);
    const bmp::AcyclicSolution sol = bmp::solve_acyclic(inst);
    for (const double load : {0.8, 0.9, 0.95}) {
      run("acyclic guarded", sol.scheme, sol.throughput, load);
    }
    // Also demonstrate the §II.C tree decomposition of the same overlay.
    const auto decomposition =
        bmp::trees::decompose_acyclic(sol.scheme, sol.throughput);
    std::cout << "tree decomposition of the acyclic overlay: "
              << decomposition.trees.size() << " weighted broadcast trees, "
              << "total weight " << Table::num(decomposition.total_weight, 4)
              << " = T\n";
  }

  // Cyclic overlay, open nodes only.
  {
    bmp::Instance raw =
        bmp::gen::random_instance({size, 1.0, bmp::gen::Dist::kUnif100}, rng);
    std::vector<double> open;
    const double scale = bmp::cyclic_open_optimal(raw);
    for (int i = 1; i <= raw.n(); ++i) open.push_back(raw.b(i) / scale);
    const bmp::Instance inst(raw.b(0) / scale, open, {});
    const double T = bmp::cyclic_open_optimal(inst);
    const bmp::BroadcastScheme s = bmp::build_cyclic_open(inst, T);
    for (const double load : {0.8, 0.9, 0.95}) {
      run("cyclic open", s, T, load);
    }
  }

  t.print(std::cout);
  t.maybe_write_csv("simulation");
  std::cout << (ok ? "[OK] overlays sustain >=85% of the offered rate at 80% load\n"
                   : "[WARN] streaming efficiency below expectation\n");
  return bmp::benchutil::finish(cli, "simulation", ok);
}
