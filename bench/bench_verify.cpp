// Verification fast-path bench — the acceptance numbers for the tiered
// verifier (flow/verify.hpp):
//   * tier 1: scheme_throughput on a large acyclic overlay (the word
//     schedule's output) vs the Dinic-per-sink oracle — must be >= 10x;
//   * tier 2: warm, limit-bounded sink sweep on a cyclic overlay vs the
//     same oracle, serial and ThreadPool-parallel;
//   * node-caps probe: minimal_uniform_download_cap's 50-probe bisection
//     through the reusable split graph.
// `--quick` shrinks sizes for CI smoke; `--json <path>` writes the numbers
// as one flat JSON object for the perf-trajectory artifact.
#include <chrono>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bmp/core/acyclic_search.hpp"
#include "bmp/core/bounds.hpp"
#include "bmp/core/cyclic_open.hpp"
#include "bmp/flow/maxflow.hpp"
#include "bmp/flow/node_caps.hpp"
#include "bmp/flow/verify.hpp"
#include "bmp/util/rng.hpp"
#include "bmp/util/table.hpp"
#include "bmp/util/thread_pool.hpp"
#include "bench_util.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

bmp::Instance random_instance(bmp::util::Xoshiro256& rng, int opens,
                              int guardeds) {
  std::vector<double> open(static_cast<std::size_t>(opens));
  std::vector<double> guarded(static_cast<std::size_t>(guardeds));
  for (auto& b : open) b = rng.uniform(1.0, 10.0);
  for (auto& b : guarded) b = rng.uniform(1.0, 10.0);
  return bmp::Instance(rng.uniform(5.0, 10.0), std::move(open),
                       std::move(guarded));
}

/// Wall time of `reps` runs of `fn` (called once extra to warm up).
template <typename Fn>
double time_reps(int reps, Fn&& fn) {
  fn();
  const auto start = Clock::now();
  for (int r = 0; r < reps; ++r) fn();
  return seconds_since(start) / reps;
}

}  // namespace

int main(int argc, char** argv) {
  bmp::benchutil::CommonCli cli(argc, argv);
  const bool quick =
      cli.quick || bmp::benchutil::env_int("BMP_VERIFY_QUICK", 0) != 0;
  const std::string& json_path = cli.json;
  const int acyclic_peers =
      bmp::benchutil::env_int("BMP_VERIFY_PEERS", quick ? 500 : 2000);
  const int cyclic_peers = quick ? 150 : 500;
  bmp::util::Xoshiro256 rng(20100419);

  bmp::util::print_banner(std::cout, "Throughput verification — tiered fast path");
  std::cout << acyclic_peers << "-node acyclic / " << cyclic_peers
            << "-node cyclic overlays" << (quick ? "  [quick]\n\n" : "\n\n");

  bmp::benchutil::JsonReport json;
  bmp::benchutil::add_header(json, "verify");
  json.add("acyclic_peers", acyclic_peers);
  json.add("cyclic_peers", cyclic_peers);
  bmp::util::Table table({"case", "oracle ms", "fast ms", "speedup", "value"});
  bool ok = true;

  // ------------------------------------------------- tier 1: acyclic sweep
  const bmp::Instance instance =
      random_instance(rng, acyclic_peers * 7 / 10, acyclic_peers * 3 / 10);
  const bmp::AcyclicSolution solution = bmp::solve_acyclic(instance);

  const double oracle_s = time_reps(1, [&] {
    (void)bmp::flow::scheme_throughput_oracle(solution.scheme);
  });
  bmp::flow::VerifyOptions profiled_options;
  profiled_options.profiler = cli.profiler();
  bmp::flow::Verifier verifier(profiled_options);
  const double sweep_s = time_reps(quick ? 50 : 100, [&] {
    (void)verifier.verify(solution.scheme);
  });
  const bmp::flow::VerifyResult acyclic_result = verifier.verify(solution.scheme);
  const double oracle_value = bmp::flow::scheme_throughput_oracle(solution.scheme);
  const double acyclic_speedup = oracle_s / sweep_s;
  table.add_row({"acyclic tier-1 sweep", bmp::util::Table::num(oracle_s * 1e3, 2),
                 bmp::util::Table::num(sweep_s * 1e3, 4),
                 bmp::util::Table::num(acyclic_speedup, 0),
                 bmp::util::Table::num(acyclic_result.throughput, 4)});
  json.add("acyclic_oracle_ms", oracle_s * 1e3);
  json.add("acyclic_sweep_ms", sweep_s * 1e3);
  json.add("acyclic_speedup", acyclic_speedup);

  const bool acyclic_exact =
      std::abs(acyclic_result.throughput - oracle_value) <=
      1e-9 * std::max(1.0, oracle_value);
  const bool acyclic_fast = acyclic_speedup >= 10.0;
  ok = ok && acyclic_exact && acyclic_fast;

  // --------------------------------------------- tier 2: warm Dinic sweep
  std::vector<double> open_bw(static_cast<std::size_t>(cyclic_peers));
  for (auto& b : open_bw) b = rng.uniform(1.0, 10.0);
  const bmp::Instance open_only(rng.uniform(5.0, 10.0), std::move(open_bw), {});
  const double t_star = bmp::cyclic_open_optimal(open_only);
  const bmp::BroadcastScheme cyclic =
      bmp::build_cyclic_open(open_only, t_star);

  const double cyclic_oracle_s = time_reps(1, [&] {
    (void)bmp::flow::scheme_throughput_oracle(cyclic);
  });
  // Strictly serial reference: the parallel auto-pool default is measured
  // separately below, so the serial baseline stays a baseline.
  bmp::flow::VerifyOptions serial_options;
  serial_options.auto_pool = false;
  serial_options.profiler = cli.profiler();
  bmp::flow::Verifier serial_verifier(serial_options);
  const double warm_s = time_reps(quick ? 5 : 10, [&] {
    (void)serial_verifier.verify(cyclic);
  });
  const bmp::flow::VerifyResult cyclic_result = serial_verifier.verify(cyclic);
  const double cyclic_speedup = cyclic_oracle_s / warm_s;
  table.add_row({cyclic.is_acyclic() ? "cyclic (degenerated: acyclic)"
                                     : "cyclic tier-2 warm sweep",
                 bmp::util::Table::num(cyclic_oracle_s * 1e3, 2),
                 bmp::util::Table::num(warm_s * 1e3, 2),
                 bmp::util::Table::num(cyclic_speedup, 1),
                 bmp::util::Table::num(cyclic_result.throughput, 4)});
  json.add("cyclic_oracle_ms", cyclic_oracle_s * 1e3);
  json.add("cyclic_warm_ms", warm_s * 1e3);
  json.add("cyclic_speedup", cyclic_speedup);

  // The shipping default: auto_pool sweeps on the shared verify pool when
  // the host has more than one core. Same throughput; no profiler on this
  // row — whether the chunked sweep engages depends on the host's core
  // count, and the embedded profile must stay machine-independent so the
  // perf gate can diff it exactly against the committed baseline.
  bmp::flow::Verifier default_verifier{bmp::flow::VerifyOptions{}};
  const double default_s = time_reps(quick ? 5 : 10, [&] {
    (void)default_verifier.verify(cyclic);
  });
  table.add_row({"cyclic tier-2 default (auto pool)",
                 bmp::util::Table::num(cyclic_oracle_s * 1e3, 2),
                 bmp::util::Table::num(default_s * 1e3, 2),
                 bmp::util::Table::num(cyclic_oracle_s / default_s, 1),
                 bmp::util::Table::num(
                     default_verifier.verify(cyclic).throughput, 4)});
  json.add("cyclic_default_ms", default_s * 1e3);

  // Explicit 2-thread pool (not hardware-sized): the chunked sweep then
  // engages on any host, and with the fixed chunk split its work counters
  // are byte-identical across machines — baseline-gateable.
  bmp::util::ThreadPool pool(2);
  bmp::flow::VerifyOptions parallel_options;
  parallel_options.pool = &pool;
  parallel_options.parallel_min_sinks = 64;
  parallel_options.profiler = cli.profiler();
  bmp::flow::Verifier parallel_verifier(parallel_options);
  const double parallel_s = time_reps(quick ? 5 : 10, [&] {
    (void)parallel_verifier.verify(cyclic);
  });
  table.add_row({"cyclic tier-2 parallel sweep",
                 bmp::util::Table::num(cyclic_oracle_s * 1e3, 2),
                 bmp::util::Table::num(parallel_s * 1e3, 2),
                 bmp::util::Table::num(cyclic_oracle_s / parallel_s, 1),
                 bmp::util::Table::num(
                     parallel_verifier.verify(cyclic).throughput, 4)});
  json.add("cyclic_parallel_ms", parallel_s * 1e3);
  json.add("pool_threads", static_cast<std::uint64_t>(pool.size()));

  const double cyclic_oracle_value = bmp::flow::scheme_throughput_oracle(cyclic);
  const bool cyclic_exact =
      std::abs(cyclic_result.throughput - cyclic_oracle_value) <=
          1e-9 * std::max(1.0, cyclic_oracle_value) &&
      std::abs(parallel_verifier.verify(cyclic).throughput -
               cyclic_oracle_value) <=
          1e-9 * std::max(1.0, cyclic_oracle_value);
  ok = ok && cyclic_exact;

  // --------------------------------------- node-caps probe (50-probe bisect)
  const double caps_s = time_reps(quick ? 1 : 2, [&] {
    (void)bmp::flow::minimal_uniform_download_cap(solution.scheme,
                                                  solution.throughput);
  });
  table.add_row({"min uniform download cap", "-",
                 bmp::util::Table::num(caps_s * 1e3, 2), "-",
                 bmp::util::Table::num(
                     bmp::flow::minimal_uniform_download_cap(
                         solution.scheme, solution.throughput),
                     4)});
  json.add("download_cap_bisect_ms", caps_s * 1e3);

  table.print(std::cout);
  table.maybe_write_csv("verify");

  std::cout << (acyclic_exact ? "[OK] " : "[WARN] ")
            << "tier-1 sweep matches the Dinic oracle within 1e-9\n";
  std::cout << (acyclic_fast ? "[OK] " : "[WARN] ") << "tier-1 speedup "
            << bmp::util::Table::num(acyclic_speedup, 0) << "x (bar: 10x)\n";
  std::cout << (cyclic_exact ? "[OK] " : "[WARN] ")
            << "tier-2 serial and parallel sweeps match the oracle\n";

  if (!json_path.empty()) {
    json.add_string("status", ok ? "ok" : "warn");
    bmp::benchutil::add_profile(json, cli.prof);
    if (json.write(json_path)) {
      std::cout << "json written to " << json_path << "\n";
    } else {
      std::cout << "[WARN] could not write " << json_path << "\n";
      ok = false;
    }
  }
  ok = cli.write_profile() && ok;
  return ok ? 0 : 1;
}
