// E6 — Figure 6: in the cyclic + guarded case, reaching the optimal
// throughput may require arbitrarily large degrees. On the family
// {b0 = 1, open {m-1}, m guardeds at 1/m} the optimal cyclic throughput is
// T* = 1 but any optimal solution needs source outdegree m, while
// ceil(b0/T*) = 1. Low-degree acyclic solutions must give up throughput.
#include <iostream>

#include "bmp/core/acyclic_search.hpp"
#include "bmp/core/bounds.hpp"
#include "bmp/flow/maxflow.hpp"
#include "bmp/lp/throughput_lp.hpp"
#include "bmp/theory/instances.hpp"
#include "bmp/util/table.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  bmp::benchutil::CommonCli cli(argc, argv);
  const bmp::obs::PhaseScope bench_scope(cli.profiler(), "bench/fig6_degree");
  using bmp::util::Table;
  const int max_m = bmp::benchutil::env_int("BMP_FIG6_MAXM", 64);

  bmp::util::print_banner(
      std::cout,
      "Figure 6 — degree blow-up for optimal cyclic schemes with guarded nodes");

  Table t({"m", "T* (Lemma 5.1)", "LP T*", "optimal src degree", "ceil(b0/T*)",
           "T*_ac", "acyclic max degree"});
  bool ok = true;
  for (int m = 2; m <= max_m; m *= 2) {
    const bmp::Instance inst = bmp::theory::fig6_instance(m);
    const double t_star = bmp::cyclic_upper_bound(inst);

    // LP oracle only for small sizes (O(N^3) variables).
    std::string lp_value = "-";
    if (m <= 8) {
      const auto lp = bmp::lp::cyclic_optimal_lp(inst, cli.profiler());
      lp_value = Table::num(lp.throughput, 4);
      ok = ok && std::abs(lp.throughput - 1.0) < 1e-5;
    }

    // The analytic optimal scheme (source degree m).
    bmp::BroadcastScheme optimal(inst.size());
    for (int g = 2; g <= m + 1; ++g) {
      optimal.add(0, g, 1.0 / m);
      optimal.add(1, g, (m - 1.0) / m);
      optimal.add(g, 1, 1.0 / m);
    }
    const double achieved = bmp::flow::scheme_throughput(optimal);
    ok = ok && std::abs(achieved - 1.0) < 1e-7 && optimal.out_degree(0) == m;

    const bmp::AcyclicSolution acyclic = bmp::solve_acyclic(inst);
    ok = ok && acyclic.throughput < 1.0 - 1e-9 &&
         acyclic.throughput >= 5.0 / 7.0 - 1e-9;

    t.add_row({Table::num(m), Table::num(t_star, 4), lp_value,
               Table::num(optimal.out_degree(0)), "1",
               Table::num(acyclic.throughput, 4),
               Table::num(acyclic.scheme.max_out_degree())});
  }
  t.print(std::cout);
  t.maybe_write_csv("fig6_degree");

  std::cout << "\nsource degree grows linearly in m for optimal throughput, "
               "while ceil(b0/T*) stays 1;\nlow-degree acyclic schemes cap the "
               "throughput below 1 (but above 5/7).\n";
  std::cout << (ok ? "[OK] matches the Figure 6 statement\n"
                   : "[WARN] deviates from Figure 6\n");
  return bmp::benchutil::finish(cli, "fig6_degree", ok);
}
