// E8 — Figure 19: average-case throughput of acyclic solutions on randomly
// generated instances, normalized by the optimal cyclic throughput.
//
// Setup (paper §XII): six bandwidth distributions x p_open in
// {0.1, 0.5, 0.7, 0.9} x n in {10, 100, 1000}, 1000 instances per cell
// (BMP_FIG19_REPS to override); the source bandwidth equals the optimal
// cyclic throughput (fixed point), so T* = b0 exactly.
//
// Series per cell:
//   black — optimal acyclic T*_ac / T*          (boxplot in the paper)
//   blue  — best(omega1, omega2) / T*           (distributed fixed words)
//   red   — Theorem 6.2 case-rule word / T*
//
// Expected shape: black means >= 0.95 nearly everywhere ("at most 5%
// decrease"), blue ~ black (equal for large n), red visibly below blue on
// small instances.
#include <cmath>
#include <iostream>
#include <mutex>
#include <vector>

#include "bmp/core/acyclic_search.hpp"
#include "bmp/core/bounds.hpp"
#include "bmp/core/omega_words.hpp"
#include "bmp/core/word_throughput.hpp"
#include "bmp/gen/generator.hpp"
#include "bmp/util/stats.hpp"
#include "bmp/util/table.hpp"
#include "bmp/util/thread_pool.hpp"
#include "bench_util.hpp"

namespace {

struct CellResult {
  bmp::util::BoxStats black;
  double blue_mean = 0.0;
  double red_mean = 0.0;
  double worst_black = 1.0;
};

CellResult run_cell(bmp::gen::Dist dist, double p_open, int size, int reps,
                    bmp::util::ThreadPool& pool, std::uint64_t seed) {
  std::vector<double> black(static_cast<std::size_t>(reps));
  std::vector<double> blue(static_cast<std::size_t>(reps));
  std::vector<double> red(static_cast<std::size_t>(reps));
  const bmp::util::Xoshiro256 base(seed);

  bmp::util::parallel_for(pool, 0, static_cast<std::size_t>(reps), [&](std::size_t r) {
    bmp::util::Xoshiro256 rng = base.fork(r);
    const bmp::Instance inst =
        bmp::gen::random_instance({size, p_open, dist}, rng);
    const double t_star = bmp::cyclic_upper_bound(inst);
    if (t_star <= 0.0) {
      black[r] = blue[r] = red[r] = 1.0;
      return;
    }
    const double t_ac = bmp::optimal_acyclic_throughput(inst);
    const double t_w1 =
        bmp::word_throughput(inst, bmp::omega1(inst.n(), inst.m()));
    const double t_w2 =
        bmp::word_throughput(inst, bmp::omega2(inst.n(), inst.m()));
    const double t_red = bmp::word_throughput(inst, bmp::theorem62_word(inst));
    black[r] = t_ac / t_star;
    blue[r] = std::max(t_w1, t_w2) / t_star;
    red[r] = t_red / t_star;
  });

  CellResult cell;
  cell.black = bmp::util::box_stats(black);
  cell.blue_mean = bmp::util::mean(blue);
  cell.red_mean = bmp::util::mean(red);
  cell.worst_black = cell.black.min;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bmp::benchutil::CommonCli cli(argc, argv);
  const bmp::obs::PhaseScope bench_scope(cli.profiler(), "bench/fig19_average");
  using bmp::util::Table;
  const int reps = bmp::benchutil::env_int("BMP_FIG19_REPS", 1000);
  const std::vector<int> sizes{10, 100, 1000};
  const std::vector<double> p_values{0.1, 0.5, 0.7, 0.9};

  bmp::util::print_banner(
      std::cout,
      "Figure 19 — acyclic throughput normalized by optimal cyclic throughput");
  std::cout << reps << " random instances per cell (BMP_FIG19_REPS to change)\n";

  bmp::util::ThreadPool pool;
  Table t({"dist", "p", "n", "black mean", "black med", "black q05", "black min",
           "blue mean", "red mean"});
  double global_min_mean = 1.0;
  double max_blue_gap = 0.0;   // black mean - blue mean
  double max_red_gap = 0.0;    // blue mean - red mean (small n effect)
  std::uint64_t cell_id = 0;

  for (const auto dist : bmp::gen::all_distributions()) {
    for (const int size : sizes) {
      for (const double p : p_values) {
        const CellResult cell =
            run_cell(dist, p, size, reps, pool, 0xF19000ULL + cell_id++);
        t.add_row({bmp::gen::name(dist), Table::num(p, 1), Table::num(size),
                   Table::num(cell.black.mean, 4), Table::num(cell.black.median, 4),
                   Table::num(cell.black.q05, 4), Table::num(cell.black.min, 4),
                   Table::num(cell.blue_mean, 4), Table::num(cell.red_mean, 4)});
        global_min_mean = std::min(global_min_mean, cell.black.mean);
        max_blue_gap = std::max(max_blue_gap, cell.black.mean - cell.blue_mean);
        if (size == 10) {
          max_red_gap = std::max(max_red_gap, cell.blue_mean - cell.red_mean);
        }
      }
    }
  }
  t.print(std::cout);
  t.maybe_write_csv("fig19_average");

  bmp::util::print_banner(std::cout, "Conclusions vs. the paper");
  Table s({"claim", "measured", "paper"});
  s.add_row({"worst cell mean of T*_ac/T*", Table::num(global_min_mean, 4),
             ">= ~0.95 (\"at most 5% decrease\")"});
  s.add_row({"max gap black->best(w1,w2)", Table::num(max_blue_gap, 4),
             "small; ~0 for large instances"});
  s.add_row({"max gap best(w1,w2)->case word (n=10)", Table::num(max_red_gap, 4),
             "\"significant gap for smaller instances\""});
  s.print(std::cout);

  const bool ok = global_min_mean >= 0.90 && max_blue_gap < 0.05;
  std::cout << (ok ? "[OK] shape matches the paper\n"
                   : "[WARN] shape deviates from the paper\n");
  return bmp::benchutil::finish(cli, "fig19_average", ok);
}
