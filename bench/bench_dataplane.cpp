// Data-plane bench — the numbers the chunk engine exists for:
//   * plan vs achieved: a 500-node acyclic overlay executed chunk by chunk
//     must deliver >= 0.95x the planner's verified throughput (lossless,
//     zero latency) — the ISSUE 4 acceptance bar;
//   * robustness: the same overlay under 2% loss + propagation latency
//     (informational: how far dynamics pull below the fluid bound);
//   * event-loop speed: chunk deliveries per wall-second;
//   * churn: the bench_runtime scenario with execution mode on — every
//     channel's stream must sustain >= 0.85x its design-rate integral with
//     live-patched repairs only, and replay deterministically.
// `--quick` (or BMP_DATAPLANE_QUICK=1) shrinks everything for CI smoke.
// `--json <path>` writes the machine-readable report (git SHA stamped).
#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bmp/core/acyclic_search.hpp"
#include "bmp/dataplane/execution.hpp"
#include "bmp/flow/verify.hpp"
#include "bmp/obs/export.hpp"
#include "bmp/obs/lineage.hpp"
#include "bmp/obs/trace.hpp"
#include "bmp/gen/generator.hpp"
#include "bmp/runtime/runtime.hpp"
#include "bmp/runtime/scenario.hpp"
#include "bmp/util/table.hpp"
#include "bench_util.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

bmp::runtime::ScenarioScript churn_script(int peers, double horizon,
                                          std::uint64_t seed) {
  using namespace bmp::runtime;
  Scenario scenario(horizon, seed);
  scenario.source(2000.0)
      .population({peers * 3 / 5, 0.7, bmp::gen::Dist::kUnif100})
      .population({peers * 2 / 5, 0.3, bmp::gen::Dist::kLogNormal1})
      .channel({0.0, -1.0, /*weight=*/2.0, /*fraction=*/0.4})
      .channel({0.0, -1.0, 1.0, 0.2})
      .channel({0.2, -1.0, 1.0, 0.15})
      .poisson_channels({0.8, horizon / 4.0, 1.0, 0.1})
      .flash_crowd({horizon * 0.3, peers / 5,
                    {0, 0.8, bmp::gen::Dist::kUnif100}, 0.7, horizon * 0.2})
      .diurnal_churn({horizon / 2.0, 0.8, 8.0, 0.45,
                      {0, 0.5, bmp::gen::Dist::kUnif100}})
      .correlated_failure({horizon * 0.75, 0.10})
      .renegotiate_every(horizon / 5.0, 0.95);
  return scenario.build();
}

}  // namespace

int main(int argc, char** argv) {
  bmp::benchutil::CommonCli cli(argc, argv);
  const bool quick =
      cli.quick || bmp::benchutil::env_int("BMP_DATAPLANE_QUICK", 0) != 0;
  const std::string& json_path = cli.json;
  const std::string& trace_path = cli.trace;
  const int peers =
      bmp::benchutil::env_int("BMP_DATAPLANE_PEERS", quick ? 150 : 500);
  const int chunks = quick ? 200 : 300;

  bmp::util::print_banner(std::cout,
                          "Chunk-level data plane — plan vs achieved");
  std::cout << peers << "-node acyclic overlay, " << chunks << " chunks"
            << (quick ? "  [quick]\n\n" : "\n\n");

  bmp::benchutil::JsonReport json;
  bmp::benchutil::add_header(json, "dataplane");
  json.add("peers", peers);
  json.add("chunks", chunks);
  bool ok = true;

  // ------------------------------------------- plan vs achieved (lossless)
  bmp::util::Xoshiro256 rng(2026);
  const bmp::Instance platform = bmp::gen::random_instance(
      {peers, 0.6, bmp::gen::Dist::kUnif100}, rng);
  const bmp::AcyclicSolution solution = bmp::solve_acyclic(platform);
  const double verified =
      bmp::flow::verify_throughput(solution.scheme).throughput;

  bmp::dataplane::ExecutionConfig config;
  config.chunk_size = solution.throughput * 0.05;
  config.total_chunks = chunks;
  config.emission_rate = solution.throughput;
  config.warmup_chunks = chunks / 5;
  config.profiler = cli.profiler();

  const auto lossless_start = std::chrono::steady_clock::now();
  bmp::dataplane::Execution lossless(platform, solution.scheme, config);
  lossless.run_to_completion();
  const double lossless_s = seconds_since(lossless_start);
  const bmp::dataplane::ExecutionReport clean = lossless.report(verified);
  const double clean_ratio = clean.achieved_rate / verified;
  const double chunks_per_sec =
      static_cast<double>(clean.delivered_chunks) / lossless_s;

  // ------------------------------------------------ loss + latency variant
  config.profiler = nullptr;  // attribution covers the headline lossless run
  config.loss_rate = 0.02;
  config.latency = 0.01;
  config.seed = 7;
  bmp::dataplane::Execution lossy(platform, solution.scheme, config);
  lossy.run_to_completion();
  const bmp::dataplane::ExecutionReport noisy = lossy.report(verified);

  bmp::util::Table table({"case", "achieved/planned", "stretch", "chunks/s",
                          "stalls", "retransmits"});
  table.add_row({"lossless", bmp::util::Table::num(clean_ratio, 4),
                 bmp::util::Table::num(clean.stretch, 3),
                 bmp::util::Table::num(chunks_per_sec, 0),
                 bmp::util::Table::num(clean.hol_stalls),
                 bmp::util::Table::num(clean.retransmits)});
  table.add_row({"2% loss + 10ms",
                 bmp::util::Table::num(noisy.achieved_rate / verified, 4),
                 bmp::util::Table::num(noisy.stretch, 3), "-",
                 bmp::util::Table::num(noisy.hol_stalls),
                 bmp::util::Table::num(noisy.retransmits)});
  table.print(std::cout);
  table.maybe_write_csv("dataplane");

  ok = ok && clean_ratio >= 0.95;
  std::cout << (clean_ratio >= 0.95 ? "[OK] " : "[WARN] ")
            << "lossless execution achieved " << 100.0 * clean_ratio
            << "% of the verified throughput (bar: 95%)\n";
  const bool bounded = clean.achieved_rate <= verified * 1.02 + 1e-9;
  ok = ok && bounded;
  std::cout << (bounded ? "[OK] " : "[WARN] ")
            << "achieved rate stays within the flow::Verifier bound\n";

  json.add("planned_rate", solution.throughput);
  json.add("verified_rate", verified);
  json.add("achieved_rate", clean.achieved_rate);
  json.add("achieved_over_planned", clean_ratio);
  json.add("lossy_achieved_over_planned", noisy.achieved_rate / verified);
  json.add("chunks_per_sec", chunks_per_sec);
  json.add("retransmits_lossy", noisy.retransmits);

  // ----------------------------------------- straggler spread (tail shape)
  // Per-node completion times of the lossless run: the spread between the
  // median node and the worst straggler is the tail the lineage analyzer
  // attributes. Scenario-time, fully deterministic — bench_diff gates these
  // under its lower-better `latency.` class.
  std::vector<double> completions;
  for (int node = 0; node < lossless.num_nodes(); ++node) {
    if (node == lossless.origin()) continue;
    const double done = lossless.completion_time(node);
    if (done >= 0.0) completions.push_back(done);
  }
  std::sort(completions.begin(), completions.end());
  const auto at_quantile = [&](double q) {
    if (completions.empty()) return 0.0;
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(completions.size() - 1) + 0.5);
    return completions[rank];
  };
  const double completion_p50 = at_quantile(0.50);
  const double completion_p99 = at_quantile(0.99);
  const double completion_worst =
      completions.empty() ? 0.0 : completions.back();
  const double straggler_ratio =
      completion_p50 > 0.0 ? completion_worst / completion_p50 : 1.0;
  std::cout << "\nstraggler spread: completion p50 " << completion_p50
            << "s, p99 " << completion_p99 << "s, worst/median "
            << straggler_ratio << "x\n";
  json.add("latency.completion_p50", completion_p50);
  json.add("latency.completion_p99", completion_p99);
  json.add("latency.straggler_ratio", straggler_ratio);

  // ------------------------------------------- lineage overhead, A/B wall
  // The bench's lossy scenario with the lineage sink attached must cost
  // <= 5% wall time over the disabled baseline (disabled cost: one branch
  // per delivery; losses exercise the retry-tally path too). Estimator:
  // the two variants run back-to-back within each of 21 rounds (run order
  // flips every round so a within-round drift cannot systematically tax
  // one variant), and the reported overhead is the ratio of the two *min*
  // walls. Scheduler noise is additive — it only ever inflates a wall —
  // so the per-variant min over 21 interleaved samples converges on the
  // true cost even when ambient load swings the individual walls by tens
  // of percent, where medians (or per-pair ratios) drift with the load.
  // The on-runs rotate across three independently allocated sinks: a
  // record buffer that happens to land on pages conflicting with the
  // simulator's hot set taxes every run that reuses it, and the min can
  // only discount that placement luck if the samples don't all share it.
  const auto ab_run = [&](bmp::obs::LineageSink* sink) {
    bmp::dataplane::ExecutionConfig ab_config = config;
    ab_config.profiler = nullptr;
    ab_config.lineage = sink;
    const auto start = std::chrono::steady_clock::now();
    bmp::dataplane::Execution exec(platform, solution.scheme, ab_config);
    exec.run_to_completion();
    return seconds_since(start);
  };
  std::vector<bmp::obs::LineageSink> sinks(3);
  const auto ab_measure = [&] {
    std::vector<double> ab_on_walls;
    std::vector<double> ab_off_walls;
    const int ab_rounds = 21;
    for (int round = 0; round < ab_rounds; ++round) {
      bmp::obs::LineageSink& lineage = sinks[round % sinks.size()];
      if (round % 2 == 0) {
        ab_off_walls.push_back(ab_run(nullptr));
        lineage.clear();  // fresh records, warm buffers: same work per run
        ab_on_walls.push_back(ab_run(&lineage));
      } else {
        lineage.clear();
        ab_on_walls.push_back(ab_run(&lineage));
        ab_off_walls.push_back(ab_run(nullptr));
      }
    }
    const auto best = [](const std::vector<double>& walls) {
      return *std::min_element(walls.begin(), walls.end());
    };
    return std::pair<double, double>(best(ab_on_walls), best(ab_off_walls));
  };
  auto [ab_on_wall, ab_off_wall] = ab_measure();
  if (ab_on_wall > 1.05 * ab_off_wall) {
    // One retry before declaring a regression: an ambient burst spanning a
    // whole measurement occasionally inflates the estimate a few percent
    // past the bar; a genuine recording regression fails both attempts.
    const auto [retry_on, retry_off] = ab_measure();
    if (retry_on * ab_off_wall < ab_on_wall * retry_off) {
      ab_on_wall = retry_on;
      ab_off_wall = retry_off;
    }
  }
  const bmp::obs::LineageSink& lineage = sinks.front();
  const double lineage_overhead =
      ab_off_wall > 0.0 ? ab_on_wall / ab_off_wall : 1.0;
  const bool lineage_cheap = lineage_overhead <= 1.05;
  ok = ok && lineage_cheap && lineage.recorded() > 0;
  std::cout << (lineage_cheap ? "[OK] " : "[WARN] ")
            << "lineage recording costs " << lineage_overhead
            << "x wall vs disabled (bar: <= 1.05x, "
            << lineage.recorded() << " hops/run, baseline "
            << ab_off_wall * 1e3 << "ms)\n";
  json.add("lineage_overhead_ratio", lineage_overhead);
  json.add("lineage_hops", lineage.recorded());

  // -------------------------- scheduler scan index vs linear deep backlog
  // A file-mode relay chain keeps every receiver's backlog window full
  // (scan_limit deep), the worst case for the linear rarest-first scan.
  // The per-rarity bucket index must pick identical chunks (differentially
  // asserted in tests) and must never be slower — the no-regression bar.
  const int backlog_chunks = quick ? 6000 : 30000;
  const auto scan_case = [&](bool use_index) {
    bmp::dataplane::ExecutionConfig scan_config;
    scan_config.chunk_size = 1.0;
    scan_config.total_chunks = backlog_chunks;
    scan_config.emission_rate = 0.0;  // file mode: the backlog exists at t=0
    scan_config.warmup_chunks = 0;
    scan_config.use_scan_index = use_index;
    const auto start = std::chrono::steady_clock::now();
    bmp::dataplane::Execution exec(scan_config);
    const int source = exec.add_node(1000.0);
    const int relay = exec.add_node(1000.0);
    const int leaf = exec.add_node(0.0);
    exec.set_edge(source, relay, 1000.0);
    exec.set_edge(relay, leaf, 1000.0);
    exec.run_to_completion();
    if (exec.delivered(leaf) != backlog_chunks) std::abort();
    return seconds_since(start);
  };
  const double linear_s = scan_case(false);
  const double indexed_s = scan_case(true);
  const double scan_speedup = linear_s / indexed_s;
  std::cout << "\ndeep-backlog scheduler: linear scan " << linear_s
            << "s, rarity-bucket index " << indexed_s << "s (" << scan_speedup
            << "x)\n";
  ok = ok && indexed_s <= linear_s * 1.05;
  std::cout << (indexed_s <= linear_s * 1.05 ? "[OK] " : "[WARN] ")
            << "scan index is no slower than the linear scan (bar: <= 1.05x)\n";
  json.add("scan_linear_seconds", linear_s);
  json.add("scan_indexed_seconds", indexed_s);
  json.add("scan_index_speedup", scan_speedup);

  // --------------------------------------------- churn scenario, executed
  const int churn_peers = quick ? 120 : 500;
  const double horizon = quick ? 6.0 : 20.0;
  const bmp::runtime::ScenarioScript script = churn_script(
      churn_peers, horizon,
      static_cast<std::uint64_t>(bmp::benchutil::env_int("BMP_DATAPLANE_SEED", 7)));
  bmp::runtime::RuntimeConfig runtime_config;
  runtime_config.broker_headroom = 0.05;
  runtime_config.collect_timing = false;
  runtime_config.dataplane.execute = true;
  runtime_config.dataplane.execution.chunk_size = quick ? 4.0 : 20.0;
  bmp::obs::TraceSink trace;
  if (!trace_path.empty()) runtime_config.trace = &trace;
  runtime_config.profiler = cli.profiler();

  const auto churn_start = std::chrono::steady_clock::now();
  bmp::runtime::Runtime runtime(runtime_config, script.source_bandwidth,
                                script.initial_peers);
  runtime.run(script.events);
  runtime.drain(horizon);
  const double churn_s = seconds_since(churn_start);
  if (!trace_path.empty()) {
    std::cout << (trace.write(trace_path) ? "trace written to "
                                          : "[WARN] could not write ")
              << trace_path << " (" << trace.events() << " events, "
              << trace.spans() << " spans)\n";
  }

  double worst_sustained = 1.0;
  int judged = 0;
  for (const bmp::runtime::StreamReport& report : runtime.stream_log()) {
    if (report.expected_chunks < 10.0) continue;
    ++judged;
    worst_sustained = std::min(worst_sustained, report.sustained_ratio);
  }
  const std::uint64_t churn_delivered =
      runtime.metrics().counter("dataplane.delivered");
  const std::uint64_t audit_failures =
      runtime.metrics().counter("dataplane.rate_audit_failures");

  std::cout << "\nchurn scenario: " << script.events.size() << " events, "
            << judged << " streams judged, " << churn_delivered
            << " chunks delivered (" << churn_delivered / churn_s
            << " chunks/s wall)\n";
  ok = ok && worst_sustained >= 0.85 && judged > 0;
  std::cout << (worst_sustained >= 0.85 && judged > 0 ? "[OK] " : "[WARN] ")
            << "worst stream sustained " << 100.0 * worst_sustained
            << "% of its design-rate integral (bar: 85%, live patches only)\n";
  ok = ok && audit_failures == 0;
  std::cout << (audit_failures == 0 ? "[OK] " : "[WARN] ") << audit_failures
            << " achieved-above-verified audit failures\n";

  // Replay determinism, execution mode included.
  runtime_config.profiler = nullptr;  // attribution covers the measured run
  bmp::runtime::Runtime replay(runtime_config, script.source_bandwidth,
                               script.initial_peers);
  replay.run(script.events);
  replay.drain(horizon);
  const bool deterministic =
      replay.metrics().snapshot().to_string(false) ==
      runtime.metrics().snapshot().to_string(false);
  ok = ok && deterministic;
  std::cout << (deterministic ? "[OK] " : "[WARN] ")
            << "replay reproduced the dataplane metrics byte-for-byte\n";

  json.add("churn_streams_judged", judged);
  json.add("churn_worst_sustained_ratio", worst_sustained);
  json.add("churn_chunks_delivered", churn_delivered);
  json.add("churn_chunks_per_sec", static_cast<double>(churn_delivered) / churn_s);
  json.add("rate_audit_failures", audit_failures);
  json.add_string("status", ok ? "ok" : "warn");
  bmp::benchutil::add_profile(json, cli.prof);
  json.add_raw("metrics", bmp::obs::to_json(runtime.metrics().snapshot(),
                                            /*include_timing=*/false));
  if (!json_path.empty()) {
    if (json.write(json_path)) {
      std::cout << "json written to " << json_path << "\n";
    } else {
      std::cout << "[WARN] could not write " << json_path << "\n";
      ok = false;
    }
  }
  if (!cli.metrics.empty()) {
    std::ofstream out(cli.metrics);
    out << bmp::obs::to_prometheus(runtime.metrics().snapshot());
    ok = static_cast<bool>(out) && ok;
  }
  ok = cli.write_profile() && ok;
  return ok ? 0 : 1;
}
