// E16 — The paper's §II.A motivation, quantified: under the one-port model
// "it is unreasonable to assume that a 10GB/s server may be kept busy for
// 10 seconds while communicating a 10MB data file to a 1MB/s DSL node."
//
// We simulate a greedy one-port broadcast (each node transfers a unit
// message to one peer at a time, at rate min(b_sender, b_receiver);
// senders always pick the fastest uninformed peer) and compare the
// makespan against the bounded multi-port steady-state time 1/T* on
// increasingly heterogeneous platforms.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bmp/core/bounds.hpp"
#include "bmp/util/rng.hpp"
#include "bmp/util/table.hpp"
#include "bench_util.hpp"

namespace {

/// Greedy one-port broadcast makespan of a unit message. Event-free
/// time-advance simulation: at each step every idle informed node starts a
/// transfer to the fastest uninformed node (rate = min of the two
/// bandwidths); time advances to the next completion.
double one_port_makespan(const std::vector<double>& bw) {
  const std::size_t N = bw.size();
  std::vector<bool> informed(N, false);
  informed[0] = true;
  struct Transfer {
    std::size_t to;
    double finish;
  };
  std::vector<std::vector<Transfer>> active(N);  // per sender (size <= 1)
  std::vector<bool> busy(N, false);
  std::vector<bool> incoming(N, false);
  double now = 0.0;
  std::size_t informed_count = 1;
  while (informed_count < N) {
    // Start transfers greedily: fastest informed idle sender first.
    std::vector<std::size_t> senders;
    for (std::size_t v = 0; v < N; ++v) {
      if (informed[v] && !busy[v]) senders.push_back(v);
    }
    std::sort(senders.begin(), senders.end(),
              [&](std::size_t a, std::size_t b) { return bw[a] > bw[b]; });
    for (const std::size_t s : senders) {
      // fastest uninformed peer without an incoming transfer
      std::size_t target = N;
      for (std::size_t v = 0; v < N; ++v) {
        if (!informed[v] && !incoming[v] && (target == N || bw[v] > bw[target])) {
          target = v;
        }
      }
      if (target == N) break;
      const double rate = std::min(bw[s], bw[target]);
      if (rate <= 0.0) continue;
      active[s].push_back({target, now + 1.0 / rate});
      busy[s] = true;
      incoming[target] = true;
    }
    // Advance to the earliest completion.
    double next = 0.0;
    bool any = false;
    for (std::size_t s = 0; s < N; ++s) {
      for (const auto& tr : active[s]) {
        if (!any || tr.finish < next) {
          next = tr.finish;
          any = true;
        }
      }
    }
    if (!any) return -1.0;  // stuck (zero bandwidths)
    now = next;
    for (std::size_t s = 0; s < N; ++s) {
      auto& list = active[s];
      for (auto it = list.begin(); it != list.end();) {
        if (it->finish <= now + 1e-12) {
          informed[it->to] = true;
          incoming[it->to] = false;
          ++informed_count;
          busy[s] = false;
          it = list.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  return now;
}

}  // namespace

int main(int argc, char** argv) {
  bmp::benchutil::CommonCli cli(argc, argv);
  const bmp::obs::PhaseScope bench_scope(cli.profiler(), "bench/oneport_motivation");
  using bmp::util::Table;
  const int peers = bmp::benchutil::env_int("BMP_ONEPORT_PEERS", 63);

  bmp::util::print_banner(
      std::cout,
      "One-port vs bounded multi-port on heterogeneous platforms (unit message)");

  Table t({"heterogeneity (max/min bw)", "one-port makespan",
           "multi-port 1/T* (steady state)", "one-port penalty"});
  bool ok = true;
  bmp::util::Xoshiro256 rng(0x19);
  for (const double ratio : {1.0, 4.0, 16.0, 64.0, 256.0}) {
    // Half fast nodes (bw = ratio), half slow nodes (bw = 1), fast source.
    std::vector<double> bw{ratio};
    for (int i = 0; i < peers; ++i) bw.push_back(i % 2 == 0 ? ratio : 1.0);
    const double one_port = one_port_makespan(bw);

    const std::vector<double> open(bw.begin() + 1, bw.end());
    const bmp::Instance inst(bw[0], open, {});
    const double multi = 1.0 / bmp::cyclic_open_optimal(inst);

    const double penalty = one_port / multi;
    t.add_row({Table::num(ratio, 0), Table::num(one_port, 3),
               Table::num(multi, 3), Table::num(penalty, 2) + "x"});
    if (ratio >= 64.0 && penalty < 2.0) ok = false;
  }
  t.print(std::cout);
  t.maybe_write_csv("oneport_motivation");

  std::cout << "\nunder one-port, fast uplinks idle at min(b_s, b_r) while "
               "serving slow receivers;\nthe bounded multi-port model "
               "overlaps those transfers (the paper's premise).\n";
  std::cout << (ok ? "[OK] one-port penalty grows with heterogeneity\n"
                   : "[WARN] no one-port penalty observed\n");
  return bmp::benchutil::finish(cli, "oneport_motivation", ok);
}
