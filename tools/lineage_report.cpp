// lineage_report — renders a dumped chunk-lineage file as the
// critical-path blame table.
//
//   lineage_report <lineage.json> [--channel N] [--top N] [--json out.json]
//
// The input is a LineageSink::to_json() dump (examples/adaptive_wan
// --lineage writes one). The tool re-runs obs::analyze_critical_path on the
// parsed hops, prints the human-readable table, and optionally writes the
// machine-readable blame JSON. Exit codes: 0 ok, 1 usage, 2 unreadable or
// malformed input, 3 the blame invariant failed (attributed segment delays
// do not sum to the last node's completion time).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bmp/obs/lineage.hpp"

namespace {

int usage() {
  std::cerr << "usage: lineage_report <lineage.json> [--channel N] [--top N]"
               " [--json out.json]\n";
  return 1;
}

const char* arg_value(int argc, char** argv, const char* name) {
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argv[1][0] == '-') return usage();
  std::ifstream in(argv[1]);
  if (!in) {
    std::cerr << "lineage_report: cannot read " << argv[1] << "\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  std::vector<bmp::obs::HopRecord> hops;
  std::uint64_t dropped = 0;
  std::uint64_t sampled_out = 0;
  std::uint32_t sample_mod = 1;
  if (!bmp::obs::parse_lineage_json(buffer.str(), hops, dropped, sampled_out,
                                    sample_mod)) {
    std::cerr << "lineage_report: " << argv[1]
              << " is not a lineage dump (LineageSink::to_json format)\n";
    return 2;
  }

  int channel = -1;
  std::size_t top_n = 10;
  if (const char* value = arg_value(argc, argv, "--channel")) {
    channel = std::atoi(value);
  }
  if (const char* value = arg_value(argc, argv, "--top")) {
    top_n = static_cast<std::size_t>(std::atoi(value));
  }

  const bmp::obs::BlameTable table =
      bmp::obs::analyze_critical_path(hops, channel, top_n, sample_mod);
  std::cout << "hops: " << hops.size() << " (dropped " << dropped
            << ", sampled out " << sampled_out << ", 1-in-" << sample_mod
            << " chunk sample)\n"
            << table.to_text();
  if (const char* value = arg_value(argc, argv, "--json")) {
    std::ofstream out(value);
    out << table.to_json() << "\n";
    if (!out) {
      std::cerr << "lineage_report: cannot write " << value << "\n";
      return 2;
    }
  }
  if (table.valid &&
      std::fabs(table.attributed_total - table.completion_time) > 1e-6) {
    std::cerr << "lineage_report: blame invariant FAILED: attributed "
              << table.attributed_total << " vs completion "
              << table.completion_time << "\n";
    return 3;
  }
  return 0;
}
