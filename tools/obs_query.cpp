// obs_query — offline rollup of dumped shard telemetry snapshots.
//
//   obs_query <shard.json>... [--quantile NAME:Q]... [--top NAME[:K]]...
//             [--json] [--prometheus] [--out FILE]
//
// Inputs are RollupSnapshot::to_json() dumps (one per shard — bench_obs
// and the sharded_rollup example write them). The tool merges them into
// the global rollup (merge order cannot matter — the snapshots' merge is
// exact and commutative) and prints:
//   default        the human-readable global rollup (counters, gauges,
//                  sketch summaries, heavy-hitter tables)
//   --quantile     one `NAME qQ = value` line per query, answered from the
//                  merged sketch under its alpha relative-error contract
//   --top          the K heaviest entries of top-K series NAME
//   --json         the merged rollup in lossless snapshot JSON (pipe it
//                  back into obs_query to continue a hierarchy offline)
//   --prometheus   the merged rollup in Prometheus exposition format
//   --out          also write the lossless merged snapshot to FILE
// Exit codes: 0 ok, 1 usage, 2 unreadable/malformed input, 3 a query named
// a series the rollup does not carry.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bmp/obs/export.hpp"
#include "bmp/obs/rollup.hpp"

namespace {

int usage() {
  std::cerr << "usage: obs_query <shard.json>... [--quantile NAME:Q]..."
               " [--top NAME[:K]]... [--json] [--prometheus] [--out FILE]\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::vector<std::pair<std::string, double>> quantiles;
  std::vector<std::pair<std::string, std::size_t>> tops;
  bool as_json = false;
  bool as_prometheus = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      as_json = true;
    } else if (arg == "--prometheus") {
      as_prometheus = true;
    } else if (arg == "--out") {
      if (i + 1 >= argc) return usage();
      out_path = argv[++i];
    } else if (arg == "--quantile") {
      if (i + 1 >= argc) return usage();
      const std::string spec = argv[++i];
      const std::size_t colon = spec.rfind(':');
      if (colon == std::string::npos) return usage();
      quantiles.emplace_back(spec.substr(0, colon),
                             std::atof(spec.c_str() + colon + 1));
    } else if (arg == "--top") {
      if (i + 1 >= argc) return usage();
      const std::string spec = argv[++i];
      const std::size_t colon = spec.rfind(':');
      if (colon == std::string::npos) {
        tops.emplace_back(spec, 0);
      } else {
        tops.emplace_back(spec.substr(0, colon),
                          static_cast<std::size_t>(
                              std::atoll(spec.c_str() + colon + 1)));
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage();

  bmp::obs::RollupSnapshot global;
  global.shards = 0;
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "obs_query: cannot read " << path << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bmp::obs::RollupSnapshot shard;
    if (!bmp::obs::parse_rollup_json(buffer.str(), shard)) {
      std::cerr << "obs_query: " << path
                << " is not a rollup dump (RollupSnapshot::to_json format)\n";
      return 2;
    }
    global.merge(shard);
  }

  if (!out_path.empty() && !global.write(out_path)) {
    std::cerr << "obs_query: cannot write " << out_path << "\n";
    return 2;
  }

  if (as_json) {
    std::cout << global.to_json() << "\n";
  } else if (as_prometheus) {
    std::cout << bmp::obs::to_prometheus(global);
  } else if (quantiles.empty() && tops.empty()) {
    std::cout << global.to_text();
  }

  for (const auto& [name, q] : quantiles) {
    const auto it = global.sketches.find(name);
    if (it == global.sketches.end()) {
      std::cerr << "obs_query: no sketch named '" << name << "'\n";
      return 3;
    }
    char line[160];
    std::snprintf(line, sizeof(line), "%s q%.6g = %.12g (alpha=%g)\n",
                  name.c_str(), q, it->second.quantile(q),
                  it->second.config().alpha);
    std::cout << line;
  }
  for (const auto& [name, k] : tops) {
    const auto it = global.topks.find(name);
    if (it == global.topks.end()) {
      std::cerr << "obs_query: no top-k series named '" << name << "'\n";
      return 3;
    }
    std::cout << "topk " << name << " total=" << it->second.total_weight()
              << "\n";
    for (const bmp::obs::TopKEntry& row : it->second.top(k)) {
      std::cout << "  " << row.key << " count=" << row.count
                << " (overcount<=" << row.error << ")\n";
    }
  }
  return 0;
}
