// bench_diff: the perf-trajectory regression gate.
//
// Compares two BENCH_*.json reports (baseline vs candidate, as written by
// the bench binaries through benchutil::JsonReport + add_header) metric by
// metric, with a per-metric direction and tolerance, prints a human diff
// table, and exits nonzero when any gated metric regressed — that exit
// code IS the CI perf-gate.
//
// Metric classes (keyed by name, deepest rule wins):
//   * profile.* counters/calls/work  deterministic work attribution —
//     compared EXACTLY (tolerance 0, either direction). A drift means the
//     algorithm did different work, which is a behavior change the commit
//     must own by refreshing bench/baselines/.
//   * ratios (".ratio", "share", "hit_rate", "efficiency")  higher-better,
//     5% tolerance.
//   * throughput ("per_s", "throughput", "chunks_s")  higher-better, wall
//     derived, default 45% tolerance (noisy shared runners).
//   * latency/time ("_us", "_ms", "_s", "seconds", "wall")  lower-better,
//     same tolerance.
//   * header fields (schema, bench, git_sha, machine_*, compiler,
//     build_type)  never gated; schema/bench mismatch is a usage error,
//     machine mismatch prints a warning.
//   * anything else  informational only.
//
// --counters-only restricts gating to the exact class — the mode for
// committed baselines, which must gate identically on any machine.
// --tolerance <frac> overrides the wall-metric tolerance.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ----------------------------------------------------------- tiny JSON
// Just enough of a parser for JsonReport output: objects, arrays, strings,
// numbers, true/false/null. Flattens into dotted paths ("profile.phases.
// verify/tier1_sweep.work"); array elements index as ".0", ".1", ...

struct Flat {
  std::map<std::string, double> numbers;
  std::map<std::string, std::string> strings;
};

class Parser {
 public:
  Parser(const std::string& text, Flat& out) : text_(text), out_(out) {}

  bool parse() {
    skip_ws();
    if (!parse_value("")) return false;
    skip_ws();
    return pos_ == text_.size();
  }

  [[nodiscard]] std::string error() const { return error_; }

 private:
  bool fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool parse_value(const std::string& path) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end");
    const char c = text_[pos_];
    if (c == '{') return parse_object(path);
    if (c == '[') return parse_array(path);
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out_.strings[path] = s;
      return true;
    }
    if (std::strncmp(text_.c_str() + pos_, "true", 4) == 0) {
      out_.numbers[path] = 1.0;
      pos_ += 4;
      return true;
    }
    if (std::strncmp(text_.c_str() + pos_, "false", 5) == 0) {
      out_.numbers[path] = 0.0;
      pos_ += 5;
      return true;
    }
    if (std::strncmp(text_.c_str() + pos_, "null", 4) == 0) {
      pos_ += 4;  // degenerate measurement (inf/nan) — not comparable
      return true;
    }
    return parse_number(path);
  }

  bool parse_object(const std::string& path) {
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return fail("expected object key");
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      if (!parse_value(path.empty() ? key : path + "." + key)) return false;
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(const std::string& path) {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    std::size_t index = 0;
    while (true) {
      if (!parse_value(path + "." + std::to_string(index++))) return false;
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected '\"'");
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            // BENCH reports only escape control chars; keep it simple.
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            out.push_back(static_cast<char>(
                std::strtol(hex.c_str(), nullptr, 16)));
            break;
          }
          default: return fail("unknown escape");
        }
        continue;
      }
      out.push_back(c);
    }
    return fail("unterminated string");
  }

  bool parse_number(const std::string& path) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            std::strchr("+-.eE", text_[pos_]) != nullptr)) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    out_.numbers[path] = std::atof(text_.substr(start, pos_ - start).c_str());
    return true;
  }

  const std::string& text_;
  Flat& out_;
  std::size_t pos_ = 0;
  std::string error_;
};

// ----------------------------------------------------- metric classifier

enum class Direction { kExact, kHigherBetter, kLowerBetter, kInfo };

struct Rule {
  Direction direction;
  double tolerance;  ///< allowed fractional move in the bad direction
};

bool contains(const std::string& key, const char* needle) {
  return key.find(needle) != std::string::npos;
}

bool ends_with(const std::string& key, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return key.size() >= n && key.compare(key.size() - n, n, suffix) == 0;
}

Rule classify(const std::string& key, double wall_tolerance) {
  static const char* kHeader[] = {"schema",        "bench",    "git_sha",
                                  "machine_cores", "compiler", "build_type"};
  for (const char* h : kHeader) {
    if (key == h) return {Direction::kInfo, 0.0};
  }
  // Deterministic work attribution: exact or the commit owns the drift.
  if (key.rfind("profile.", 0) == 0) return {Direction::kExact, 0.0};
  // Tail-latency spread metrics (completion p50/p99, straggler ratio):
  // lower is better, with a tolerance between the tight ratio class and the
  // loose wall class — tail quantiles of a deterministic scenario drift
  // only when scheduling actually changed. Must run before the ratio rule:
  // "latency.straggler_ratio" is a latency spread, not a higher-better
  // efficiency ratio.
  if (key.rfind("latency.", 0) == 0) return {Direction::kLowerBetter, 0.10};
  // Order matters: "cache.hit_ratio" must hit the tight ratio rule, and
  // "events_per_s" the throughput rule, before the "_s" time suffix.
  if (contains(key, "ratio") || contains(key, "share") ||
      contains(key, "hit_rate") || contains(key, "efficiency")) {
    return {Direction::kHigherBetter, 0.05};
  }
  if (contains(key, "per_s") || contains(key, "throughput") ||
      contains(key, "chunks_s") || ends_with(key, "_rate")) {
    return {Direction::kHigherBetter, wall_tolerance};
  }
  if (contains(key, "timing.") || contains(key, "wall") ||
      ends_with(key, "_us") || ends_with(key, "_ms") ||
      ends_with(key, "_s") || ends_with(key, ".us") ||
      contains(key, "seconds")) {
    return {Direction::kLowerBetter, wall_tolerance};
  }
  return {Direction::kInfo, 0.0};
}

const char* to_string(Direction d) {
  switch (d) {
    case Direction::kExact: return "exact";
    case Direction::kHigherBetter: return "higher";
    case Direction::kLowerBetter: return "lower";
    case Direction::kInfo: return "info";
  }
  return "?";
}

// ------------------------------------------------------------------ main

bool load(const char* path, Flat& flat) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path);
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  Parser parser(text, flat);
  if (!parser.parse()) {
    std::fprintf(stderr, "bench_diff: %s: JSON parse error: %s\n", path,
                 parser.error().c_str());
    return false;
  }
  return true;
}

struct Row {
  std::string key;
  double base;
  double cand;
  double delta_pct;
  const char* verdict;
};

}  // namespace

int main(int argc, char** argv) {
  const char* base_path = nullptr;
  const char* cand_path = nullptr;
  bool counters_only = false;
  double wall_tolerance = 0.45;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--counters-only") == 0) {
      counters_only = true;
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      wall_tolerance = std::atof(argv[++i]);
    } else if (base_path == nullptr) {
      base_path = argv[i];
    } else if (cand_path == nullptr) {
      cand_path = argv[i];
    } else {
      std::fprintf(stderr, "bench_diff: unexpected argument %s\n", argv[i]);
      return 2;
    }
  }
  if (base_path == nullptr || cand_path == nullptr) {
    std::fprintf(stderr,
                 "usage: bench_diff <baseline.json> <candidate.json> "
                 "[--counters-only] [--tolerance <frac>]\n");
    return 2;
  }

  Flat base;
  Flat cand;
  if (!load(base_path, base) || !load(cand_path, cand)) return 2;

  // Header sanity: comparing different benches or schema versions is a
  // harness bug, not a perf regression.
  for (const char* key : {"schema", "bench"}) {
    const auto b_num = base.numbers.find(key);
    const auto c_num = cand.numbers.find(key);
    const auto b_str = base.strings.find(key);
    const auto c_str = cand.strings.find(key);
    const bool num_mismatch = b_num != base.numbers.end() &&
                              c_num != cand.numbers.end() &&
                              b_num->second != c_num->second;
    const bool str_mismatch = b_str != base.strings.end() &&
                              c_str != cand.strings.end() &&
                              b_str->second != c_str->second;
    if (num_mismatch || str_mismatch) {
      std::fprintf(stderr, "bench_diff: '%s' differs between reports\n", key);
      return 2;
    }
  }
  for (const char* key : {"machine_cores", "compiler", "build_type"}) {
    const auto bn = base.numbers.find(key);
    const auto cn = cand.numbers.find(key);
    const auto bs = base.strings.find(key);
    const auto cs = cand.strings.find(key);
    if ((bn != base.numbers.end() && cn != cand.numbers.end() &&
         bn->second != cn->second) ||
        (bs != base.strings.end() && cs != cand.strings.end() &&
         bs->second != cs->second)) {
      std::fprintf(stderr,
                   "bench_diff: warning: '%s' differs — wall metrics are not "
                   "comparable%s\n",
                   key, counters_only ? " (counters-only mode)" : "");
    }
  }

  std::vector<Row> rows;
  int regressions = 0;
  int improvements = 0;
  int compared = 0;
  for (const auto& [key, base_value] : base.numbers) {
    const auto it = cand.numbers.find(key);
    if (it == cand.numbers.end()) continue;
    const double cand_value = it->second;
    const Rule rule = classify(key, wall_tolerance);
    if (rule.direction == Direction::kInfo) continue;
    if (counters_only && rule.direction != Direction::kExact) continue;
    ++compared;
    const double delta = cand_value - base_value;
    const double pct =
        base_value != 0.0 ? 100.0 * delta / std::fabs(base_value)
                          : (delta == 0.0 ? 0.0 : INFINITY);
    const char* verdict = "ok";
    switch (rule.direction) {
      case Direction::kExact:
        if (delta != 0.0) {
          verdict = "REGRESSED";
          ++regressions;
        }
        break;
      case Direction::kHigherBetter:
        if (delta < -rule.tolerance * std::fabs(base_value)) {
          verdict = "REGRESSED";
          ++regressions;
        } else if (delta > rule.tolerance * std::fabs(base_value)) {
          verdict = "improved";
          ++improvements;
        }
        break;
      case Direction::kLowerBetter:
        if (delta > rule.tolerance * std::fabs(base_value)) {
          verdict = "REGRESSED";
          ++regressions;
        } else if (delta < -rule.tolerance * std::fabs(base_value)) {
          verdict = "improved";
          ++improvements;
        }
        break;
      case Direction::kInfo:
        break;
    }
    // The table stays readable: every regression, every improvement, and
    // any exact metric — quiet "ok" wall metrics only when nothing moved.
    if (std::strcmp(verdict, "ok") != 0 ||
        rule.direction == Direction::kExact || delta != 0.0) {
      rows.push_back({key, base_value, cand_value, pct, verdict});
    }
  }

  std::printf("bench_diff: %s vs %s%s\n", base_path, cand_path,
              counters_only ? " (counters only)" : "");
  std::printf("%-58s %16s %16s %9s %10s\n", "metric", "baseline", "candidate",
              "delta", "verdict");
  for (const Row& row : rows) {
    const Rule rule = classify(row.key, wall_tolerance);
    char delta[32];
    if (std::isfinite(row.delta_pct)) {
      std::snprintf(delta, sizeof(delta), "%+.1f%%", row.delta_pct);
    } else {
      std::snprintf(delta, sizeof(delta), "new");
    }
    std::printf("%-58s %16.6g %16.6g %9s %10s (%s)\n", row.key.c_str(),
                row.base, row.cand, delta, row.verdict,
                to_string(rule.direction));
  }
  std::printf(
      "bench_diff: %d compared, %d regressed, %d improved, %zu changed\n",
      compared, regressions, improvements, rows.size());
  if (compared == 0) {
    std::fprintf(stderr,
                 "bench_diff: no comparable metrics — wrong report pair?\n");
    return 2;
  }
  return regressions > 0 ? 1 : 0;
}
