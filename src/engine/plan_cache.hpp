// Sharded LRU cache of planned responses, keyed by request fingerprint.
// Shards are independent {mutex, LRU list, hash index} triples selected by
// key hash, so concurrent batch workers rarely contend on one lock. Each
// shard keeps hit/miss/eviction counters; stats() aggregates them.
//
// Values are shared_ptr<const PlanResponse>: a hit aliases the cached plan
// instead of copying the overlay, and an entry evicted mid-use stays alive
// for whoever still holds it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bmp/engine/fingerprint.hpp"
#include "bmp/engine/planner.hpp"

namespace bmp::engine {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;
  std::size_t size = 0;      ///< entries currently resident
  std::size_t capacity = 0;  ///< total across shards

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class PlanCache {
 public:
  /// `capacity` entries total, spread over `shards` independent LRUs (each
  /// gets ceil(capacity/shards)). capacity == 0 disables caching (every
  /// lookup misses, inserts are dropped).
  explicit PlanCache(std::size_t capacity, std::size_t shards = 16);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan and bumps it to most-recently-used, or nullptr
  /// on miss. Counts a hit/miss either way.
  [[nodiscard]] std::shared_ptr<const PlanResponse> lookup(const Fingerprint& key);

  /// Inserts (or refreshes) an entry, evicting the shard's LRU tail beyond
  /// capacity.
  void insert(const Fingerprint& key, std::shared_ptr<const PlanResponse> value);

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::list<std::pair<Fingerprint, std::shared_ptr<const PlanResponse>>> lru;
    std::unordered_map<Fingerprint, decltype(lru)::iterator, FingerprintHasher>
        index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t insertions = 0;
  };

  [[nodiscard]] Shard& shard_for(const Fingerprint& key);

  std::size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace bmp::engine
