// The planning engine's front door: a PlanRequest/PlanResponse API over the
// paper's algorithms, service-grade. One-shot `plan()` consults a sharded
// LRU cache keyed by the request fingerprint; `plan_batch()` dedupes a
// whole request stream by fingerprint and plans the distinct platforms
// concurrently on a util::ThreadPool. Results are deterministic: grouping
// is by fingerprint, never by thread timing, so any thread count produces
// identical responses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "bmp/core/instance.hpp"
#include "bmp/core/scheme.hpp"
#include "bmp/engine/fingerprint.hpp"
#include "bmp/flow/verify.hpp"

namespace bmp::util {
class ThreadPool;
}  // namespace bmp::util

namespace bmp::obs {
class Profiler;
class TraceSink;
}  // namespace bmp::obs

namespace bmp::engine {

class PlanCache;
struct CacheStats;

/// Which overlay construction serves a request. kAuto picks the best
/// throughput among the paper's schemes that honors the degree bound,
/// falling back to a bounded-arity tree when nothing else fits.
enum class Algorithm {
  kAuto,
  kAcyclic,        ///< §IV optimal acyclic (dichotomic GreedyTest search)
  kCyclic,         ///< Thm 5.2 cyclic (open-only; acyclic when guarded nodes exist)
  kBaselineTree,   ///< best k-ary tree baseline
  kBaselineChain,  ///< linear chain baseline
};

[[nodiscard]] const char* to_string(Algorithm algorithm);

struct PlanRequest {
  Instance instance;
  Algorithm algorithm = Algorithm::kAuto;
  /// Maximum allowed out-degree, 0 = unbounded. kAuto treats it as a hard
  /// filter; explicit algorithms report violations via degree_bound_met.
  int max_out_degree = 0;
};

struct PlanResponse {
  /// The planned overlay (shared: cache hits alias one immutable scheme).
  std::shared_ptr<const BroadcastScheme> scheme;
  double throughput = 0.0;
  /// Throughput of `scheme` as re-measured by the tiered verifier
  /// (flow/verify.hpp) when PlannerConfig::verify_plans is on; negative
  /// when verification was disabled. Verification runs once per computed
  /// plan — cache hits inherit the stored value. `verified_tier` records
  /// which tier served it (meaningful only when verified_throughput >= 0),
  /// so telemetry never has to re-derive the dispatch structurally.
  double verified_throughput = -1.0;
  flow::VerifyTier verified_tier = flow::VerifyTier::kOracle;
  Algorithm algorithm = Algorithm::kAcyclic;  ///< construction actually used
  int max_degree = 0;                         ///< max out-degree of `scheme`
  bool degree_bound_met = true;
  bool cache_hit = false;  ///< served from cache (or deduped within a batch)
};

/// Thrown by the cached plan() paths while a fault-injected planner outage
/// is active. Callers with a running overlay keep serving it: Session
/// falls back to its incremental repair result (verified, bounded-stale),
/// the runtime queues the request and retries with backoff.
class PlannerUnavailable : public std::runtime_error {
 public:
  PlannerUnavailable() : std::runtime_error("planner unavailable (outage)") {}
};

/// Fault-injection hook for planner outages — same null-by-default
/// convention as the obs:: hooks. The owner (the runtime, or a test)
/// toggles `down`; while set, every cached plan() entry point throws
/// PlannerUnavailable and counts the refusal. plan_uncached stays pure —
/// outages model the *service* failing, not the algorithms.
struct PlannerOutage {
  bool down = false;
  std::uint64_t failures = 0;  ///< plan() calls refused while down
};

struct PlannerConfig {
  std::size_t threads = 0;  ///< worker threads for plan_batch; 0 = hardware
  std::size_t cache_capacity = 4096;  ///< plans retained across requests
  std::size_t cache_shards = 16;
  double fingerprint_bucket = 1e-6;  ///< bandwidth quantum for dedup
  /// Verify every computed plan against the §II.D max-flow definition
  /// before caching it. Near-free since the tiered verifier sweeps the
  /// acyclic constructions in O(V + E) with zero max-flow solves.
  bool verify_plans = true;
  /// Span per plan()/plan_batch() (null = off). Worker threads never touch
  /// the sink: plan_batch emits its per-item spans after the pool barrier
  /// in work-item index order, so the trace is byte-identical for any
  /// thread count.
  obs::TraceSink* trace = nullptr;
  /// Performance attribution (null = off): cache hits/misses, computed
  /// plans and their verification work under "planner/...". Worker threads
  /// record commutative counter sums, so reports are byte-identical for
  /// any thread count (wall time only when the profiler opted in).
  obs::Profiler* profiler = nullptr;
  /// Planner-failure injection (null = no outages ever).
  PlannerOutage* outage = nullptr;
};

class Planner {
 public:
  explicit Planner(PlannerConfig config = {});
  ~Planner();

  Planner(const Planner&) = delete;
  Planner& operator=(const Planner&) = delete;

  /// Plans one request, consulting and populating the cache.
  PlanResponse plan(const PlanRequest& request);

  /// By-reference single-plan path: identical to plan(PlanRequest) but
  /// never copies the Instance into a request carrier — the call sites
  /// that re-plan on every churn event (engine::Session, the runtime) go
  /// through here.
  PlanResponse plan(const Instance& instance, Algorithm algorithm = Algorithm::kAuto,
                    int max_out_degree = 0);

  /// Same cached path, but with a caller-maintained instance fingerprint
  /// (engine::IncrementalFingerprint) instead of the O(n) rehash — the
  /// churn hot path: a Session updates its fingerprint per join/leave
  /// delta and plans without ever re-touching the survivor bandwidths.
  /// `instance_fp` must equal fingerprint(instance,
  /// config().fingerprint_bucket); a mismatched fingerprint silently
  /// poisons the cache, which is why the differential tests replay churn
  /// sequences against the full rehash.
  PlanResponse plan(const Instance& instance, Algorithm algorithm,
                    int max_out_degree, const Fingerprint& instance_fp);

  /// Plans a request stream: responses[i] answers requests[i]. Distinct
  /// fingerprints are planned concurrently; duplicates are planned once and
  /// referenced by index — the batch path never copies an Instance.
  std::vector<PlanResponse> plan_batch(const std::vector<PlanRequest>& requests);

  /// Pure planning, no cache, no pool — the function of record the cached
  /// paths must agree with.
  static PlanResponse plan_uncached(const PlanRequest& request);
  static PlanResponse plan_uncached(const Instance& instance, Algorithm algorithm,
                                    int max_out_degree);

  /// Cache key of a request: instance fingerprint with the algorithm and
  /// degree bound mixed in (same platform, different knobs != same plan).
  [[nodiscard]] Fingerprint request_key(const PlanRequest& request) const;
  [[nodiscard]] Fingerprint request_key(const Instance& instance,
                                        Algorithm algorithm,
                                        int max_out_degree) const;
  /// Key derivation from an already-computed instance fingerprint.
  [[nodiscard]] Fingerprint request_key(const Fingerprint& instance_fp,
                                        Algorithm algorithm,
                                        int max_out_degree) const;

  [[nodiscard]] CacheStats cache_stats() const;
  [[nodiscard]] const PlannerConfig& config() const { return config_; }

 private:
  /// plan_uncached plus tiered verification when config_.verify_plans is
  /// set; every cache miss goes through here exactly once.
  [[nodiscard]] PlanResponse plan_verified(const Instance& instance,
                                           Algorithm algorithm,
                                           int max_out_degree) const;

  PlannerConfig config_;
  std::unique_ptr<PlanCache> cache_;
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace bmp::engine
