// The planning engine's front door: a PlanRequest/PlanResponse API over the
// paper's algorithms, service-grade. One-shot `plan()` consults a sharded
// LRU cache keyed by the request fingerprint; `plan_batch()` dedupes a
// whole request stream by fingerprint and plans the distinct platforms
// concurrently on a util::ThreadPool. Results are deterministic: grouping
// is by fingerprint, never by thread timing, so any thread count produces
// identical responses.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "bmp/core/instance.hpp"
#include "bmp/core/scheme.hpp"
#include "bmp/engine/fingerprint.hpp"

namespace bmp::util {
class ThreadPool;
}  // namespace bmp::util

namespace bmp::engine {

class PlanCache;
struct CacheStats;

/// Which overlay construction serves a request. kAuto picks the best
/// throughput among the paper's schemes that honors the degree bound,
/// falling back to a bounded-arity tree when nothing else fits.
enum class Algorithm {
  kAuto,
  kAcyclic,        ///< §IV optimal acyclic (dichotomic GreedyTest search)
  kCyclic,         ///< Thm 5.2 cyclic (open-only; acyclic when guarded nodes exist)
  kBaselineTree,   ///< best k-ary tree baseline
  kBaselineChain,  ///< linear chain baseline
};

[[nodiscard]] const char* to_string(Algorithm algorithm);

struct PlanRequest {
  Instance instance;
  Algorithm algorithm = Algorithm::kAuto;
  /// Maximum allowed out-degree, 0 = unbounded. kAuto treats it as a hard
  /// filter; explicit algorithms report violations via degree_bound_met.
  int max_out_degree = 0;
};

struct PlanResponse {
  /// The planned overlay (shared: cache hits alias one immutable scheme).
  std::shared_ptr<const BroadcastScheme> scheme;
  double throughput = 0.0;
  Algorithm algorithm = Algorithm::kAcyclic;  ///< construction actually used
  int max_degree = 0;                         ///< max out-degree of `scheme`
  bool degree_bound_met = true;
  bool cache_hit = false;  ///< served from cache (or deduped within a batch)
};

struct PlannerConfig {
  std::size_t threads = 0;  ///< worker threads for plan_batch; 0 = hardware
  std::size_t cache_capacity = 4096;  ///< plans retained across requests
  std::size_t cache_shards = 16;
  double fingerprint_bucket = 1e-6;  ///< bandwidth quantum for dedup
};

class Planner {
 public:
  explicit Planner(PlannerConfig config = {});
  ~Planner();

  Planner(const Planner&) = delete;
  Planner& operator=(const Planner&) = delete;

  /// Plans one request, consulting and populating the cache.
  PlanResponse plan(const PlanRequest& request);

  /// Plans a request stream: responses[i] answers requests[i]. Distinct
  /// fingerprints are planned concurrently; duplicates are planned once.
  std::vector<PlanResponse> plan_batch(const std::vector<PlanRequest>& requests);

  /// Pure planning, no cache, no pool — the function of record the cached
  /// paths must agree with.
  static PlanResponse plan_uncached(const PlanRequest& request);

  /// Cache key of a request: instance fingerprint with the algorithm and
  /// degree bound mixed in (same platform, different knobs != same plan).
  [[nodiscard]] Fingerprint request_key(const PlanRequest& request) const;

  [[nodiscard]] CacheStats cache_stats() const;
  [[nodiscard]] const PlannerConfig& config() const { return config_; }

 private:
  PlannerConfig config_;
  std::unique_ptr<PlanCache> cache_;
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace bmp::engine
