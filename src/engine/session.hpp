// Long-lived planning sessions: a Session owns a planned overlay for one
// platform and absorbs churn events without going back to the full planner
// when it can avoid it. On a departure the overlay is first *restricted*
// to the survivors (sim::restrict_scheme) and then *repaired* in place —
// inflow deficits are patched greedily from survivors that still receive
// the full stream and have spare upload. Only when the repaired overlay's
// verified throughput falls below `replan_threshold` of the design rate
// does the session pay for a full re-plan (which still goes through the
// planner's cache, so identical survivor platforms across sessions dedupe).
#pragma once

#include <memory>
#include <tuple>
#include <vector>

#include "bmp/core/instance.hpp"
#include "bmp/core/scheme.hpp"
#include "bmp/engine/planner.hpp"
#include "bmp/flow/verify.hpp"

namespace bmp::obs {
class TraceSink;
}  // namespace bmp::obs

namespace bmp::engine {

struct RepairResult {
  BroadcastScheme scheme;
  double throughput = 0.0;  ///< verified (min max-flow) after patching
  double added_rate = 0.0;  ///< total edge rate the patch added
};

/// Incremental repair of a restricted overlay: processes survivors in
/// topological order and pulls each node's inflow deficit (w.r.t.
/// `target_rate`) from already fully-fed earlier nodes with residual
/// upload, honoring bandwidth caps and the firewall constraint. Node k of
/// `restricted` must be node k of `survivors` (the numbering produced by
/// sim::remove_nodes + sim::restrict_scheme). Cyclic overlays are returned
/// unpatched (their throughput is still measured).
[[nodiscard]] RepairResult repair_scheme(const Instance& survivors,
                                         const BroadcastScheme& restricted,
                                         double target_rate);

/// Same repair, but the final throughput verification runs through the
/// caller's Verifier — a session reuses one engine (and its scratch) across
/// every churn event and keeps per-tier statistics for the runtime's
/// metrics. `verifier` may be nullptr (falls back to the thread-local one).
[[nodiscard]] RepairResult repair_scheme(const Instance& survivors,
                                         const BroadcastScheme& restricted,
                                         double target_rate,
                                         flow::Verifier* verifier);

struct SessionConfig {
  /// Keep the incremental repair iff its verified throughput reaches this
  /// fraction of the design rate; otherwise fall back to a full re-plan.
  double replan_threshold = 0.9;
  /// Planning knobs used for the initial plan and every full re-plan.
  /// kAcyclic by default: its DAG structure is what repair patches best.
  Algorithm algorithm = Algorithm::kAcyclic;
  int max_out_degree = 0;
  /// Options for the session-owned verification engine (timing collection,
  /// parallel sweep pool, tier forcing).
  flow::VerifyOptions verify{};
  /// Span per repair/adapt outcome (null = off); `trace_id` labels the
  /// channel this session serves in multi-channel hosts.
  obs::TraceSink* trace = nullptr;
  int trace_id = -1;
};

/// A capacity-override adaptation of a live session, issued by the control
/// plane when telemetry shows nominal capacities are no longer real.
struct AdaptationRequest {
  /// Effective upload capacity per *current* slot (index 0 = source); size
  /// must equal instance().size(). Values at or above the nominal cap mean
  /// "restored"; below, "demoted".
  std::vector<double> capacities;
  /// (from, to, max_rate) clamps in current slot numbering — degraded
  /// edges (lossy WAN paths) the repair should route around rather than
  /// keep loading at a rate the wire no longer honors.
  std::vector<std::tuple<int, int, double>> edge_limits;
  /// Skip the incremental patch: re-plan the effective instance through
  /// the planner cache directly (the controller escalates to this when the
  /// effective platform drifts past its fingerprint-distance bound).
  bool force_replan = false;
};

struct ChurnOutcome {
  int departed = 0;
  int survivors = 0;
  double design_rate = 0.0;   ///< reference rate before the event
  double degraded_rate = 0.0; ///< restricted overlay, before repair
  double repaired_rate = 0.0; ///< after incremental patching
  double achieved_rate = 0.0; ///< after the chosen reaction
  bool full_replan = false;   ///< true when repair was not good enough
  /// The event wanted a full re-plan but the planner was down
  /// (PlannerUnavailable): the session kept its best verified incremental
  /// repair instead — degraded but live, with bounded staleness. The host
  /// decides whether to re-plan when the outage clears.
  bool planner_fault = false;
  // Verification telemetry for this event: deltas of the session verifier's
  // stats, plus the planner-side verification when a full re-plan computes
  // (not cache-hits) its plan. Counts are deterministic; verify_us is wall
  // clock, covers only the session's own verifier (planner verification
  // time is attributed to planning), and belongs under a `timing.` prefix.
  int verify_calls = 0;       ///< throughput verifications performed
  int verify_sweep = 0;       ///< ... served by the tier-1 acyclic sweep
  int verify_maxflow = 0;     ///< ... that needed max-flow solves
  double verify_us = 0.0;     ///< wall-clock microseconds spent verifying
};

class Session {
 public:
  /// Plans the initial overlay through `planner` (which must outlive the
  /// session). `instance` carries the per-node upload caps the session plans
  /// against — a broker that partitions node budgets across sessions hands
  /// each one a scaled instance rather than the full platform.
  Session(Planner& planner, Instance instance, SessionConfig config = {});

  [[nodiscard]] const Instance& instance() const { return instance_; }
  [[nodiscard]] const BroadcastScheme& scheme() const { return *scheme_; }
  /// The per-node upload capacity vector currently planned against, in the
  /// instance's sorted numbering (index 0 = source). This is the session's
  /// side of the broker contract: callers audit brokered allocations against
  /// it instead of re-reading the full platform.
  [[nodiscard]] std::vector<double> capacities() const;
  /// Throughput of the last *full* plan — the reference churn is judged by.
  [[nodiscard]] double design_rate() const { return design_rate_; }
  /// Verified throughput of the overlay currently in service.
  [[nodiscard]] double current_rate() const { return current_rate_; }
  [[nodiscard]] int incremental_replans() const { return incremental_replans_; }
  [[nodiscard]] int full_replans() const { return full_replans_; }
  /// Cumulative statistics of the session's verification engine (tier
  /// counts, solve counts, wall-clock time).
  [[nodiscard]] const flow::VerifyStats& verify_stats() const {
    return verifier_.stats();
  }
  /// Whether the constructor's plan was verified planner-side (it was
  /// computed, not served from cache, with verify_plans on) — so a host
  /// can count session creation in its verification telemetry.
  [[nodiscard]] bool initial_plan_verified() const {
    return initial_plan_verified_;
  }
  [[nodiscard]] flow::VerifyTier initial_plan_tier() const {
    return initial_plan_tier_;
  }

  /// Absorbs the departure of `departed` (current sorted-instance node ids,
  /// source excluded; throws on bad ids). Updates the session's platform
  /// and overlay and reports what happened.
  ChurnOutcome on_departure(const std::vector<int>& departed);

  /// Re-plans the session on *effective* capacities (the control plane's
  /// telemetry-derived view of what each node can actually push). Same
  /// node set, new caps: the overlay is first permuted into the effective
  /// instance's sorted order, clamped to the per-edge limits and the new
  /// sender caps, then patched incrementally toward the capacity-scaled
  /// design rate — falling back to a full (cached) re-plan when the patch
  /// misses the replan threshold or `force_replan` demands it. Slot order
  /// may change (caps re-sort); callers remap through
  /// instance().original_id exactly as after on_departure.
  ChurnOutcome adapt(const AdaptationRequest& request);

  /// Capacity renegotiation: multiplies every node's upload cap by `factor`
  /// (> 0, finite). Scaling all caps uniformly scales the optimal overlay by
  /// the same factor, so the current scheme and rates are rescaled exactly —
  /// no re-plan, no cache traffic — and node k stays node k.
  void rescale(double factor);

 private:
  /// Emits the span for one absorbed churn/adaptation event (no-op when
  /// tracing is off).
  void trace_churn(const char* name, const ChurnOutcome& outcome,
                   double wall_us) const;

  Planner& planner_;
  SessionConfig config_;
  Instance instance_;
  /// The platform fingerprint, maintained incrementally: O(1) per departed
  /// node instead of rehashing every survivor bandwidth on each churn
  /// event. Always equals fingerprint(instance_, planner cache bucket).
  IncrementalFingerprint instance_fp_;
  /// Owned verification engine: scratch and stats persist across every
  /// churn event this session absorbs.
  flow::Verifier verifier_;
  std::shared_ptr<const BroadcastScheme> scheme_;
  double design_rate_ = 0.0;
  /// Total capacity of the platform design_rate_ was planned on — the
  /// denominator of adapt()'s capacity-ratio target, so repeated repair-
  /// path adaptations never compound against an already-adapted total.
  double design_total_ = 0.0;
  double current_rate_ = 0.0;
  int incremental_replans_ = 0;
  int full_replans_ = 0;
  bool initial_plan_verified_ = false;
  flow::VerifyTier initial_plan_tier_ = flow::VerifyTier::kOracle;
};

}  // namespace bmp::engine
