#include "bmp/engine/session.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <utility>

#include "bmp/flow/maxflow.hpp"
#include "bmp/obs/trace.hpp"
#include "bmp/sim/churn.hpp"

namespace bmp::engine {

RepairResult repair_scheme(const Instance& survivors,
                           const BroadcastScheme& restricted,
                           double target_rate) {
  return repair_scheme(survivors, restricted, target_rate, nullptr);
}

RepairResult repair_scheme(const Instance& survivors,
                           const BroadcastScheme& restricted,
                           double target_rate, flow::Verifier* verifier) {
  if (restricted.num_nodes() != survivors.size()) {
    throw std::invalid_argument("repair_scheme: instance/scheme size mismatch");
  }
  RepairResult result{restricted, 0.0, 0.0};
  BroadcastScheme& scheme = result.scheme;
  const int num_nodes = scheme.num_nodes();
  if (scheme.is_acyclic() && target_rate > 0.0 && num_nodes > 1) {
    const double tol = 1e-9 * std::max(1.0, target_rate);
    // Patch each node's inflow up to target_rate. Any sender works as long
    // as the overlay stays a DAG — i.e. the sender is not a *descendant* of
    // the receiver in the current (partially patched) overlay. Acyclicity
    // plus inflow >= tau everywhere is sufficient for throughput tau: for
    // any source/j cut, the topologically first node outside the cut has
    // all its in-edges crossing it, so min-cut(0 -> j) >= tau. The final
    // rate is re-verified by max-flow below either way.
    std::vector<double> out(static_cast<std::size_t>(num_nodes), 0.0);
    std::vector<double> in(static_cast<std::size_t>(num_nodes), 0.0);
    for (int i = 0; i < num_nodes; ++i) {
      out[static_cast<std::size_t>(i)] = scheme.out_rate(i);
      in[static_cast<std::size_t>(i)] = scheme.in_rate(i);
    }
    std::vector<char> blocked(static_cast<std::size_t>(num_nodes), 0);
    std::vector<int> stack;
    // Conservative sender preference (the paper's Lemma 4.3 principle):
    // guarded upload cannot reach guarded receivers, so open receivers
    // drain guarded senders first, keeping source + open upload for the
    // guarded nodes that have no alternative. Guarded receivers are
    // patched first for the same reason.
    std::vector<int> receivers;
    receivers.reserve(static_cast<std::size_t>(num_nodes - 1));
    for (int i = 1; i < num_nodes; ++i) {
      if (survivors.is_guarded(i)) receivers.push_back(i);
    }
    for (int i = 1; i < num_nodes; ++i) {
      if (!survivors.is_guarded(i)) receivers.push_back(i);
    }
    std::vector<int> sender_order;
    sender_order.reserve(static_cast<std::size_t>(num_nodes));
    for (int i = 1; i < num_nodes; ++i) {
      if (survivors.is_guarded(i)) sender_order.push_back(i);
    }
    for (int i = 1; i < num_nodes; ++i) {
      if (!survivors.is_guarded(i)) sender_order.push_back(i);
    }
    sender_order.push_back(0);
    // Dust consolidation: an edge carrying under 2% of the target is
    // scheduling residue — in a chunk-level execution one transmission on
    // it takes dozens of chunk periods, squatting receiver window slots
    // and taking rare chunks hostage. Drop such edges outright; the patch
    // pass below re-sources the freed inflow from senders with real
    // residual capacity, as few, fat edges.
    const double dust = 0.02 * target_rate;
    std::vector<std::tuple<int, int, double>> dust_edges;
    for (int sender = 0; sender < num_nodes; ++sender) {
      for (const auto& [to, rate] : scheme.out_edges(sender)) {
        if (rate > tol && rate < dust) dust_edges.emplace_back(sender, to, rate);
      }
    }
    for (const auto& [sender, to, rate] : dust_edges) {
      scheme.add(sender, to, -rate);
      out[static_cast<std::size_t>(sender)] -= rate;
      in[static_cast<std::size_t>(to)] -= rate;
    }
    // Trim pass: when repairing toward a *reduced* target, survivors still
    // fed at the old (higher) design rate hold upload hostage. Cut their
    // inflow down to the target, releasing open/source upload first — it
    // is the only class guarded receivers can draw from. Within a class,
    // cut the *smallest* edges first: the receiver's main arteries survive
    // repeated repairs untouched (a live stream keeps its in-flight pipes)
    // and residue trickle edges are garbage-collected before real ones.
    std::vector<std::pair<double, int>> cuttable;
    for (int receiver = 1; receiver < num_nodes; ++receiver) {
      double excess = in[static_cast<std::size_t>(receiver)] - target_rate;
      if (excess <= tol) continue;
      for (int cls = 0; cls < 2 && excess > tol; ++cls) {
        cuttable.clear();
        for (int sender = 0; sender < num_nodes; ++sender) {
          const bool sender_guarded = survivors.is_guarded(sender);
          if ((cls == 0) == sender_guarded) continue;  // open first, then guarded
          const double rate = scheme.rate(sender, receiver);
          if (rate > tol) cuttable.emplace_back(rate, sender);
        }
        std::sort(cuttable.begin(), cuttable.end());
        for (const auto& [rate, sender] : cuttable) {
          if (excess <= tol) break;
          const double cut = std::min(excess, rate);
          scheme.add(sender, receiver, -cut);
          out[static_cast<std::size_t>(sender)] -= cut;
          in[static_cast<std::size_t>(receiver)] -= cut;
          excess -= cut;
        }
      }
    }
    for (const int receiver : receivers) {
      double deficit = target_rate - in[static_cast<std::size_t>(receiver)];
      if (deficit <= tol) continue;
      // Senders reachable *from* the receiver would close a cycle.
      std::fill(blocked.begin(), blocked.end(), 0);
      blocked[static_cast<std::size_t>(receiver)] = 1;
      stack.assign(1, receiver);
      while (!stack.empty()) {
        const int v = stack.back();
        stack.pop_back();
        for (const auto& [to, rate] : scheme.out_edges(v)) {
          (void)rate;
          if (!blocked[static_cast<std::size_t>(to)]) {
            blocked[static_cast<std::size_t>(to)] = 1;
            stack.push_back(to);
          }
        }
      }
      for (const int sender : sender_order) {
        if (deficit <= tol) break;
        if (blocked[static_cast<std::size_t>(sender)]) continue;
        if (survivors.is_guarded(sender) && survivors.is_guarded(receiver)) {
          continue;
        }
        const double residual =
            survivors.b(sender) - out[static_cast<std::size_t>(sender)];
        if (residual <= tol) continue;
        const double take = std::min(deficit, residual);
        scheme.add(sender, receiver, take);
        out[static_cast<std::size_t>(sender)] += take;
        in[static_cast<std::size_t>(receiver)] += take;
        result.added_rate += take;
        deficit -= take;
      }
    }
    // Reroute pass for guarded receivers the direct patch could not fill:
    // source/open upload may be fully committed to *open* receivers that
    // idle guarded upload could serve instead. Swap such an edge over
    // (guarded g takes the open receiver x, open sender s turns to the
    // guarded receiver) — the conservative exchange of Lemma 4.3. Each
    // swap is applied tentatively and reverted if it would close a cycle.
    for (const int receiver : receivers) {
      if (!survivors.is_guarded(receiver)) break;  // guardeds lead the list
      double deficit = target_rate - in[static_cast<std::size_t>(receiver)];
      if (deficit <= tol) continue;
      for (const int s : sender_order) {
        if (deficit <= tol) break;
        if (survivors.is_guarded(s)) continue;  // need an open/source sender
        const std::vector<std::pair<int, double>> edges(
            scheme.out_edges(s).begin(), scheme.out_edges(s).end());
        for (const auto& [x, rate_sx] : edges) {
          if (deficit <= tol) break;
          if (x == receiver || survivors.is_guarded(x)) continue;
          double movable = std::min(deficit, rate_sx);
          for (const int g : sender_order) {
            if (movable <= tol || deficit <= tol) break;
            if (!survivors.is_guarded(g) || g == x) continue;
            const double residual_g =
                survivors.b(g) - out[static_cast<std::size_t>(g)];
            if (residual_g <= tol) continue;
            const double delta = std::min(movable, residual_g);
            scheme.add(g, x, delta);
            scheme.add(s, x, -delta);
            scheme.add(s, receiver, delta);
            if (!scheme.is_acyclic()) {
              scheme.add(s, receiver, -delta);
              scheme.add(s, x, delta);
              scheme.add(g, x, -delta);
              continue;
            }
            out[static_cast<std::size_t>(g)] += delta;
            in[static_cast<std::size_t>(receiver)] += delta;
            result.added_rate += delta;
            deficit -= delta;
            movable -= delta;
          }
        }
      }
    }
  }
  if (num_nodes <= 1) {
    result.throughput = 0.0;
  } else if (verifier != nullptr) {
    result.throughput = verifier->verify(scheme).throughput;
  } else {
    result.throughput = flow::scheme_throughput(scheme);
  }
  return result;
}

Session::Session(Planner& planner, Instance instance, SessionConfig config)
    : planner_(planner),
      config_(config),
      instance_(std::move(instance)),
      instance_fp_(instance_, planner.config().fingerprint_bucket),
      verifier_(config.verify) {
  if (config_.replan_threshold < 0.0 || config_.replan_threshold > 1.0) {
    throw std::invalid_argument("Session: replan_threshold in [0,1]");
  }
  const PlanResponse response = planner_.plan(
      instance_, config_.algorithm, config_.max_out_degree, instance_fp_.value());
  scheme_ = response.scheme;
  design_rate_ = response.throughput;
  design_total_ = instance_.total_sum();
  current_rate_ = response.throughput;
  initial_plan_verified_ =
      !response.cache_hit && response.verified_throughput >= 0.0;
  initial_plan_tier_ = response.verified_tier;
}

std::vector<double> Session::capacities() const {
  std::vector<double> caps(static_cast<std::size_t>(instance_.size()));
  for (int i = 0; i < instance_.size(); ++i) {
    caps[static_cast<std::size_t>(i)] = instance_.b(i);
  }
  return caps;
}

void Session::rescale(double factor) {
  if (!std::isfinite(factor) || factor <= 0.0) {
    throw std::invalid_argument("Session::rescale: factor must be > 0");
  }
  // Rebuild the instance from its sorted order: scaling by a positive factor
  // preserves the non-increasing order, and the stable per-class sort keeps
  // every node at its current index.
  std::vector<double> open;
  std::vector<double> guarded;
  for (int i = 1; i < instance_.size(); ++i) {
    (instance_.is_guarded(i) ? guarded : open).push_back(instance_.b(i) * factor);
  }
  Instance scaled(instance_.b(0) * factor, std::move(open), std::move(guarded));
  BroadcastScheme scheme(scheme_->num_nodes());
  for (int i = 0; i < scheme_->num_nodes(); ++i) {
    for (const auto& [to, rate] : scheme_->out_edges(i)) {
      scheme.add(i, to, rate * factor);
    }
  }
  instance_ = std::move(scaled);
  // Every bandwidth moved: reseed the fingerprint (O(n), like the rescale
  // itself — renegotiations are rare next to churn deltas).
  instance_fp_ = IncrementalFingerprint(instance_,
                                        planner_.config().fingerprint_bucket);
  scheme_ = std::make_shared<const BroadcastScheme>(std::move(scheme));
  design_rate_ *= factor;
  design_total_ *= factor;
  current_rate_ *= factor;
}

void Session::trace_churn(const char* name, const ChurnOutcome& outcome,
                          double wall_us) const {
  if (config_.trace == nullptr) return;
  config_.trace->complete(obs::Lane::kSession, "engine", name,
                          {{"channel", config_.trace_id},
                           {"departed", outcome.departed},
                           {"survivors", outcome.survivors},
                           {"degraded_rate", outcome.degraded_rate},
                           {"repaired_rate", outcome.repaired_rate},
                           {"achieved_rate", outcome.achieved_rate},
                           {"full_replan", outcome.full_replan},
                           {"planner_fault", outcome.planner_fault},
                           {"verify_calls", outcome.verify_calls}},
                          wall_us);
}

ChurnOutcome Session::adapt(const AdaptationRequest& request) {
  const obs::WallTimer timer(config_.trace);
  ChurnOutcome outcome;
  outcome.design_rate = design_rate_;
  const int size = instance_.size();
  if (static_cast<int>(request.capacities.size()) != size) {
    throw std::invalid_argument("Session::adapt: capacities size mismatch");
  }
  for (const double cap : request.capacities) {
    if (!is_valid_bandwidth(cap)) {
      throw std::invalid_argument("Session::adapt: invalid capacity");
    }
  }
  // Validate everything up front: once the fingerprint starts absorbing
  // capacity deltas below, a throw would leave it desynced from instance_.
  for (const auto& [from, to, limit] : request.edge_limits) {
    if (from < 0 || from >= size || to < 0 || to >= size || from == to ||
        limit < 0.0 || !std::isfinite(limit)) {
      throw std::invalid_argument("Session::adapt: bad edge limit");
    }
  }
  outcome.survivors = size - 1;
  if (size <= 1) {
    outcome.achieved_rate = current_rate_;
    return outcome;
  }

  // Effective platform in the *current slot* caller numbering: class sizes
  // are unchanged, so the new instance's original_id(j) is directly the old
  // slot the (possibly re-sorted) node j came from.
  std::vector<double> open;
  std::vector<double> guarded;
  for (int i = 1; i < size; ++i) {
    (instance_.is_guarded(i) ? guarded : open).push_back(request.capacities[
        static_cast<std::size_t>(i)]);
  }
  Instance effective(request.capacities[0], std::move(open),
                     std::move(guarded));
  // The fingerprint follows the capacity deltas node by node (most
  // adaptations touch a handful of nodes, not the platform).
  for (int i = 1; i < size; ++i) {
    const double before = instance_.b(i);
    const double after = request.capacities[static_cast<std::size_t>(i)];
    if (before == after) continue;
    if (instance_.is_guarded(i)) {
      instance_fp_.remove_guarded(before);
      instance_fp_.add_guarded(after);
    } else {
      instance_fp_.remove_open(before);
      instance_fp_.add_open(after);
    }
  }
  if (instance_.b(0) != request.capacities[0]) {
    instance_fp_.set_source(request.capacities[0]);
  }

  // Permute the live overlay into the effective numbering.
  std::vector<int> new_of_old(static_cast<std::size_t>(size), 0);
  for (int j = 0; j < size; ++j) {
    new_of_old[static_cast<std::size_t>(effective.original_id(j))] = j;
  }
  BroadcastScheme permuted(size);
  for (int i = 0; i < size; ++i) {
    for (const auto& [to, rate] : scheme_->out_edges(i)) {
      permuted.add(new_of_old[static_cast<std::size_t>(i)],
                   new_of_old[static_cast<std::size_t>(to)], rate);
    }
  }
  // Degraded-edge clamps: cut each named edge down to the goodput the wire
  // actually honors, so the repair pulls the receiver's deficit from
  // healthier senders instead.
  for (const auto& [from, to, limit] : request.edge_limits) {
    const int nf = new_of_old[static_cast<std::size_t>(from)];
    const int nt = new_of_old[static_cast<std::size_t>(to)];
    const double rate = permuted.rate(nf, nt);
    if (rate > limit) permuted.add(nf, nt, -(rate - limit));
  }
  // Sender clamp: a demoted node's planned out-rate may exceed what it can
  // push now — scale its out-edges proportionally into the effective cap.
  for (int i = 0; i < size; ++i) {
    const double out = permuted.out_rate(i);
    const double cap = effective.b(i);
    if (out <= cap || out <= 0.0) continue;
    const double scale = cap / out;
    const std::vector<std::pair<int, double>> edges(
        permuted.out_edges(i).begin(), permuted.out_edges(i).end());
    for (const auto& [to, rate] : edges) {
      permuted.add(i, to, -(rate * (1.0 - scale)));
    }
  }

  const flow::VerifyStats before = verifier_.stats();
  outcome.degraded_rate = verifier_.verify(permuted).throughput;
  // The reference the adaptation is judged by: the design rate scaled by
  // the capacity ratio against the *design* platform total (uniformly
  // rescaling every cap by f rescales the optimum by exactly f, so this
  // is the natural first-order target — a 4x brownout of 10% of the
  // platform targets ~0.925x design, and a later restore back to nominal
  // targets exactly the design rate again instead of compounding ratios
  // of already-adapted totals).
  const double new_total = effective.total_sum();
  const double target = design_total_ > 0.0
                            ? design_rate_ * (new_total / design_total_)
                            : design_rate_;
  const double tol = 1e-9 * std::max(1.0, design_rate_);
  const double bar = config_.replan_threshold * target;
  bool replan_verified = false;
  flow::VerifyTier replan_tier = flow::VerifyTier::kOracle;
  bool patched = false;
  // Best below-bar repair, held back in case the full re-plan finds the
  // planner down (fault injection): verified, just not good enough — which
  // beats serving nothing during an outage.
  std::optional<RepairResult> kept_repair;
  if (!request.force_replan) {
    const double fractions[] = {1.0, (1.0 + config_.replan_threshold) / 2.0,
                                config_.replan_threshold};
    RepairResult repair = repair_scheme(effective, permuted, target, &verifier_);
    for (std::size_t f = 1; f < 3 && repair.throughput + tol < bar; ++f) {
      RepairResult attempt =
          repair_scheme(effective, permuted, fractions[f] * target, &verifier_);
      if (attempt.throughput > repair.throughput) repair = std::move(attempt);
    }
    outcome.repaired_rate = repair.throughput;
    if (repair.throughput + tol >= bar) {
      scheme_ = std::make_shared<const BroadcastScheme>(std::move(repair.scheme));
      current_rate_ = repair.throughput;
      ++incremental_replans_;
      patched = true;
    } else {
      kept_repair.emplace(std::move(repair));
    }
  }
  if (!patched) {
    try {
      const PlanResponse response =
          planner_.plan(effective, config_.algorithm, config_.max_out_degree,
                        instance_fp_.value());
      replan_verified = !response.cache_hit && response.verified_throughput >= 0.0;
      replan_tier = response.verified_tier;
      scheme_ = response.scheme;
      design_rate_ = response.throughput;
      design_total_ = new_total;
      current_rate_ = response.throughput;
      ++full_replans_;
      outcome.full_replan = true;
    } catch (const PlannerUnavailable&) {
      // Planner outage: keep serving on the incremental repair (computing
      // one now if force_replan skipped it). The overlay is verified and at
      // most one churn event stale; the host re-plans when the outage ends.
      outcome.planner_fault = true;
      if (!kept_repair) {
        kept_repair.emplace(
            repair_scheme(effective, permuted, target, &verifier_));
        outcome.repaired_rate = kept_repair->throughput;
      }
      scheme_ = std::make_shared<const BroadcastScheme>(
          std::move(kept_repair->scheme));
      current_rate_ = kept_repair->throughput;
      ++incremental_replans_;
    }
  }
  instance_ = std::move(effective);
  const flow::VerifyStats& after = verifier_.stats();
  outcome.verify_calls = static_cast<int>(after.calls - before.calls);
  outcome.verify_sweep = static_cast<int>(after.tier_sweep - before.tier_sweep);
  outcome.verify_maxflow =
      static_cast<int>(after.tier_maxflow - before.tier_maxflow);
  outcome.verify_us = after.total_us - before.total_us;
  if (replan_verified) {
    ++outcome.verify_calls;
    (replan_tier == flow::VerifyTier::kAcyclicSweep ? outcome.verify_sweep
                                                    : outcome.verify_maxflow) += 1;
  }
  outcome.achieved_rate = current_rate_;
  trace_churn("adapt", outcome, timer.elapsed_us());
  return outcome;
}

ChurnOutcome Session::on_departure(const std::vector<int>& departed) {
  const obs::WallTimer timer(config_.trace);
  ChurnOutcome outcome;
  outcome.design_rate = design_rate_;
  if (departed.empty()) {
    outcome.survivors = instance_.size() - 1;
    outcome.degraded_rate = current_rate_;
    outcome.repaired_rate = current_rate_;
    outcome.achieved_rate = current_rate_;
    return outcome;
  }

  Instance survivors = sim::remove_nodes(instance_, departed);
  BroadcastScheme restricted = sim::restrict_scheme(*scheme_, departed);
  // remove_nodes validated the ids (and tolerates duplicates via its
  // bitmap — mirror that); the fingerprint follows the platform in O(1)
  // per departure instead of rehashing every survivor.
  std::vector<char> gone(static_cast<std::size_t>(instance_.size()), 0);
  for (const int node : departed) {
    if (gone[static_cast<std::size_t>(node)]) continue;
    gone[static_cast<std::size_t>(node)] = 1;
    instance_fp_.remove(instance_, node);
  }
  outcome.departed = static_cast<int>(departed.size());
  outcome.survivors = survivors.size() - 1;
  if (outcome.survivors <= 0) {
    instance_ = std::move(survivors);
    scheme_ = std::make_shared<const BroadcastScheme>(std::move(restricted));
    current_rate_ = 0.0;
    outcome.achieved_rate = 0.0;
    return outcome;
  }

  const flow::VerifyStats before = verifier_.stats();
  outcome.degraded_rate = verifier_.verify(restricted).throughput;
  const double tol = 1e-9 * std::max(1.0, design_rate_);
  const double bar = config_.replan_threshold * design_rate_;
  // Descending target ladder: full design rate first, then reduced targets
  // down to the acceptance bar (each one trims over-fed survivors to free
  // upload for the deficits). Keep the first repair that clears the bar.
  const double fractions[] = {1.0, (1.0 + config_.replan_threshold) / 2.0,
                              config_.replan_threshold};
  RepairResult repair =
      repair_scheme(survivors, restricted, design_rate_, &verifier_);
  for (std::size_t f = 1; f < 3 && repair.throughput + tol < bar; ++f) {
    if (fractions[f] >= 1.0) continue;
    RepairResult attempt = repair_scheme(
        survivors, restricted, fractions[f] * design_rate_, &verifier_);
    if (attempt.throughput > repair.throughput) repair = std::move(attempt);
  }
  outcome.repaired_rate = repair.throughput;
  bool replan_verified = false;
  flow::VerifyTier replan_tier = flow::VerifyTier::kOracle;
  if (repair.throughput + tol >= config_.replan_threshold * design_rate_) {
    instance_ = std::move(survivors);
    scheme_ = std::make_shared<const BroadcastScheme>(std::move(repair.scheme));
    current_rate_ = repair.throughput;
    ++incremental_replans_;
  } else {
    try {
      const PlanResponse response =
          planner_.plan(survivors, config_.algorithm, config_.max_out_degree,
                        instance_fp_.value());
      // Cache hits reuse a plan whose verification already happened (and was
      // already counted) when it was first computed.
      replan_verified =
          !response.cache_hit && response.verified_throughput >= 0.0;
      replan_tier = response.verified_tier;
      instance_ = std::move(survivors);
      scheme_ = response.scheme;
      design_rate_ = response.throughput;
      design_total_ = instance_.total_sum();
      current_rate_ = response.throughput;
      ++full_replans_;
      outcome.full_replan = true;
    } catch (const PlannerUnavailable&) {
      // Planner outage: the below-bar repair is still a verified overlay of
      // exactly the survivor set — keep serving on it rather than stalling
      // the stream. The host re-plans when the outage ends.
      outcome.planner_fault = true;
      instance_ = std::move(survivors);
      scheme_ =
          std::make_shared<const BroadcastScheme>(std::move(repair.scheme));
      current_rate_ = repair.throughput;
      ++incremental_replans_;
    }
  }
  const flow::VerifyStats& after = verifier_.stats();
  outcome.verify_calls = static_cast<int>(after.calls - before.calls);
  outcome.verify_sweep = static_cast<int>(after.tier_sweep - before.tier_sweep);
  outcome.verify_maxflow =
      static_cast<int>(after.tier_maxflow - before.tier_maxflow);
  outcome.verify_us = after.total_us - before.total_us;
  if (replan_verified) {
    // The computed full re-plan was verified planner-side (thread-local
    // verifier); count it here so the runtime's verify.* metrics cover
    // every verification this event triggered. Its wall-clock cost is
    // attributed to planning, not verify_us.
    ++outcome.verify_calls;
    (replan_tier == flow::VerifyTier::kAcyclicSweep ? outcome.verify_sweep
                                                    : outcome.verify_maxflow) += 1;
  }
  outcome.achieved_rate = current_rate_;
  trace_churn("repair", outcome, timer.elapsed_us());
  return outcome;
}

}  // namespace bmp::engine
