#include "bmp/engine/planner.hpp"

#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "bmp/baselines/baselines.hpp"
#include "bmp/core/acyclic_search.hpp"
#include "bmp/core/bounds.hpp"
#include "bmp/core/cyclic_open.hpp"
#include "bmp/engine/plan_cache.hpp"
#include "bmp/flow/verify.hpp"
#include "bmp/obs/profiler.hpp"
#include "bmp/obs/trace.hpp"
#include "bmp/util/thread_pool.hpp"

namespace bmp::engine {

const char* to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kAuto: return "auto";
    case Algorithm::kAcyclic: return "acyclic";
    case Algorithm::kCyclic: return "cyclic";
    case Algorithm::kBaselineTree: return "kary-tree";
    case Algorithm::kBaselineChain: return "chain";
  }
  return "?";
}

namespace {

PlanResponse make_response(BroadcastScheme scheme, double throughput,
                           Algorithm used, int bound) {
  PlanResponse response;
  response.max_degree = scheme.max_out_degree();
  response.scheme = std::make_shared<const BroadcastScheme>(std::move(scheme));
  response.throughput = throughput;
  response.algorithm = used;
  response.degree_bound_met = bound == 0 || response.max_degree <= bound;
  return response;
}

PlanResponse plan_acyclic(const Instance& instance, int bound) {
  AcyclicSolution solution = solve_acyclic(instance);
  return make_response(std::move(solution.scheme), solution.throughput,
                       Algorithm::kAcyclic, bound);
}

/// Thm 5.2 requires an open-only platform with at least one peer; anything
/// else degrades to the acyclic construction (which is then optimal anyway
/// for n == 0, and the only guarded-capable scheme we have).
PlanResponse plan_cyclic(const Instance& instance, int bound) {
  if (instance.m() != 0 || instance.n() < 1) {
    return plan_acyclic(instance, bound);
  }
  const double t_star = cyclic_open_optimal(instance);
  return make_response(build_cyclic_open(instance, t_star), t_star,
                       Algorithm::kCyclic, bound);
}

PlanResponse plan_auto(const Instance& instance, int bound) {
  std::vector<PlanResponse> candidates;
  candidates.push_back(plan_acyclic(instance, bound));
  if (instance.m() == 0 && instance.n() >= 1) {
    candidates.push_back(plan_cyclic(instance, bound));
  }
  if (bound > 0) {
    // Low-degree fallbacks for tight bounds the optimal schemes overshoot.
    // Tree throughput is not monotone in arity (a wide tree can run out of
    // open interior capacity), so scan every arity the bound allows.
    for (int arity = 1; arity <= bound; ++arity) {
      baselines::BaselineResult tree = baselines::kary_tree(instance, arity);
      candidates.push_back(make_response(std::move(tree.scheme), tree.throughput,
                                         Algorithm::kBaselineTree, bound));
    }
    baselines::BaselineResult chain = baselines::chain(instance);
    candidates.push_back(make_response(std::move(chain.scheme), chain.throughput,
                                       Algorithm::kBaselineChain, bound));
  }

  PlanResponse* best = nullptr;
  for (PlanResponse& candidate : candidates) {
    if (!candidate.degree_bound_met) continue;
    if (best == nullptr || candidate.throughput > best->throughput) {
      best = &candidate;
    }
  }
  if (best == nullptr) {
    // Nothing honors the bound; surface the lowest-degree candidate.
    for (PlanResponse& candidate : candidates) {
      if (best == nullptr || candidate.max_degree < best->max_degree) {
        best = &candidate;
      }
    }
  }
  return std::move(*best);
}

}  // namespace

PlanResponse Planner::plan_uncached(const Instance& instance,
                                    Algorithm algorithm, int max_out_degree) {
  if (max_out_degree < 0) {
    throw std::invalid_argument("Planner: max_out_degree must be >= 0");
  }
  switch (algorithm) {
    case Algorithm::kAuto:
      return plan_auto(instance, max_out_degree);
    case Algorithm::kAcyclic:
      return plan_acyclic(instance, max_out_degree);
    case Algorithm::kCyclic:
      return plan_cyclic(instance, max_out_degree);
    case Algorithm::kBaselineTree: {
      baselines::BaselineResult tree = baselines::best_kary_tree(instance);
      return make_response(std::move(tree.scheme), tree.throughput,
                           Algorithm::kBaselineTree, max_out_degree);
    }
    case Algorithm::kBaselineChain: {
      baselines::BaselineResult chain = baselines::chain(instance);
      return make_response(std::move(chain.scheme), chain.throughput,
                           Algorithm::kBaselineChain, max_out_degree);
    }
  }
  throw std::invalid_argument("Planner: unknown algorithm");
}

PlanResponse Planner::plan_uncached(const PlanRequest& request) {
  return plan_uncached(request.instance, request.algorithm,
                       request.max_out_degree);
}

PlanResponse Planner::plan_verified(const Instance& instance,
                                    Algorithm algorithm,
                                    int max_out_degree) const {
  // The compute scope covers construction *and* verification; both the
  // one-shot path and the plan_batch workers land here, so the profiler's
  // "computed" counter equals the cache-miss count for any thread count.
  obs::PhaseScope scope(config_.profiler, "planner/compute");
  PlanResponse response = plan_uncached(instance, algorithm, max_out_degree);
  if (config_.verify_plans && response.scheme != nullptr &&
      response.scheme->num_nodes() > 1) {
    // verify_throughput goes through a thread-local Verifier, so
    // plan_batch workers each reuse their own scratch across the batch.
    const flow::VerifyResult verified = flow::verify_throughput(*response.scheme);
    response.verified_throughput = verified.throughput;
    response.verified_tier = verified.tier;
    if (config_.profiler != nullptr) {
      config_.profiler->enter("planner/compute/verify");
      config_.profiler->count("planner/compute/verify",
                              verified.tier == flow::VerifyTier::kAcyclicSweep
                                  ? "tier1_sweeps"
                                  : "tier2_verifies");
      if (verified.maxflow_solves > 0) {
        config_.profiler->count(
            "planner/compute/verify", "solves",
            static_cast<std::uint64_t>(verified.maxflow_solves));
        config_.profiler->count("planner/compute/verify", "bfs_rounds",
                                verified.bfs_rounds);
      }
    }
  }
  return response;
}

Planner::Planner(PlannerConfig config)
    : config_(config),
      cache_(std::make_unique<PlanCache>(config.cache_capacity,
                                         config.cache_shards)),
      pool_(std::make_unique<util::ThreadPool>(config.threads)) {}

Planner::~Planner() = default;

Fingerprint Planner::request_key(const Fingerprint& instance_fp,
                                 Algorithm algorithm,
                                 int max_out_degree) const {
  Fingerprint key = instance_fp;
  key.hash = mix64(key.hash ^
                   (static_cast<std::uint64_t>(algorithm) << 32) ^
                   static_cast<std::uint64_t>(
                       static_cast<std::uint32_t>(max_out_degree)));
  return key;
}

Fingerprint Planner::request_key(const Instance& instance, Algorithm algorithm,
                                 int max_out_degree) const {
  return request_key(fingerprint(instance, config_.fingerprint_bucket),
                     algorithm, max_out_degree);
}

Fingerprint Planner::request_key(const PlanRequest& request) const {
  return request_key(request.instance, request.algorithm,
                     request.max_out_degree);
}

PlanResponse Planner::plan(const Instance& instance, Algorithm algorithm,
                           int max_out_degree) {
  return plan(instance, algorithm, max_out_degree,
              fingerprint(instance, config_.fingerprint_bucket));
}

PlanResponse Planner::plan(const Instance& instance, Algorithm algorithm,
                           int max_out_degree,
                           const Fingerprint& instance_fp) {
  if (config_.outage != nullptr && config_.outage->down) {
    // Injected outage: the planning *service* is down (cache included —
    // a real outage takes the whole endpoint, not just cold misses).
    ++config_.outage->failures;
    throw PlannerUnavailable();
  }
  const Fingerprint key = request_key(instance_fp, algorithm, max_out_degree);
  if (std::shared_ptr<const PlanResponse> cached = cache_->lookup(key)) {
    PlanResponse response = *cached;
    response.cache_hit = true;
    if (config_.profiler != nullptr) {
      config_.profiler->enter("planner/plan");
      config_.profiler->count("planner/plan", "cache_hits");
    }
    if (config_.trace != nullptr) {
      config_.trace->complete(obs::Lane::kPlanner, "engine", "plan",
                              {{"alg", to_string(algorithm)},
                               {"n", instance.size()},
                               {"cache_hit", true},
                               {"throughput", response.throughput}});
    }
    return response;
  }
  if (config_.profiler != nullptr) {
    config_.profiler->enter("planner/plan");
    config_.profiler->count("planner/plan", "cache_misses");
  }
  const obs::WallTimer timer(config_.trace);
  PlanResponse response = plan_verified(instance, algorithm, max_out_degree);
  cache_->insert(key, std::make_shared<const PlanResponse>(response));
  if (config_.trace != nullptr) {
    config_.trace->complete(obs::Lane::kPlanner, "engine", "plan",
                            {{"alg", to_string(response.algorithm)},
                             {"n", instance.size()},
                             {"cache_hit", false},
                             {"throughput", response.throughput}},
                            timer.elapsed_us());
  }
  return response;
}

PlanResponse Planner::plan(const PlanRequest& request) {
  return plan(request.instance, request.algorithm, request.max_out_degree);
}

std::vector<PlanResponse> Planner::plan_batch(
    const std::vector<PlanRequest>& requests) {
  if (config_.outage != nullptr && config_.outage->down) {
    ++config_.outage->failures;
    throw PlannerUnavailable();
  }
  // One work item per distinct fingerprint, in first-occurrence order so the
  // dedup structure (and therefore every response) is independent of thread
  // count and timing. Requests are grouped purely by index: the Instance is
  // never copied — workers read it through requests[first_index], and the
  // fingerprint lives only in the dedup map.
  struct WorkItem {
    Fingerprint key;
    std::size_t first_index = 0;
    std::shared_ptr<const PlanResponse> plan;
    bool from_cache = false;
    double wall_us = -1.0;  ///< per-item plan time, read post-barrier
  };
  std::vector<WorkItem> work;
  std::vector<std::size_t> item_of(requests.size());
  std::unordered_map<Fingerprint, std::size_t, FingerprintHasher> seen;
  seen.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Fingerprint key = request_key(requests[i]);
    const auto [it, inserted] = seen.emplace(key, work.size());
    if (inserted) {
      work.push_back(WorkItem{key, i, nullptr, false});
    }
    item_of[i] = it->second;
  }

  for (WorkItem& item : work) {
    item.plan = cache_->lookup(item.key);
    item.from_cache = item.plan != nullptr;
  }

  const obs::WallTimer batch_timer(config_.trace);
  util::parallel_for(
      *pool_, 0, work.size(),
      [&](std::size_t w) {
        WorkItem& item = work[w];
        if (item.plan != nullptr) return;
        const PlanRequest& request = requests[item.first_index];
        const obs::WallTimer timer(config_.trace);
        auto plan = std::make_shared<const PlanResponse>(plan_verified(
            request.instance, request.algorithm, request.max_out_degree));
        item.wall_us = timer.elapsed_us();
        cache_->insert(item.key, plan);
        item.plan = std::move(plan);
      },
      /*chunk=*/1);

  if (config_.profiler != nullptr) {
    // Post-barrier, like the trace spans: batch totals are recorded once
    // from this thread (the per-item compute/verify counters were summed
    // commutatively by the workers).
    std::size_t cached = 0;
    for (const WorkItem& item : work) {
      if (item.from_cache) ++cached;
    }
    config_.profiler->enter("planner/plan_batch");
    config_.profiler->count("planner/plan_batch", "requests", requests.size());
    config_.profiler->count("planner/plan_batch", "distinct", work.size());
    config_.profiler->count("planner/plan_batch", "cache_hits", cached);
    config_.profiler->count("planner/plan_batch", "computed",
                            work.size() - cached);
  }
  if (config_.trace != nullptr) {
    // Emitted after the barrier, from this thread, in work-item order:
    // append order (and the sequence numbers) never depends on which
    // worker finished first.
    std::size_t computed = 0;
    for (const WorkItem& item : work) {
      if (!item.from_cache) ++computed;
    }
    config_.trace->complete(
        obs::Lane::kPlanner, "engine", "plan_batch",
        {{"requests", static_cast<std::uint64_t>(requests.size())},
         {"distinct", static_cast<std::uint64_t>(work.size())},
         {"computed", static_cast<std::uint64_t>(computed)}},
        batch_timer.elapsed_us());
    for (const WorkItem& item : work) {
      const PlanRequest& request = requests[item.first_index];
      config_.trace->complete(obs::Lane::kPlanner, "engine", "plan",
                              {{"alg", to_string(item.plan->algorithm)},
                               {"n", request.instance.size()},
                               {"cache_hit", item.from_cache},
                               {"throughput", item.plan->throughput}},
                              item.wall_us);
    }
  }

  std::vector<PlanResponse> responses(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const WorkItem& item = work[item_of[i]];
    responses[i] = *item.plan;
    // A response is a "hit" when its plan was not computed for this very
    // request: either it was cached across batches, or a duplicate earlier
    // in this batch already triggered the computation.
    responses[i].cache_hit = item.from_cache || i != item.first_index;
  }
  return responses;
}

CacheStats Planner::cache_stats() const { return cache_->stats(); }

}  // namespace bmp::engine
