#include "bmp/engine/fingerprint.hpp"

#include <cmath>
#include <stdexcept>

#include "bmp/util/rng.hpp"

namespace bmp::engine {

std::uint64_t mix64(std::uint64_t x) noexcept {
  return util::splitmix64(x);  // value-state use of the shared finalizer
}

namespace {

// Per-class salts keep {open 3, guarded 5} distinct from {open 5,
// guarded 3} even when the counts n == m collide.
constexpr std::uint64_t kSourceSalt = 0x626d702d73726355ULL;  // "bmp-srcU"
constexpr std::uint64_t kOpenSalt = 0x626d702d6f70656eULL;    // "bmp-open"
constexpr std::uint64_t kGuardedSalt = 0x626d702d67756172ULL; // "bmp-guar"

std::uint64_t quantize(double bandwidth, double bucket) {
  const double q = std::nearbyint(bandwidth / bucket);
  if (q < 0.0 || q > 9.2e18) {
    throw std::invalid_argument("fingerprint: bandwidth/bucket out of range");
  }
  return static_cast<std::uint64_t>(q);
}

void check_bucket(double bucket) {
  if (!(bucket > 0.0) || !std::isfinite(bucket)) {
    throw std::invalid_argument("fingerprint: bucket must be positive");
  }
}

/// One node's commutative contribution: a full 64-bit mix of its quantized
/// bandwidth keyed by its class, so wrapping addition over nodes behaves
/// like a multiset hash.
std::uint64_t term(double bandwidth, double bucket, std::uint64_t salt) {
  return mix64(mix64(quantize(bandwidth, bucket)) ^ salt);
}

}  // namespace

IncrementalFingerprint::IncrementalFingerprint(const Instance& instance,
                                               double bucket)
    : bucket_(bucket) {
  check_bucket(bucket);
  set_source(instance.b(0));
  for (int i = 1; i < instance.size(); ++i) {
    if (instance.is_guarded(i)) {
      add_guarded(instance.b(i));
    } else {
      add_open(instance.b(i));
    }
  }
}

void IncrementalFingerprint::set_source(double bandwidth) {
  source_term_ = term(bandwidth, bucket_, kSourceSalt);
}

void IncrementalFingerprint::add_open(double bandwidth) {
  sum_ += term(bandwidth, bucket_, kOpenSalt);
  ++n_;
}

void IncrementalFingerprint::remove_open(double bandwidth) {
  if (n_ <= 0) {
    throw std::invalid_argument("IncrementalFingerprint: no open node left");
  }
  sum_ -= term(bandwidth, bucket_, kOpenSalt);
  --n_;
}

void IncrementalFingerprint::add_guarded(double bandwidth) {
  sum_ += term(bandwidth, bucket_, kGuardedSalt);
  ++m_;
}

void IncrementalFingerprint::remove_guarded(double bandwidth) {
  if (m_ <= 0) {
    throw std::invalid_argument(
        "IncrementalFingerprint: no guarded node left");
  }
  sum_ -= term(bandwidth, bucket_, kGuardedSalt);
  --m_;
}

void IncrementalFingerprint::remove(const Instance& instance, int i) {
  if (i <= 0 || i >= instance.size()) {
    throw std::invalid_argument("IncrementalFingerprint: bad node id");
  }
  if (instance.is_guarded(i)) {
    remove_guarded(instance.b(i));
  } else {
    remove_open(instance.b(i));
  }
}

Fingerprint IncrementalFingerprint::value() const {
  Fingerprint fp;
  fp.n = n_;
  fp.m = m_;
  // Final mix binds the class counts so multiset collisions across class
  // splits can't alias, and diffuses the commutative sum.
  fp.hash = mix64(sum_ ^ mix64(source_term_ ^
                               ((static_cast<std::uint64_t>(
                                     static_cast<std::uint32_t>(n_))
                                 << 32) |
                                static_cast<std::uint32_t>(m_))));
  return fp;
}

Fingerprint fingerprint(const Instance& instance, double bucket) {
  return IncrementalFingerprint(instance, bucket).value();
}

}  // namespace bmp::engine
