#include "bmp/engine/fingerprint.hpp"

#include <cmath>
#include <stdexcept>

#include "bmp/util/rng.hpp"

namespace bmp::engine {

std::uint64_t mix64(std::uint64_t x) noexcept {
  return util::splitmix64(x);  // value-state use of the shared finalizer
}

namespace {

std::uint64_t quantize(double bandwidth, double bucket) {
  const double q = std::nearbyint(bandwidth / bucket);
  if (q < 0.0 || q > 9.2e18) {
    throw std::invalid_argument("fingerprint: bandwidth/bucket out of range");
  }
  return static_cast<std::uint64_t>(q);
}

}  // namespace

Fingerprint fingerprint(const Instance& instance, double bucket) {
  if (!(bucket > 0.0) || !std::isfinite(bucket)) {
    throw std::invalid_argument("fingerprint: bucket must be positive");
  }
  Fingerprint fp;
  fp.n = instance.n();
  fp.m = instance.m();
  // Nodes are visited in the instance's canonical (sorted) order; a class
  // boundary marker keeps {open 3, guarded 5} distinct from {open 5,
  // guarded 3} even when n == m.
  std::uint64_t h = mix64(0x626d70ULL);  // "bmp"
  h = mix64(h ^ static_cast<std::uint64_t>(fp.n));
  h = mix64(h ^ static_cast<std::uint64_t>(fp.m));
  for (int i = 0; i < instance.size(); ++i) {
    if (i == fp.n + 1) h = mix64(h ^ 0x67756172ULL);  // "guar" class marker
    h = mix64(h ^ quantize(instance.b(i), bucket));
  }
  fp.hash = h;
  return fp;
}

}  // namespace bmp::engine
