#include "bmp/engine/plan_cache.hpp"

#include <algorithm>

namespace bmp::engine {

PlanCache::PlanCache(std::size_t capacity, std::size_t shards) {
  shards = std::max<std::size_t>(1, shards);
  if (capacity > 0) {
    per_shard_capacity_ = (capacity + shards - 1) / shards;
  }
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

PlanCache::Shard& PlanCache::shard_for(const Fingerprint& key) {
  // Re-mix so shard choice is independent of the index's bucket choice.
  const std::uint64_t h = mix64(key.hash ^ 0x5ca1ab1eULL);
  return *shards_[static_cast<std::size_t>(h % shards_.size())];
}

std::shared_ptr<const PlanResponse> PlanCache::lookup(const Fingerprint& key) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void PlanCache::insert(const Fingerprint& key,
                       std::shared_ptr<const PlanResponse> value) {
  if (per_shard_capacity_ == 0) return;
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.insertions;
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, std::move(value));
  shard.index.emplace(key, shard.lru.begin());
  while (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

CacheStats PlanCache::stats() const {
  CacheStats total;
  total.capacity = per_shard_capacity_ * shards_.size();
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.evictions += shard->evictions;
    total.insertions += shard->insertions;
    total.size += shard->lru.size();
  }
  return total;
}

std::size_t PlanCache::size() const {
  std::size_t size = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    size += shard->lru.size();
  }
  return size;
}

void PlanCache::clear() {
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
  }
}

}  // namespace bmp::engine
