// Canonical, order-insensitive fingerprint of a platform Instance, the
// dedup key of the planning engine. Two requests for "the same" platform —
// same class sizes, same multiset of bandwidths up to a bucket width — must
// collide so the plan cache can serve one plan for both.
//
// Canonicalization is inherited from Instance itself: bandwidths are stored
// non-increasingly per class, so hashing the stored order is insensitive to
// the caller's input order. Bandwidths are quantized to `bucket` before
// hashing, absorbing measurement jitter (LastMile estimates of the same
// platform rarely agree to the last ulp). Fingerprints taken with different
// bucket widths are incomparable — keep one width per cache.
#pragma once

#include <cstddef>
#include <cstdint>

#include "bmp/core/instance.hpp"

namespace bmp::engine {

struct Fingerprint {
  std::uint64_t hash = 0;
  std::int32_t n = 0;  ///< open-node count (cheap collision guard)
  std::int32_t m = 0;  ///< guarded-node count

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) {
    return a.hash == b.hash && a.n == b.n && a.m == b.m;
  }
  friend bool operator!=(const Fingerprint& a, const Fingerprint& b) {
    return !(a == b);
  }
};

struct FingerprintHasher {
  [[nodiscard]] std::size_t operator()(const Fingerprint& fp) const noexcept {
    return static_cast<std::size_t>(fp.hash);
  }
};

/// 64-bit mixing (splitmix64 finalizer) — shared by the engine's hashes.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept;

/// Fingerprint of `instance` with bandwidths quantized to multiples of
/// `bucket` (> 0; values within bucket/2 of each other may or may not
/// collide — equality is only guaranteed for identical quantized grids).
[[nodiscard]] Fingerprint fingerprint(const Instance& instance,
                                      double bucket = 1e-6);

}  // namespace bmp::engine
