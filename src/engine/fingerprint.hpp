// Canonical, order-insensitive fingerprint of a platform Instance, the
// dedup key of the planning engine. Two requests for "the same" platform —
// same class sizes, same multiset of bandwidths up to a bucket width — must
// collide so the plan cache can serve one plan for both.
//
// The hash is *commutative*: each node contributes one keyed 64-bit term
// (its quantized bandwidth mixed with a per-class salt) and the terms are
// combined by wrapping addition, so the digest only depends on the multiset
// of (class, quantized bandwidth) pairs — never on order. That makes it
// *incrementally maintainable*: IncrementalFingerprint keeps the running
// sum and updates it in O(1) per join/leave delta, instead of rehashing the
// whole survivor platform on every churn event (the engine::Session hot
// path at runtime scale). Bandwidths are quantized to `bucket` before
// hashing, absorbing measurement jitter (LastMile estimates of the same
// platform rarely agree to the last ulp). Fingerprints taken with
// different bucket widths are incomparable — keep one width per cache.
#pragma once

#include <cstddef>
#include <cstdint>

#include "bmp/core/instance.hpp"

namespace bmp::engine {

struct Fingerprint {
  std::uint64_t hash = 0;
  std::int32_t n = 0;  ///< open-node count (cheap collision guard)
  std::int32_t m = 0;  ///< guarded-node count

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) {
    return a.hash == b.hash && a.n == b.n && a.m == b.m;
  }
  friend bool operator!=(const Fingerprint& a, const Fingerprint& b) {
    return !(a == b);
  }
};

struct FingerprintHasher {
  [[nodiscard]] std::size_t operator()(const Fingerprint& fp) const noexcept {
    return static_cast<std::size_t>(fp.hash);
  }
};

/// 64-bit mixing (splitmix64 finalizer) — shared by the engine's hashes.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept;

/// Fingerprint of `instance` with bandwidths quantized to multiples of
/// `bucket` (> 0; values within bucket/2 of each other may or may not
/// collide — equality is only guaranteed for identical quantized grids).
[[nodiscard]] Fingerprint fingerprint(const Instance& instance,
                                      double bucket = 1e-6);

/// The live form of the same digest: seeded from a platform once, then
/// maintained under joins and leaves in O(1) per delta. `value()` is
/// guaranteed to equal `fingerprint(current platform, bucket)` at every
/// step — the differential tests in tests/test_engine.cpp replay random
/// churn sequences against the full rehash to enforce exactly that.
class IncrementalFingerprint {
 public:
  IncrementalFingerprint() = default;
  /// Seeds from `instance` (one full pass, the last one this platform
  /// needs).
  IncrementalFingerprint(const Instance& instance, double bucket);

  void set_source(double bandwidth);
  void add_open(double bandwidth);
  void remove_open(double bandwidth);
  void add_guarded(double bandwidth);
  void remove_guarded(double bandwidth);
  /// Removes node `i` of `instance` (sorted numbering, not the source),
  /// picking the class from the instance — the churn-event form.
  void remove(const Instance& instance, int i);

  [[nodiscard]] double bucket() const { return bucket_; }
  [[nodiscard]] Fingerprint value() const;

 private:
  double bucket_ = 1e-6;
  std::uint64_t source_term_ = 0;
  std::uint64_t sum_ = 0;  ///< wrapping sum of per-node keyed terms
  std::int32_t n_ = 0;
  std::int32_t m_ = 0;
};

}  // namespace bmp::engine
