#include "bmp/lp/throughput_lp.hpp"

#include <stdexcept>

#include "bmp/obs/profiler.hpp"

namespace bmp::lp {

namespace {

ThroughputLpResult solve_with_edges(const Instance& instance,
                                    const std::vector<std::pair<int, int>>& edges,
                                    obs::Profiler* profiler) {
  const int N = instance.size();
  LinearProgram lp;
  lp.set_maximize(true);

  const int var_T = lp.add_variable(1.0);
  std::vector<int> var_c(edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e) var_c[e] = lp.add_variable(0.0);

  // f^k_e for each sink k = 1..N-1.
  std::vector<std::vector<int>> var_f(static_cast<std::size_t>(N));
  for (int k = 1; k < N; ++k) {
    auto& fk = var_f[static_cast<std::size_t>(k)];
    fk.resize(edges.size());
    for (std::size_t e = 0; e < edges.size(); ++e) fk[e] = lp.add_variable(0.0);
  }

  // Bandwidth per node.
  for (int i = 0; i < N; ++i) {
    std::vector<std::pair<int, double>> terms;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (edges[e].first == i) terms.emplace_back(var_c[e], 1.0);
    }
    if (!terms.empty()) {
      lp.add_constraint(std::move(terms), Relation::kLe, instance.b(i));
    }
  }

  for (int k = 1; k < N; ++k) {
    const auto& fk = var_f[static_cast<std::size_t>(k)];
    // Capacity coupling f^k_e <= c_e.
    for (std::size_t e = 0; e < edges.size(); ++e) {
      lp.add_constraint({{fk[e], 1.0}, {var_c[e], -1.0}}, Relation::kLe, 0.0);
    }
    // Conservation at intermediate nodes; net inflow >= T at the sink.
    for (int v = 1; v < N; ++v) {
      std::vector<std::pair<int, double>> terms;
      for (std::size_t e = 0; e < edges.size(); ++e) {
        if (edges[e].second == v) terms.emplace_back(fk[e], 1.0);
        if (edges[e].first == v) terms.emplace_back(fk[e], -1.0);
      }
      if (v == k) {
        terms.emplace_back(var_T, -1.0);
        lp.add_constraint(std::move(terms), Relation::kGe, 0.0);
      } else {
        lp.add_constraint(std::move(terms), Relation::kEq, 0.0);
      }
    }
  }

  const Solution sol = lp.solve();
  if (profiler != nullptr) {
    profiler->enter("lp/solve");
    profiler->count("lp/solve", "pivots",
                    static_cast<std::uint64_t>(sol.pivots));
    profiler->count("lp/solve", "variables",
                    static_cast<std::uint64_t>(lp.num_variables()));
    profiler->count("lp/solve", "constraints",
                    static_cast<std::uint64_t>(lp.num_constraints()));
  }
  ThroughputLpResult result{sol.status, 0.0, BroadcastScheme(N), sol.pivots};
  if (sol.status != Status::kOptimal) return result;
  result.throughput = sol.values[static_cast<std::size_t>(var_T)];
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const double rate = sol.values[static_cast<std::size_t>(var_c[e])];
    if (rate > BroadcastScheme::kZeroTol) {
      result.scheme.add(edges[e].first, edges[e].second, rate);
    }
  }
  return result;
}

}  // namespace

ThroughputLpResult cyclic_optimal_lp(const Instance& instance,
                                     obs::Profiler* profiler) {
  std::vector<std::pair<int, int>> edges;
  const int N = instance.size();
  for (int i = 0; i < N; ++i) {
    for (int j = 1; j < N; ++j) {
      if (i == j) continue;
      if (instance.is_guarded(i) && instance.is_guarded(j)) continue;
      edges.emplace_back(i, j);
    }
  }
  return solve_with_edges(instance, edges, profiler);
}

ThroughputLpResult acyclic_order_optimal_lp(const Instance& instance,
                                            const std::vector<int>& order,
                                            obs::Profiler* profiler) {
  if (static_cast<int>(order.size()) != instance.size() || order.empty() ||
      order.front() != 0) {
    throw std::invalid_argument(
        "acyclic_order_optimal_lp: order must list all nodes, source first");
  }
  std::vector<std::pair<int, int>> edges;
  for (std::size_t a = 0; a < order.size(); ++a) {
    for (std::size_t b = a + 1; b < order.size(); ++b) {
      const int i = order[a];
      const int j = order[b];
      if (instance.is_guarded(i) && instance.is_guarded(j)) continue;
      edges.emplace_back(i, j);
    }
  }
  return solve_with_edges(instance, edges, profiler);
}

ThroughputLpResult acyclic_word_optimal_lp(const Instance& instance,
                                           const Word& word,
                                           obs::Profiler* profiler) {
  if (count_open(word) != instance.n() || count_guarded(word) != instance.m()) {
    throw std::invalid_argument("acyclic_word_optimal_lp: letter counts mismatch");
  }
  std::vector<int> order{0};
  int opens = 0;
  int guardeds = 0;
  for (const Letter letter : word) {
    if (letter == Letter::kOpen) {
      order.push_back(++opens);
    } else {
      ++guardeds;
      order.push_back(instance.n() + guardeds);
    }
  }
  return acyclic_order_optimal_lp(instance, order, profiler);
}

}  // namespace bmp::lp
