// Dense two-phase primal simplex over doubles, with Bland's anti-cycling
// rule. This is the self-contained replacement for the GLPK/CPLEX-class
// solver the paper's authors used (see DESIGN.md substitutions): it serves
// as an independent optimum oracle for small instances, cross-validating
// the combinatorial algorithms (closed-form cyclic bound, T*_ac(σ), ...).
//
// Model: variables x_j >= 0; constraints sum_j a_ij x_j {<=,>=,=} b_i;
// maximize or minimize sum_j c_j x_j.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace bmp::lp {

enum class Relation { kLe, kGe, kEq };
enum class Status { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct Solution {
  Status status = Status::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;  ///< one per structural variable
  /// Pivot operations across both phases (drive-out pivots included) — the
  /// deterministic work measure the profiler attributes LP cost by.
  std::size_t pivots = 0;
};

class LinearProgram {
 public:
  /// Adds a non-negative variable with the given objective coefficient;
  /// returns its index.
  int add_variable(double objective_coefficient = 0.0);

  /// Adds `sum coeff*x {rel} rhs`. Terms are (variable index, coefficient);
  /// duplicate indices are summed.
  void add_constraint(std::vector<std::pair<int, double>> terms, Relation rel,
                      double rhs);

  void set_maximize(bool maximize) { maximize_ = maximize; }

  [[nodiscard]] int num_variables() const { return static_cast<int>(objective_.size()); }
  [[nodiscard]] int num_constraints() const { return static_cast<int>(rows_.size()); }

  [[nodiscard]] Solution solve(std::size_t max_pivots = 200000) const;

 private:
  struct Row {
    std::vector<std::pair<int, double>> terms;
    Relation rel;
    double rhs;
  };

  std::vector<double> objective_;
  std::vector<Row> rows_;
  bool maximize_ = true;
};

}  // namespace bmp::lp
