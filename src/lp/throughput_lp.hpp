// LP formulations of the broadcast throughput problem, used as an
// *independent optimum oracle* on small instances:
//
//   maximize T
//   s.t.  sum_j c_ij <= b_i                       (bandwidth, per node)
//         f^k_ij <= c_ij                          (per sink k, per edge)
//         flow conservation of f^k at v != 0, k   (per sink, per node)
//         net inflow of f^k at k >= T             (per sink)
//         c_ij = 0 on forbidden edges             (firewall / order)
//
// This is exactly min_k maxflow(C0->Ck) >= T by LP duality, i.e. the paper's
// throughput definition. With all firewall-respecting edges allowed it
// yields the optimal *cyclic* throughput (validating the Lemma 5.1 closed
// form); restricted to σ-forward edges it yields T*_ac(σ).
//
// Size grows as O(N^2 * N) variables — keep N <= ~8.
#pragma once

#include <vector>

#include "bmp/core/instance.hpp"
#include "bmp/core/scheme.hpp"
#include "bmp/core/word.hpp"
#include "bmp/lp/simplex.hpp"

namespace bmp::obs {
class Profiler;
}  // namespace bmp::obs

namespace bmp::lp {

struct ThroughputLpResult {
  Status status = Status::kInfeasible;
  double throughput = 0.0;
  BroadcastScheme scheme;  ///< optimal c_ij (valid when status == kOptimal)
  std::size_t pivots = 0;  ///< simplex pivots spent (lp::Solution::pivots)
};

/// Optimal cyclic throughput (all edges except guarded->guarded and into
/// the source). `profiler` (null = off) records calls / pivots / tableau
/// size under "lp/solve".
ThroughputLpResult cyclic_optimal_lp(const Instance& instance,
                                     obs::Profiler* profiler = nullptr);

/// Optimal acyclic throughput for the given serving order (node ids,
/// source first). Edges only from earlier to later positions.
ThroughputLpResult acyclic_order_optimal_lp(const Instance& instance,
                                            const std::vector<int>& order,
                                            obs::Profiler* profiler = nullptr);

/// Convenience: order encoded by a coding word (increasing order semantics).
ThroughputLpResult acyclic_word_optimal_lp(const Instance& instance,
                                           const Word& word,
                                           obs::Profiler* profiler = nullptr);

}  // namespace bmp::lp
