#include "bmp/lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace bmp::lp {

namespace {

constexpr double kEps = 1e-9;

/// Dense tableau: rows_ x cols_ with the rhs in the last column and the
/// (phase-specific) objective in the last row.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_((rows + 1) * cols, 0.0) {}

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  double& obj(std::size_t c) { return at(rows_, c); }
  [[nodiscard]] double obj(std::size_t c) const { return at(rows_, c); }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  void pivot(std::size_t pr, std::size_t pc) {
    const double inv = 1.0 / at(pr, pc);
    for (std::size_t c = 0; c < cols_; ++c) at(pr, c) *= inv;
    at(pr, pc) = 1.0;
    for (std::size_t r = 0; r <= rows_; ++r) {
      if (r == pr) continue;
      const double factor = at(r, pc);
      if (std::abs(factor) < kEps * 1e-3) continue;
      for (std::size_t c = 0; c < cols_; ++c) at(r, c) -= factor * at(pr, c);
      at(r, pc) = 0.0;
    }
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

/// Runs simplex iterations (minimization form: objective row holds reduced
/// costs; entering column has reduced cost < -eps). Bland's rule.
Status iterate(Tableau& t, std::vector<std::size_t>& basis,
               std::size_t num_cols_eligible, std::size_t& budget,
               std::size_t& pivots) {
  const std::size_t rhs = t.cols() - 1;
  while (budget-- > 0) {
    // Entering variable: smallest index with negative reduced cost.
    std::size_t enter = num_cols_eligible;
    for (std::size_t c = 0; c < num_cols_eligible; ++c) {
      if (t.obj(c) < -kEps) {
        enter = c;
        break;
      }
    }
    if (enter == num_cols_eligible) return Status::kOptimal;

    // Leaving row: min ratio, ties broken by smallest basis index (Bland).
    std::size_t leave = t.rows();
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < t.rows(); ++r) {
      const double a = t.at(r, enter);
      if (a > kEps) {
        const double ratio = t.at(r, rhs) / a;
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps &&
             (leave == t.rows() || basis[r] < basis[leave]))) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave == t.rows()) return Status::kUnbounded;
    t.pivot(leave, enter);
    ++pivots;
    basis[leave] = enter;
  }
  return Status::kIterationLimit;
}

}  // namespace

int LinearProgram::add_variable(double objective_coefficient) {
  objective_.push_back(objective_coefficient);
  return static_cast<int>(objective_.size()) - 1;
}

void LinearProgram::add_constraint(std::vector<std::pair<int, double>> terms,
                                   Relation rel, double rhs) {
  for (const auto& [var, coeff] : terms) {
    if (var < 0 || var >= num_variables()) {
      throw std::out_of_range("LinearProgram: constraint references unknown variable");
    }
    (void)coeff;
  }
  rows_.push_back({std::move(terms), rel, rhs});
}

Solution LinearProgram::solve(std::size_t max_pivots) const {
  const std::size_t m = rows_.size();
  const std::size_t n = objective_.size();

  // Column layout: [structural n][slack/surplus per row][artificial per row]
  // (unused slots left at zero), then rhs.
  const std::size_t slack0 = n;
  const std::size_t art0 = n + m;
  const std::size_t rhs = n + 2 * m;
  Tableau t(m, rhs + 1);
  std::vector<std::size_t> basis(m);
  std::vector<bool> is_artificial_col(rhs, false);

  for (std::size_t r = 0; r < m; ++r) {
    const Row& row = rows_[r];
    double sign = 1.0;
    Relation rel = row.rel;
    if (row.rhs < 0.0) {
      sign = -1.0;  // normalize to non-negative rhs
      rel = row.rel == Relation::kLe
                ? Relation::kGe
                : (row.rel == Relation::kGe ? Relation::kLe : Relation::kEq);
    }
    for (const auto& [var, coeff] : row.terms) {
      t.at(r, static_cast<std::size_t>(var)) += sign * coeff;
    }
    t.at(r, rhs) = sign * row.rhs;

    switch (rel) {
      case Relation::kLe:
        t.at(r, slack0 + r) = 1.0;
        basis[r] = slack0 + r;
        break;
      case Relation::kGe:
        t.at(r, slack0 + r) = -1.0;
        t.at(r, art0 + r) = 1.0;
        basis[r] = art0 + r;
        is_artificial_col[art0 + r] = true;
        break;
      case Relation::kEq:
        t.at(r, art0 + r) = 1.0;
        basis[r] = art0 + r;
        is_artificial_col[art0 + r] = true;
        break;
    }
  }

  std::size_t budget = max_pivots;
  std::size_t pivots = 0;
  const auto failed = [&pivots](Status status) {
    Solution solution;
    solution.status = status;
    solution.pivots = pivots;
    return solution;
  };

  // ---- Phase 1: minimize the sum of artificials. ----
  bool any_artificial = false;
  for (std::size_t c = 0; c < rhs; ++c) {
    if (is_artificial_col[c]) {
      t.obj(c) = 1.0;
      any_artificial = true;
    }
  }
  if (any_artificial) {
    // Eliminate basic (artificial) columns from the objective row.
    for (std::size_t r = 0; r < m; ++r) {
      if (is_artificial_col[basis[r]]) {
        for (std::size_t c = 0; c <= rhs; ++c) t.obj(c) -= t.at(r, c);
      }
    }
    const Status phase1 = iterate(t, basis, rhs, budget, pivots);
    if (phase1 == Status::kIterationLimit) return failed(Status::kIterationLimit);
    if (-t.obj(rhs) > 1e-6) return failed(Status::kInfeasible);
    // Drive remaining artificials out of the basis (degenerate rows).
    for (std::size_t r = 0; r < m; ++r) {
      if (!is_artificial_col[basis[r]]) continue;
      std::size_t pivot_col = rhs;
      for (std::size_t c = 0; c < art0; ++c) {
        if (std::abs(t.at(r, c)) > kEps) {
          pivot_col = c;
          break;
        }
      }
      if (pivot_col != rhs) {
        t.pivot(r, pivot_col);
        ++pivots;
        basis[r] = pivot_col;
      }
      // else: the row is all-zero over real columns; harmless.
    }
  }

  // ---- Phase 2: real objective (as minimization of -c for maximize). ----
  for (std::size_t c = 0; c <= rhs; ++c) t.obj(c) = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    t.obj(c) = maximize_ ? -objective_[c] : objective_[c];
  }
  // Artificial columns must never re-enter: give them prohibitive cost by
  // excluding them from the eligible column range (they sit past art0).
  for (std::size_t r = 0; r < m; ++r) {
    if (std::abs(t.obj(basis[r])) > 0.0) {
      const double factor = t.obj(basis[r]);
      for (std::size_t c = 0; c <= rhs; ++c) t.obj(c) -= factor * t.at(r, c);
    }
  }
  const Status phase2 = iterate(t, basis, art0, budget, pivots);
  if (phase2 == Status::kIterationLimit) return failed(Status::kIterationLimit);
  if (phase2 == Status::kUnbounded) return failed(Status::kUnbounded);

  Solution solution;
  solution.status = Status::kOptimal;
  solution.pivots = pivots;
  solution.values.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (basis[r] < n) solution.values[basis[r]] = t.at(r, rhs);
  }
  double objective_value = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    objective_value += objective_[c] * solution.values[c];
  }
  solution.objective = objective_value;
  return solution;
}

}  // namespace bmp::lp
