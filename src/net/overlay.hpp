// Overlay-network layer (paper §II.A): NAT/firewall connectivity between
// node classes, overlay materialization of a broadcast scheme into per-node
// TCP connection lists with QoS bandwidth caps, and a relay planner that
// routes guarded->guarded demands through open nodes (the "third party
// node acts as a relay for the packets" workaround when hole punching
// fails).
#pragma once

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "bmp/core/instance.hpp"
#include "bmp/core/scheme.hpp"

namespace bmp::net {

enum class NodeClass : std::uint8_t { kOpen, kGuarded };

/// Pairwise reachability model: open-open and open-guarded pairs always
/// connect; guarded-guarded pairs connect only if hole punching succeeds
/// (probability hole_punch_success, sampled once per unordered pair with a
/// deterministic seed — symmetric and stable).
class Connectivity {
 public:
  Connectivity(std::vector<NodeClass> classes, double hole_punch_success = 0.0,
               std::uint64_t seed = 0);

  static Connectivity from_instance(const Instance& instance,
                                    double hole_punch_success = 0.0,
                                    std::uint64_t seed = 0);

  [[nodiscard]] int size() const { return static_cast<int>(classes_.size()); }
  [[nodiscard]] NodeClass node_class(int i) const;
  [[nodiscard]] bool can_connect(int a, int b) const;
  /// Guarded pairs whose hole punching succeeded.
  [[nodiscard]] int punched_pairs() const;

 private:
  std::vector<NodeClass> classes_;
  std::vector<std::vector<bool>> punched_;
};

/// One QoS-capped TCP connection of the overlay.
struct Connection {
  int from;
  int to;
  double bandwidth_cap;
};

/// A deployable overlay: the broadcast scheme's edges as connection lists,
/// validated against the connectivity model.
class Overlay {
 public:
  /// Throws std::invalid_argument if the scheme uses an unconnectable pair.
  static Overlay from_scheme(const Instance& instance,
                             const BroadcastScheme& scheme,
                             const Connectivity& connectivity);

  [[nodiscard]] const std::vector<Connection>& connections() const {
    return connections_;
  }
  [[nodiscard]] int fan_out(int node) const;
  [[nodiscard]] double upload_of(int node) const;
  [[nodiscard]] int num_nodes() const { return num_nodes_; }
  /// Human-readable per-node connection table.
  [[nodiscard]] std::string describe(const Instance& instance) const;

 private:
  std::vector<Connection> connections_;
  int num_nodes_ = 0;
};

/// A logical guarded->guarded transfer that needs an open relay.
struct RelayDemand {
  int src;
  int dst;
  double rate;
};

struct RelayRoute {
  int src;
  int dst;
  int relay;
  double rate;
};

struct RelayPlan {
  bool feasible = false;
  std::vector<RelayRoute> routes;
  double relay_bandwidth_used = 0.0;  ///< extra upload burned on second hops
};

/// Greedily assigns each demand (split across relays if needed) to open
/// nodes with remaining relay budget. Relaying rate r consumes r of the
/// relay's budget (the src->relay hop uses the demand's own upload).
/// `relay_budget[k]` is the spare upload of the k-th open node id in
/// `relay_ids`.
RelayPlan plan_relays(const std::vector<RelayDemand>& demands,
                      const std::vector<int>& relay_ids,
                      std::vector<double> relay_budget);

}  // namespace bmp::net
