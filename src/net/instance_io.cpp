#include "bmp/net/instance_io.hpp"

#include <sstream>
#include <stdexcept>

namespace bmp::net {

namespace {
[[noreturn]] void fail(int line, const std::string& what) {
  throw std::invalid_argument("platform parse error, line " +
                              std::to_string(line) + ": " + what);
}
}  // namespace

PlatformFile parse_platform(std::istream& in) {
  double source_bw = -1.0;
  std::vector<double> open;
  std::vector<double> guarded;
  std::vector<std::string> open_labels;
  std::vector<std::string> guarded_labels;

  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;  // blank / comment line
    double bw = 0.0;
    if (!(ls >> bw)) fail(line_no, "expected a bandwidth after '" + kind + "'");
    if (bw < 0.0) fail(line_no, "negative bandwidth");
    std::string label;
    ls >> label;  // optional
    if (kind == "source") {
      if (source_bw >= 0.0) fail(line_no, "duplicate source line");
      source_bw = bw;
    } else if (kind == "open") {
      open.push_back(bw);
      open_labels.push_back(label.empty() ? "open" + std::to_string(open.size())
                                          : label);
    } else if (kind == "guarded") {
      guarded.push_back(bw);
      guarded_labels.push_back(
          label.empty() ? "guarded" + std::to_string(guarded.size()) : label);
    } else {
      fail(line_no, "unknown record '" + kind + "' (source|open|guarded)");
    }
  }
  if (source_bw < 0.0) fail(line_no, "missing 'source' line");

  PlatformFile file{Instance(source_bw, open, guarded), {}};
  file.labels.reserve(1 + open_labels.size() + guarded_labels.size());
  file.labels.push_back("source");
  file.labels.insert(file.labels.end(), open_labels.begin(), open_labels.end());
  file.labels.insert(file.labels.end(), guarded_labels.begin(),
                     guarded_labels.end());
  return file;
}

PlatformFile parse_platform_string(const std::string& text) {
  std::istringstream in(text);
  return parse_platform(in);
}

std::string serialize_platform(const Instance& instance) {
  std::ostringstream os;
  os << "# bmpbcast platform (" << instance.n() << " open, " << instance.m()
     << " guarded)\n";
  os << "source " << instance.b(0) << "\n";
  for (int i = 1; i <= instance.n(); ++i) os << "open " << instance.b(i) << "\n";
  for (int i = instance.n() + 1; i < instance.size(); ++i) {
    os << "guarded " << instance.b(i) << "\n";
  }
  return os.str();
}

std::string serialize_scheme(const BroadcastScheme& scheme) {
  std::ostringstream os;
  for (int i = 0; i < scheme.num_nodes(); ++i) {
    for (const auto& [to, rate] : scheme.out_edges(i)) {
      os << i << " " << to << " " << rate << "\n";
    }
  }
  return os.str();
}

BroadcastScheme parse_scheme(std::istream& in, int num_nodes) {
  BroadcastScheme scheme(num_nodes);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    int from = 0;
    int to = 0;
    double rate = 0.0;
    if (!(ls >> from)) continue;
    if (!(ls >> to >> rate)) {
      throw std::invalid_argument("scheme parse error, line " +
                                  std::to_string(line_no));
    }
    scheme.add(from, to, rate);
  }
  return scheme;
}

BroadcastScheme parse_scheme_string(const std::string& text, int num_nodes) {
  std::istringstream in(text);
  return parse_scheme(in, num_nodes);
}

}  // namespace bmp::net
