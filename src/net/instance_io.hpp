// Plain-text serialization of platforms and schemes, so the library is
// usable as a standalone planner (tools/bmp_plan) and results can be
// archived / diffed.
//
// Platform format (comments with '#', blank lines ignored):
//     source  <bandwidth>
//     open    <bandwidth> [name]
//     guarded <bandwidth> [name]
// Scheme format: one edge per line:
//     <from> <to> <rate>
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "bmp/core/instance.hpp"
#include "bmp/core/scheme.hpp"

namespace bmp::net {

struct PlatformFile {
  Instance instance;
  /// Optional labels in *input* order (index by Instance::original_id).
  std::vector<std::string> labels;
};

/// Parses the platform format above; throws std::invalid_argument with a
/// line number on malformed input.
PlatformFile parse_platform(std::istream& in);
PlatformFile parse_platform_string(const std::string& text);

std::string serialize_platform(const Instance& instance);

/// Scheme round trip.
std::string serialize_scheme(const BroadcastScheme& scheme);
BroadcastScheme parse_scheme(std::istream& in, int num_nodes);
BroadcastScheme parse_scheme_string(const std::string& text, int num_nodes);

}  // namespace bmp::net
