#include "bmp/net/overlay.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "bmp/util/rng.hpp"

namespace bmp::net {

Connectivity::Connectivity(std::vector<NodeClass> classes,
                           double hole_punch_success, std::uint64_t seed)
    : classes_(std::move(classes)) {
  const std::size_t n = classes_.size();
  punched_.assign(n, std::vector<bool>(n, false));
  util::Xoshiro256 rng(seed ^ 0x9E1A7ULL);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      if (classes_[a] == NodeClass::kGuarded && classes_[b] == NodeClass::kGuarded) {
        const bool ok = rng.uniform() < hole_punch_success;
        punched_[a][b] = ok;
        punched_[b][a] = ok;
      }
    }
  }
}

Connectivity Connectivity::from_instance(const Instance& instance,
                                         double hole_punch_success,
                                         std::uint64_t seed) {
  std::vector<NodeClass> classes(static_cast<std::size_t>(instance.size()));
  for (int i = 0; i < instance.size(); ++i) {
    classes[static_cast<std::size_t>(i)] =
        instance.is_guarded(i) ? NodeClass::kGuarded : NodeClass::kOpen;
  }
  return {std::move(classes), hole_punch_success, seed};
}

NodeClass Connectivity::node_class(int i) const {
  return classes_.at(static_cast<std::size_t>(i));
}

bool Connectivity::can_connect(int a, int b) const {
  if (a == b) return false;
  const NodeClass ca = node_class(a);
  const NodeClass cb = node_class(b);
  if (ca == NodeClass::kGuarded && cb == NodeClass::kGuarded) {
    return punched_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
  }
  return true;
}

int Connectivity::punched_pairs() const {
  int count = 0;
  for (std::size_t a = 0; a < punched_.size(); ++a) {
    for (std::size_t b = a + 1; b < punched_.size(); ++b) {
      count += punched_[a][b] ? 1 : 0;
    }
  }
  return count;
}

Overlay Overlay::from_scheme(const Instance& instance,
                             const BroadcastScheme& scheme,
                             const Connectivity& connectivity) {
  if (instance.size() != scheme.num_nodes() ||
      connectivity.size() != scheme.num_nodes()) {
    throw std::invalid_argument("Overlay::from_scheme: size mismatch");
  }
  Overlay overlay;
  overlay.num_nodes_ = scheme.num_nodes();
  for (int i = 0; i < scheme.num_nodes(); ++i) {
    for (const auto& [to, r] : scheme.out_edges(i)) {
      if (!connectivity.can_connect(i, to)) {
        throw std::invalid_argument(
            "Overlay::from_scheme: scheme edge " + std::to_string(i) + "->" +
            std::to_string(to) + " is not connectable (NAT/firewall)");
      }
      overlay.connections_.push_back({i, to, r});
    }
  }
  return overlay;
}

int Overlay::fan_out(int node) const {
  int count = 0;
  for (const auto& c : connections_) count += c.from == node ? 1 : 0;
  return count;
}

double Overlay::upload_of(int node) const {
  double sum = 0.0;
  for (const auto& c : connections_) {
    if (c.from == node) sum += c.bandwidth_cap;
  }
  return sum;
}

std::string Overlay::describe(const Instance& instance) const {
  std::ostringstream os;
  for (int i = 0; i < num_nodes_; ++i) {
    const int fan = fan_out(i);
    if (fan == 0) continue;
    os << "C" << i << (instance.is_guarded(i) ? " (guarded" : " (open")
       << ", b=" << instance.b(i) << ") -> ";
    bool first = true;
    for (const auto& c : connections_) {
      if (c.from != i) continue;
      if (!first) os << ", ";
      os << "C" << c.to << "@" << c.bandwidth_cap;
      first = false;
    }
    os << "  [" << fan << " connections, " << upload_of(i) << " upload]\n";
  }
  return os.str();
}

RelayPlan plan_relays(const std::vector<RelayDemand>& demands,
                      const std::vector<int>& relay_ids,
                      std::vector<double> relay_budget) {
  if (relay_ids.size() != relay_budget.size()) {
    throw std::invalid_argument("plan_relays: ids/budget size mismatch");
  }
  RelayPlan plan;
  plan.feasible = true;
  for (const RelayDemand& demand : demands) {
    double remaining = demand.rate;
    // First-fit with the largest budgets first keeps route counts low.
    std::vector<std::size_t> order(relay_ids.size());
    for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return relay_budget[a] > relay_budget[b];
    });
    for (const std::size_t k : order) {
      if (remaining <= 1e-12) break;
      const double take = std::min(relay_budget[k], remaining);
      if (take <= 1e-12) continue;
      plan.routes.push_back({demand.src, demand.dst, relay_ids[k], take});
      relay_budget[k] -= take;
      remaining -= take;
      plan.relay_bandwidth_used += take;
    }
    if (remaining > 1e-9) plan.feasible = false;
  }
  return plan;
}

}  // namespace bmp::net
