// Churn experiment — the paper's §VII caveat made measurable: "our
// solution should be resilient to small variations in the communication
// performance of nodes. However it is probably not resilient to churn."
//
// We model an abrupt departure of a fraction of the peers mid-stream and
// two reactions:
//   * none      — survivors keep the (now broken) overlay;
//   * replan    — re-run the paper's acyclic algorithm on the survivors
//                 and switch overlays at the failure instant.
// The metric is the post-failure stream rate of the worst survivor,
// measured with the randomized useful-piece simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "bmp/core/instance.hpp"
#include "bmp/core/scheme.hpp"
#include "bmp/util/rng.hpp"

namespace bmp::sim {

struct ChurnConfig {
  double fail_fraction = 0.2;   ///< fraction of peers that leave
  double stream_load = 0.85;    ///< offered rate as a fraction of design T
  double horizon = 400.0;       ///< simulated time per phase
  std::uint64_t seed = 1;
};

struct ChurnResult {
  double design_rate = 0.0;        ///< pre-failure overlay throughput
  double pre_fail_min_rate = 0.0;  ///< worst peer before the failure
  double broken_min_rate = 0.0;    ///< worst survivor, no reaction
  double replanned_rate = 0.0;     ///< new overlay design throughput
  double replanned_min_rate = 0.0; ///< worst survivor after replanning
  int survivors = 0;
  int departed = 0;
};

/// Runs the three-phase churn experiment on `instance`. Departing peers are
/// chosen uniformly among non-source nodes.
ChurnResult churn_experiment(const Instance& instance, const ChurnConfig& config);

/// Draws `count` distinct departing peers uniformly among ids 1..num_peers
/// (the source never departs). This is the event source shared by
/// churn_experiment and the runtime scenario driver: one full Fisher-Yates
/// shuffle, take the prefix, so the draw for a given rng state is stable no
/// matter how many departures are requested downstream.
std::vector<int> sample_departures(int num_peers, std::size_t count,
                                   util::Xoshiro256& rng);

/// Restriction helper: drops the given (sorted-id) peers from an instance,
/// preserving classes. Exposed for tests.
Instance remove_nodes(const Instance& instance, const std::vector<int>& departed);

/// Projects a scheme onto the surviving nodes (edges touching departed
/// peers vanish; ids are compacted to the new instance's numbering given by
/// remove_nodes' ordering). Exposed for tests.
BroadcastScheme restrict_scheme(const BroadcastScheme& scheme,
                                const std::vector<int>& departed);

}  // namespace bmp::sim
