// Event-driven simulation of randomized decentralized broadcasting à la
// Massoulié et al. (paper reference [4], used in §II.C): the source injects
// stream pieces at a fixed rate; each overlay edge (i, j) is a QoS-capped
// pipe of rate c_ij that, whenever idle, picks a *uniformly random useful*
// piece (one i holds and j neither holds nor is currently receiving) and
// transfers it in 1/c_ij time units.
//
// The paper's positioning: their overlay construction guarantees exactly
// the preconditions of Massoulié's optimality theorem (edge bandwidths
// without node contention), so random useful forwarding on the overlay
// achieves rates arbitrarily close to the overlay throughput T. This
// simulator demonstrates that end to end (bench_simulation / examples).
#pragma once

#include <cstdint>
#include <vector>

#include "bmp/core/scheme.hpp"

namespace bmp::sim {

struct SimConfig {
  double source_rate = 1.0;  ///< pieces injected per unit time (the stream rate)
  double duration = 500.0;   ///< simulated time horizon
  double warmup = 100.0;     ///< measurement starts here (steady state)
  std::uint64_t seed = 1;
  bool dedup_in_flight = true;  ///< never send the same piece to j twice at once
};

struct NodeStats {
  std::int64_t pieces_received = 0;  ///< within the measurement window
  double rate = 0.0;                 ///< pieces per unit time in the window
  double mean_delay = 0.0;           ///< arrival time - injection time
};

struct SimResult {
  std::vector<NodeStats> nodes;  ///< index 0 = source (rate == source_rate)
  double min_rate = 0.0;         ///< worst receiving node
  double mean_rate = 0.0;        ///< average over non-source nodes
  std::int64_t transfers = 0;    ///< completed piece transfers
  std::int64_t duplicates = 0;   ///< transfers that arrived already-known
};

/// Runs the simulation on `overlay` (edge rates = QoS caps). Piece size is
/// 1, so an edge of rate r moves one piece per 1/r time.
SimResult simulate_random_useful(const BroadcastScheme& overlay,
                                 const SimConfig& config);

}  // namespace bmp::sim
