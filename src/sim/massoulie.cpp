#include "bmp/sim/massoulie.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <vector>

#include "bmp/util/rng.hpp"

namespace bmp::sim {

namespace {

struct Edge {
  int from;
  int to;
  double transfer_time;  // 1 / rate
  bool busy = false;
  int piece = -1;        // piece currently in flight
};

struct Event {
  double time;
  enum class Kind { kInject, kTransferDone } kind;
  int payload;  // piece id for inject; edge id for transfer completion

  bool operator>(const Event& other) const { return time > other.time; }
};

/// Per-node piece inventory with O(1) membership and uniform sampling.
class Inventory {
 public:
  void ensure(int piece) {
    if (piece >= static_cast<int>(has_.size())) {
      has_.resize(static_cast<std::size_t>(piece) + 64, false);
    }
  }

  [[nodiscard]] bool contains(int piece) const {
    return piece < static_cast<int>(has_.size()) &&
           has_[static_cast<std::size_t>(piece)];
  }

  void add(int piece) {
    ensure(piece);
    if (!has_[static_cast<std::size_t>(piece)]) {
      has_[static_cast<std::size_t>(piece)] = true;
      list_.push_back(piece);
    }
  }

  [[nodiscard]] const std::vector<int>& list() const { return list_; }

 private:
  std::vector<bool> has_;
  std::vector<int> list_;
};

}  // namespace

SimResult simulate_random_useful(const BroadcastScheme& overlay,
                                 const SimConfig& config) {
  if (config.source_rate <= 0.0 || config.duration <= config.warmup) {
    throw std::invalid_argument("simulate_random_useful: bad config");
  }
  const int N = overlay.num_nodes();
  std::vector<Edge> edges;
  std::vector<std::vector<int>> out_edges(static_cast<std::size_t>(N));
  for (int i = 0; i < N; ++i) {
    for (const auto& [to, r] : overlay.out_edges(i)) {
      if (r <= 0.0) continue;
      out_edges[static_cast<std::size_t>(i)].push_back(
          static_cast<int>(edges.size()));
      edges.push_back({i, to, 1.0 / r});
    }
  }

  util::Xoshiro256 rng(config.seed);
  std::vector<Inventory> have(static_cast<std::size_t>(N));
  std::vector<Inventory> incoming(static_cast<std::size_t>(N));  // in flight
  std::vector<double> inject_time;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;

  SimResult result;
  result.nodes.assign(static_cast<std::size_t>(N), {});
  std::vector<double> delay_sum(static_cast<std::size_t>(N), 0.0);

  // Pre-schedule piece injections.
  const auto total_pieces =
      static_cast<int>(config.duration * config.source_rate) + 1;
  inject_time.reserve(static_cast<std::size_t>(total_pieces));
  for (int p = 0; p < total_pieces; ++p) {
    const double t = p / config.source_rate;
    inject_time.push_back(t);
    queue.push({t, Event::Kind::kInject, p});
  }

  // Tries to start a transfer on an idle edge: uniformly random useful
  // piece (rejection sampling, falling back to a linear scan).
  const auto try_start = [&](int edge_id, double now) {
    Edge& e = edges[static_cast<std::size_t>(edge_id)];
    if (e.busy) return;
    const Inventory& src = have[static_cast<std::size_t>(e.from)];
    const Inventory& dst = have[static_cast<std::size_t>(e.to)];
    const Inventory& inflight = incoming[static_cast<std::size_t>(e.to)];
    const auto useful = [&](int piece) {
      if (dst.contains(piece)) return false;
      return !(config.dedup_in_flight && inflight.contains(piece));
    };
    const auto& pieces = src.list();
    if (pieces.empty()) return;
    int chosen = -1;
    for (int attempt = 0; attempt < 8; ++attempt) {
      const int candidate = pieces[rng.below(pieces.size())];
      if (useful(candidate)) {
        chosen = candidate;
        break;
      }
    }
    if (chosen < 0) {
      // Dense fallback: collect all useful pieces, pick uniformly.
      std::vector<int> candidates;
      for (const int piece : pieces) {
        if (useful(piece)) candidates.push_back(piece);
      }
      if (candidates.empty()) return;
      chosen = candidates[rng.below(candidates.size())];
    }
    e.busy = true;
    e.piece = chosen;
    incoming[static_cast<std::size_t>(e.to)].add(chosen);
    queue.push({now + e.transfer_time, Event::Kind::kTransferDone, edge_id});
  };

  const auto on_new_piece = [&](int node, int piece, double now) {
    if (have[static_cast<std::size_t>(node)].contains(piece)) {
      ++result.duplicates;
      return;
    }
    have[static_cast<std::size_t>(node)].add(piece);
    if (now >= config.warmup && node != 0) {
      auto& stats = result.nodes[static_cast<std::size_t>(node)];
      ++stats.pieces_received;
      delay_sum[static_cast<std::size_t>(node)] +=
          now - inject_time[static_cast<std::size_t>(piece)];
    }
    // New data at `node` may make idle out-edges useful again.
    for (const int edge_id : out_edges[static_cast<std::size_t>(node)]) {
      try_start(edge_id, now);
    }
  };

  while (!queue.empty()) {
    const Event event = queue.top();
    queue.pop();
    if (event.time > config.duration) break;
    if (event.kind == Event::Kind::kInject) {
      on_new_piece(0, event.payload, event.time);
    } else {
      Edge& e = edges[static_cast<std::size_t>(event.payload)];
      e.busy = false;
      const int piece = e.piece;
      e.piece = -1;
      ++result.transfers;
      on_new_piece(e.to, piece, event.time);
      try_start(event.payload, event.time);  // keep the pipe full
    }
  }

  const double window = config.duration - config.warmup;
  double rate_sum = 0.0;
  result.min_rate = N > 1 ? std::numeric_limits<double>::infinity() : 0.0;
  for (int v = 0; v < N; ++v) {
    auto& stats = result.nodes[static_cast<std::size_t>(v)];
    stats.rate = static_cast<double>(stats.pieces_received) / window;
    if (stats.pieces_received > 0) {
      stats.mean_delay = delay_sum[static_cast<std::size_t>(v)] /
                         static_cast<double>(stats.pieces_received);
    }
    if (v == 0) {
      stats.rate = config.source_rate;
      continue;
    }
    rate_sum += stats.rate;
    result.min_rate = std::min(result.min_rate, stats.rate);
  }
  result.mean_rate = N > 1 ? rate_sum / (N - 1) : 0.0;
  return result;
}

}  // namespace bmp::sim
