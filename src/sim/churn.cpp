#include "bmp/sim/churn.hpp"

#include <algorithm>
#include <stdexcept>

#include "bmp/core/acyclic_search.hpp"
#include "bmp/sim/massoulie.hpp"
#include "bmp/util/rng.hpp"

namespace bmp::sim {

std::vector<int> sample_departures(int num_peers, std::size_t count,
                                   util::Xoshiro256& rng) {
  if (num_peers < 0) {
    throw std::invalid_argument("sample_departures: negative population");
  }
  std::vector<int> peers;
  peers.reserve(static_cast<std::size_t>(num_peers));
  for (int i = 1; i <= num_peers; ++i) peers.push_back(i);
  for (std::size_t i = peers.size(); i > 1; --i) {
    std::swap(peers[i - 1], peers[rng.below(i)]);
  }
  peers.resize(std::min(count, peers.size()));
  return peers;
}

Instance remove_nodes(const Instance& instance, const std::vector<int>& departed) {
  std::vector<bool> gone(static_cast<std::size_t>(instance.size()), false);
  for (const int id : departed) {
    if (id <= 0 || id >= instance.size()) {
      throw std::invalid_argument("remove_nodes: bad node id");
    }
    gone[static_cast<std::size_t>(id)] = true;
  }
  std::vector<double> open;
  std::vector<double> guarded;
  for (int i = 1; i < instance.size(); ++i) {
    if (gone[static_cast<std::size_t>(i)]) continue;
    (instance.is_guarded(i) ? guarded : open).push_back(instance.b(i));
  }
  return {instance.b(0), std::move(open), std::move(guarded)};
}

BroadcastScheme restrict_scheme(const BroadcastScheme& scheme,
                                const std::vector<int>& departed) {
  std::vector<bool> gone(static_cast<std::size_t>(scheme.num_nodes()), false);
  for (const int id : departed) gone[static_cast<std::size_t>(id)] = true;
  std::vector<int> remap(static_cast<std::size_t>(scheme.num_nodes()), -1);
  int next = 0;
  for (int i = 0; i < scheme.num_nodes(); ++i) {
    if (!gone[static_cast<std::size_t>(i)]) remap[static_cast<std::size_t>(i)] = next++;
  }
  BroadcastScheme restricted(next);
  for (int i = 0; i < scheme.num_nodes(); ++i) {
    if (gone[static_cast<std::size_t>(i)]) continue;
    for (const auto& [to, rate] : scheme.out_edges(i)) {
      if (gone[static_cast<std::size_t>(to)]) continue;
      restricted.add(remap[static_cast<std::size_t>(i)],
                     remap[static_cast<std::size_t>(to)], rate);
    }
  }
  return restricted;
}

ChurnResult churn_experiment(const Instance& instance, const ChurnConfig& config) {
  if (config.fail_fraction < 0.0 || config.fail_fraction >= 1.0) {
    throw std::invalid_argument("churn_experiment: fail_fraction in [0,1)");
  }
  ChurnResult result;
  const AcyclicSolution design = solve_acyclic(instance);
  result.design_rate = design.throughput;
  if (design.throughput <= 0.0) return result;

  // `horizon` counts *pieces*, not absolute time: scale the simulated time
  // by the stream rate so the event count is independent of the platform's
  // bandwidth units.
  const double rate = config.stream_load * design.throughput;
  const double duration = config.horizon / rate;
  const SimConfig phase{rate, duration, duration / 4.0, config.seed, true};
  result.pre_fail_min_rate = simulate_random_useful(design.scheme, phase).min_rate;

  // Choose departing peers (uniform among non-source nodes).
  util::Xoshiro256 rng(config.seed ^ 0xC09AULL);
  const int peers = instance.size() - 1;
  const auto departures =
      static_cast<std::size_t>(config.fail_fraction * peers);
  const std::vector<int> departed = sample_departures(peers, departures, rng);
  result.departed = static_cast<int>(departed.size());
  result.survivors = instance.size() - 1 - result.departed;
  if (result.survivors <= 0) return result;

  // No reaction: survivors keep the broken overlay.
  const BroadcastScheme broken = restrict_scheme(design.scheme, departed);
  result.broken_min_rate = simulate_random_useful(broken, phase).min_rate;

  // Replan: rerun the algorithm on the surviving platform.
  const Instance survivors_platform = remove_nodes(instance, departed);
  const AcyclicSolution replanned = solve_acyclic(survivors_platform);
  result.replanned_rate = replanned.throughput;
  if (replanned.throughput > 0.0) {
    const double rate2 = config.stream_load * replanned.throughput;
    const double duration2 = config.horizon / rate2;
    const SimConfig phase2{rate2, duration2, duration2 / 4.0, config.seed + 1,
                           true};
    result.replanned_min_rate =
        simulate_random_useful(replanned.scheme, phase2).min_rate;
  }
  return result;
}

}  // namespace bmp::sim
