// Chunk-level data plane — the layer that *moves data* through a planned
// overlay and closes the plan-vs-achieved loop. The planner (engine::),
// verifier (flow::) and host (runtime::) reason about fluid rates; an
// Execution takes those rates literally and streams discrete fixed-size
// chunks through them:
//
//   * the source emits a stream of chunks, paced at the planned rate (or
//     all at t = 0 for file-transfer style runs);
//   * every directed overlay edge is a serial, rate-limited pipe — one
//     chunk in transmission at a time, transmission time chunk_size / rate,
//     optional propagation latency (the pipe frees at transmission end, so
//     consecutive chunks pipeline through the latency), optional i.i.d.
//     per-transmission loss with retransmit;
//   * each node's bounded multi-port budget b_i is respected structurally
//     (the planned edge rates sum to <= b_i, and every pipe is capped at
//     its planned rate); validate() audits the invariant on demand;
//   * a per-node send scheduler picks, whenever a pipe frees, the
//     rarest-first chunk the sender holds, the receiver lacks, and nobody
//     is already sending to that receiver — with backpressure when the
//     receiver's in-flight window fills (head-of-line stalls are counted);
//   * a deterministic event loop (event_queue.hpp) advances emission /
//     send-complete / arrival events in timestamp-then-id order, so
//     replays are bit-identical.
//
// The topology is *live-patchable*: nodes and edges can be added, removed
// and re-rated mid-stream — a departed node's in-flight chunks are dropped
// (reservations released, so survivors re-request the chunks elsewhere) and
// a repaired overlay's new edges splice in without restarting the stream.
// runtime::Runtime drives one Execution per channel this way.
//
// Units: rates share the instance's bandwidth unit (e.g. Mbit/s),
// chunk_size the matching data unit (Mbit), times the matching seconds.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include <set>

#include "bmp/core/instance.hpp"
#include "bmp/core/scheme.hpp"
#include "bmp/dataplane/event_queue.hpp"
#include "bmp/dataplane/link_profile.hpp"
#include "bmp/util/rng.hpp"

namespace bmp::obs {
class Profiler;
class TraceSink;
class FlightRecorder;
class LineageSink;
}  // namespace bmp::obs

namespace bmp::dataplane {

struct ExecutionConfig {
  double chunk_size = 1.0;  ///< data per chunk, in the bandwidth unit x s
  /// Chunks the source will emit; 0 = unbounded stream (stop_emission() or
  /// a rate of 0 ends it).
  int total_chunks = 0;
  /// Source pacing: chunk k becomes available at start_time + k * s / rate.
  /// <= 0 emits every chunk at start_time (file-transfer mode). Mutable at
  /// run time through set_emission_rate (live renegotiation).
  double emission_rate = 0.0;
  double start_time = 0.0;    ///< the execution's epoch (channel open time)
  /// Max chunks in flight toward one receiver. A receiver always grants at
  /// least one outstanding chunk per in-pipe (the effective window is
  /// max(receiver_window, in-degree)), otherwise a fan-in wider than the
  /// window would throttle below the planned rate by construction.
  int receiver_window = 8;
  /// Reservation overtaking ("endgame" duplicate suppression): a pipe may
  /// re-request a chunk already in flight to the receiver iff it can land
  /// its copy within this fraction of the current copy's remaining transfer
  /// time. Without it, one near-zero-rate pipe grabbing a chunk would hold
  /// the whole receiver hostage; with it, duplicates stay rare and bounded.
  /// 0 disables overtaking (strictly exclusive reservations).
  double overtake_factor = 0.5;
  /// Hostage rescue: a *reserved* chunk competes with unreserved ones
  /// (rarest-first order) for senders that can land a copy within this
  /// fraction of the current copy's remaining transfer time. Without it, a
  /// near-zero-rate pipe (re-planned overlays carry such residue edges)
  /// that grabs a rare chunk pins the receiver's in-order frontier for the
  /// whole glacial transmission — buffers balloon and the delivered-rate
  /// integral stalls even though every other pipe is healthy. 1/8 means
  /// the rescuer must be at least 8x faster, so near-peer pipes never
  /// duplicate each other. 0 disables rescue (endgame overtaking only).
  double rescue_factor = 0.125;
  /// Rescue at `rescue_factor` arms only while the receiver's out-of-order
  /// backlog exceeds this many effective windows — the signature of a
  /// pinned frontier. A healthy stream idles at a benign backlog of a few
  /// windows (each slow-but-productive in-pipe holds up to one in-flight
  /// chunk), so the threshold sits well above that: arming rescue at the
  /// benign level would just duplicate productive transmissions.
  double rescue_buffer_windows = 8.0;
  /// Hard rescue, always armed: reservations held by *extremely* slow
  /// copies (the rescuer at least 32x faster) are contested regardless of
  /// backlog. Planned overlays rarely spread same-receiver pipe rates that
  /// far, but re-planned ones carry residue trickle edges that do — and a
  /// trickle reservation is a multi-second hostage. 0 disables.
  double rescue_factor_hard = 0.03125;
  /// Default link behaviour — seeds every node's egress LinkProfile. Edges
  /// resolve their profile per transmission: explicit set_edge_profile
  /// override first, then the sender's egress profile (set_egress_profile,
  /// how WAN edge classes are assigned), then these defaults.
  double latency = 0.0;       ///< propagation delay per pipe, seconds
  double loss_rate = 0.0;     ///< i.i.d. per-transmission loss in [0, 0.95]
  std::uint64_t seed = 1;     ///< loss/jitter-stream seed (per-pipe forked)
  /// Deliveries per node excluded from the steady-rate window (startup
  /// transient: pipeline fill, rarest-first warm-up).
  int warmup_chunks = 16;
  /// Rarest-first scan horizon past a receiver's first missing chunk; caps
  /// scheduler cost when a slow node accumulates a deep backlog.
  int scan_limit = 4096;
  /// Per-rarity bucket index over the emitted window: the scheduler probes
  /// chunks in ascending (replica count, id) order and usually finds the
  /// pick within a handful of probes instead of scanning the whole backlog
  /// window linearly. Picks are bit-identical with the index off (the
  /// linear scan remains the semantics of record and the fallback when a
  /// probe budget is exhausted); the flag exists for differential tests.
  bool use_scan_index = true;
  /// Keep per-delivery chunk latencies for drain_latencies() (the runtime
  /// feeds them into its dataplane.chunk_latency histogram).
  bool collect_latencies = false;
  /// Payload checksum verification (the hardened path): an arrival whose
  /// synthetic checksum mismatches is treated like a loss — reservation
  /// released, chunk re-requested from another holder — and counted in
  /// corruptions(). Off, a corrupted chunk is silently delivered, marked,
  /// and *forwarded corrupted* (counted in corrupted_accepted()) — the
  /// frozen-comparison failure mode the chaos tests contrast against.
  bool verify_payloads = false;
  /// Sampled chunk-lifecycle tracing (null = off): chunks whose id is a
  /// multiple of `trace_sample` log their emission, losses and every
  /// delivery as instant events on the execution lane — enough to follow a
  /// chunk through the overlay without one event per delivery.
  obs::TraceSink* trace = nullptr;
  int trace_sample = 64;  ///< chunk-id sampling stride; <= 0 disables
  /// Flight recorder for validate() failures: each violation is recorded
  /// and the recorder's configured dump is written (null = off).
  obs::FlightRecorder* recorder = nullptr;
  int trace_id = -1;  ///< channel label in trace/recorder output
  /// Performance attribution (null = off): event/delivery counters under
  /// "dataplane/advance" and scheduler pick telemetry under
  /// "dataplane/scheduler", flushed once per run_until — the per-event hot
  /// path never touches the profiler, and pays one predictable branch per
  /// site when profiling is off.
  obs::Profiler* profiler = nullptr;
  /// Chunk lineage (null = off): every delivery records a hop (edge, the
  /// enqueue/start/finish scenario times, retransmit count, HOL-stall and
  /// overtake flags) into the sink — the delivery DAG the critical-path
  /// analyzer walks. Disabled, each delivery pays one branch.
  obs::LineageSink* lineage = nullptr;
};

/// Per-node outcome of a run (ids are Execution node ids; node 0 = source).
struct NodeProgress {
  int id = 0;
  bool alive = true;
  int delivered = 0;   ///< chunks received (loss retries excluded)
  int skipped = 0;     ///< chunks emitted before the node joined (live edge)
  double joined = 0.0;
  /// Time the node held every chunk of its window [skipped, emitted);
  /// negative while incomplete.
  double completion_time = -1.0;
  /// Data rate between the warmup-th and the latest delivery; the
  /// execution's steady-state throughput measure for this node.
  double steady_rate = 0.0;
  int max_buffer = 0;  ///< peak out-of-order backlog (received - in-order)
};

/// Aggregate outcome; `achieved_rate` is the min steady rate over alive
/// non-source nodes — directly comparable to the planner's throughput T.
struct ExecutionReport {
  double now = 0.0;
  int emitted = 0;
  std::uint64_t delivered_chunks = 0;
  std::uint64_t losses = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t hol_stalls = 0;
  std::uint64_t duplicates = 0;  ///< overtaken copies that arrived late
  double achieved_rate = 0.0;
  double planned_rate = 0.0;  ///< caller-supplied reference (scheme T)
  /// planned / achieved; 1 means the plan's fluid rate was met exactly,
  /// +inf when nothing was delivered.
  double stretch = std::numeric_limits<double>::infinity();
  std::vector<NodeProgress> nodes;
};

/// Cumulative per-pipe telemetry, the raw signal the control plane's
/// capacity estimators difference across sampling windows. `busy_time` and
/// `completed` only count *finished* transmissions, so completed/busy_time
/// is the pipe's observed service rate — degradation shows up as that
/// ratio falling below `rate` while losses show up in lost/sent.
struct EdgeStats {
  int from = 0;
  int to = 0;
  double rate = 0.0;           ///< current planned pipe rate
  double busy_time = 0.0;      ///< summed transmission durations completed
  double completed = 0.0;      ///< data that finished transmitting
  std::uint64_t sent = 0;      ///< transmissions completed (lost included)
  std::uint64_t delivered = 0; ///< arrivals that were not lost
  std::uint64_t lost = 0;      ///< arrivals flagged lost (retransmitted)
  bool busy = false;           ///< a transmission is in the wire right now
  double pending_duration = 0.0;  ///< its full transmission time
  // Scheduling outcomes: how often the idle pipe was offered work and why
  // it declined (window backpressure vs nothing eligible to send).
  std::uint64_t attempts = 0;
  std::uint64_t window_stalls = 0;
  std::uint64_t no_chunk = 0;
};

class Execution {
 public:
  explicit Execution(ExecutionConfig config);
  /// Convenience: node k of `scheme`/`instance` becomes Execution node k
  /// (budgets from the instance, pipes from the scheme's edges).
  Execution(const Instance& instance, const BroadcastScheme& scheme,
            ExecutionConfig config);

  // ------------------------------------------------------- live topology
  /// Adds a node and returns its id; the first node added is the source.
  /// A node added mid-stream joins at the live edge: chunks emitted before
  /// its join are skipped (neither wanted nor forwardable).
  int add_node(double upload_budget);
  /// Removes a node: its pipes vanish, chunks in flight from or to it are
  /// dropped, and reservations held on live receivers are released so the
  /// scheduler re-requests those chunks from surviving senders. A node that
  /// crash_node() already tore down may be removed again (the runtime's
  /// crash detection synthesizes the departure later) — that second call
  /// just detaches the frozen pipes.
  void remove_node(int id);
  /// Abrupt crash — the impolite remove_node. The node dies *without*
  /// leaving the overlay: its chunk state and reservations are torn down
  /// (in-flight transmissions stranded, window slots handed back to live
  /// receivers) but every adjacent pipe stays attached with its counters
  /// frozen. Frozen attempts/sent deltas are exactly the silence signature
  /// runtime crash detection reads from EdgeStats. Crashing the current
  /// origin pauses emission until failover_source(). Idempotent on dead
  /// nodes; the source rule is the origin's, not id 0's.
  void crash_node(int id);
  /// Moves the node to a partition group (default 0). Transmissions whose
  /// endpoints sit in different groups are silently dropped on the wire:
  /// the sender keeps sending (attempts/sent/lost keep counting — a
  /// partition looks *different* from a crash to the detector), nothing
  /// arrives until the groups merge again.
  void set_partition_group(int id, int group);
  [[nodiscard]] int partition_group(int id) const;
  /// Egress corruption injection: each chunk the node sends corrupts in
  /// flight with probability `rate` (plus deterministic propagation — a
  /// node that silently accepted a corrupted copy forwards it corrupted).
  void set_corrupt_rate(int id, double rate);
  /// True when the node's stored copy of `chunk` is corrupted (only ever
  /// true with verify_payloads off — hardened receivers never accept one).
  [[nodiscard]] bool chunk_corrupted(int id, int chunk) const;
  /// Source-crash failover: requires the current origin dead; promotes the
  /// most-complete surviving node (max delivered, ties to lowest id) to
  /// origin, writes off chunks with zero surviving replicas (they count in
  /// written_off(), survivors' completion no longer waits on them), and
  /// re-arms emission from the new origin. Returns the new origin id.
  int failover_source();
  [[nodiscard]] int origin() const { return origin_; }
  void set_node_budget(int id, double budget);
  /// Adds or re-rates the (from, to) pipe; rate <= 0 removes it. Re-rating
  /// a busy pipe applies to its next transmission.
  void set_edge(int from, int to, double rate);
  /// Diffs the live pipe set against `desired` {from, to, rate}: missing
  /// pipes are added, absent ones removed, rates updated — in-flight
  /// transmissions on surviving pipes are untouched. This is how a repaired
  /// or rescaled overlay splices in without restarting the stream.
  void reconcile_edges(const std::vector<std::tuple<int, int, double>>& desired);
  /// Live emission-rate change (renegotiation). A no-op when unchanged;
  /// otherwise the next emission is rescheduled at the new cadence.
  void set_emission_rate(double rate);
  void stop_emission() { set_emission_rate(0.0); }

  // -------------------------------------------------------- effective world
  // The planned overlay keeps its nominal rates; these knobs model what the
  // network *actually* does underneath — the degradations the adaptive
  // control plane detects from telemetry and re-plans around.
  /// Caps the node's *effective* egress capacity (a brownout): while the
  /// planned rates of its active out-pipes sum past the cap, every
  /// transmission is throttled by cap / planned_out_total — proportional
  /// sharing of the reduced capacity. A plan re-fitted inside the cap runs
  /// at full planned rate again, which is exactly the lever the control
  /// plane pulls. `capacity` < 0 removes the cap (the default).
  void set_effective_capacity(int id, double capacity);
  [[nodiscard]] double effective_capacity(int id) const;
  /// Assigns the node's egress WAN class: every pipe out of `id` without an
  /// explicit per-edge override uses this profile (current and future pipes
  /// alike — re-planned edges inherit it).
  void set_egress_profile(int id, const LinkProfile& profile);
  [[nodiscard]] const LinkProfile& egress_profile(int id) const;
  /// Per-edge override, stronger than the sender's egress profile; persists
  /// across reconcile_edges (a re-planned edge re-acquires it).
  void set_edge_profile(int from, int to, const LinkProfile& profile);
  void clear_edge_profile(int from, int to);

  /// Cumulative per-pipe counters, ordered by (from, to) — deterministic.
  [[nodiscard]] std::vector<EdgeStats> edge_stats() const;
  /// Same rows into a caller-owned buffer (cleared first). Per-tick
  /// telemetry sweeps reuse one scratch vector so the steady state
  /// allocates nothing (Runtime::feed_edge_telemetry).
  void edge_stats_into(std::vector<EdgeStats>& out) const;

  // ------------------------------------------------------------ advance
  /// Processes every event with time <= t and advances the clock to t.
  void run_until(double t);
  /// Drains the queue completely (requires a bounded stream: total_chunks
  /// set or emission stopped — throws otherwise).
  void run_to_completion();

  // ------------------------------------------------------------- observe
  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] int emitted() const { return emitted_; }
  [[nodiscard]] int num_nodes() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] int alive_nodes() const { return alive_nodes_; }
  [[nodiscard]] int num_pipes() const { return static_cast<int>(pipe_of_.size()); }
  [[nodiscard]] bool node_alive(int id) const;
  [[nodiscard]] int delivered(int id) const;
  [[nodiscard]] double completion_time(int id) const;
  [[nodiscard]] std::uint64_t delivered_chunks() const { return delivered_chunks_; }
  [[nodiscard]] std::uint64_t losses() const { return losses_; }
  [[nodiscard]] std::uint64_t retransmits() const { return retransmits_; }
  [[nodiscard]] std::uint64_t hol_stalls() const { return hol_stalls_; }
  [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }
  /// Corrupted arrivals caught by checksum verification (re-requested).
  [[nodiscard]] std::uint64_t corruptions() const { return corruptions_; }
  /// Corrupted arrivals silently accepted (verify_payloads off).
  [[nodiscard]] std::uint64_t corrupted_accepted() const {
    return corrupted_accepted_;
  }
  /// Chunks whose every replica died with crashed nodes (failover wrote
  /// them off; survivors complete without them).
  [[nodiscard]] std::uint64_t written_off() const { return written_off_; }
  [[nodiscard]] const ExecutionConfig& config() const { return config_; }

  [[nodiscard]] NodeProgress progress(int id) const;
  [[nodiscard]] ExecutionReport report(double planned_rate) const;

  /// Per-delivery chunk latencies (arrival - emission) accumulated since
  /// the last drain; empty unless config.collect_latencies.
  std::vector<double> drain_latencies();

  /// Audits the execution's invariants. (1) Bounded multi-port: the summed
  /// rates of every node's *concurrently transmitting* pipes stay within
  /// its budget. (2) No orphans — the mid-fault teardown paths must leak
  /// nothing: every in-flight copy toward a live receiver is backed by a
  /// reservation (or the chunk was already delivered and the copy is a
  /// doomed duplicate), every reservation counts exactly its in-flight
  /// copies, window_used equals the total copies toward the node, dead
  /// nodes hold zero window slots and reservations, and each node's
  /// planned_out matches its active out-pipes. Returns human-readable
  /// violations (empty = ok); failures auto-dump the flight recorder.
  [[nodiscard]] std::vector<std::string> validate(double tol = 1e-7) const;

 private:
  struct Node {
    double budget = 0.0;
    bool alive = false;
    /// Dead by crash_node(): chunk state is torn down but the frozen pipes
    /// are still attached, and a later remove_node() must be accepted (the
    /// runtime's synthesized departure finishes the cleanup).
    bool crashed = false;
    /// Partition group; transmissions across groups drop on the wire.
    int partition_group = 0;
    /// Injected egress corruption probability per transmission.
    double corrupt_rate = 0.0;
    /// Effective egress cap (brownout; < 0 = uncapped) and WAN class.
    double effective_capacity = -1.0;
    /// Summed planned rates of the node's active out-pipes, maintained at
    /// every pipe add/re-rate/remove — the throttle denominator, so the
    /// hot send path never re-sums the adjacency list.
    double planned_out = 0.0;
    LinkProfile egress;
    double joined = 0.0;
    int skip_before = 0;   ///< chunks < this id are outside the window
    int next_missing = 0;  ///< smallest wanted chunk id not yet received
    int delivered = 0;
    int window_used = 0;   ///< chunks currently in flight toward this node
    int max_buffer = 0;
    double completion_time = -1.0;
    double warmup_time = -1.0;  ///< time of the warmup-th delivery
    double last_time = -1.0;    ///< time of the latest delivery
    std::vector<std::uint64_t> have;     // received bitset
    std::vector<std::uint64_t> corrupt;  // received-but-damaged bitset
    /// chunk -> active transmissions toward this node. `eta` is the min
    /// arrival time among them (conservative under cancellations: a stale
    /// min only makes overtaking harder, never unsafe).
    struct Reservation {
      int count = 0;
      double eta = 0.0;
    };
    std::map<int, Reservation> inflight;
    std::vector<int> out;  ///< pipe slots, kept sorted by receiver id
    std::vector<int> in;   ///< pipe slots, kept sorted by sender id
  };
  /// Lineage bookkeeping for one pending transmission (filled iff
  /// config_.lineage != nullptr): when the successful attempt started and
  /// what the scheduler saw when it claimed the chunk.
  struct LineagePending {
    double start = 0.0;
    bool hol = false;
    bool overtake = false;
  };

  struct Pipe {
    int from = -1;
    int to = -1;
    double rate = 0.0;
    std::uint64_t generation = 0;
    bool active = false;
    bool busy = false;
    /// Chunks sent on this pipe whose arrival (or loss notice) is still
    /// pending — the transmitting chunk plus any pipelining through the
    /// propagation latency. Removal releases every one of them, or the
    /// receiver's window slots and reservations would leak when the
    /// generation bump strands the queued arrivals.
    std::vector<int> in_flight;
    /// Parallel to in_flight, same indices (maintained iff
    /// config_.lineage != nullptr): per-transmission lineage state. A
    /// vector, not a map — the hot path must not hash or allocate.
    std::vector<LineagePending> lineage_inflight;
    /// window_stalls watermark at this pipe's last successful claim; a
    /// delta since then marks the next hop HOL-stalled.
    std::uint64_t lineage_stall_mark = 0;
    util::Xoshiro256 rng{0};
    // Telemetry (cumulative over the pipe's life; dies with the pipe).
    double busy_time = 0.0;
    double completed = 0.0;
    double pending_duration = 0.0;  ///< duration of the transmission in wire
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t lost = 0;
    std::uint64_t attempts = 0;
    std::uint64_t window_stalls = 0;
    std::uint64_t no_chunk = 0;
  };

  static bool bit(const std::vector<std::uint64_t>& bits, int i);
  static void set_bit(std::vector<std::uint64_t>& bits, int i);

  [[nodiscard]] bool node_has(const Node& node, int chunk) const;
  Node& node_at(int id, const char* who);

  [[nodiscard]] const LinkProfile& profile_for(const Pipe& pipe) const;
  /// Keeps the per-rarity bucket index in sync with replicas_.
  void rarity_insert(int chunk, int replicas);
  void rarity_move(int chunk, int old_replicas, int new_replicas);

  void process(const ChunkEvent& event);
  void emit_chunks();
  void schedule_next_emission();
  void on_send_complete(const ChunkEvent& event);
  void on_arrival(const ChunkEvent& event);
  void deliver(Node& node, int node_id, int chunk);
  /// Rarest-first candidate selection: `pick_linear` is the semantics of
  /// record (ascending window scan); `pick_indexed` probes the per-rarity
  /// buckets in ascending (replicas, id) order and returns false when its
  /// probe budget runs out (caller falls back to the linear scan). Both
  /// produce the identical pick.
  void pick_linear(const Node& sender, const Node& receiver, double my_eta,
                   double rescue, int start, int end, int& best,
                   int& overtake) const;
  bool pick_indexed(const Node& sender, const Node& receiver, double my_eta,
                    double rescue, int start, int end, int& best,
                    int& overtake) const;
  /// Rarest-first pick + transmission start for one idle pipe.
  void try_send(int pipe_slot);
  void activate_sender(int node_id);
  void activate_receiver(int node_id);
  void remove_pipe(int pipe_slot);
  /// Drops one cancelled transmission's reservation + window slot on a
  /// live receiver so the chunk is re-requested elsewhere.
  void release_reservation(int receiver_id, int chunk);

  /// Hands every alive node the chunk (no delivered credit) so completion
  /// stops waiting on data nobody holds — failover's answer to chunks whose
  /// last replica crashed.
  void write_off_chunk(int chunk);

  ExecutionConfig config_;
  EventQueue queue_;
  double now_ = 0.0;
  int emitted_ = 0;
  int origin_ = 0;  ///< emitting node; moves on failover_source()
  double last_emit_time_ = 0.0;
  std::uint64_t emission_generation_ = 0;
  double emission_rate_ = 0.0;

  std::vector<Node> nodes_;
  int alive_nodes_ = 0;
  std::vector<Pipe> pipes_;
  std::vector<int> free_pipes_;
  std::uint64_t pipe_streams_ = 0;  ///< loss-stream index of the next pipe
  /// (from, to) -> pipe slot; ordered so reconcile diffs deterministically.
  std::map<std::pair<int, int>, int> pipe_of_;

  std::vector<double> emit_time_;  ///< per chunk, for latency measurement
  std::vector<int> replicas_;      ///< per chunk, alive holders (rarest-first)
  /// Scan index: bucket r holds the emitted chunks with exactly r alive
  /// holders, ordered by id — the scheduler's ascending-(rarity, id) probe
  /// order. Maintained on every replicas_ change; empty when disabled.
  std::vector<std::set<int>> by_rarity_;
  /// (from, to) -> explicit LinkProfile override (outlives the pipe).
  std::map<std::pair<int, int>, LinkProfile> edge_profiles_;

  std::uint64_t delivered_chunks_ = 0;
  std::uint64_t losses_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t hol_stalls_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t corruptions_ = 0;
  std::uint64_t corrupted_accepted_ = 0;
  std::uint64_t written_off_ = 0;
  std::vector<double> pending_latencies_;

  // Lineage failed-attempt tally per (receiver, chunk) — touched only on
  // losses/corruptions, so a map is fine off the hot path. The per-
  // transmission state lives in Pipe::lineage_inflight.
  struct LineageRetry {
    int count = 0;
    double wasted = 0.0;
  };
  static std::uint64_t lineage_key(int a, int b) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint32_t>(b);
  }
  std::unordered_map<std::uint64_t, LineageRetry> lineage_retry_;
  /// Outstanding lineage_retry_ entries per receiver; lets the delivery
  /// path skip the hash lookup for receivers with no pending retry tally.
  std::vector<std::uint16_t> lineage_retry_nodes_;

  // Profiling only (maintained iff config_.profiler != nullptr): scheduler
  // pick telemetry plus the last-flushed counter snapshot, so run_until
  // records deltas without per-event profiler calls.
  std::uint64_t sched_attempts_ = 0;
  std::uint64_t sched_no_chunk_ = 0;
  std::uint64_t sched_index_picks_ = 0;
  std::uint64_t sched_linear_scans_ = 0;
  struct ProfileMark {
    std::uint64_t delivered = 0;
    std::uint64_t losses = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t hol_stalls = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t attempts = 0;
    std::uint64_t no_chunk = 0;
    std::uint64_t index_picks = 0;
    std::uint64_t linear_scans = 0;
    int emitted = 0;
  };
  ProfileMark profile_mark_;
  /// Flushes counter deltas since the last flush into the profiler.
  void flush_profile(std::uint64_t events);
};

}  // namespace bmp::dataplane
