// Per-edge WAN behaviour under the chunk engine. A LinkProfile bundles the
// three degradation knobs a real wide-area path adds on top of the planned
// fluid rate — i.i.d. per-transmission loss (with retransmit), propagation
// latency, and downward rate jitter — so that edges can be classed (LAN,
// regional WAN, intercontinental, ...) instead of sharing one global loss
// rate. Profiles resolve per transmission in this order: explicit per-edge
// override, the sender's egress profile (how runtime node classes assign
// them), then the ExecutionConfig defaults.
//
// This header is deliberately tiny: runtime::NodeSpec and the scenario
// builder embed LinkProfiles without pulling the whole execution engine in.
#pragma once

#include <cmath>
#include <stdexcept>
#include <string>

namespace bmp::dataplane {

struct LinkProfile {
  double loss_rate = 0.0;    ///< i.i.d. per-transmission loss in [0, 0.95]
  double latency = 0.0;      ///< propagation delay, seconds (>= 0)
  /// Downward-only multiplicative rate jitter in [0, 1): each transmission
  /// runs at rate * (1 - rate_jitter * u), u ~ U[0, 1). Jitter never
  /// *exceeds* the planned rate, so the bounded multi-port audit holds.
  double rate_jitter = 0.0;

  friend bool operator==(const LinkProfile& a, const LinkProfile& b) {
    return a.loss_rate == b.loss_rate && a.latency == b.latency &&
           a.rate_jitter == b.rate_jitter;
  }
  friend bool operator!=(const LinkProfile& a, const LinkProfile& b) {
    return !(a == b);
  }
};

/// The one validity contract every consumer (execution, scenario, runtime
/// degrade events) enforces: loss in [0, 0.95] (1.0 would retransmit
/// forever), finite latency >= 0, jitter in [0, 1) — all NaN-rejecting.
/// Throws std::invalid_argument prefixed with `who`.
inline void check_link_profile(const LinkProfile& profile, const char* who) {
  if (!(profile.loss_rate >= 0.0) || !(profile.loss_rate <= 0.95)) {
    throw std::invalid_argument(std::string(who) + ": loss_rate in [0, 0.95]");
  }
  if (!(profile.latency >= 0.0) || !std::isfinite(profile.latency)) {
    throw std::invalid_argument(std::string(who) +
                                ": latency must be finite, >= 0");
  }
  if (!(profile.rate_jitter >= 0.0) || !(profile.rate_jitter < 1.0)) {
    throw std::invalid_argument(std::string(who) + ": rate_jitter in [0, 1)");
  }
}

}  // namespace bmp::dataplane
