// The data plane's clock: a deterministic discrete-event queue. Events are
// ordered by (timestamp, push sequence) — the sequence is assigned at push
// time, so two runs that push the same events in the same order pop them in
// the same order, bit for bit, no matter how timestamps tie. This is the
// property every replay-determinism test in tests/test_dataplane.cpp rests
// on: the chunk engine never consults wall clock, thread timing, or pointer
// identity, only this queue.
//
// The queue is a binary min-heap (the classic calendar-queue bucket array
// buys O(1) amortized pops only when event times are uniform; chunk
// workloads burst at churn instants, where a heap's O(log n) is the safer
// bound — and the heap keeps the timestamp-then-id contract trivially).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace bmp::dataplane {

/// What a scheduled occurrence means to the engine.
enum class ChunkEventKind : std::uint8_t {
  kEmission,      ///< the source makes its next chunk available
  kSendComplete,  ///< a pipe finishes a transmission and frees up
  kArrival,       ///< a chunk (or its loss notice) reaches the receiver
};

struct ChunkEvent {
  double time = 0.0;
  std::uint64_t sequence = 0;  ///< assigned by push(); total tie-break
  ChunkEventKind kind = ChunkEventKind::kEmission;
  int pipe = -1;                 ///< pipe slot (send-complete / arrival)
  std::uint64_t generation = 0;  ///< stale-event guard (pipe or emission)
  int chunk = -1;                ///< chunk id in flight (arrival)
  bool lost = false;             ///< arrival carries a loss notice instead
  /// The payload's checksum won't match on arrival: either the sender held
  /// a corrupted copy (silent propagation) or the wire flipped bits in
  /// flight (fault injection). Hardened receivers re-request; frozen ones
  /// accept and forward the damage.
  bool corrupted = false;
};

class EventQueue {
 public:
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] const ChunkEvent& top() const { return heap_.front(); }

  void push(ChunkEvent event) {
    event.sequence = next_sequence_++;
    heap_.push_back(event);
    std::push_heap(heap_.begin(), heap_.end(), after);
  }

  ChunkEvent pop() {
    std::pop_heap(heap_.begin(), heap_.end(), after);
    const ChunkEvent event = heap_.back();
    heap_.pop_back();
    return event;
  }

  void clear() { heap_.clear(); }

 private:
  /// std::*_heap builds a max-heap; invert the (time, sequence) order so
  /// the earliest event surfaces. The sequence tie-break — not the heap
  /// implementation — is what makes replays stable.
  static bool after(const ChunkEvent& a, const ChunkEvent& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.sequence > b.sequence;
  }

  std::vector<ChunkEvent> heap_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace bmp::dataplane
