#include "bmp/dataplane/execution.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "bmp/obs/flight_recorder.hpp"
#include "bmp/obs/lineage.hpp"
#include "bmp/obs/profiler.hpp"
#include "bmp/obs/trace.hpp"

namespace bmp::dataplane {

namespace {
/// Chunk-lifecycle sampling gate: id stride keeps sampled chunks traceable
/// end to end (every hop of chunk k appears, or none of them).
bool traced_chunk(const ExecutionConfig& config, int chunk) {
  return config.trace != nullptr && config.trace_sample > 0 &&
         chunk % config.trace_sample == 0;
}
/// Below this a pipe rate is treated as edge removal (mirrors the scheme's
/// kZeroTol: planned overlays never carry meaningful rates this small).
constexpr double kMinRate = 1e-12;
/// A busy pipe re-rated upward by more than this factor restarts its
/// in-flight transmission at the new rate: the old (slow) transmission
/// would otherwise squat the wire — a pipe re-planned from a trickle to a
/// main artery could stay "busy" for minutes of virtual time while its
/// receiver starves on a planned inflow that never materializes.
constexpr double kRerateRestartFactor = 2.0;
/// Eligibility probes the indexed rarest-first scan may spend before
/// falling back to the linear window scan (which is the semantics of
/// record — both paths pick the identical chunk).
constexpr int kIndexProbeBudget = 96;
}  // namespace

Execution::Execution(ExecutionConfig config) : config_(config) {
  if (!(config_.chunk_size > 0.0) || !std::isfinite(config_.chunk_size)) {
    throw std::invalid_argument("Execution: chunk_size must be > 0");
  }
  if (config_.total_chunks < 0) {
    throw std::invalid_argument("Execution: total_chunks must be >= 0");
  }
  if (config_.receiver_window < 1) {
    throw std::invalid_argument("Execution: receiver_window must be >= 1");
  }
  if (config_.latency < 0.0 || !std::isfinite(config_.latency)) {
    throw std::invalid_argument("Execution: latency must be finite, >= 0");
  }
  if (config_.loss_rate < 0.0 || config_.loss_rate > 0.95) {
    // 1.0 would retransmit forever; 0.95 is already absurd for a WAN.
    throw std::invalid_argument("Execution: loss_rate in [0, 0.95]");
  }
  if (config_.warmup_chunks < 0 || config_.scan_limit < 1) {
    throw std::invalid_argument("Execution: bad warmup/scan limit");
  }
  if (config_.overtake_factor < 0.0 || config_.overtake_factor >= 1.0 ||
      !std::isfinite(config_.overtake_factor)) {
    throw std::invalid_argument("Execution: overtake_factor in [0, 1)");
  }
  if (config_.rescue_factor < 0.0 || config_.rescue_factor >= 1.0 ||
      !std::isfinite(config_.rescue_factor) ||
      config_.rescue_factor_hard < 0.0 || config_.rescue_factor_hard >= 1.0 ||
      !std::isfinite(config_.rescue_factor_hard)) {
    throw std::invalid_argument("Execution: rescue factors in [0, 1)");
  }
  now_ = config_.start_time;
  last_emit_time_ = config_.start_time;
  emission_rate_ = std::max(0.0, config_.emission_rate);
  if (config_.total_chunks > 0 || emission_rate_ > 0.0) {
    ChunkEvent first;
    first.time = config_.start_time;
    first.kind = ChunkEventKind::kEmission;
    first.generation = emission_generation_;
    queue_.push(first);
  }
}

Execution::Execution(const Instance& instance, const BroadcastScheme& scheme,
                     ExecutionConfig config)
    : Execution(config) {
  if (scheme.num_nodes() != instance.size()) {
    throw std::invalid_argument("Execution: instance/scheme size mismatch");
  }
  for (int i = 0; i < instance.size(); ++i) add_node(instance.b(i));
  for (int i = 0; i < scheme.num_nodes(); ++i) {
    for (const auto& [to, rate] : scheme.out_edges(i)) set_edge(i, to, rate);
  }
}

// ----------------------------------------------------------------- bitsets

bool Execution::bit(const std::vector<std::uint64_t>& bits, int i) {
  const std::size_t word = static_cast<std::size_t>(i) >> 6;
  if (word >= bits.size()) return false;
  return (bits[word] >> (static_cast<unsigned>(i) & 63U)) & 1U;
}

void Execution::set_bit(std::vector<std::uint64_t>& bits, int i) {
  const std::size_t word = static_cast<std::size_t>(i) >> 6;
  if (word >= bits.size()) bits.resize(word + 1, 0);
  bits[word] |= std::uint64_t{1} << (static_cast<unsigned>(i) & 63U);
}

bool Execution::node_has(const Node& node, int chunk) const {
  return chunk >= node.skip_before && bit(node.have, chunk);
}

Execution::Node& Execution::node_at(int id, const char* who) {
  if (id < 0 || id >= static_cast<int>(nodes_.size())) {
    throw std::invalid_argument(std::string(who) + ": unknown node");
  }
  return nodes_[static_cast<std::size_t>(id)];
}

// ---------------------------------------------------------- live topology

int Execution::add_node(double upload_budget) {
  if (!is_valid_bandwidth(upload_budget)) {
    throw std::invalid_argument("Execution::add_node: invalid budget");
  }
  const int id = static_cast<int>(nodes_.size());
  Node node;
  node.budget = upload_budget;
  node.alive = true;
  // Until a WAN class is assigned, the node's egress behaves per the
  // config-wide defaults (the pre-LinkProfile semantics).
  node.egress = LinkProfile{config_.loss_rate, config_.latency, 0.0};
  node.joined = now_;
  node.skip_before = emitted_;  // live-edge join: no catch-up of old chunks
  node.next_missing = emitted_;
  nodes_.push_back(std::move(node));
  ++alive_nodes_;
  if (id == 0 && (emission_rate_ > 0.0 ||
                  (config_.total_chunks > 0 &&
                   emitted_ < config_.total_chunks))) {
    // The source just came into existence: re-arm the emission chain in
    // case an emission event already fired into the empty execution and
    // died there.
    ++emission_generation_;
    ChunkEvent first;
    first.time = std::max(now_, config_.start_time);
    first.kind = ChunkEventKind::kEmission;
    first.generation = emission_generation_;
    queue_.push(first);
  }
  return id;
}

void Execution::remove_node(int id) {
  if (id == 0) {
    throw std::invalid_argument("Execution::remove_node: source is immortal");
  }
  Node& node = node_at(id, "Execution::remove_node");
  if (!node.alive) {
    if (!node.crashed) {
      throw std::invalid_argument("Execution::remove_node: node already dead");
    }
    // crash_node already tore down the chunk state and reservations but
    // left the frozen pipes attached (their silence is the detection
    // signal). The synthesized departure finishes the job: detach them.
    node.crashed = false;
    std::vector<int> doomed = node.in;
    doomed.insert(doomed.end(), node.out.begin(), node.out.end());
    std::vector<int> wake;
    for (const int slot : doomed) {
      const int receiver = pipes_[static_cast<std::size_t>(slot)].to;
      remove_pipe(slot);
      if (receiver != id) wake.push_back(receiver);
    }
    for (const int receiver : wake) activate_receiver(receiver);
    return;
  }
  node.alive = false;
  --alive_nodes_;
  // The departed copies stop counting toward rarity.
  for (int chunk = node.skip_before; chunk < emitted_; ++chunk) {
    if (bit(node.have, chunk)) {
      const int old = replicas_[static_cast<std::size_t>(chunk)]--;
      rarity_move(chunk, old, old - 1);
    }
  }
  std::vector<int> doomed = node.in;
  doomed.insert(doomed.end(), node.out.begin(), node.out.end());
  std::vector<int> wake;
  for (const int slot : doomed) {
    const int receiver = pipes_[static_cast<std::size_t>(slot)].to;
    remove_pipe(slot);
    if (receiver != id) wake.push_back(receiver);
  }
  // Free the dead node's chunk state — a churny channel would otherwise
  // accumulate one bitset per departed peer forever.
  node.have.clear();
  node.have.shrink_to_fit();
  node.inflight.clear();
  node.window_used = 0;
  for (const int receiver : wake) activate_receiver(receiver);
}

void Execution::crash_node(int id) {
  Node& node = node_at(id, "Execution::crash_node");
  if (!node.alive) return;  // a crash on a corpse is a no-op
  node.alive = false;
  node.crashed = true;
  --alive_nodes_;
  // The crashed copies stop counting toward rarity — survivors must
  // re-spread anything the corpse alone held onward.
  for (int chunk = node.skip_before; chunk < emitted_; ++chunk) {
    if (bit(node.have, chunk)) {
      const int old = replicas_[static_cast<std::size_t>(chunk)]--;
      rarity_move(chunk, old, old - 1);
    }
  }
  // Freeze every adjacent pipe *in place*: strand in-flight transmissions
  // (generation bump), hand their window slots and reservations back to
  // live receivers, but keep the pipes attached and active. try_send's
  // aliveness check stops all future traffic, so the pipes' attempts/sent
  // counters flatline — the exact silence signature crash detection reads.
  std::vector<int> wake;
  const auto freeze = [&](int slot) {
    Pipe& pipe = pipes_[static_cast<std::size_t>(slot)];
    for (const int chunk : pipe.in_flight) {
      release_reservation(pipe.to, chunk);
    }
    pipe.in_flight.clear();
    pipe.lineage_inflight.clear();
    ++pipe.generation;
    pipe.busy = false;
    pipe.pending_duration = 0.0;
    if (pipe.to != id) wake.push_back(pipe.to);
  };
  for (const int slot : node.out) freeze(slot);
  for (const int slot : node.in) freeze(slot);
  node.have.clear();
  node.have.shrink_to_fit();
  node.corrupt.clear();
  node.corrupt.shrink_to_fit();
  node.inflight.clear();
  node.window_used = 0;
  if (id == origin_) ++emission_generation_;  // emission pauses at the crash
  for (const int receiver : wake) activate_receiver(receiver);
}

void Execution::set_partition_group(int id, int group) {
  node_at(id, "Execution::set_partition_group").partition_group = group;
}

int Execution::partition_group(int id) const {
  if (id < 0 || id >= static_cast<int>(nodes_.size())) {
    throw std::invalid_argument("Execution::partition_group: unknown node");
  }
  return nodes_[static_cast<std::size_t>(id)].partition_group;
}

void Execution::set_corrupt_rate(int id, double rate) {
  if (rate < 0.0 || rate > 1.0 || !std::isfinite(rate)) {
    throw std::invalid_argument("Execution::set_corrupt_rate: rate in [0, 1]");
  }
  node_at(id, "Execution::set_corrupt_rate").corrupt_rate = rate;
}

bool Execution::chunk_corrupted(int id, int chunk) const {
  if (id < 0 || id >= static_cast<int>(nodes_.size())) {
    throw std::invalid_argument("Execution::chunk_corrupted: unknown node");
  }
  return bit(nodes_[static_cast<std::size_t>(id)].corrupt, chunk);
}

void Execution::write_off_chunk(int chunk) {
  ++written_off_;
  int holders = 0;
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    Node& node = nodes_[id];
    if (!node.alive || chunk < node.skip_before) continue;
    ++holders;
    if (bit(node.have, chunk)) continue;
    set_bit(node.have, chunk);  // no delivered credit: the data is gone
    while (node.next_missing < emitted_ && bit(node.have, node.next_missing)) {
      ++node.next_missing;
    }
    if (config_.total_chunks > 0 && emitted_ == config_.total_chunks &&
        node.next_missing >= config_.total_chunks &&
        node.completion_time < 0.0) {
      node.completion_time = now_;
    }
  }
  const int old = replicas_[static_cast<std::size_t>(chunk)];
  replicas_[static_cast<std::size_t>(chunk)] = holders;
  rarity_move(chunk, old, holders);
}

int Execution::failover_source() {
  const Node& old_origin = nodes_.at(static_cast<std::size_t>(origin_));
  if (old_origin.alive) {
    throw std::invalid_argument(
        "Execution::failover_source: the origin is still alive");
  }
  int best = -1;
  int best_delivered = -1;
  for (int id = 0; id < static_cast<int>(nodes_.size()); ++id) {
    const Node& node = nodes_[static_cast<std::size_t>(id)];
    if (!node.alive) continue;
    if (node.delivered > best_delivered) {
      best = id;
      best_delivered = node.delivered;
    }
  }
  if (best < 0) {
    throw std::invalid_argument("Execution::failover_source: no survivors");
  }
  origin_ = best;
  // Chunks whose every replica died with the old origin are unrecoverable:
  // write them off so survivors' completion doesn't wait forever.
  for (int chunk = 0; chunk < emitted_; ++chunk) {
    if (replicas_[static_cast<std::size_t>(chunk)] == 0) {
      write_off_chunk(chunk);
    }
  }
  // Re-arm emission from the new origin (the crash paused it).
  ++emission_generation_;
  if (emission_rate_ > 0.0 ||
      (config_.total_chunks > 0 && emitted_ < config_.total_chunks)) {
    ChunkEvent next;
    next.time = emission_rate_ > 0.0 && emitted_ > 0
                    ? std::max(now_, last_emit_time_ +
                                         config_.chunk_size / emission_rate_)
                    : std::max(now_, config_.start_time);
    next.kind = ChunkEventKind::kEmission;
    next.generation = emission_generation_;
    queue_.push(next);
  }
  activate_sender(best);
  return best;
}

void Execution::set_node_budget(int id, double budget) {
  if (!is_valid_bandwidth(budget)) {
    throw std::invalid_argument("Execution::set_node_budget: invalid budget");
  }
  node_at(id, "Execution::set_node_budget").budget = budget;
}

void Execution::set_edge(int from, int to, double rate) {
  if (from == to) {
    throw std::invalid_argument("Execution::set_edge: self-loop");
  }
  const auto key = std::make_pair(from, to);
  const auto it = pipe_of_.find(key);
  if (rate <= kMinRate) {
    if (it == pipe_of_.end()) return;
    const int slot = it->second;
    const int receiver = pipes_[static_cast<std::size_t>(slot)].to;
    remove_pipe(slot);
    activate_receiver(receiver);
    return;
  }
  if (!std::isfinite(rate)) {
    throw std::invalid_argument("Execution::set_edge: rate must be finite");
  }
  if (it != pipe_of_.end()) {
    // Re-rate in place; an in-flight transmission keeps its old timing, the
    // next one uses the new rate — unless the new rate is sharply higher,
    // in which case the slow transmission is cancelled (reservations
    // released, chunks re-requested) and the pipe restarts immediately.
    Pipe& pipe = pipes_[static_cast<std::size_t>(it->second)];
    const bool restart =
        pipe.busy && rate > pipe.rate * kRerateRestartFactor;
    nodes_[static_cast<std::size_t>(pipe.from)].planned_out +=
        rate - pipe.rate;
    pipe.rate = rate;
    if (restart) {
      for (const int chunk : pipe.in_flight) {
        release_reservation(pipe.to, chunk);
      }
      pipe.in_flight.clear();
      pipe.lineage_inflight.clear();
      ++pipe.generation;  // strands the cancelled transmission's events
      pipe.busy = false;
      pipe.pending_duration = 0.0;
      const int receiver = pipe.to;
      try_send(it->second);
      // The released window slots may unblock other in-pipes too.
      activate_receiver(receiver);
    }
    return;
  }
  Node& sender = node_at(from, "Execution::set_edge");
  Node& receiver = node_at(to, "Execution::set_edge");
  if (!sender.alive || !receiver.alive) {
    throw std::invalid_argument("Execution::set_edge: endpoint is dead");
  }
  int slot;
  if (!free_pipes_.empty()) {
    slot = free_pipes_.back();
    free_pipes_.pop_back();
  } else {
    slot = static_cast<int>(pipes_.size());
    pipes_.emplace_back();
  }
  Pipe& pipe = pipes_[static_cast<std::size_t>(slot)];
  pipe.from = from;
  pipe.to = to;
  pipe.rate = rate;
  pipe.active = true;
  pipe.busy = false;
  pipe.in_flight.clear();  // a recycled slot starts with a clean wire
  pipe.busy_time = 0.0;
  pipe.completed = 0.0;
  pipe.pending_duration = 0.0;
  pipe.sent = 0;
  pipe.delivered = 0;
  pipe.lost = 0;
  pipe.attempts = 0;
  pipe.window_stalls = 0;
  pipe.no_chunk = 0;
  // One independent, replay-stable loss stream per pipe creation: the
  // stream index is a deterministic function of the operation sequence.
  pipe.rng = util::Xoshiro256(config_.seed).fork(++pipe_streams_);
  pipe_of_.emplace(key, slot);
  sender.planned_out += rate;
  sender.out.insert(
      std::upper_bound(sender.out.begin(), sender.out.end(), slot,
                       [this](int a, int b) {
                         return pipes_[static_cast<std::size_t>(a)].to <
                                pipes_[static_cast<std::size_t>(b)].to;
                       }),
      slot);
  receiver.in.insert(
      std::upper_bound(receiver.in.begin(), receiver.in.end(), slot,
                       [this](int a, int b) {
                         return pipes_[static_cast<std::size_t>(a)].from <
                                pipes_[static_cast<std::size_t>(b)].from;
                       }),
      slot);
  try_send(slot);
}

void Execution::reconcile_edges(
    const std::vector<std::tuple<int, int, double>>& desired) {
  std::map<std::pair<int, int>, double> want;
  for (const auto& [from, to, rate] : desired) {
    if (rate > kMinRate) want[std::make_pair(from, to)] = rate;
  }
  std::vector<int> doomed;
  for (const auto& [key, slot] : pipe_of_) {
    if (want.find(key) == want.end()) doomed.push_back(slot);
  }
  std::vector<int> wake;
  for (const int slot : doomed) {
    wake.push_back(pipes_[static_cast<std::size_t>(slot)].to);
    remove_pipe(slot);
  }
  for (const auto& [key, rate] : want) {
    set_edge(key.first, key.second, rate);
  }
  for (const int receiver : wake) {
    if (nodes_[static_cast<std::size_t>(receiver)].alive) {
      activate_receiver(receiver);
    }
  }
}

void Execution::set_emission_rate(double rate) {
  if (rate < 0.0 || !std::isfinite(rate)) {
    throw std::invalid_argument("Execution: emission rate must be finite, >= 0");
  }
  if (rate == emission_rate_) return;  // no-op: keep the scheduled cadence
  ++emission_generation_;  // invalidate the queued emission, if any
  emission_rate_ = rate;
  if (rate <= 0.0) return;
  ChunkEvent next;
  // Resume from the last emission instant, never before now: a rate change
  // must not double-emit or starve the stream.
  next.time = emitted_ == 0
                  ? std::max(now_, config_.start_time)
                  : std::max(now_, last_emit_time_ + config_.chunk_size / rate);
  next.kind = ChunkEventKind::kEmission;
  next.generation = emission_generation_;
  queue_.push(next);
}

// --------------------------------------------------------- effective world

void Execution::set_effective_capacity(int id, double capacity) {
  // Accept strictly negative (uncap) or positive-finite; reject 0, NaN, inf.
  if (!(capacity < 0.0) && (!(capacity > 0.0) || !std::isfinite(capacity))) {
    throw std::invalid_argument(
        "Execution::set_effective_capacity: capacity must be > 0 (or < 0 to "
        "remove the cap)");
  }
  node_at(id, "Execution::set_effective_capacity").effective_capacity =
      capacity < 0.0 ? -1.0 : capacity;
}

double Execution::effective_capacity(int id) const {
  if (id < 0 || id >= static_cast<int>(nodes_.size())) {
    throw std::invalid_argument("Execution::effective_capacity: unknown node");
  }
  return nodes_[static_cast<std::size_t>(id)].effective_capacity;
}

void Execution::set_egress_profile(int id, const LinkProfile& profile) {
  check_link_profile(profile, "Execution::set_egress_profile");
  node_at(id, "Execution::set_egress_profile").egress = profile;
}

const LinkProfile& Execution::egress_profile(int id) const {
  if (id < 0 || id >= static_cast<int>(nodes_.size())) {
    throw std::invalid_argument("Execution::egress_profile: unknown node");
  }
  return nodes_[static_cast<std::size_t>(id)].egress;
}

void Execution::set_edge_profile(int from, int to, const LinkProfile& profile) {
  check_link_profile(profile, "Execution::set_edge_profile");
  edge_profiles_[std::make_pair(from, to)] = profile;
}

void Execution::clear_edge_profile(int from, int to) {
  edge_profiles_.erase(std::make_pair(from, to));
}

const LinkProfile& Execution::profile_for(const Pipe& pipe) const {
  const auto it = edge_profiles_.find(std::make_pair(pipe.from, pipe.to));
  if (it != edge_profiles_.end()) return it->second;
  return nodes_[static_cast<std::size_t>(pipe.from)].egress;
}

std::vector<EdgeStats> Execution::edge_stats() const {
  std::vector<EdgeStats> stats;
  edge_stats_into(stats);
  return stats;
}

void Execution::edge_stats_into(std::vector<EdgeStats>& out) const {
  out.clear();
  out.reserve(pipe_of_.size());
  for (const auto& [key, slot] : pipe_of_) {
    const Pipe& pipe = pipes_[static_cast<std::size_t>(slot)];
    EdgeStats entry;
    entry.from = key.first;
    entry.to = key.second;
    entry.rate = pipe.rate;
    entry.busy_time = pipe.busy_time;
    entry.completed = pipe.completed;
    entry.sent = pipe.sent;
    entry.delivered = pipe.delivered;
    entry.lost = pipe.lost;
    entry.busy = pipe.busy;
    entry.pending_duration = pipe.busy ? pipe.pending_duration : 0.0;
    entry.attempts = pipe.attempts;
    entry.window_stalls = pipe.window_stalls;
    entry.no_chunk = pipe.no_chunk;
    out.push_back(entry);
  }
}

// ------------------------------------------------------------- scan index

void Execution::rarity_insert(int chunk, int replicas) {
  if (!config_.use_scan_index) return;
  const auto bucket = static_cast<std::size_t>(replicas);
  if (bucket >= by_rarity_.size()) by_rarity_.resize(bucket + 1);
  by_rarity_[bucket].insert(chunk);
}

void Execution::rarity_move(int chunk, int old_replicas, int new_replicas) {
  if (!config_.use_scan_index) return;
  by_rarity_[static_cast<std::size_t>(old_replicas)].erase(chunk);
  rarity_insert(chunk, new_replicas);
}

void Execution::remove_pipe(int slot) {
  Pipe& pipe = pipes_[static_cast<std::size_t>(slot)];
  if (!pipe.active) return;
  // Every transmission still pending on this pipe — the one in the wire
  // *and* any pipelining through the propagation latency — must hand its
  // window slot and reservation back, because the generation bump below
  // strands their queued arrival events.
  for (const int chunk : pipe.in_flight) {
    release_reservation(pipe.to, chunk);
  }
  pipe.in_flight.clear();
  pipe.lineage_inflight.clear();
  ++pipe.generation;  // strands the pipe's queued events
  pipe.active = false;
  pipe.busy = false;
  nodes_[static_cast<std::size_t>(pipe.from)].planned_out -= pipe.rate;
  pipe_of_.erase(std::make_pair(pipe.from, pipe.to));
  auto detach = [slot](std::vector<int>& list) {
    list.erase(std::remove(list.begin(), list.end(), slot), list.end());
  };
  detach(nodes_[static_cast<std::size_t>(pipe.from)].out);
  detach(nodes_[static_cast<std::size_t>(pipe.to)].in);
  free_pipes_.push_back(slot);
}

void Execution::release_reservation(int receiver_id, int chunk) {
  Node& receiver = nodes_[static_cast<std::size_t>(receiver_id)];
  if (!receiver.alive) return;  // a dead receiver's bookkeeping died with it
  const auto it = receiver.inflight.find(chunk);
  if (it != receiver.inflight.end() && --it->second.count <= 0) {
    receiver.inflight.erase(it);
  }
  --receiver.window_used;
}

// ----------------------------------------------------------------- advance

void Execution::run_until(double t) {
  if (t < now_) {
    throw std::invalid_argument("Execution::run_until: time went backwards");
  }
  std::uint64_t events = 0;
  while (!queue_.empty() && queue_.top().time <= t) {
    const ChunkEvent event = queue_.pop();
    now_ = event.time;
    process(event);
    ++events;
  }
  now_ = t;
  if (config_.profiler != nullptr) flush_profile(events);
}

void Execution::run_to_completion() {
  if (emission_rate_ > 0.0 && config_.total_chunks == 0) {
    throw std::invalid_argument(
        "Execution::run_to_completion: unbounded stream (set total_chunks or "
        "stop_emission first)");
  }
  std::uint64_t events = 0;
  while (!queue_.empty()) {
    const ChunkEvent event = queue_.pop();
    now_ = event.time;
    process(event);
    ++events;
  }
  if (config_.profiler != nullptr) flush_profile(events);
}

void Execution::flush_profile(std::uint64_t events) {
  obs::Profiler& prof = *config_.profiler;
  ProfileMark& mark = profile_mark_;
  prof.enter("dataplane/advance");
  prof.count("dataplane/advance", "events", events);
  prof.count("dataplane/advance", "emitted",
             static_cast<std::uint64_t>(emitted_ - mark.emitted));
  prof.count("dataplane/advance", "delivered", delivered_chunks_ - mark.delivered);
  prof.count("dataplane/advance", "losses", losses_ - mark.losses);
  prof.count("dataplane/advance", "retransmits", retransmits_ - mark.retransmits);
  prof.count("dataplane/advance", "duplicates", duplicates_ - mark.duplicates);
  prof.count("dataplane/advance", "hol_stalls", hol_stalls_ - mark.hol_stalls);
  prof.enter("dataplane/scheduler");
  prof.count("dataplane/scheduler", "attempts", sched_attempts_ - mark.attempts);
  prof.count("dataplane/scheduler", "window_stalls",
             hol_stalls_ - mark.hol_stalls);
  prof.count("dataplane/scheduler", "no_chunk", sched_no_chunk_ - mark.no_chunk);
  prof.count("dataplane/scheduler", "index_picks",
             sched_index_picks_ - mark.index_picks);
  prof.count("dataplane/scheduler", "linear_scans",
             sched_linear_scans_ - mark.linear_scans);
  mark.emitted = emitted_;
  mark.delivered = delivered_chunks_;
  mark.losses = losses_;
  mark.retransmits = retransmits_;
  mark.duplicates = duplicates_;
  mark.hol_stalls = hol_stalls_;
  mark.attempts = sched_attempts_;
  mark.no_chunk = sched_no_chunk_;
  mark.index_picks = sched_index_picks_;
  mark.linear_scans = sched_linear_scans_;
}

void Execution::process(const ChunkEvent& event) {
  switch (event.kind) {
    case ChunkEventKind::kEmission:
      if (event.generation == emission_generation_) emit_chunks();
      break;
    case ChunkEventKind::kSendComplete:
      on_send_complete(event);
      break;
    case ChunkEventKind::kArrival:
      on_arrival(event);
      break;
  }
}

void Execution::emit_chunks() {
  if (nodes_.empty()) return;  // nobody to hold the stream yet
  const bool paced = emission_rate_ > 0.0;
  const int target = config_.total_chunks > 0
                         ? config_.total_chunks
                         : (paced ? emitted_ + 1 : emitted_);
  // Paced: one chunk per event. File mode (rate <= 0): everything at once.
  int burst = paced ? 1 : target - emitted_;
  Node& source = nodes_[static_cast<std::size_t>(origin_)];
  while (burst-- > 0 && emitted_ < target) {
    const int chunk = emitted_++;
    last_emit_time_ = now_;
    emit_time_.push_back(now_);
    replicas_.push_back(source.alive ? 1 : 0);
    rarity_insert(chunk, replicas_.back());
    set_bit(source.have, chunk);
    if (config_.lineage != nullptr) {
      config_.lineage->record_emit(config_.trace_id, origin_, chunk, now_);
    }
    if (traced_chunk(config_, chunk)) {
      config_.trace->instant_at(obs::Lane::kExecution, "dataplane", "emit",
                                now_,
                                {{"channel", config_.trace_id},
                                 {"chunk", chunk}});
    }
  }
  activate_sender(origin_);
  schedule_next_emission();
}

void Execution::schedule_next_emission() {
  if (emission_rate_ <= 0.0) return;
  if (config_.total_chunks > 0 && emitted_ >= config_.total_chunks) return;
  ChunkEvent next;
  next.time = now_ + config_.chunk_size / emission_rate_;
  next.kind = ChunkEventKind::kEmission;
  next.generation = emission_generation_;
  queue_.push(next);
}

void Execution::on_send_complete(const ChunkEvent& event) {
  Pipe& pipe = pipes_[static_cast<std::size_t>(event.pipe)];
  if (!pipe.active || pipe.generation != event.generation) return;
  pipe.busy = false;
  pipe.busy_time += pipe.pending_duration;
  pipe.completed += config_.chunk_size;
  ++pipe.sent;
  try_send(event.pipe);
}

void Execution::on_arrival(const ChunkEvent& event) {
  Pipe& pipe = pipes_[static_cast<std::size_t>(event.pipe)];
  if (!pipe.active || pipe.generation != event.generation) return;
  const auto flight =
      std::find(pipe.in_flight.begin(), pipe.in_flight.end(), event.chunk);
  LineagePending pending;
  if (config_.lineage != nullptr) {
    const auto index = flight - pipe.in_flight.begin();
    pending = pipe.lineage_inflight[static_cast<std::size_t>(index)];
    pipe.lineage_inflight.erase(pipe.lineage_inflight.begin() + index);
  }
  pipe.in_flight.erase(flight);
  const int receiver_id = pipe.to;
  Node& receiver = nodes_[static_cast<std::size_t>(receiver_id)];
  --receiver.window_used;
  // A checksum mismatch on the hardened path is a loss with a different
  // counter: the reservation opens back up and the chunk is re-requested
  // from another holder.
  const bool checksum_failed =
      !event.lost && event.corrupted && config_.verify_payloads;
  if (event.lost || checksum_failed) ++pipe.lost; else ++pipe.delivered;
  if (event.lost || checksum_failed) {
    const auto it = receiver.inflight.find(event.chunk);
    if (it != receiver.inflight.end() && --it->second.count <= 0) {
      receiver.inflight.erase(it);
    }
    if (checksum_failed) ++corruptions_; else ++losses_;
    // The loss notice re-opens the chunk for scheduling; every loss leads
    // to exactly one fresh transmission attempt somewhere.
    ++retransmits_;
    if (config_.lineage != nullptr) {
      const auto [retry, inserted] =
          lineage_retry_.try_emplace(lineage_key(receiver_id, event.chunk));
      if (inserted) {
        if (static_cast<std::size_t>(receiver_id) >=
            lineage_retry_nodes_.size()) {
          lineage_retry_nodes_.resize(receiver_id + 1, 0);
        }
        ++lineage_retry_nodes_[receiver_id];
      }
      ++retry->second.count;
      retry->second.wasted += now_ - pending.start;
    }
    if (traced_chunk(config_, event.chunk)) {
      config_.trace->instant_at(obs::Lane::kExecution, "dataplane",
                                checksum_failed ? "corrupt" : "loss", now_,
                                {{"channel", config_.trace_id},
                                 {"chunk", event.chunk},
                                 {"from", pipe.from},
                                 {"to", receiver_id}});
    }
    activate_receiver(receiver_id);
    return;
  }
  if (bit(receiver.have, event.chunk)) {
    // An overtaken copy landing after the chunk was already delivered.
    ++duplicates_;
    activate_receiver(receiver_id);
    return;
  }
  receiver.inflight.erase(event.chunk);  // later copies arrive as duplicates
  if (event.corrupted) {
    // Frozen path (verify_payloads off): the damage is silently accepted —
    // and, worse, forwarded — the failure mode the hardened path closes.
    set_bit(receiver.corrupt, event.chunk);
    ++corrupted_accepted_;
  }
  deliver(receiver, receiver_id, event.chunk);
  if (config_.lineage != nullptr) {
    const bool kept = config_.lineage->record_hop(
        config_.trace_id, pipe.from, receiver_id, event.chunk, pending.start,
        now_, pending.hol, pending.overtake);
    // Per-receiver outstanding-retry counter keeps the common (no prior
    // loss for this receiver) delivery free of any hash lookup.
    if (static_cast<std::size_t>(receiver_id) < lineage_retry_nodes_.size() &&
        lineage_retry_nodes_[receiver_id] != 0) {
      const auto retry =
          lineage_retry_.find(lineage_key(receiver_id, event.chunk));
      if (retry != lineage_retry_.end()) {
        if (kept && retry->second.count > 0) {
          config_.lineage->record_hop_retry(retry->second.count,
                                            retry->second.wasted);
        }
        --lineage_retry_nodes_[receiver_id];
        lineage_retry_.erase(retry);
      }
    }
  }
  activate_receiver(receiver_id);
  activate_sender(receiver_id);
}

void Execution::deliver(Node& node, int node_id, int chunk) {
  set_bit(node.have, chunk);
  ++node.delivered;
  const int replicas = ++replicas_[static_cast<std::size_t>(chunk)];
  rarity_move(chunk, replicas - 1, replicas);
  ++delivered_chunks_;
  if (traced_chunk(config_, chunk)) {
    config_.trace->instant_at(obs::Lane::kExecution, "dataplane", "deliver",
                              now_,
                              {{"channel", config_.trace_id},
                               {"chunk", chunk},
                               {"node", node_id},
                               {"replicas", replicas}});
  }
  while (node.next_missing < emitted_ && bit(node.have, node.next_missing)) {
    ++node.next_missing;
  }
  const int buffered = node.delivered - (node.next_missing - node.skip_before);
  node.max_buffer = std::max(node.max_buffer, buffered);
  if (node.delivered == config_.warmup_chunks) node.warmup_time = now_;
  node.last_time = now_;
  if (config_.collect_latencies) {
    pending_latencies_.push_back(now_ -
                                 emit_time_[static_cast<std::size_t>(chunk)]);
  }
  if (config_.total_chunks > 0 && emitted_ == config_.total_chunks &&
      node.next_missing >= config_.total_chunks &&
      node.completion_time < 0.0) {
    node.completion_time = now_;
  }
}

// Rarest-first candidate selection, linear form — the semantics of record:
// the eligible unreserved chunk held by the fewest alive nodes; ties break
// to the oldest (smallest id), which the ascending scan gives for free.
// Chunks already in flight to this receiver are only considered for
// *overtaking* — and only when no unreserved chunk is available — to keep
// duplicates rare.
void Execution::pick_linear(const Node& sender, const Node& receiver,
                            double my_eta, double rescue, int start, int end,
                            int& best, int& overtake) const {
  best = -1;
  overtake = -1;
  int best_replicas = std::numeric_limits<int>::max();
  int overtake_replicas = std::numeric_limits<int>::max();
  for (int chunk = start; chunk < end; ++chunk) {
    if (bit(receiver.have, chunk)) continue;
    if (!node_has(sender, chunk)) continue;
    const auto reserved = receiver.inflight.find(chunk);
    const int rep = replicas_[static_cast<std::size_t>(chunk)];
    if (reserved == receiver.inflight.end() ||
        (rescue > 0.0 &&
         my_eta - now_ < rescue * (reserved->second.eta - now_))) {
      // Unreserved, or reserved on a pipe so slow this sender can rescue
      // it: both compete in rarest-first order.
      if (rep < best_replicas) {
        best = chunk;
        best_replicas = rep;
      }
    } else if (config_.overtake_factor > 0.0 && rep < overtake_replicas &&
               my_eta - now_ <
                   config_.overtake_factor * (reserved->second.eta - now_)) {
      overtake = chunk;
      overtake_replicas = rep;
    }
  }
}

// Indexed form: probes chunks in ascending (replica count, id) order via
// the per-rarity buckets, so the first eligible unreserved chunk *is* the
// linear scan's pick and a deep backlog costs a handful of probes instead
// of a scan_limit-wide sweep. Returns false when the probe budget runs out
// (pathological eligibility patterns) — the caller falls back to the
// linear scan, keeping the picked chunk identical either way.
bool Execution::pick_indexed(const Node& sender, const Node& receiver,
                             double my_eta, double rescue, int start, int end,
                             int& best, int& overtake) const {
  best = -1;
  overtake = -1;
  int probes = 0;
  for (const std::set<int>& bucket : by_rarity_) {
    if (bucket.empty()) continue;
    for (auto it = bucket.lower_bound(start); it != bucket.end() && *it < end;
         ++it) {
      if (++probes > kIndexProbeBudget) return false;
      const int chunk = *it;
      if (bit(receiver.have, chunk)) continue;
      if (!node_has(sender, chunk)) continue;
      const auto reserved = receiver.inflight.find(chunk);
      if (reserved == receiver.inflight.end() ||
          (rescue > 0.0 &&
           my_eta - now_ < rescue * (reserved->second.eta - now_))) {
        best = chunk;  // min (replicas, id) over all eligible: done
        return true;
      }
      if (overtake < 0 && config_.overtake_factor > 0.0 &&
          my_eta - now_ <
              config_.overtake_factor * (reserved->second.eta - now_)) {
        overtake = chunk;  // first in (replicas, id) order = linear's pick
      }
    }
  }
  return true;
}

void Execution::try_send(int pipe_slot) {
  Pipe& pipe = pipes_[static_cast<std::size_t>(pipe_slot)];
  if (!pipe.active || pipe.busy) return;
  Node& sender = nodes_[static_cast<std::size_t>(pipe.from)];
  Node& receiver = nodes_[static_cast<std::size_t>(pipe.to)];
  if (!sender.alive || !receiver.alive) return;
  ++pipe.attempts;
  if (config_.profiler != nullptr) ++sched_attempts_;
  // Backpressure: the effective window grants at least one outstanding
  // chunk per in-pipe so a wide fan-in is never throttled structurally.
  const int window = std::max(config_.receiver_window,
                              static_cast<int>(receiver.in.size()));
  if (receiver.window_used >= window) {
    ++hol_stalls_;  // one head-of-line stall per denied send opportunity
    ++pipe.window_stalls;
    return;
  }
  // The *effective* send rate: when the sender's planned out-rates exceed
  // its browned-out capacity, every transmission shares the shortfall
  // proportionally. Jitter is drawn per transmission below; the ETA
  // estimate stays pre-jitter (a conservative reservation estimate).
  const LinkProfile& profile = profile_for(pipe);
  double throttle = 1.0;
  if (sender.effective_capacity >= 0.0 &&
      sender.planned_out > sender.effective_capacity) {
    throttle = sender.effective_capacity / sender.planned_out;
  }
  const double send_rate = pipe.rate * throttle;
  const double my_eta =
      now_ + config_.chunk_size / send_rate + profile.latency;
  const int start = receiver.next_missing;
  const int end = std::min(emitted_, start + config_.scan_limit);
  // Rescue arms only under a pinned in-order frontier (bloated backlog):
  // a healthy stream never pays rescue duplicates.
  const int buffered =
      receiver.delivered - (receiver.next_missing - receiver.skip_before);
  const double rescue =
      config_.rescue_factor > 0.0 &&
              buffered >= config_.rescue_buffer_windows * window
          ? config_.rescue_factor
          : config_.rescue_factor_hard;
  int best = -1;
  int overtake = -1;
  const bool indexed =
      config_.use_scan_index &&
      pick_indexed(sender, receiver, my_eta, rescue, start, end, best,
                   overtake);
  if (!indexed) {
    pick_linear(sender, receiver, my_eta, rescue, start, end, best, overtake);
  }
  if (config_.profiler != nullptr) {
    indexed ? ++sched_index_picks_ : ++sched_linear_scans_;
  }
  const bool used_overtake = best < 0 && overtake >= 0;
  if (best < 0) best = overtake;
  if (best < 0) {
    ++pipe.no_chunk;
    if (config_.profiler != nullptr) ++sched_no_chunk_;
    return;
  }
  pipe.busy = true;
  pipe.in_flight.push_back(best);
  if (config_.lineage != nullptr) {
    // HOL flag: this pipe ate at least one window stall since its last
    // successful claim — the chunk spent scheduler time blocked, not queued.
    LineagePending pending;
    pending.start = now_;
    pending.overtake = used_overtake;
    pending.hol = pipe.window_stalls > pipe.lineage_stall_mark;
    pipe.lineage_stall_mark = pipe.window_stalls;
    pipe.lineage_inflight.push_back(pending);
  }
  auto& reservation = receiver.inflight[best];
  reservation.eta =
      reservation.count == 0 ? my_eta : std::min(reservation.eta, my_eta);
  ++reservation.count;
  ++receiver.window_used;
  double wire_rate = send_rate;
  if (profile.rate_jitter > 0.0) {
    wire_rate *= 1.0 - profile.rate_jitter * pipe.rng.uniform();
  }
  const double duration = config_.chunk_size / wire_rate;
  pipe.pending_duration = duration;
  const double done = now_ + duration;
  // A partitioned wire eats everything: the sender keeps transmitting (its
  // counters keep moving — which is what tells the crash detector this is
  // *not* a crash) but nothing lands until the groups merge.
  const bool partitioned =
      sender.partition_group != receiver.partition_group;
  const bool lost =
      partitioned ||
      (profile.loss_rate > 0.0 && pipe.rng.uniform() < profile.loss_rate);
  // Corruption: a sender holding a damaged copy forwards the damage
  // deterministically; injected egress corruption flips clean payloads
  // with probability corrupt_rate.
  const bool corrupted =
      !lost && (bit(sender.corrupt, best) ||
                (sender.corrupt_rate > 0.0 &&
                 pipe.rng.uniform() < sender.corrupt_rate));
  ChunkEvent freed;
  freed.time = done;
  freed.kind = ChunkEventKind::kSendComplete;
  freed.pipe = pipe_slot;
  freed.generation = pipe.generation;
  queue_.push(freed);  // before the arrival: at zero latency the pipe frees first
  ChunkEvent arrival;
  arrival.time = done + profile.latency;
  arrival.kind = ChunkEventKind::kArrival;
  arrival.pipe = pipe_slot;
  arrival.generation = pipe.generation;
  arrival.chunk = best;
  arrival.lost = lost;
  arrival.corrupted = corrupted;
  queue_.push(arrival);
}

void Execution::activate_sender(int node_id) {
  const Node& node = nodes_[static_cast<std::size_t>(node_id)];
  for (const int slot : node.out) try_send(slot);
}

void Execution::activate_receiver(int node_id) {
  const Node& node = nodes_[static_cast<std::size_t>(node_id)];
  for (const int slot : node.in) try_send(slot);
}

// ----------------------------------------------------------------- observe

bool Execution::node_alive(int id) const {
  return id >= 0 && id < static_cast<int>(nodes_.size()) &&
         nodes_[static_cast<std::size_t>(id)].alive;
}

int Execution::delivered(int id) const {
  return nodes_.at(static_cast<std::size_t>(id)).delivered;
}

double Execution::completion_time(int id) const {
  return nodes_.at(static_cast<std::size_t>(id)).completion_time;
}

NodeProgress Execution::progress(int id) const {
  const Node& node = nodes_.at(static_cast<std::size_t>(id));
  NodeProgress progress;
  progress.id = id;
  progress.alive = node.alive;
  progress.delivered = node.delivered;
  progress.skipped = node.skip_before;
  progress.joined = node.joined;
  progress.completion_time = node.completion_time;
  progress.max_buffer = node.max_buffer;
  // Steady-state rate over the post-warmup window; nodes that never cleared
  // warmup fall back to their whole lifetime (short runs, late joiners).
  if (node.delivered > config_.warmup_chunks && node.warmup_time >= 0.0 &&
      node.last_time > node.warmup_time) {
    progress.steady_rate = (node.delivered - config_.warmup_chunks) *
                           config_.chunk_size /
                           (node.last_time - node.warmup_time);
  } else if (node.delivered > 0 && node.last_time > node.joined) {
    progress.steady_rate =
        node.delivered * config_.chunk_size / (node.last_time - node.joined);
  }
  return progress;
}

ExecutionReport Execution::report(double planned_rate) const {
  ExecutionReport report;
  report.now = now_;
  report.emitted = emitted_;
  report.delivered_chunks = delivered_chunks_;
  report.losses = losses_;
  report.retransmits = retransmits_;
  report.hol_stalls = hol_stalls_;
  report.duplicates = duplicates_;
  report.planned_rate = planned_rate;
  report.nodes.reserve(nodes_.size());
  // Steady-state rate: min over nodes whose post-warmup window is valid.
  // Nodes that never cleared warmup (late joiners, very short runs) only
  // speak up when *nobody* cleared it — their lifetime-average fallback
  // would otherwise drown the steady-state signal.
  bool any_steady = false;
  bool any = false;
  double min_steady = std::numeric_limits<double>::infinity();
  double min_rate = std::numeric_limits<double>::infinity();
  for (int id = 0; id < static_cast<int>(nodes_.size()); ++id) {
    report.nodes.push_back(progress(id));
    const NodeProgress& node = report.nodes.back();
    if (id == 0 || !node.alive) continue;
    any = true;
    min_rate = std::min(min_rate, node.steady_rate);
    if (node.delivered > config_.warmup_chunks) {
      any_steady = true;
      min_steady = std::min(min_steady, node.steady_rate);
    }
  }
  report.achieved_rate = any_steady ? min_steady : (any ? min_rate : 0.0);
  if (report.achieved_rate > 0.0) {
    report.stretch = planned_rate / report.achieved_rate;
  }
  return report;
}

std::vector<double> Execution::drain_latencies() {
  std::vector<double> out;
  out.swap(pending_latencies_);
  return out;
}

std::vector<std::string> Execution::validate(double tol) const {
  std::vector<double> active(nodes_.size(), 0.0);
  std::vector<double> planned(nodes_.size(), 0.0);
  std::vector<int> copies_toward(nodes_.size(), 0);
  std::map<std::pair<int, int>, int> copies;  // (receiver, chunk) -> count
  for (const auto& [key, slot] : pipe_of_) {
    const Pipe& pipe = pipes_[static_cast<std::size_t>(slot)];
    if (pipe.busy) active[static_cast<std::size_t>(key.first)] += pipe.rate;
    planned[static_cast<std::size_t>(key.first)] += pipe.rate;
    for (const int chunk : pipe.in_flight) {
      ++copies_toward[static_cast<std::size_t>(key.second)];
      ++copies[std::make_pair(key.second, chunk)];
    }
  }
  std::vector<std::string> violations;
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    if (active[id] > node.budget * (1.0 + tol) + tol) {
      violations.push_back("node " + std::to_string(id) +
                           " uploading at " + std::to_string(active[id]) +
                           " over budget " + std::to_string(node.budget));
    }
    if (std::abs(planned[id] - node.planned_out) >
        tol * (1.0 + std::abs(planned[id]))) {
      violations.push_back("node " + std::to_string(id) + " planned_out " +
                           std::to_string(node.planned_out) +
                           " drifted from its out-pipes' sum " +
                           std::to_string(planned[id]));
    }
    if (!node.alive) {
      // Dead — politely or by crash — means *zero* dataplane residue; any
      // leftover is a leak from a mid-fault teardown path.
      if (node.window_used != 0) {
        violations.push_back("dead node " + std::to_string(id) + " holds " +
                             std::to_string(node.window_used) +
                             " window slots");
      }
      if (!node.inflight.empty()) {
        violations.push_back("dead node " + std::to_string(id) + " holds " +
                             std::to_string(node.inflight.size()) +
                             " reservations");
      }
      if (copies_toward[id] != 0) {
        violations.push_back(std::to_string(copies_toward[id]) +
                             " in-flight copies toward dead node " +
                             std::to_string(id));
      }
      continue;
    }
    if (node.window_used != copies_toward[id]) {
      violations.push_back("node " + std::to_string(id) + " window_used " +
                           std::to_string(node.window_used) +
                           " != in-flight copies " +
                           std::to_string(copies_toward[id]));
    }
    for (const auto& [chunk, reservation] : node.inflight) {
      if (bit(node.have, chunk)) {
        violations.push_back("node " + std::to_string(id) +
                             " holds a reservation for delivered chunk " +
                             std::to_string(chunk));
        continue;
      }
      const auto it = copies.find(std::make_pair(static_cast<int>(id), chunk));
      const int in_flight = it == copies.end() ? 0 : it->second;
      if (reservation.count != in_flight) {
        violations.push_back("node " + std::to_string(id) + " chunk " +
                             std::to_string(chunk) + " reservation count " +
                             std::to_string(reservation.count) +
                             " != in-flight copies " +
                             std::to_string(in_flight));
      }
    }
  }
  // Copies without a reservation are legal only as doomed duplicates of a
  // chunk the receiver already delivered.
  for (const auto& [key, count] : copies) {
    const Node& node = nodes_[static_cast<std::size_t>(key.first)];
    if (!node.alive) continue;  // reported above
    if (!bit(node.have, key.second) &&
        node.inflight.find(key.second) == node.inflight.end()) {
      violations.push_back(std::to_string(count) +
                           " unreserved in-flight copies of chunk " +
                           std::to_string(key.second) + " toward node " +
                           std::to_string(key.first));
    }
  }
  if (!violations.empty() && config_.recorder != nullptr) {
    config_.recorder->record_failure(now_, config_.trace_id,
                                     "Execution::validate", violations);
  }
  return violations;
}

}  // namespace bmp::dataplane
