// Umbrella header for the bmpbcast library: broadcasting on large-scale
// heterogeneous platforms under the bounded multi-port model (Beaumont,
// Bonichon, Eyraud-Dubois, Uznański, Agrawal — IPDPS 2010 / TPDS 2014).
//
// Quick tour (see README.md for a narrative):
//   Instance            platform model (source + open + guarded nodes)
//   solve_acyclic       §IV  optimal low-degree acyclic scheme
//   build_acyclic_open  §III Algorithm 1 (open nodes only)
//   build_cyclic_open   §V   Theorem 5.2 cyclic construction
//   cyclic_upper_bound  §V   Lemma 5.1 closed form
//   flow::scheme_throughput   tiered throughput verification (flow/verify)
//   flow::Verifier      reusable verification engine with per-tier stats
//   engine::Planner     batched/cached service front-end over the algorithms
//   engine::Session     churn-aware long-lived overlay with incremental repair
//   runtime::Runtime    multi-channel event loop over brokered capacity
//   runtime::Scenario   deterministic workload -> event-stream compiler
#pragma once

#include "bmp/core/acyclic_open.hpp"
#include "bmp/core/acyclic_search.hpp"
#include "bmp/core/bounds.hpp"
#include "bmp/core/cyclic_open.hpp"
#include "bmp/core/exact.hpp"
#include "bmp/core/greedy_test.hpp"
#include "bmp/core/instance.hpp"
#include "bmp/core/omega_words.hpp"
#include "bmp/core/scheme.hpp"
#include "bmp/core/word.hpp"
#include "bmp/core/word_schedule.hpp"
#include "bmp/core/word_throughput.hpp"
#include "bmp/engine/fingerprint.hpp"
#include "bmp/engine/plan_cache.hpp"
#include "bmp/engine/planner.hpp"
#include "bmp/engine/session.hpp"
#include "bmp/flow/maxflow.hpp"
#include "bmp/flow/verify.hpp"
#include "bmp/runtime/capacity_broker.hpp"
#include "bmp/runtime/event.hpp"
#include "bmp/runtime/metrics.hpp"
#include "bmp/runtime/runtime.hpp"
#include "bmp/runtime/scenario.hpp"
