// Coding words and the O/G/W prefix-state recursions of paper §IV.
//
// An increasing order σ over the nodes is encoded by a binary word π of n
// letters O (open, "circle" in the paper) and m letters G (guarded,
// "square"): the k-th letter says whether the k-th node served is the next
// unused open or the next unused guarded node. For a conservative partial
// solution (Lemma 4.3) the remaining open bandwidth O(π), remaining guarded
// bandwidth G(π) and the open->open transfer volume W(π) are functions of π
// alone (Lemma 4.4):
//
//   O(ε)=b0, G(ε)=0, W(ε)=0
//   O(πG)=O(π)-T               G(πG)=G(π)+b_next_guarded   W(πG)=W(π)
//   O(πO)=O(π)+b_next_open-max(0,T-G(π))
//   G(πO)=max(0,G(π)-T)        W(πO)=W(π)+max(0,T-G(π))
//
// A word is *valid* for throughput T iff O(π') >= T before every G letter
// and O(π')+G(π') >= T before every O letter (appendix IX-C).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bmp/core/instance.hpp"

namespace bmp {

enum class Letter : std::uint8_t { kOpen, kGuarded };

using Word = std::vector<Letter>;

/// Parses "OGOGG"-style strings (O = open, G = guarded). Throws on other
/// characters.
Word make_word(std::string_view text);
std::string to_string(const Word& word);
int count_open(const Word& word);
int count_guarded(const Word& word);

/// Prefix state (O(π), G(π), W(π)) plus the counts of consumed letters.
template <typename Num>
struct PrefixState {
  Num open_avail{};     ///< O(π): open bandwidth still available.
  Num guarded_avail{};  ///< G(π): guarded bandwidth still available.
  Num open_open{};      ///< W(π): open->open transfer used so far.
  int opens = 0;        ///< |π|_O.
  int guardeds = 0;     ///< |π|_G.

  static PrefixState initial(const BasicInstance<Num>& instance) {
    PrefixState st;
    st.open_avail = instance.b(0);
    return st;
  }

  /// Whether the next letter can be appended while keeping the partial
  /// conservative solution feasible for throughput T.
  [[nodiscard]] bool can_append(Letter letter, const BasicInstance<Num>& instance,
                                const Num& T) const {
    if (letter == Letter::kGuarded) {
      return guardeds < instance.m() && !(open_avail < T);
    }
    return opens < instance.n() && !(open_avail + guarded_avail < T);
  }

  /// Applies the recursions above. Caller must have checked can_append
  /// (feasibility is NOT re-verified, so the greedy test can also drive the
  /// state into failure and detect it).
  void append(Letter letter, const BasicInstance<Num>& instance, const Num& T) {
    if (letter == Letter::kGuarded) {
      open_avail = open_avail - T;
      ++guardeds;
      guarded_avail = guarded_avail + instance.b(instance.n() + guardeds);
    } else {
      const Num zero(0);
      const Num from_guarded = guarded_avail < T ? guarded_avail : T;
      const Num from_open = T - from_guarded;
      guarded_avail = guarded_avail - from_guarded;
      open_open = open_open + from_open;
      ++opens;
      open_avail = open_avail - from_open + instance.b(opens);
      (void)zero;
    }
  }
};

/// Validity check of a complete word for throughput T (appendix IX-C
/// conditions). Exact when Num = util::Rational.
template <typename Num>
bool check_word(const BasicInstance<Num>& instance, const Word& word, const Num& T) {
  if (count_open(word) != instance.n() || count_guarded(word) != instance.m()) {
    return false;
  }
  auto st = PrefixState<Num>::initial(instance);
  for (const Letter letter : word) {
    if (!st.can_append(letter, instance, T)) return false;
    st.append(letter, instance, T);
  }
  return true;
}

/// All words with `opens` O letters and `guardeds` G letters, in
/// lexicographic order (O < G). Used by the exact brute-force solver; the
/// count is C(opens+guardeds, opens), so keep sizes small.
std::vector<Word> enumerate_words(int opens, int guardeds);

}  // namespace bmp
