#include "bmp/core/cyclic_open.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "bmp/core/acyclic_open.hpp"
#include "bmp/core/bounds.hpp"

namespace bmp {

namespace {

/// Moves `amount` units of inflow of `from_receiver` over to `to_receiver`,
/// taking it away from the highest-index feeders first (those fed the node
/// partially, so whole contributions move without splitting edges).
void redirect_inflow(BroadcastScheme& scheme, int from_receiver, int to_receiver,
                     double amount, double eps) {
  if (amount <= eps) return;
  std::vector<std::pair<int, double>> feeders;
  for (int s = 0; s < scheme.num_nodes(); ++s) {
    const double r = scheme.rate(s, from_receiver);
    if (r > 0.0) feeders.emplace_back(s, r);
  }
  for (auto it = feeders.rbegin(); it != feeders.rend() && amount > eps; ++it) {
    const double move = std::min(it->second, amount);
    scheme.add(it->first, from_receiver, -move);
    scheme.add(it->first, to_receiver, move);
    amount -= move;
  }
  if (amount > eps) {
    throw std::logic_error("cyclic_open: not enough inflow to redirect");
  }
}

}  // namespace

BroadcastScheme build_cyclic_open(const Instance& instance, double T) {
  if (instance.m() != 0) {
    throw std::invalid_argument("build_cyclic_open: instance has guarded nodes");
  }
  const int n = instance.n();
  if (n < 1) throw std::invalid_argument("build_cyclic_open: no receivers");
  const double eps = 1e-9 * T;  // relative; bandwidth units are arbitrary
  if (T > cyclic_open_optimal(instance) * (1.0 + 1e-9) + eps) {
    throw std::invalid_argument("build_cyclic_open: T exceeds min(b0,(b0+O)/n)");
  }
  T = std::min(T, instance.b(0));  // guard roundoff at the b0 boundary

  PartialAcyclic partial = build_acyclic_open_partial(instance, T);
  BroadcastScheme scheme = std::move(partial.scheme);
  if (!partial.stalled.has_value()) return scheme;  // Algorithm 1 sufficed.

  const int i0 = *partial.stalled;  // 2 <= i0 <= n (i0=1 impossible: T <= b0).
  const auto missing = [&](int i) {
    return static_cast<double>(i) * T - instance.prefix_sum(i - 1);
  };  // M_i

  if (i0 == n) {
    // Terminal special case (alpha = beta = 0, R_n unused): reroute M_n via
    // the (C0, C1) edge, which carries exactly T >= M_n.
    const double m_n = missing(n);
    scheme.add(0, 1, -m_n);
    scheme.add(0, n, m_n);
    scheme.add(n, 1, m_n);
    return scheme;
  }

  // ----- Initial case: build the (i0+1)-partial solution. -----
  {
    const int i = i0;
    const double m_i = missing(i);
    const double m_next = missing(i + 1);
    const double r_i = instance.b(i) - m_i;
    const double alpha = std::max(0.0, m_next - m_i);
    const double beta = m_next - alpha;

    // Flow alpha from A (C_i's feeders) now goes to C_{i+1} instead.
    redirect_inflow(scheme, i, i + 1, alpha, eps);
    // Flow M_i from u=C0 goes to C_i instead of v=C1.
    scheme.add(0, 1, -m_i);
    scheme.add(0, i, m_i);
    // C_i sends R_i + beta forward and M_i - beta back to v.
    if (r_i + beta > eps) scheme.add(i, i + 1, r_i + beta);
    if (m_i - beta > eps) scheme.add(i, 1, m_i - beta);
    // C_{i+1} sends beta to v and alpha back to C_i.
    if (beta > eps) scheme.add(i + 1, 1, beta);
    if (alpha > eps) scheme.add(i + 1, i, alpha);
  }

  // ----- Inductive case: insert C_{k+1} for k = i0+1 .. n-1. -----
  for (int k = i0 + 1; k < n; ++k) {
    const double m_next = missing(k + 1);
    const double r_k = instance.b(k) - missing(k);
    const double c_back = scheme.rate(k, k - 1);  // c_{k,k-1}; (P1) gives
    const double alpha = std::max(0.0, m_next - c_back);
    const double beta = m_next - alpha;

    if (alpha > eps) {
      scheme.add(k - 1, k, -alpha);
      scheme.add(k - 1, k + 1, alpha);
      scheme.add(k + 1, k, alpha);
    }
    if (beta > eps) {
      scheme.add(k, k - 1, -beta);
      scheme.add(k + 1, k - 1, beta);
    }
    if (r_k + beta > eps) scheme.add(k, k + 1, r_k + beta);
  }
  return scheme;
}

}  // namespace bmp
