// Low-degree broadcast scheme from a valid coding word (Lemma 4.6).
//
// Nodes are satisfied in the order the word dictates; every node is fed at
// exactly rate T by the *earliest* senders that still have unused upload:
// guarded receivers draw from open senders only (firewall constraint), open
// receivers drain guarded senders first (conservative solutions, Lemma 4.3)
// and top up from open senders. For words produced by GreedyTest this
// yields the degree bounds of Theorem 4.1:
//   guarded nodes:  o_j <= ceil(b_j/T) + 1
//   open nodes:     o_i <= ceil(b_i/T) + 2   (at most one node +3)
#pragma once

#include <string>
#include <vector>

#include "bmp/core/instance.hpp"
#include "bmp/core/scheme.hpp"
#include "bmp/core/word.hpp"

namespace bmp {

struct WordSchedule {
  BroadcastScheme scheme;
  /// Serving order σ (node ids, source excluded), e.g. Fig. 5's 3 1 4 2 5.
  std::vector<int> order;

  /// One row per processed letter — reproduces Table I (O(π), G(π), W(π)).
  struct TraceRow {
    std::string prefix;    ///< word prefix, e.g. "GO"
    double open_avail;     ///< O(π)
    double guarded_avail;  ///< G(π)
    double open_open;      ///< W(π)
  };
  std::vector<TraceRow> trace;  ///< includes the initial ε row.
};

/// Builds the scheme; throws std::invalid_argument if the word is not valid
/// for throughput T on this instance (detected as a sender pool running
/// dry). T == 0 yields an empty scheme.
WordSchedule build_scheme_from_word(const Instance& instance, const Word& word,
                                    double T, bool with_trace = false);

}  // namespace bmp
