// Algorithm 2, "GreedyTest" (paper §IV.B): decides in linear time whether a
// throughput T is acyclically feasible on an instance with guarded nodes,
// and if so returns a valid coding word. Lemma 4.5 proves the test is exact:
// it succeeds iff T <= T*_ac, which also makes it monotone in T, enabling
// the dichotomic search of acyclic_search.hpp.
//
// The greedy builds the word left to right, preferring the guarded letter
// (conservative solutions dominate, Lemma 4.3) and forcing an open letter
// only when
//   (a) there is not enough open bandwidth for a guarded node (O < T), or
//   (b) taking a guarded node now would strand the remainder
//       (O + G + b_next_guarded - T < T), or
//   (c) one guarded node is left and it is smaller than the next open node
//       (the "delay the last guarded node" rule, lines 8-11).
// Each rule can be disabled through GreedyPolicy for the ablation study
// (bench_ablation_greedy), which shows both (b) and (c) are needed for
// exactness.
#pragma once

#include <optional>
#include <type_traits>

#include "bmp/core/instance.hpp"
#include "bmp/core/word.hpp"

namespace bmp {

enum class GreedyPolicy {
  kPaper,             ///< full Algorithm 2
  kNoLookahead,       ///< drop rule (b)
  kNoLastGuardedRule, ///< drop rule (c)
  kBandwidthGreedy,   ///< naive: pick the class whose next node is larger
};

/// The tie tolerance greedy_test resolves boundary decisions with: relative
/// to the instance's own scale (never an absolute floor, so platforms
/// measured in bit/s and Gbit/s behave identically). Exposed so a bisection
/// driver can hoist it out of the probe loop — any T' <= T yields the same
/// or a smaller tolerance, so the value computed at the search's upper
/// bound is valid (and fixed) for every probe below it.
template <typename Num>
[[nodiscard]] Num greedy_tie_tolerance(const BasicInstance<Num>& instance,
                                       const Num& T) {
  if constexpr (std::is_floating_point_v<Num>) {
    const Num scale = instance.total_sum() > T ? instance.total_sum() : T;
    return Num(1e-12) * scale;
  } else {
    (void)instance;
    (void)T;
    return Num(0);
  }
}

/// Allocation-free core of GreedyTest(T): rebuilds the word into `word`
/// (cleared, capacity kept) and returns true on success. A dichotomic
/// search probing ~50 values reuses one buffer across all probes instead of
/// allocating a Word per probe; `tie_tol` can be hoisted the same way (pass
/// greedy_tie_tolerance(instance, hi) computed once). Semantics are those
/// of greedy_test below.
template <typename Num>
bool greedy_test_into(const BasicInstance<Num>& instance, const Num& T,
                      Word& word, GreedyPolicy policy, const Num& tie_tol) {
  const int n = instance.n();
  const int m = instance.m();
  auto st = PrefixState<Num>::initial(instance);
  word.clear();
  word.reserve(static_cast<std::size_t>(n + m));
  // "x < y beyond the tie tolerance".
  const auto strictly_less = [&tie_tol](const Num& x, const Num& y) {
    return x < y - tie_tol;
  };

  while (st.opens + st.guardeds < n + m) {
    // Line 3: whatever comes next needs T units of total bandwidth.
    if (strictly_less(st.open_avail + st.guarded_avail, T)) return false;

    Letter letter = Letter::kGuarded;
    if (st.opens != n) {
      if (st.guardeds == m) {
        letter = Letter::kOpen;
      } else if (policy == GreedyPolicy::kBandwidthGreedy) {
        // Naive ablation: take the larger next node if feasible.
        const Num& next_open = instance.b(st.opens + 1);
        const Num& next_guarded = instance.b(n + st.guardeds + 1);
        const bool guarded_ok = !strictly_less(st.open_avail, T);
        letter = (guarded_ok && !(next_guarded < next_open)) ? Letter::kGuarded
                                                             : Letter::kOpen;
      } else if (st.guardeds == m - 1 && policy != GreedyPolicy::kNoLastGuardedRule) {
        // Lines 8-11: only one guarded node left; it can be delayed behind
        // larger open nodes.
        if (strictly_less(st.open_avail, T) ||
            instance.b(n + st.guardeds + 1) < instance.b(st.opens + 1)) {
          letter = Letter::kOpen;
        }
      } else {
        bool force_open = strictly_less(st.open_avail, T);
        if (!force_open && policy != GreedyPolicy::kNoLookahead) {
          // Rule (b): after consuming T open units and gaining the guarded
          // node's bandwidth, at least T must remain overall.
          const Num after = st.open_avail + st.guarded_avail +
                            instance.b(n + st.guardeds + 1) - T;
          force_open = strictly_less(after, T);
        }
        if (force_open) letter = Letter::kOpen;
      }
    }

    // Line 17: appending a guarded letter with O < T would drive O(pi)
    // negative (happens when opens are exhausted but guardeds remain).
    if (letter == Letter::kGuarded && strictly_less(st.open_avail, T)) {
      return false;
    }

    st.append(letter, instance, T);
    // Clamp tolerance-scale negatives introduced by tie resolution.
    if (st.open_avail < Num(0)) st.open_avail = Num(0);
    if (st.guarded_avail < Num(0)) st.guarded_avail = Num(0);
    word.push_back(letter);
  }
  return true;
}

template <typename Num>
bool greedy_test_into(const BasicInstance<Num>& instance, const Num& T,
                      Word& word, GreedyPolicy policy = GreedyPolicy::kPaper) {
  return greedy_test_into(instance, T, word, policy,
                          greedy_tie_tolerance(instance, T));
}

/// Runs GreedyTest(T). Returns the constructed word on success, nullopt if
/// T is infeasible (for kPaper this is exact by Lemma 4.5; ablated policies
/// may reject feasible T).
///
/// Numerical note: the paper's decisions use *strict* inequalities
/// (O(π) < T forces an open letter; equality takes the guarded letter).
/// Structured instances (e.g. the tight homogeneous family of Fig. 7) hit
/// those boundaries exactly at dyadic probe values, where double roundoff
/// would otherwise flip the branch and spuriously reject a feasible T. The
/// implementation therefore resolves ties within greedy_tie_tolerance in
/// favor of the guarded letter — matching the exact-arithmetic behavior —
/// and clamps the state's tolerance-scale negatives. Rational
/// instantiations keep tol = 0 (bit-exact spec).
template <typename Num>
std::optional<Word> greedy_test(const BasicInstance<Num>& instance, const Num& T,
                                GreedyPolicy policy = GreedyPolicy::kPaper) {
  Word word;
  if (!greedy_test_into(instance, T, word, policy)) return std::nullopt;
  return word;
}

}  // namespace bmp
