// Algorithm 1 (paper §III.B): optimal acyclic broadcast for instances with
// open nodes only. Nodes (sorted non-increasingly) are satisfied one after
// the other at rate T; sender i's upload is poured into the current
// receiver until exhausted. The resulting DAG feeds every node at exactly
// rate T = min(b0, S_{n-1}/n) with outdegree o_i <= ceil(b_i/T) + 1 — the
// best possible additive overhead unless P = NP (Thm 3.1).
//
// The *partial* variant powers the cyclic construction (Thm 5.2): it stops
// at the first receiver i0 whose predecessors cannot supply rate T
// (S_{i0-1} < i0*T), leaving C_{i0} fed at T - M_{i0}.
#pragma once

#include <optional>

#include "bmp/core/instance.hpp"
#include "bmp/core/scheme.hpp"

namespace bmp {

struct PartialAcyclic {
  BroadcastScheme scheme;
  /// First receiver that could not be served at rate T, if any. When set,
  /// nodes 1..stalled-1 receive exactly T, node `stalled` receives
  /// T - M_stalled, later nodes receive nothing.
  std::optional<int> stalled;
};

/// Runs Algorithm 1 with target rate T, stopping gracefully when bandwidth
/// runs out. Requires m == 0 and T <= b0.
PartialAcyclic build_acyclic_open_partial(const Instance& instance, double T);

/// Full Algorithm 1; throws std::invalid_argument if T is not acyclically
/// feasible (T > min(b0, S_{n-1}/n) beyond tolerance).
BroadcastScheme build_acyclic_open(const Instance& instance, double T);

}  // namespace bmp
