// Theorem 5.2 (paper §V + appendix X-A): cyclic broadcast schemes for
// open-only instances reaching T = min(b0, (b0+O)/n) with outdegree
// o_i <= max(ceil(b_i/T) + 2, 4).
//
// Construction: run Algorithm 1 until it stalls at i0 (S_{i0-1} < i0*T).
// Each node C_i with i >= i0 is missing M_i = i*T - S_{i-1} units that must
// flow *backwards*, so the solution becomes cyclic: the "initial case"
// splices C_{i0} and C_{i0+1} into the partial solution by rerouting M_{i0}
// along the guaranteed edge (C0, C1) and diverting alpha/beta units; the
// "inductive case" then inserts each next node into the 2-cycle between its
// two predecessors while preserving invariants
//   (P1) c_{i,i-1} + c_{i-1,i} = T      (P2) outdeg(C_i)     <= 2
//   (P3) outdeg(C_{i-1})       <= 3      (P4) residual of C_i  = R_i = b_i - M_i
#pragma once

#include "bmp/core/instance.hpp"
#include "bmp/core/scheme.hpp"

namespace bmp {

/// Builds a cyclic scheme of throughput T. Requires m == 0, n >= 1 and
/// T <= min(b0, (b0+O)/n) (within tolerance; throws otherwise). The result
/// feeds every node at exactly rate T.
BroadcastScheme build_cyclic_open(const Instance& instance, double T);

}  // namespace bmp
