// The fixed word families ω1/ω2 of Theorem 6.2 (paper §VI.A.2 / §XII).
//
//   ω1(n,m) = Π_{i=1..n} [ O G^{α_i} ],  α_i = ⌊i·m/n⌋ − ⌊(i−1)·m/n⌋
//   ω2(n,m) = Π_{j=1..m} [ G O^{β_j} ],  β_j = ⌈j·n/m⌉ − ⌈(j−1)·n/m⌉
//
// ω1 spreads guarded nodes evenly after each open node (right when open
// bandwidth is plentiful, o >= T); ω2 front-loads each guarded node before
// the opens it will feed (right when guarded nodes are the strong ones).
// Their best is provably >= 5/7 of the optimal cyclic throughput, and
// Fig. 19 shows it is near-optimal on average. These words are attractive
// in practice because they can be built distributedly from the bandwidth
// ranks alone.
#pragma once

#include "bmp/core/instance.hpp"
#include "bmp/core/word.hpp"

namespace bmp {

Word omega1(int n, int m);
Word omega2(int n, int m);

/// The single word the Theorem 6.2 case analysis would pick (red series of
/// Fig. 19): ω1 when the mean open bandwidth is at least the optimal cyclic
/// throughput ("o >= 1" for normalized tight instances), else ω2.
Word theorem62_word(const Instance& instance);

}  // namespace bmp
