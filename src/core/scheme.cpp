#include "bmp/core/scheme.hpp"

#include <cmath>
#include <cstddef>
#include <queue>
#include <sstream>
#include <stdexcept>

namespace bmp {

BroadcastScheme::BroadcastScheme(int num_nodes)
    : out_(static_cast<std::size_t>(num_nodes)) {
  if (num_nodes <= 0) throw std::invalid_argument("BroadcastScheme: empty node set");
}

void BroadcastScheme::add(int from, int to, double delta) {
  if (from < 0 || from >= num_nodes() || to < 0 || to >= num_nodes()) {
    throw std::out_of_range("BroadcastScheme::add: node id out of range");
  }
  if (from == to) throw std::invalid_argument("BroadcastScheme::add: self loop");
  auto& edges = out_[static_cast<std::size_t>(from)];
  auto it = edges.find(to);
  const double old = it == edges.end() ? 0.0 : it->second;
  const double next = old + delta;
  // Scale-free tolerances: relative to the magnitudes involved in this
  // update, so bit/s and Gbit/s platforms behave identically.
  const double magnitude = std::abs(old) + std::abs(delta);
  if (next < -1e-9 * magnitude) {
    throw std::invalid_argument("BroadcastScheme::add: rate driven negative");
  }
  if (std::abs(next) <= kZeroTol * magnitude) {
    if (it != edges.end()) edges.erase(it);
    return;
  }
  if (it == edges.end()) {
    edges.emplace(to, next);
  } else {
    it->second = next;
  }
}

double BroadcastScheme::rate(int from, int to) const {
  const auto& edges = out_.at(static_cast<std::size_t>(from));
  const auto it = edges.find(to);
  return it == edges.end() ? 0.0 : it->second;
}

const std::map<int, double>& BroadcastScheme::out_edges(int i) const {
  return out_.at(static_cast<std::size_t>(i));
}

double BroadcastScheme::out_rate(int i) const {
  double sum = 0.0;
  for (const auto& [to, r] : out_edges(i)) sum += r;
  return sum;
}

double BroadcastScheme::in_rate(int i) const {
  double sum = 0.0;
  for (const auto& edges : out_) {
    const auto it = edges.find(i);
    if (it != edges.end()) sum += it->second;
  }
  return sum;
}

int BroadcastScheme::out_degree(int i) const {
  return static_cast<int>(out_edges(i).size());
}

int BroadcastScheme::in_degree(int i) const {
  int deg = 0;
  for (const auto& edges : out_) deg += edges.count(i) != 0 ? 1 : 0;
  return deg;
}

int BroadcastScheme::max_out_degree() const {
  int best = 0;
  for (int i = 0; i < num_nodes(); ++i) best = std::max(best, out_degree(i));
  return best;
}

int BroadcastScheme::edge_count() const {
  int count = 0;
  for (const auto& edges : out_) count += static_cast<int>(edges.size());
  return count;
}

double BroadcastScheme::total_rate() const {
  double sum = 0.0;
  for (int i = 0; i < num_nodes(); ++i) sum += out_rate(i);
  return sum;
}

std::vector<int> BroadcastScheme::topological_order() const {
  const int n = num_nodes();
  std::vector<int> indeg(static_cast<std::size_t>(n), 0);
  for (const auto& edges : out_) {
    for (const auto& [to, r] : edges) ++indeg[static_cast<std::size_t>(to)];
  }
  std::queue<int> ready;
  for (int i = 0; i < n; ++i) {
    if (indeg[static_cast<std::size_t>(i)] == 0) ready.push(i);
  }
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    const int v = ready.front();
    ready.pop();
    order.push_back(v);
    for (const auto& [to, r] : out_edges(v)) {
      if (--indeg[static_cast<std::size_t>(to)] == 0) ready.push(to);
    }
  }
  if (static_cast<int>(order.size()) != n) order.clear();
  return order;
}

bool BroadcastScheme::is_acyclic() const { return !topological_order().empty(); }

std::vector<std::string> BroadcastScheme::validate(const Instance& instance,
                                                   double tol) const {
  std::vector<std::string> issues;
  if (instance.size() != num_nodes()) {
    issues.push_back("node count mismatch between instance and scheme");
    return issues;
  }
  for (int i = 0; i < num_nodes(); ++i) {
    const double used = out_rate(i);
    if (used > instance.b(i) + tol) {
      std::ostringstream os;
      os << "bandwidth violated at node " << i << ": uses " << used
         << " > b=" << instance.b(i);
      issues.push_back(os.str());
    }
    for (const auto& [to, r] : out_edges(i)) {
      if (instance.is_guarded(i) && instance.is_guarded(to)) {
        std::ostringstream os;
        os << "firewall violated: guarded " << i << " -> guarded " << to;
        issues.push_back(os.str());
      }
      if (r < 0.0) {
        std::ostringstream os;
        os << "negative rate on edge " << i << " -> " << to;
        issues.push_back(os.str());
      }
    }
  }
  return issues;
}

double BroadcastScheme::max_inflow_deviation(double T) const {
  std::vector<double> in(static_cast<std::size_t>(num_nodes()), 0.0);
  for (const auto& edges : out_) {
    for (const auto& [to, r] : edges) in[static_cast<std::size_t>(to)] += r;
  }
  double worst = 0.0;
  for (int i = 1; i < num_nodes(); ++i) {
    worst = std::max(worst, std::abs(in[static_cast<std::size_t>(i)] - T));
  }
  return worst;
}

std::string BroadcastScheme::to_dot() const {
  std::ostringstream os;
  os << "digraph broadcast {\n  rankdir=LR;\n";
  for (int i = 0; i < num_nodes(); ++i) {
    for (const auto& [to, r] : out_edges(i)) {
      os << "  C" << i << " -> C" << to << " [label=\"" << r << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace bmp
