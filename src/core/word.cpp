#include "bmp/core/word.hpp"

#include <stdexcept>

namespace bmp {

Word make_word(std::string_view text) {
  Word word;
  word.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case 'O':
      case 'o':
        word.push_back(Letter::kOpen);
        break;
      case 'G':
      case 'g':
        word.push_back(Letter::kGuarded);
        break;
      case ' ':
        break;
      default:
        throw std::invalid_argument("make_word: expected only O/G letters");
    }
  }
  return word;
}

std::string to_string(const Word& word) {
  std::string text;
  text.reserve(word.size());
  for (const Letter letter : word) {
    text.push_back(letter == Letter::kOpen ? 'O' : 'G');
  }
  return text;
}

int count_open(const Word& word) {
  int count = 0;
  for (const Letter letter : word) count += letter == Letter::kOpen ? 1 : 0;
  return count;
}

int count_guarded(const Word& word) {
  return static_cast<int>(word.size()) - count_open(word);
}

namespace {
void enumerate_rec(int opens, int guardeds, Word& prefix, std::vector<Word>& out) {
  if (opens == 0 && guardeds == 0) {
    out.push_back(prefix);
    return;
  }
  if (opens > 0) {
    prefix.push_back(Letter::kOpen);
    enumerate_rec(opens - 1, guardeds, prefix, out);
    prefix.pop_back();
  }
  if (guardeds > 0) {
    prefix.push_back(Letter::kGuarded);
    enumerate_rec(opens, guardeds - 1, prefix, out);
    prefix.pop_back();
  }
}
}  // namespace

std::vector<Word> enumerate_words(int opens, int guardeds) {
  if (opens < 0 || guardeds < 0) {
    throw std::invalid_argument("enumerate_words: negative letter count");
  }
  std::vector<Word> out;
  Word prefix;
  prefix.reserve(static_cast<std::size_t>(opens + guardeds));
  enumerate_rec(opens, guardeds, prefix, out);
  return out;
}

}  // namespace bmp
