// Conservative solutions (paper §IV.A): a solution is conservative w.r.t.
// an order σ if no open-node transfer happens while an earlier guarded
// node still has unused upload it could have contributed — formally, there
// is no triplet i < k, j < k with σ(i) guarded, σ(j), σ(k) open,
// c_{σ(j),σ(k)} > 0 while σ(i) has residual upload toward positions ≤ k.
// Guarded upload is the scarce resource (it cannot feed guarded nodes), so
// "wasting" open upload on open receivers is never necessary: Lemma 4.3
// proves a conservative solution always achieves T*_ac(σ).
//
// This checker makes the dominance argument executable: the schemes built
// by build_scheme_from_word are conservative by construction; the paper's
// Fig. 4 scheme is the canonical non-conservative example.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "bmp/core/instance.hpp"
#include "bmp/core/scheme.hpp"
#include "bmp/core/word.hpp"

namespace bmp {

struct ConservativenessViolation {
  int guarded_node;   ///< σ(i): the guarded node left with residual upload
  int open_sender;    ///< σ(j): the open node that fed the receiver instead
  int open_receiver;  ///< σ(k)
  double residual;    ///< unused guarded upload available at position k
  [[nodiscard]] std::string describe() const;
};

/// Checks conservativeness of `scheme` with respect to the serving order
/// `order` (node ids, source first, all nodes present). Returns the first
/// violating triplet, or nullopt if the scheme is conservative.
std::optional<ConservativenessViolation> find_conservativeness_violation(
    const Instance& instance, const BroadcastScheme& scheme,
    const std::vector<int>& order, double tol = 1e-9);

/// Serving order of a scheme built from a word: source, then nodes in word
/// sequence (helper for the checker).
std::vector<int> order_from_word(const Instance& instance, const Word& word);

}  // namespace bmp
