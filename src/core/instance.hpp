// Platform instance under the LastMile / bounded multi-port model (paper
// §II.D). An instance is a source C0 (always open), n open nodes C1..Cn and
// m guarded nodes Cn+1..Cn+m, each with an *outgoing* bandwidth b_i
// (incoming bandwidths are assumed non-binding). Within each class, nodes
// are stored in non-increasing bandwidth order — Lemma 4.2 proves increasing
// orders dominate, and every algorithm in the paper assumes this ordering.
//
// The class is templated on the number type: `double` for production /
// large sweeps, `util::Rational` for exact ground truth in tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "bmp/util/rational.hpp"

namespace bmp {

/// Bandwidths must be non-negative and (for floating point) finite — NaN
/// or infinite capacities would silently corrupt every closed form.
template <typename Num>
[[nodiscard]] bool is_valid_bandwidth(const Num& bandwidth) {
  if constexpr (std::is_floating_point_v<Num>) {
    return std::isfinite(bandwidth) && bandwidth >= Num(0);
  } else {
    return !(bandwidth < Num(0));
  }
}

template <typename Num>
class BasicInstance {
 public:
  /// Builds an instance; `open_bw`/`guarded_bw` may be in any order, they
  /// are sorted non-increasingly (stable, so ties keep input order). The
  /// mapping back to the caller's numbering is kept in original_id().
  BasicInstance(Num source_bw, std::vector<Num> open_bw,
                std::vector<Num> guarded_bw)
      : n_(static_cast<int>(open_bw.size())),
        m_(static_cast<int>(guarded_bw.size())) {
    if (!is_valid_bandwidth(source_bw)) {
      throw std::invalid_argument("Instance: invalid source bandwidth");
    }
    for (const auto& bw : open_bw) {
      if (!is_valid_bandwidth(bw)) {
        throw std::invalid_argument("Instance: invalid open bandwidth");
      }
    }
    for (const auto& bw : guarded_bw) {
      if (!is_valid_bandwidth(bw)) {
        throw std::invalid_argument("Instance: invalid guarded bandwidth");
      }
    }

    b_.reserve(1 + open_bw.size() + guarded_bw.size());
    orig_.reserve(b_.capacity());
    b_.push_back(source_bw);
    orig_.push_back(0);

    append_sorted(std::move(open_bw), /*id_offset=*/1);
    append_sorted(std::move(guarded_bw), /*id_offset=*/1 + n_);

    prefix_.resize(b_.size());
    std::partial_sum(b_.begin(), b_.end(), prefix_.begin());
  }

  /// Number of open nodes (excluding the source).
  [[nodiscard]] int n() const { return n_; }
  /// Number of guarded nodes.
  [[nodiscard]] int m() const { return m_; }
  /// Total node count, source included.
  [[nodiscard]] int size() const { return 1 + n_ + m_; }

  /// Outgoing bandwidth of node i (0 = source).
  [[nodiscard]] const Num& b(int i) const { return b_.at(static_cast<std::size_t>(i)); }

  [[nodiscard]] bool is_source(int i) const { return i == 0; }
  [[nodiscard]] bool is_open(int i) const { return i <= n_; }
  [[nodiscard]] bool is_guarded(int i) const { return i > n_; }

  /// O = b1 + ... + bn  (open bandwidth excluding the source).
  [[nodiscard]] Num open_sum() const {
    return n_ == 0 ? Num(0) : prefix_[static_cast<std::size_t>(n_)] - b_[0];
  }
  /// G = b_{n+1} + ... + b_{n+m}.
  [[nodiscard]] Num guarded_sum() const {
    return prefix_.back() - prefix_[static_cast<std::size_t>(n_)];
  }
  /// S_k = b0 + b1 + ... + bk over the sorted numbering (paper §III.B).
  [[nodiscard]] const Num& prefix_sum(int k) const {
    return prefix_.at(static_cast<std::size_t>(k));
  }
  /// b0 + O + G.
  [[nodiscard]] const Num& total_sum() const { return prefix_.back(); }

  /// The caller-side id this (sorted) node position came from: 0 for the
  /// source, 1..n for opens in input order, n+1..n+m for guardeds.
  [[nodiscard]] int original_id(int i) const { return orig_.at(static_cast<std::size_t>(i)); }

 private:
  void append_sorted(std::vector<Num> bw, int id_offset) {
    std::vector<std::pair<Num, int>> tagged;
    tagged.reserve(bw.size());
    for (std::size_t k = 0; k < bw.size(); ++k) {
      tagged.emplace_back(bw[k], id_offset + static_cast<int>(k));
    }
    std::stable_sort(tagged.begin(), tagged.end(),
                     [](const auto& a, const auto& b) { return b.first < a.first; });
    for (auto& [value, id] : tagged) {
      b_.push_back(value);
      orig_.push_back(id);
    }
  }

  std::vector<Num> b_;
  std::vector<Num> prefix_;
  std::vector<int> orig_;
  int n_ = 0;
  int m_ = 0;
};

using Instance = BasicInstance<double>;
using RationalInstance = BasicInstance<util::Rational>;

/// Converts an exact instance to double (for running the double algorithms
/// on instances defined exactly in tests).
inline Instance to_double(const RationalInstance& ri) {
  std::vector<double> open;
  std::vector<double> guarded;
  open.reserve(static_cast<std::size_t>(ri.n()));
  guarded.reserve(static_cast<std::size_t>(ri.m()));
  for (int i = 1; i <= ri.n(); ++i) open.push_back(ri.b(i).to_double());
  for (int i = ri.n() + 1; i < ri.size(); ++i) guarded.push_back(ri.b(i).to_double());
  return {ri.b(0).to_double(), std::move(open), std::move(guarded)};
}

}  // namespace bmp
