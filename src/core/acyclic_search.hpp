// Optimal acyclic throughput with guarded nodes (Theorem 4.1): GreedyTest
// is exact and monotone in T (Lemma 4.5), so a dichotomic search over
// [0, Lemma-5.1-bound] converges to T*_ac; the witness word then yields the
// low-degree scheme of Lemma 4.6.
#pragma once

#include "bmp/core/greedy_test.hpp"
#include "bmp/core/instance.hpp"
#include "bmp/core/scheme.hpp"
#include "bmp/core/word.hpp"

namespace bmp {

/// T*_ac by bisection; `iters` halvings (default reaches double precision).
/// Also works for open-only instances (where it equals the closed form).
double optimal_acyclic_throughput(const Instance& instance,
                                  GreedyPolicy policy = GreedyPolicy::kPaper,
                                  int iters = 100);

struct AcyclicSolution {
  double throughput = 0.0;
  Word word;              ///< witness word from GreedyTest at `throughput`.
  BroadcastScheme scheme; ///< low-degree scheme feeding every node at rate T.
};

/// Full §IV pipeline: dichotomic search + Lemma 4.6 scheme construction.
AcyclicSolution solve_acyclic(const Instance& instance, int iters = 100);

}  // namespace bmp
