#include "bmp/core/conservative.hpp"

#include <sstream>
#include <stdexcept>

namespace bmp {

std::string ConservativenessViolation::describe() const {
  std::ostringstream os;
  os << "open C" << open_sender << " feeds open C" << open_receiver
     << " while guarded C" << guarded_node << " still has " << residual
     << " unused upload";
  return os.str();
}

std::vector<int> order_from_word(const Instance& instance, const Word& word) {
  if (count_open(word) != instance.n() || count_guarded(word) != instance.m()) {
    throw std::invalid_argument("order_from_word: letter counts mismatch");
  }
  std::vector<int> order{0};
  int opens = 0;
  int guardeds = 0;
  for (const Letter letter : word) {
    if (letter == Letter::kOpen) {
      order.push_back(++opens);
    } else {
      ++guardeds;
      order.push_back(instance.n() + guardeds);
    }
  }
  return order;
}

std::optional<ConservativenessViolation> find_conservativeness_violation(
    const Instance& instance, const BroadcastScheme& scheme,
    const std::vector<int>& order, double tol) {
  if (static_cast<int>(order.size()) != instance.size() || order.empty() ||
      order.front() != 0) {
    throw std::invalid_argument(
        "find_conservativeness_violation: order must list all nodes, source first");
  }
  std::vector<int> position(order.size());
  for (std::size_t p = 0; p < order.size(); ++p) {
    position[static_cast<std::size_t>(order[p])] = static_cast<int>(p);
  }

  // For each guarded node σ(i), its upload toward positions <= k as a
  // function of k; a violation needs residual = b - (that sum) > tol at
  // some position k where an open->open transfer lands.
  for (std::size_t pi = 1; pi < order.size(); ++pi) {
    const int guarded = order[pi];
    if (!instance.is_guarded(guarded)) continue;
    for (std::size_t pk = pi + 1; pk < order.size(); ++pk) {
      const int receiver = order[pk];
      if (instance.is_guarded(receiver)) continue;
      // Upload of `guarded` already committed to positions <= pk.
      double committed = 0.0;
      for (const auto& [to, rate] : scheme.out_edges(guarded)) {
        if (position[static_cast<std::size_t>(to)] <= static_cast<int>(pk)) {
          committed += rate;
        }
      }
      const double residual = instance.b(guarded) - committed;
      if (residual <= tol) continue;
      // Does an open node with position < pk feed this receiver?
      for (std::size_t pj = 0; pj < pk; ++pj) {
        const int sender = order[pj];
        if (instance.is_guarded(sender)) continue;
        if (scheme.rate(sender, receiver) > tol) {
          return ConservativenessViolation{guarded, sender, receiver, residual};
        }
      }
    }
  }
  return std::nullopt;
}

}  // namespace bmp
