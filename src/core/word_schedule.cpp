#include "bmp/core/word_schedule.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace bmp {

namespace {
struct SenderSlot {
  int id;
  double residual;
};

/// Draws `need` units from the pool front-first, adding edges to `receiver`.
/// Returns the amount actually drawn.
double drain(std::deque<SenderSlot>& pool, int receiver, double need,
             BroadcastScheme& scheme, double eps) {
  double drawn = 0.0;
  while (need > eps && !pool.empty()) {
    SenderSlot& front = pool.front();
    const double take = std::min(front.residual, need);
    if (take > eps) {
      scheme.add(front.id, receiver, take);
      front.residual -= take;
      need -= take;
      drawn += take;
    }
    if (front.residual <= eps) pool.pop_front();
  }
  return drawn;
}
}  // namespace

WordSchedule build_scheme_from_word(const Instance& instance, const Word& word,
                                    double T, bool with_trace) {
  if (count_open(word) != instance.n() || count_guarded(word) != instance.m()) {
    throw std::invalid_argument(
        "build_scheme_from_word: word letter counts do not match instance");
  }
  if (T < 0.0) throw std::invalid_argument("build_scheme_from_word: negative T");

  WordSchedule result{BroadcastScheme(instance.size()), {}, {}};
  // Relative tolerance: must scale with T (an absolute floor would swallow
  // entire bandwidths on, e.g., Gbit-vs-bit unit choices). The second term
  // covers the greedy's tie resolution: greedy_test accepts words while
  // clamping tolerance-scale negatives (up to greedy_tie_tolerance =
  // 1e-12 * total_sum per letter), so on instances of a few thousand nodes
  // a valid word from the dichotomic search can run the pools dry by that
  // accumulated slack — a purely T-relative eps would reject it here. The
  // flip side is deliberate: when T is orders of magnitude below the
  // platform's total bandwidth, the greedy's own decisions were only
  // resolved to total_sum precision, so this builder cannot be (and is not)
  // stricter than the test that produced the word; callers needing the
  // realized rate re-measure it (flow::scheme_throughput is now one sweep).
  const double eps = 1e-9 * T + 1e-12 * static_cast<double>(instance.size()) *
                                    instance.total_sum();

  std::deque<SenderSlot> open_pool;
  std::deque<SenderSlot> guarded_pool;
  open_pool.push_back({0, instance.b(0)});

  double open_open = 0.0;  // W(π): cumulative open->open transfer.
  std::string prefix;

  const auto pool_total = [](const std::deque<SenderSlot>& pool) {
    double sum = 0.0;
    for (const auto& slot : pool) sum += slot.residual;
    return sum;
  };
  const auto record = [&] {
    if (with_trace) {
      result.trace.push_back(
          {prefix, pool_total(open_pool), pool_total(guarded_pool), open_open});
    }
  };
  record();  // ε row.
  if (T <= 0.0) return result;  // nothing to transfer; empty scheme

  int opens = 0;
  int guardeds = 0;
  for (const Letter letter : word) {
    if (letter == Letter::kGuarded) {
      ++guardeds;
      const int node = instance.n() + guardeds;
      const double got = drain(open_pool, node, T, result.scheme, eps);
      if (got + eps < T) {
        throw std::invalid_argument(
            "build_scheme_from_word: word invalid for T (open pool dry before " +
            std::to_string(node) + ")");
      }
      guarded_pool.push_back({node, instance.b(node)});
      result.order.push_back(node);
      prefix.push_back('G');
    } else {
      ++opens;
      const int node = opens;
      const double from_guarded = drain(guarded_pool, node, T, result.scheme, eps);
      const double from_open =
          drain(open_pool, node, T - from_guarded, result.scheme, eps);
      if (from_guarded + from_open + eps < T) {
        throw std::invalid_argument(
            "build_scheme_from_word: word invalid for T (pools dry before " +
            std::to_string(node) + ")");
      }
      open_open += from_open;
      open_pool.push_back({node, instance.b(node)});
      result.order.push_back(node);
      prefix.push_back('O');
    }
    record();
  }
  return result;
}

}  // namespace bmp
