// Closed-form throughput bounds from the paper.
//
//  * acyclic, open only (§III.B):   T*_ac = min(b0, S_{n-1}/n)
//  * cyclic, open only (Thm 5.2):   T*    = min(b0, (b0+O)/n)
//  * cyclic, general (Lemma 5.1):   T*    = min(b0, (b0+O)/m, (b0+O+G)/(n+m))
//    (upper bound; the paper's contribution list states it is the optimal
//    cyclic throughput, reachable with unbounded degree — we cross-check
//    achievability against the LP oracle in tests).
//
// fixed_point_source_bandwidth computes the b0 used by the Fig. 19 average
// case: "the bandwidth of the source node is chosen equal to the optimal
// cyclic throughput", i.e. the unique fixed point of b0 = cyclic bound.
#pragma once

#include <limits>
#include <vector>

#include "bmp/core/instance.hpp"

namespace bmp {

/// min(b0, S_{n-1}/n): optimal acyclic throughput for open-only instances.
/// Requires m == 0 (throws otherwise). n == 0 returns b0 by convention.
template <typename Num>
Num acyclic_open_optimal(const BasicInstance<Num>& instance) {
  if (instance.m() != 0) {
    throw std::invalid_argument("acyclic_open_optimal: instance has guarded nodes");
  }
  const int n = instance.n();
  if (n == 0) return instance.b(0);
  const Num bound = instance.prefix_sum(n - 1) / Num(n);
  return bound < instance.b(0) ? bound : instance.b(0);
}

/// min(b0, (b0+O)/n): optimal cyclic throughput for open-only instances
/// (Thm 5.2). Requires m == 0.
template <typename Num>
Num cyclic_open_optimal(const BasicInstance<Num>& instance) {
  if (instance.m() != 0) {
    throw std::invalid_argument("cyclic_open_optimal: instance has guarded nodes");
  }
  const int n = instance.n();
  if (n == 0) return instance.b(0);
  const Num bound = instance.prefix_sum(n) / Num(n);
  return bound < instance.b(0) ? bound : instance.b(0);
}

/// Lemma 5.1 closed form: min(b0, (b0+O)/m, (b0+O+G)/(n+m)). Works for any
/// instance (skips vacuous terms); n+m == 0 returns b0 by convention.
template <typename Num>
Num cyclic_upper_bound(const BasicInstance<Num>& instance) {
  const int n = instance.n();
  const int m = instance.m();
  Num best = instance.b(0);
  if (m > 0) {
    const Num open_cap = (instance.b(0) + instance.open_sum()) / Num(m);
    if (open_cap < best) best = open_cap;
  }
  if (n + m > 0) {
    const Num all_cap = instance.total_sum() / Num(n + m);
    if (all_cap < best) best = all_cap;
  }
  return best;
}

/// Solves b0 = cyclic_upper_bound(b0, open, guarded) for b0 — the source
/// bandwidth used by the Fig. 19 experiment setup (§XII): the source is not
/// a strict bottleneck, but cannot feed everyone by itself. Degenerate
/// platforms (fewer than two receivers overall and at most one guarded node)
/// have no finite fixed point; we fall back to the mean peer bandwidth.
double fixed_point_source_bandwidth(const std::vector<double>& open_bw,
                                    const std::vector<double>& guarded_bw);

}  // namespace bmp
