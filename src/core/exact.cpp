#include "bmp/core/exact.hpp"

#include "bmp/core/word_throughput.hpp"

namespace bmp {

ExactAcyclic optimal_acyclic_exact(const RationalInstance& instance) {
  ExactAcyclic best{util::Rational(0), {}};
  bool first = true;
  for (const Word& word : enumerate_words(instance.n(), instance.m())) {
    const util::Rational t = word_throughput_exact(instance, word);
    if (first || best.throughput < t) {
      best = {t, word};
      first = false;
    }
  }
  if (first) best.throughput = instance.b(0);  // no receivers
  return best;
}

double optimal_acyclic_bruteforce(const Instance& instance) {
  double best = 0.0;
  bool first = true;
  for (const Word& word : enumerate_words(instance.n(), instance.m())) {
    const double t = word_throughput_closed_form(instance, word);
    if (first || t > best) {
      best = t;
      first = false;
    }
  }
  if (first) best = instance.b(0);
  return best;
}

}  // namespace bmp
