// Exact brute-force acyclic optimum: enumerate every increasing order (all
// C(n+m, m) coding words — Lemma 4.2 says nothing else can win) and take
// the best exact word throughput. Exponential; intended as the ground-truth
// oracle for property tests against GreedyTest + dichotomic search
// (Lemma 4.5) on instances with n + m <= ~16.
#pragma once

#include "bmp/core/instance.hpp"
#include "bmp/core/word.hpp"
#include "bmp/util/rational.hpp"

namespace bmp {

struct ExactAcyclic {
  util::Rational throughput;
  Word word;  ///< an optimal word.
};

ExactAcyclic optimal_acyclic_exact(const RationalInstance& instance);

/// Double-precision variant of the same enumeration (closed-form per word).
double optimal_acyclic_bruteforce(const Instance& instance);

}  // namespace bmp
