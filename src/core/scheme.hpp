// A broadcast scheme: the weighted overlay digraph {c_ij} produced by the
// algorithms (paper §II.D). Node i sends to node j at rate c_ij; the scheme
// is subject to the bandwidth constraint (sum_j c_ij <= b_i) and the
// firewall constraint (no guarded->guarded edge). Throughput is
// min_k maxflow(C0 -> Ck) — computed in bmp/flow (scheme_throughput) to keep
// this type dependency-free.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "bmp/core/instance.hpp"

namespace bmp {

class BroadcastScheme {
 public:
  explicit BroadcastScheme(int num_nodes);

  [[nodiscard]] int num_nodes() const { return static_cast<int>(out_.size()); }

  /// Adds `delta` (may be negative, for the cyclic rerouting steps) to edge
  /// (from,to). Rates that land within a *relative* kZeroTol of zero
  /// (relative to |old| + |delta|) are removed so floating-point residue
  /// never inflates degrees; driving a rate significantly below zero
  /// throws. Tolerances are scale-free.
  void add(int from, int to, double delta);

  /// Current rate of edge (from,to); 0 if absent.
  [[nodiscard]] double rate(int from, int to) const;

  /// Outgoing edges of node i as (target, rate), ordered by target id.
  [[nodiscard]] const std::map<int, double>& out_edges(int i) const;

  [[nodiscard]] double out_rate(int i) const;
  [[nodiscard]] double in_rate(int i) const;
  [[nodiscard]] int out_degree(int i) const;
  [[nodiscard]] int in_degree(int i) const;
  [[nodiscard]] int max_out_degree() const;
  [[nodiscard]] int edge_count() const;
  /// Sum of all edge rates (total traffic).
  [[nodiscard]] double total_rate() const;

  /// True iff the communication graph is a DAG (paper's acyclic schemes).
  [[nodiscard]] bool is_acyclic() const;
  /// A topological order if acyclic, empty vector otherwise.
  [[nodiscard]] std::vector<int> topological_order() const;

  /// Human-readable violation list; empty means the scheme satisfies the
  /// bandwidth and firewall constraints of `instance` within `tol`.
  [[nodiscard]] std::vector<std::string> validate(const Instance& instance,
                                                  double tol = 1e-7) const;

  /// Max |in_rate(i) - T| over non-source nodes — our constructive schemes
  /// feed every node at exactly the target rate.
  [[nodiscard]] double max_inflow_deviation(double T) const;

  /// Graphviz dot output (used by examples).
  [[nodiscard]] std::string to_dot() const;

  static constexpr double kZeroTol = 1e-9;

 private:
  std::vector<std::map<int, double>> out_;
};

}  // namespace bmp
