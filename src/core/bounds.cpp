#include "bmp/core/bounds.hpp"

#include <cmath>
#include <limits>

namespace bmp {

double fixed_point_source_bandwidth(const std::vector<double>& open_bw,
                                    const std::vector<double>& guarded_bw) {
  const auto n = static_cast<int>(open_bw.size());
  const auto m = static_cast<int>(guarded_bw.size());
  double open_sum = 0.0;
  for (const double b : open_bw) open_sum += b;
  double guarded_sum = 0.0;
  for (const double b : guarded_bw) guarded_sum += b;

  // b0 = (b0+O)/m        has fixed point O/(m-1)            (m > 1)
  // b0 = (b0+O+G)/(n+m)  has fixed point (O+G)/(n+m-1)      (n+m > 1)
  // Both right-hand sides are increasing in b0 with slope < 1, so the fixed
  // point of their min is the min of the individual fixed points.
  double best = std::numeric_limits<double>::infinity();
  if (m > 1) best = std::min(best, open_sum / (m - 1));
  if (n + m > 1) best = std::min(best, (open_sum + guarded_sum) / (n + m - 1));
  if (std::isfinite(best)) return best;

  // Degenerate: a single receiver (or none). Any b0 >= that receiver's need
  // works; use the mean peer bandwidth (or 1.0 for an empty platform).
  const int peers = n + m;
  if (peers == 0) return 1.0;
  return (open_sum + guarded_sum) / peers > 0.0 ? (open_sum + guarded_sum) / peers
                                                : 1.0;
}

}  // namespace bmp
