#include "bmp/core/acyclic_open.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "bmp/core/bounds.hpp"

namespace bmp {

PartialAcyclic build_acyclic_open_partial(const Instance& instance, double T) {
  if (instance.m() != 0) {
    throw std::invalid_argument("build_acyclic_open: instance has guarded nodes");
  }
  // Relative tolerance (no absolute floor — bandwidth units are arbitrary).
  const double eps = 1e-9 * T;
  if (T > instance.b(0) * (1.0 + 1e-9) && T > instance.b(0) + eps) {
    throw std::invalid_argument("build_acyclic_open: T exceeds b0");
  }
  PartialAcyclic result{BroadcastScheme(instance.size()), std::nullopt};
  if (T <= 0.0) return result;

  const int n = instance.n();
  int sender = 0;
  double sender_left = instance.b(0);
  for (int receiver = 1; receiver <= n; ++receiver) {
    double need = T;
    while (need > eps) {
      if (sender_left <= eps) {
        // Advance to the next sender; it must precede the receiver, which
        // is guaranteed while S_{receiver-1} >= receiver*T holds.
        if (sender + 1 >= receiver) {
          result.stalled = receiver;
          return result;
        }
        ++sender;
        sender_left = instance.b(sender);
        continue;
      }
      const double take = std::min(sender_left, need);
      result.scheme.add(sender, receiver, take);
      sender_left -= take;
      need -= take;
    }
  }
  return result;
}

BroadcastScheme build_acyclic_open(const Instance& instance, double T) {
  PartialAcyclic partial = build_acyclic_open_partial(instance, T);
  if (partial.stalled.has_value()) {
    throw std::invalid_argument(
        "build_acyclic_open: T infeasible, bandwidth exhausted at node " +
        std::to_string(*partial.stalled));
  }
  return std::move(partial.scheme);
}

}  // namespace bmp
