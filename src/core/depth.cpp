#include "bmp/core/depth.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace bmp {

DepthReport analyze_depth(const BroadcastScheme& scheme) {
  const std::vector<int> topo = scheme.topological_order();
  if (topo.empty()) {
    throw std::invalid_argument("analyze_depth: scheme is cyclic");
  }
  const int N = scheme.num_nodes();
  DepthReport report;
  report.depth.assign(static_cast<std::size_t>(N), 0);
  report.weighted_depth.assign(static_cast<std::size_t>(N), 0.0);
  std::vector<double> in_rate(static_cast<std::size_t>(N), 0.0);
  for (int v = 0; v < N; ++v) {
    for (const auto& [to, rate] : scheme.out_edges(v)) {
      in_rate[static_cast<std::size_t>(to)] += rate;
    }
  }

  // Topological order guarantees every feeder of v is finalized before v is
  // visited, so v's accumulator can be normalized at visit time and then
  // propagated.
  for (const int v : topo) {
    if (v != 0 && in_rate[static_cast<std::size_t>(v)] > 0.0) {
      report.weighted_depth[static_cast<std::size_t>(v)] /=
          in_rate[static_cast<std::size_t>(v)];
    }
    for (const auto& [to, rate] : scheme.out_edges(v)) {
      report.depth[static_cast<std::size_t>(to)] =
          std::max(report.depth[static_cast<std::size_t>(to)],
                   report.depth[static_cast<std::size_t>(v)] + 1);
      report.weighted_depth[static_cast<std::size_t>(to)] +=
          rate * (report.weighted_depth[static_cast<std::size_t>(v)] + 1.0);
    }
  }
  double depth_sum = 0.0;
  int fed = 0;
  for (int v = 1; v < N; ++v) {
    if (in_rate[static_cast<std::size_t>(v)] > 0.0) {
      ++fed;
      depth_sum += report.depth[static_cast<std::size_t>(v)];
    }
    report.max_depth = std::max(report.max_depth,
                                report.depth[static_cast<std::size_t>(v)]);
    report.max_weighted_depth =
        std::max(report.max_weighted_depth,
                 report.weighted_depth[static_cast<std::size_t>(v)]);
  }
  report.mean_depth = fed > 0 ? depth_sum / fed : 0.0;
  return report;
}

namespace {

struct Slot {
  int id;
  double residual;
};

/// Pulls `need` from the pool honoring the feed order; returns drawn total.
double drain_ordered(std::deque<Slot>& pool, int receiver, double need,
                     BroadcastScheme& scheme, double eps, FeedOrder order,
                     const std::vector<int>& depth_of) {
  double drawn = 0.0;
  while (need > eps && !pool.empty()) {
    std::size_t pick = 0;
    switch (order) {
      case FeedOrder::kEarliestFirst:
        pick = 0;
        break;
      case FeedOrder::kLatestFirst:
        pick = pool.size() - 1;
        break;
      case FeedOrder::kShallowest: {
        int best_depth = depth_of[static_cast<std::size_t>(pool[0].id)];
        for (std::size_t k = 1; k < pool.size(); ++k) {
          const int d = depth_of[static_cast<std::size_t>(pool[k].id)];
          if (d < best_depth) {
            best_depth = d;
            pick = k;
          }
        }
        break;
      }
    }
    Slot& slot = pool[pick];
    const double take = std::min(slot.residual, need);
    if (take > eps) {
      scheme.add(slot.id, receiver, take);
      slot.residual -= take;
      need -= take;
      drawn += take;
    }
    if (slot.residual <= eps) pool.erase(pool.begin() + static_cast<long>(pick));
  }
  return drawn;
}

}  // namespace

BroadcastScheme build_scheme_from_word_ordered(const Instance& instance,
                                               const Word& word, double T,
                                               FeedOrder order) {
  if (count_open(word) != instance.n() || count_guarded(word) != instance.m()) {
    throw std::invalid_argument(
        "build_scheme_from_word_ordered: word letter counts mismatch");
  }
  BroadcastScheme scheme(instance.size());
  if (T <= 0.0) return scheme;
  const double eps = 1e-9 * T;  // relative; see word_schedule.cpp

  std::deque<Slot> open_pool{{0, instance.b(0)}};
  std::deque<Slot> guarded_pool;
  std::vector<int> depth_of(static_cast<std::size_t>(instance.size()), 0);

  const auto depth_after_feed = [&](int node) {
    int d = 0;
    for (int s = 0; s < instance.size(); ++s) {
      if (scheme.rate(s, node) > 0.0) {
        d = std::max(d, depth_of[static_cast<std::size_t>(s)] + 1);
      }
    }
    depth_of[static_cast<std::size_t>(node)] = d;
  };

  int opens = 0;
  int guardeds = 0;
  for (const Letter letter : word) {
    if (letter == Letter::kGuarded) {
      ++guardeds;
      const int node = instance.n() + guardeds;
      const double got =
          drain_ordered(open_pool, node, T, scheme, eps, order, depth_of);
      if (got + eps < T) {
        throw std::invalid_argument(
            "build_scheme_from_word_ordered: word invalid for T");
      }
      depth_after_feed(node);
      guarded_pool.push_back({node, instance.b(node)});
    } else {
      ++opens;
      const int node = opens;
      const double from_guarded =
          drain_ordered(guarded_pool, node, T, scheme, eps, order, depth_of);
      const double from_open = drain_ordered(open_pool, node, T - from_guarded,
                                             scheme, eps, order, depth_of);
      if (from_guarded + from_open + eps < T) {
        throw std::invalid_argument(
            "build_scheme_from_word_ordered: word invalid for T");
      }
      depth_after_feed(node);
      open_pool.push_back({node, instance.b(node)});
    }
  }
  return scheme;
}

}  // namespace bmp
