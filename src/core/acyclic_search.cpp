#include "bmp/core/acyclic_search.hpp"

#include <optional>
#include <stdexcept>
#include <utility>

#include "bmp/core/bounds.hpp"
#include "bmp/core/word_schedule.hpp"

namespace bmp {

namespace {

struct SearchResult {
  double throughput;
  std::optional<Word> word;
};

SearchResult search(const Instance& instance, GreedyPolicy policy, int iters) {
  if (instance.n() + instance.m() == 0) {
    return {instance.b(0), Word{}};
  }
  double hi = cyclic_upper_bound(instance);
  if (auto word = greedy_test(instance, hi, policy)) {
    return {hi, std::move(word)};
  }
  double lo = 0.0;
  std::optional<Word> best = greedy_test(instance, lo, policy);
  for (int k = 0; k < iters; ++k) {
    const double mid = 0.5 * (lo + hi);
    if (auto word = greedy_test(instance, mid, policy)) {
      lo = mid;
      best = std::move(word);
    } else {
      hi = mid;
    }
  }
  return {lo, std::move(best)};
}

}  // namespace

double optimal_acyclic_throughput(const Instance& instance, GreedyPolicy policy,
                                  int iters) {
  return search(instance, policy, iters).throughput;
}

AcyclicSolution solve_acyclic(const Instance& instance, int iters) {
  SearchResult found = search(instance, GreedyPolicy::kPaper, iters);
  if (!found.word.has_value()) {
    throw std::logic_error("solve_acyclic: even T=0 rejected (empty instance?)");
  }
  WordSchedule ws =
      build_scheme_from_word(instance, *found.word, found.throughput);
  return {found.throughput, std::move(*found.word), std::move(ws.scheme)};
}

}  // namespace bmp
