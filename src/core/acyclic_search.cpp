#include "bmp/core/acyclic_search.hpp"

#include <optional>
#include <stdexcept>
#include <utility>

#include "bmp/core/bounds.hpp"
#include "bmp/core/word_schedule.hpp"

namespace bmp {

namespace {

struct SearchResult {
  double throughput;
  std::optional<Word> word;
};

SearchResult search(const Instance& instance, GreedyPolicy policy, int iters) {
  if (instance.n() + instance.m() == 0) {
    return {instance.b(0), Word{}};
  }
  const double hi0 = cyclic_upper_bound(instance);
  // Allocation-free probing: the bisection reuses two Word buffers (the
  // best word so far and the in-flight probe, swapped on success) and
  // hoists the tie tolerance out of the loop — it is computed once at the
  // search's upper bound, which dominates every probe below it.
  const double tie_tol = greedy_tie_tolerance(instance, hi0);
  Word best;
  Word probe;
  if (greedy_test_into(instance, hi0, best, policy, tie_tol)) {
    return {hi0, std::move(best)};
  }
  double lo = 0.0;
  double hi = hi0;
  bool has_best = greedy_test_into(instance, lo, best, policy, tie_tol);
  for (int k = 0; k < iters; ++k) {
    const double mid = 0.5 * (lo + hi);
    if (greedy_test_into(instance, mid, probe, policy, tie_tol)) {
      lo = mid;
      std::swap(best, probe);
      has_best = true;
    } else {
      hi = mid;
    }
  }
  if (!has_best) return {lo, std::nullopt};
  return {lo, std::move(best)};
}

}  // namespace

double optimal_acyclic_throughput(const Instance& instance, GreedyPolicy policy,
                                  int iters) {
  return search(instance, policy, iters).throughput;
}

AcyclicSolution solve_acyclic(const Instance& instance, int iters) {
  SearchResult found = search(instance, GreedyPolicy::kPaper, iters);
  if (!found.word.has_value()) {
    throw std::logic_error("solve_acyclic: even T=0 rejected (empty instance?)");
  }
  WordSchedule ws =
      build_scheme_from_word(instance, *found.word, found.throughput);
  return {found.throughput, std::move(*found.word), std::move(ws.scheme)};
}

}  // namespace bmp
