#include "bmp/core/word_throughput.hpp"

#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "bmp/core/bounds.hpp"

namespace bmp {

namespace {

/// Shared closed-form evaluation; Num is double or util::Rational.
template <typename Num>
Num closed_form(const BasicInstance<Num>& instance, const Word& word) {
  if (count_open(word) != instance.n() || count_guarded(word) != instance.m()) {
    throw std::invalid_argument("word_throughput: letter counts mismatch");
  }
  if (word.empty()) return instance.b(0);

  bool has_bound = false;
  Num best{};
  const auto consider = [&](const Num& cand) {
    if (!has_bound || cand < best) {
      best = cand;
      has_bound = true;
    }
  };

  // osum includes b0; gsum is the guarded bandwidth placed so far.
  Num osum = instance.b(0);
  Num gsum(0);
  int opens = 0;
  int guardeds = 0;
  // Breakpoints of W(π): (x = opens including that O letter, gs at the time).
  std::vector<std::pair<int, Num>> breakpoints;

  for (const Letter letter : word) {
    if (letter == Letter::kOpen) {
      consider((osum + gsum) / Num(opens + guardeds + 1));
      breakpoints.emplace_back(opens + 1, gsum);
      ++opens;
      osum = osum + instance.b(opens);
    } else {
      consider(osum / Num(guardeds + 1));
      for (const auto& [x, gs] : breakpoints) {
        consider((osum + gs) / Num(guardeds + 1 + x));
      }
      ++guardeds;
      gsum = gsum + instance.b(instance.n() + guardeds);
    }
  }
  return best;
}

}  // namespace

util::Rational word_throughput_exact(const RationalInstance& instance,
                                     const Word& word) {
  return closed_form<util::Rational>(instance, word);
}

double word_throughput_closed_form(const Instance& instance, const Word& word) {
  return closed_form<double>(instance, word);
}

double word_throughput(const Instance& instance, const Word& word, int iters) {
  if (word.empty()) return instance.b(0);
  double hi = cyclic_upper_bound(instance);
  if (check_word(instance, word, hi)) return hi;
  double lo = 0.0;
  for (int k = 0; k < iters; ++k) {
    const double mid = 0.5 * (lo + hi);
    if (check_word(instance, word, mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace bmp
