// Scheme depth / delay metrics — the paper's stated follow-up objective
// ("optimizing the depth of produced schemes in order to minimize delays",
// §VII). In steady-state streaming the data a node receives has crossed a
// chain of relays; the per-node *depth* (longest source path over
// positive-rate edges) bounds its worst-case latency, and the
// flow-weighted depth approximates the mean piece delay observed by the
// simulator.
#pragma once

#include <vector>

#include "bmp/core/instance.hpp"
#include "bmp/core/scheme.hpp"
#include "bmp/core/word.hpp"

namespace bmp {

struct DepthReport {
  std::vector<int> depth;      ///< per node: longest path from the source
  int max_depth = 0;
  double mean_depth = 0.0;     ///< over non-source nodes
  /// Flow-weighted expected hop count: each node's value is the average of
  /// (feeder's value + 1) weighted by received rate; proxies mean latency.
  std::vector<double> weighted_depth;
  double max_weighted_depth = 0.0;
};

/// Computes depth metrics. Requires an acyclic scheme (cyclic schemes have
/// unbounded paths; their steady-state delay needs the simulator).
DepthReport analyze_depth(const BroadcastScheme& scheme);

/// How the word scheduler picks senders from the eligible pool — the
/// earliest-first rule of Lemma 4.6 (paper, low degree) vs. a latest-first
/// variant that trades degree for depth by preferring freshly-added
/// senders... which in fact *deepens* chains; and a depth-greedy variant
/// that picks the eligible sender with the smallest current depth.
enum class FeedOrder {
  kEarliestFirst,  ///< the paper's rule (Lemma 4.6 degree bounds hold)
  kLatestFirst,    ///< adversarial ablation: deepest chains
  kShallowest,     ///< depth-greedy: minimize receiver depth
};

/// Variant of build_scheme_from_word with a configurable feeding order.
/// kEarliestFirst reproduces build_scheme_from_word exactly.
BroadcastScheme build_scheme_from_word_ordered(const Instance& instance,
                                               const Word& word, double T,
                                               FeedOrder order);

}  // namespace bmp
