#include "bmp/core/omega_words.hpp"

#include <stdexcept>

#include "bmp/core/bounds.hpp"

namespace bmp {

Word omega1(int n, int m) {
  if (n < 0 || m < 0) throw std::invalid_argument("omega1: negative counts");
  Word word;
  word.reserve(static_cast<std::size_t>(n + m));
  if (n == 0) {
    word.assign(static_cast<std::size_t>(m), Letter::kGuarded);
    return word;
  }
  long long placed = 0;
  for (int i = 1; i <= n; ++i) {
    word.push_back(Letter::kOpen);
    const long long upto = static_cast<long long>(i) * m / n;
    for (; placed < upto; ++placed) word.push_back(Letter::kGuarded);
  }
  return word;
}

Word omega2(int n, int m) {
  if (n < 0 || m < 0) throw std::invalid_argument("omega2: negative counts");
  Word word;
  word.reserve(static_cast<std::size_t>(n + m));
  if (m == 0) {
    word.assign(static_cast<std::size_t>(n), Letter::kOpen);
    return word;
  }
  long long placed = 0;
  for (int j = 1; j <= m; ++j) {
    word.push_back(Letter::kGuarded);
    const long long upto =
        (static_cast<long long>(j) * n + m - 1) / m;  // ceil(j*n/m)
    for (; placed < upto; ++placed) word.push_back(Letter::kOpen);
  }
  return word;
}

Word theorem62_word(const Instance& instance) {
  const int n = instance.n();
  const int m = instance.m();
  if (m == 0) return omega1(n, m);
  if (n == 0) return omega2(n, m);
  const double mean_open = instance.open_sum() / n;
  const double t_star = cyclic_upper_bound(instance);
  return mean_open >= t_star ? omega1(n, m) : omega2(n, m);
}

}  // namespace bmp
