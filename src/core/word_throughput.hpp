// Optimal acyclic throughput for a FIXED coding word, T*_ac(π).
//
// From the validity conditions (appendix IX-C) and the closed form of W(π)
// (Lemma 4.4), the feasible throughputs of a word form an interval [0, T*]
// whose endpoint is a minimum of linear-fractional expressions:
//
//   before an O letter (i opens, j guardeds placed, sums osum/gsum incl b0):
//       T <= (osum + gsum) / (i + j + 1)
//   before a G letter, for W(π)'s max over breakpoints (x opens placed up
//   to an earlier O letter, gs = guarded sum before it):
//       T <= osum / (j + 1)                       (W = 0 branch)
//       T <= (osum + gs) / (j + 1 + x)            (per breakpoint)
//
// word_throughput_exact evaluates the minimum exactly over rationals in
// O(L^2); word_throughput bisects check_word (O(L log(1/eps))) — used for
// the ω1/ω2 series of Fig. 19 at n = 1000.
#pragma once

#include "bmp/core/instance.hpp"
#include "bmp/core/word.hpp"
#include "bmp/util/rational.hpp"

namespace bmp {

/// Exact T*_ac(π). Empty words return b0 by convention.
util::Rational word_throughput_exact(const RationalInstance& instance,
                                     const Word& word);

/// Same closed-form evaluation in doubles (O(L^2)); exact up to roundoff.
double word_throughput_closed_form(const Instance& instance, const Word& word);

/// Bisection on check_word; `iters` halvings starting from the Lemma 5.1
/// upper bound. Returns a feasible lower estimate within one ulp-scale step
/// of T*_ac(π).
double word_throughput(const Instance& instance, const Word& word, int iters = 100);

}  // namespace bmp
