// Deterministic fault-injection plans. A FaultPlan is a declarative list
// of impolite failures on the scenario clock — abrupt crashes (no leave
// event), region partitions with timed heals, per-chunk payload
// corruption, telemetry blackouts, planner outages. The Injector
// (injector.hpp) compiles a plan into runtime::Event records and merges
// them into a built ScenarioScript, re-sequencing so the chaos stream
// replays bit-for-bit like any other scenario. Same convention as
// src/obs: faults are data, never wall-clock or thread-timing dependent.
#pragma once

#include <cstdint>
#include <vector>

namespace bmp::fault {

/// Abrupt crash of one runtime node at `time`. No kNodeLeave is emitted:
/// the node simply stops sending and acking, and the runtime has to
/// detect the silence from frozen telemetry and synthesize the repair.
struct CrashSpec {
  double time = 0.0;
  int node = 0;  ///< runtime node id (never 0, the global source)
};

/// A network partition: `group_b` is cut off from everyone else between
/// `time` and `heal_time`. Traffic across the cut is silently dropped
/// (counters keep moving — partition looks *different* from crash to the
/// detector, which is the point). heal_time < 0 never heals.
struct PartitionSpec {
  double time = 0.0;
  double heal_time = -1.0;
  std::vector<int> group_b;  ///< runtime node ids on the far side
};

/// Payload corruption on one node's egress: between `time` and
/// `end_time`, each chunk it sends corrupts with probability `rate`.
/// Hardened receivers (verify_payloads) detect the bad checksum and
/// re-request; frozen receivers silently accept and *propagate* it.
struct CorruptionSpec {
  double time = 0.0;
  double end_time = -1.0;  ///< < 0: never ends
  int node = 0;
  double rate = 0.1;
};

/// Telemetry blackout: between `time` and `end_time` the listed nodes'
/// samples freeze at their last value (EdgeStats deltas go to zero). The
/// control plane must not mistake "no data" for "data says zero".
struct BlackoutSpec {
  double time = 0.0;
  double end_time = -1.0;
  std::vector<int> nodes;
};

/// Planner outage: between `time` and `end_time` every Planner::plan call
/// throws PlannerUnavailable. Sessions fall back to incremental repair;
/// the runtime queues failed opens/replans and retries with backoff.
struct PlannerOutageSpec {
  double time = 0.0;
  double end_time = -1.0;
};

/// The full declarative chaos plan. Order within each list is free; the
/// Injector sorts everything onto the scenario clock.
struct FaultPlan {
  std::vector<CrashSpec> crashes;
  std::vector<PartitionSpec> partitions;
  std::vector<CorruptionSpec> corruptions;
  std::vector<BlackoutSpec> blackouts;
  std::vector<PlannerOutageSpec> planner_outages;

  [[nodiscard]] bool empty() const {
    return crashes.empty() && partitions.empty() && corruptions.empty() &&
           blackouts.empty() && planner_outages.empty();
  }
};

}  // namespace bmp::fault
