// Injector — compiles a FaultPlan into runtime::Event records and merges
// them into a built ScenarioScript. Merging is a stable re-sequence: the
// combined stream is sorted by (time, original order) and sequence numbers
// are reassigned 0..n-1, exactly how Scenario::build() stamps them, so a
// chaos script replays bit-identically and two injections of the same
// plan into the same script are byte-equal.
//
// random_plan() derives a bounded random FaultPlan from a single seed via
// util::Xoshiro256 — the fuzz tests draw ~200 of these and assert the
// runtime's invariants hold under every one of them.
#pragma once

#include <cstdint>
#include <vector>

#include "bmp/fault/fault.hpp"
#include "bmp/runtime/event.hpp"
#include "bmp/runtime/scenario.hpp"

namespace bmp::fault {

/// Bounds for random_plan(). Node ids are drawn from [1, num_nodes] (the
/// runtime's initial population; 0 — the global source — is never picked,
/// source failover is exercised at the Execution layer instead).
struct RandomPlanOptions {
  int num_nodes = 0;        ///< initial population size (required, > 0)
  double horizon = 10.0;    ///< faults land in [0.2, 0.9] * horizon
  int max_crashes = 3;
  int max_partitions = 1;
  int max_corruptions = 2;
  int max_blackouts = 2;
  int max_planner_outages = 1;
  double max_corruption_rate = 0.5;
};

class Injector {
 public:
  /// Compiles the plan to a time-sorted vector of kFault events.
  [[nodiscard]] static std::vector<runtime::Event> compile(
      const FaultPlan& plan);

  /// Merges the compiled plan into `script.events` (stable by time, plan
  /// events after script events at equal timestamps) and reassigns every
  /// sequence number, mirroring Scenario::build().
  static void inject(runtime::ScenarioScript& script, const FaultPlan& plan);

  /// A bounded random plan, fully determined by `seed` and `options`.
  [[nodiscard]] static FaultPlan random_plan(std::uint64_t seed,
                                             const RandomPlanOptions& options);
};

}  // namespace bmp::fault
