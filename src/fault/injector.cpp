#include "bmp/fault/injector.hpp"

#include <algorithm>
#include <utility>

#include "bmp/util/rng.hpp"

namespace bmp::fault {

namespace {

runtime::Event fault_event(double time, runtime::FaultAction action) {
  runtime::Event event;
  event.type = runtime::EventType::kFault;
  event.time = time;
  event.faults.push_back(std::move(action));
  return event;
}

}  // namespace

std::vector<runtime::Event> Injector::compile(const FaultPlan& plan) {
  using Kind = runtime::FaultAction::Kind;
  std::vector<runtime::Event> events;

  for (const CrashSpec& crash : plan.crashes) {
    runtime::FaultAction action;
    action.kind = Kind::kCrash;
    action.node = crash.node;
    events.push_back(fault_event(crash.time, std::move(action)));
  }
  // Each partition gets its own group id so overlapping partitions stay
  // distinguishable; a heal collapses *all* groups (bisections heal whole).
  int next_group = 1;
  for (const PartitionSpec& partition : plan.partitions) {
    runtime::FaultAction start;
    start.kind = Kind::kPartitionStart;
    start.group = next_group++;
    start.nodes = partition.group_b;
    events.push_back(fault_event(partition.time, std::move(start)));
    if (partition.heal_time >= 0.0) {
      runtime::FaultAction heal;
      heal.kind = Kind::kPartitionHeal;
      events.push_back(fault_event(partition.heal_time, std::move(heal)));
    }
  }
  for (const CorruptionSpec& corruption : plan.corruptions) {
    runtime::FaultAction start;
    start.kind = Kind::kCorruptStart;
    start.node = corruption.node;
    start.rate = corruption.rate;
    events.push_back(fault_event(corruption.time, std::move(start)));
    if (corruption.end_time >= 0.0) {
      runtime::FaultAction end;
      end.kind = Kind::kCorruptEnd;
      end.node = corruption.node;
      events.push_back(fault_event(corruption.end_time, std::move(end)));
    }
  }
  for (const BlackoutSpec& blackout : plan.blackouts) {
    runtime::FaultAction start;
    start.kind = Kind::kBlackoutStart;
    start.nodes = blackout.nodes;
    events.push_back(fault_event(blackout.time, std::move(start)));
    if (blackout.end_time >= 0.0) {
      runtime::FaultAction end;
      end.kind = Kind::kBlackoutEnd;
      end.nodes = blackout.nodes;
      events.push_back(fault_event(blackout.end_time, std::move(end)));
    }
  }
  for (const PlannerOutageSpec& outage : plan.planner_outages) {
    runtime::FaultAction start;
    start.kind = Kind::kPlannerOutageStart;
    events.push_back(fault_event(outage.time, std::move(start)));
    if (outage.end_time >= 0.0) {
      runtime::FaultAction end;
      end.kind = Kind::kPlannerOutageEnd;
      events.push_back(fault_event(outage.end_time, std::move(end)));
    }
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const runtime::Event& a, const runtime::Event& b) {
                     return a.time < b.time;
                   });
  return events;
}

void Injector::inject(runtime::ScenarioScript& script, const FaultPlan& plan) {
  std::vector<runtime::Event> faults = compile(plan);
  if (faults.empty()) return;
  // Stable merge by time: at equal timestamps script events keep priority
  // (population changes land before the fault that targets them), fault
  // events keep plan order among themselves.
  std::vector<runtime::Event> merged;
  merged.reserve(script.events.size() + faults.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < script.events.size() && j < faults.size()) {
    if (faults[j].time < script.events[i].time) {
      merged.push_back(std::move(faults[j++]));
    } else {
      merged.push_back(std::move(script.events[i++]));
    }
  }
  while (i < script.events.size()) merged.push_back(std::move(script.events[i++]));
  while (j < faults.size()) merged.push_back(std::move(faults[j++]));
  // Re-stamp sequences exactly like Scenario::build(): position order.
  for (std::size_t k = 0; k < merged.size(); ++k) {
    merged[k].sequence = k;
  }
  script.events = std::move(merged);
}

FaultPlan Injector::random_plan(std::uint64_t seed,
                                const RandomPlanOptions& options) {
  FaultPlan plan;
  if (options.num_nodes <= 0) return plan;
  util::Xoshiro256 rng(seed);
  const auto pick_node = [&] {
    return 1 + static_cast<int>(
                   rng.below(static_cast<std::uint64_t>(options.num_nodes)));
  };
  const auto pick_time = [&] {
    return rng.uniform(0.2 * options.horizon, 0.9 * options.horizon);
  };

  const int crashes =
      static_cast<int>(rng.below(options.max_crashes + 1));
  for (int k = 0; k < crashes; ++k) {
    plan.crashes.push_back({pick_time(), pick_node()});
  }
  const int partitions =
      static_cast<int>(rng.below(options.max_partitions + 1));
  for (int k = 0; k < partitions; ++k) {
    PartitionSpec spec;
    spec.time = pick_time();
    spec.heal_time = spec.time + rng.uniform(0.05, 0.25) * options.horizon;
    for (int node = 1; node <= options.num_nodes; ++node) {
      if (rng.uniform() < 0.2) spec.group_b.push_back(node);
    }
    if (!spec.group_b.empty()) plan.partitions.push_back(std::move(spec));
  }
  const int corruptions =
      static_cast<int>(rng.below(options.max_corruptions + 1));
  for (int k = 0; k < corruptions; ++k) {
    CorruptionSpec spec;
    spec.time = pick_time();
    spec.end_time = spec.time + rng.uniform(0.05, 0.3) * options.horizon;
    spec.node = pick_node();
    spec.rate = rng.uniform(0.05, options.max_corruption_rate);
    plan.corruptions.push_back(spec);
  }
  const int blackouts =
      static_cast<int>(rng.below(options.max_blackouts + 1));
  for (int k = 0; k < blackouts; ++k) {
    BlackoutSpec spec;
    spec.time = pick_time();
    spec.end_time = spec.time + rng.uniform(0.05, 0.3) * options.horizon;
    for (int node = 1; node <= options.num_nodes; ++node) {
      if (rng.uniform() < 0.15) spec.nodes.push_back(node);
    }
    if (!spec.nodes.empty()) plan.blackouts.push_back(std::move(spec));
  }
  const int outages =
      static_cast<int>(rng.below(options.max_planner_outages + 1));
  for (int k = 0; k < outages; ++k) {
    PlannerOutageSpec spec;
    spec.time = pick_time();
    spec.end_time = spec.time + rng.uniform(0.05, 0.2) * options.horizon;
    plan.planner_outages.push_back(spec);
  }
  return plan;
}

}  // namespace bmp::fault
