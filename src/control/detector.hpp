// Threshold-with-hysteresis detection, the anti-flap core of the control
// plane. A detector watches one ratio signal (a node's sustained ratio, an
// edge's goodput ratio) and maintains a two-state machine:
//
//   healthy  --[value < enter for `windows` consecutive updates]-->  degraded
//   degraded --[value > exit  for `windows` consecutive updates]-->  healthy
//
// with enter < exit, so a signal oscillating *between* the two thresholds
// changes nothing, and one oscillating *around* a threshold needs several
// consecutive windows on the far side to flip the state. Combined with the
// controller's per-target action cooldowns this bounds flapping to at most
// one demote/restore cycle per cooldown — the property the no-flap tests
// pin down.
#pragma once

#include <stdexcept>

namespace bmp::control {

struct DetectorConfig {
  double enter = 0.8;  ///< degrade when the signal stays below this
  double exit = 0.92;  ///< recover when the signal stays above this
  int windows = 2;     ///< consecutive windows required for either flip
};

class HysteresisDetector {
 public:
  HysteresisDetector() : HysteresisDetector(DetectorConfig{}) {}
  explicit HysteresisDetector(const DetectorConfig& config) : config_(config) {
    if (!(config.enter <= config.exit)) {
      throw std::invalid_argument("HysteresisDetector: enter must be <= exit");
    }
    if (config.windows < 1) {
      throw std::invalid_argument("HysteresisDetector: windows must be >= 1");
    }
  }

  /// Feeds one window's signal value; returns true iff the state flipped.
  bool update(double value) {
    if (!degraded_) {
      below_ = value < config_.enter ? below_ + 1 : 0;
      if (below_ >= config_.windows) {
        degraded_ = true;
        below_ = 0;
        ++trips_;
        return true;
      }
    } else {
      above_ = value > config_.exit ? above_ + 1 : 0;
      if (above_ >= config_.windows) {
        degraded_ = false;
        above_ = 0;
        ++recoveries_;
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] bool degraded() const { return degraded_; }
  [[nodiscard]] int trips() const { return trips_; }
  [[nodiscard]] int recoveries() const { return recoveries_; }
  [[nodiscard]] const DetectorConfig& config() const { return config_; }

 private:
  DetectorConfig config_;
  bool degraded_ = false;
  int below_ = 0;
  int above_ = 0;
  int trips_ = 0;
  int recoveries_ = 0;
};

}  // namespace bmp::control
