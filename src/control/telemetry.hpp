// Telemetry primitives of the adaptive control plane: the sample structs a
// host feeds the Controller each window, and the EWMA estimator that turns
// noisy per-window observations into stable effective-capacity signals.
//
// Samples are *cumulative* (the dataplane's counters, read on the scenario
// clock); the controller differences them across windows internally, so a
// host never has to keep per-edge bookkeeping of its own. All ids are the
// caller's stable node ids (the runtime uses its population ids) — they
// must survive re-plans, which re-sort planning slots.
#pragma once

#include <cstdint>
#include <vector>

namespace bmp::control {

/// Exponentially weighted moving average, seeded by the first observation.
class Ewma {
 public:
  void observe(double value, double alpha) {
    value_ = seeded_ ? alpha * value + (1.0 - alpha) * value_ : value;
    seeded_ = true;
  }
  [[nodiscard]] bool seeded() const { return seeded_; }
  /// Current smoothed value; `fallback` until the first observation.
  [[nodiscard]] double value(double fallback = 1.0) const {
    return seeded_ ? value_ : fallback;
  }

 private:
  double value_ = 0.0;
  bool seeded_ = false;
};

/// One node's cumulative state at a sampling instant.
struct NodeSample {
  int id = 0;             ///< stable caller-side node id (not a plan slot)
  double nominal = 0.0;   ///< capacity the node was granted pre-adaptation
  double granted = 0.0;   ///< capacity the session currently plans against
  double delivered = 0.0; ///< cumulative data delivered *to* this node
  /// Whether this window may judge the node's sustained ratio (alive, and
  /// joined long enough ago that the pipeline-fill transient has passed).
  bool judgeable = true;
};

/// One overlay edge's cumulative pipe telemetry at a sampling instant
/// (dataplane::EdgeStats, re-keyed to stable node ids).
struct EdgeSample {
  int from = 0;
  int to = 0;
  double rate = 0.0;       ///< planned pipe rate currently in service
  double busy_time = 0.0;  ///< summed completed transmission durations
  double completed = 0.0;  ///< data that finished transmitting
  std::uint64_t sent = 0;
  std::uint64_t lost = 0;
  /// Send opportunities offered to the pipe (EdgeStats::attempts). The
  /// liveness signal behind the stale-telemetry guard: a window where both
  /// sent and attempts stand still is *frozen* (collector blackout), not a
  /// window that measured zero — the two must never be conflated.
  std::uint64_t attempts = 0;
};

/// Everything the controller sees at one sampling boundary.
struct TickInputs {
  double now = 0.0;
  double window = 0.0;          ///< seconds since the previous tick
  /// Data each judgeable node was expected to receive this window — the
  /// integral of the stream's emission rate over the window.
  double expected_delta = 0.0;
  double chunk_size = 1.0;      ///< the stream's chunk granularity
  std::vector<NodeSample> nodes;  ///< ascending id (determinism)
  std::vector<EdgeSample> edges;  ///< ascending (from, to)
};

}  // namespace bmp::control
