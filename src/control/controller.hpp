// The control plane's policy engine — the deterministic brain that closes
// the plan -> execute -> observe loop. One Controller watches one stream
// (one channel): each sampling window it differences the dataplane's
// cumulative telemetry, updates per-node and per-edge estimators and
// hysteresis detectors, and escalates deterministically:
//
//   * a node whose egress goodput (observed wire rate x (1 - loss) against
//     the planned pipe rates) degrades is *demoted* — its capacity class
//     drops to the quantized telemetry estimate, and the host patches the
//     overlay via engine::Session::adapt (repair_scheme underneath);
//   * a straggler (delivered-rate integral falling behind the stream's
//     emission integral) is demoted too — a peer that cannot keep up
//     cannot be trusted to relay at full rate;
//   * a degraded edge whose sender is otherwise healthy is *rerouted
//     around*: its planned rate is clamped to the observed goodput and the
//     receiver's deficit is repaired from healthier senders;
//   * when one directive moves the effective platform past the
//     fingerprint-distance bound (L1 capacity drift / granted total), the
//     controller escalates to a full re-plan through the planner cache;
//   * a demoted node whose detectors recover is *restored* (its class
//     raised back to the telemetry estimate), on a longer cooldown.
//
// Every decision is a pure function of the sample stream: ordered maps,
// no clocks, no randomness — identical inputs give identical directives on
// any thread count, which the determinism tests replay to the byte.
#pragma once

#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "bmp/control/detector.hpp"
#include "bmp/control/telemetry.hpp"

namespace bmp::control {

struct ControllerConfig {
  /// Scenario-clock sampling period (the host ticks on this grid).
  double sample_interval = 0.5;
  double ewma_alpha = 0.35;  ///< window-ratio smoothing for the detectors
  /// Straggler detector: on the EWMA of each node's per-window delivered
  /// rate over the stream's emission rate, *normalized by the cohort
  /// median* — chunk dynamics deliver a few percent under the fluid plan
  /// for everyone, so an absolute reference would leave half the
  /// population hovering at the threshold. A straggler is a node doing
  /// materially worse than its cohort.
  DetectorConfig straggler{0.8, 0.92, 3};
  DetectorConfig egress{0.85, 0.95, 2};  ///< on per-node goodput ratio
  DetectorConfig edge{0.8, 0.95, 3};     ///< on per-edge goodput ratio
  /// Min seconds between actions on the same node/edge (anti-flap). Note
  /// demotions and reroutes fire on detector *transitions* (one action per
  /// trip), so the cooldown only bounds escalations of an ongoing episode.
  double action_cooldown = 0.75;
  /// Min seconds after a node's last action before it may be restored —
  /// longer than action_cooldown so a demote/restore cycle costs at least
  /// one restore_cooldown, the no-flap bound. Every restore probe that
  /// fails (the node is demoted again before its next probe would fire)
  /// doubles the node's probe interval up to restore_backoff_max x this,
  /// so a *persistent* degradation converges to a quiet overlay instead of
  /// being re-probed — and re-spliced — forever.
  double restore_cooldown = 1.5;
  double restore_backoff_max = 8.0;
  /// Restore probes only fire on every restore_grid-th tick, so staggered
  /// per-node probes coalesce into one overlay patch instead of re-splicing
  /// the stream's pipes at every sampling boundary.
  int restore_grid = 4;
  /// Capacity classes: demotions quantize the telemetry estimate to
  /// multiples of 1/capacity_classes (never below demote_floor).
  int capacity_classes = 8;
  double demote_floor = 0.125;
  /// Fingerprint-distance bound: a directive whose L1 capacity change
  /// exceeds this fraction of the granted total escalates from incremental
  /// patching to a full re-plan through the planner cache — correlated
  /// degradations (a regional brownout) re-plan once, properly, while
  /// isolated demotions stay cheap local patches. Full re-plans resplice
  /// the whole running overlay, so the bound must not be so low that
  /// routine probe traffic triggers them.
  double replan_drift = 0.05;
  /// Judging gates. The *service* ratio (observed wire rate vs planned) is
  /// meaningful from a single transmission — each send's duration is
  /// individually informative — so it is judged from min_service_sends in
  /// windows with at least min_edge_utilization busy fraction (a slow pipe
  /// completing one send per window must still be judged: those are
  /// exactly the browned ones). The *loss* ratio needs a real sample: its
  /// EWMA only updates in windows with at least min_edge_sends
  /// transmissions and carries over otherwise.
  double min_edge_utilization = 0.2;
  int min_service_sends = 1;
  int min_edge_sends = 8;
  /// Nodes are only judged in windows expected to carry at least this many
  /// chunks — below that the per-window ratio is granularity noise.
  double min_expected_chunks = 4.0;
  /// Nodes are only judged once their join is at least this many seconds
  /// old (pipeline fill + rarest-first warm-up grace).
  double warmup_grace = 1.0;
  /// Stale-telemetry guard TTL. A window whose edge counters (sent AND
  /// attempts) stand still is *frozen* — a telemetry blackout, not a
  /// measurement of zero — so the controller skips judging and carries its
  /// estimates instead of manufacturing a false brownout (a frozen window
  /// would otherwise read as sustained ratio 0 and demote the node). After
  /// stale_ttl consecutive frozen windows the carried estimates expire:
  /// the smoothed signals are discarded and re-seed from the first fresh
  /// window, so pre-blackout history cannot mask a degradation that
  /// happened in the dark.
  int stale_ttl = 6;
};

/// Causal audit record: *why* the controller acted. One entry per
/// demotion, restore, edge clamp and re-plan escalation in a Directive —
/// the telemetry window, the smoothed signal the detector judged, the
/// threshold it crossed and the capacity estimate behind the new class.
/// The host links these into the trace and exports them in ControlReport,
/// so every overlay change is explainable without a re-run. Detector and
/// action names are string literals (stable, cheap to copy).
struct Evidence {
  const char* detector = "";  ///< "egress"|"straggler"|"edge"|"restore"|"drift"
  const char* action = "";    ///< "demote"|"restore"|"clamp"|"replan"
  int node = -1;              ///< subject node (demote/restore), else -1
  int from = -1;              ///< subject edge (clamp), else -1
  int to = -1;
  double window_value = 1.0;  ///< last raw per-window sample of the signal
  double ewma = 1.0;          ///< smoothed signal the detector judged
  double threshold = 0.0;     ///< detector bound crossed (enter; exit for restores)
  double estimate = 1.0;      ///< estimated capacity fraction vs nominal (nodes)
                              ///< or clamped goodput rate (edges)
  double factor_before = 1.0; ///< capacity factor (nodes) / planned rate (edges)
  double factor_after = 1.0;  ///< ... after the action
  double drift = 0.0;         ///< directive L1 drift (replan evidence only)
  int trips = 0;              ///< detector episode count at decision time
};

/// What the controller wants done after a tick. The host applies it via
/// engine::Session::adapt (mapping stable ids to plan slots) and
/// live-patches the running stream.
struct Directive {
  bool act = false;          ///< anything to apply at all
  bool force_replan = false; ///< drift bound exceeded: full re-plan
  /// Stable node id -> effective capacity factor in (0, 1]; ids absent
  /// from the map are at factor 1 (nominal). Always the *complete* current
  /// override set, not a delta.
  std::map<int, double> factors;
  /// Stable-id (from, to, max_rate) clamps for degraded edges.
  std::vector<std::tuple<int, int, double>> edge_limits;
  // Telemetry of the decision, for metrics/logging.
  int demotions = 0;
  int restores = 0;
  int reroutes = 0;
  int stragglers = 0;       ///< nodes currently flagged as stragglers
  int degraded_edges = 0;   ///< edges currently flagged as degraded
  int straggler_trips = 0;  ///< fresh healthy->degraded flips this tick
  int edge_trips = 0;       ///< fresh degraded-edge detections this tick
  int stale_nodes = 0;      ///< nodes skipped this tick (frozen telemetry)
  int stale_edges = 0;      ///< edges skipped this tick (frozen telemetry)
  double drift = 0.0;       ///< L1 capacity drift fraction of this directive
  /// One audit record per action above (plus one for a replan escalation);
  /// non-empty whenever `act` is set.
  std::vector<Evidence> evidence;
};

/// Introspection snapshot of one node's controller state (tests and
/// debugging; not needed to operate the loop).
struct NodeHealth {
  bool known = false;
  double factor = 1.0;
  double egress_ewma = 1.0;
  double sustained_ewma = 1.0;
  bool egress_degraded = false;
  bool straggler = false;
  int egress_trips = 0;
  int straggler_trips = 0;
  int straggler_recoveries = 0;
  int stale_windows = 0;  ///< consecutive frozen windows (blackout length)
};

class Controller {
 public:
  explicit Controller(ControllerConfig config = {});

  /// One sampling boundary: ingest cumulative telemetry, update detectors,
  /// decide. Inputs must be ordered (ascending id / (from, to)) and `now`
  /// strictly increasing across calls.
  Directive tick(const TickInputs& inputs);

  [[nodiscard]] const ControllerConfig& config() const { return config_; }

  /// Voids everything measured about `id` while it was unreachable — a
  /// partition heal makes every estimate taken across the cut an artifact
  /// of the cut, not of the node. Detectors, estimators and probe backoff
  /// restart (adjacent edges included); a pending demotion is pardoned on
  /// the next tick through a regular restore action, so the host re-adapts
  /// off an acting directive instead of a silent factor flip. No-op for
  /// nodes the controller has never judged.
  void forgive(int id);

  /// Current capacity factor of a node (1.0 when never demoted).
  [[nodiscard]] double factor(int id) const;
  [[nodiscard]] NodeHealth node_health(int id) const;
  [[nodiscard]] int ticks() const { return ticks_; }

 private:
  struct NodeState {
    Ewma egress;        ///< goodput ratio of the node's egress pipes
    Ewma loss;          ///< egress loss fraction (well-sampled windows only)
    Ewma sustained;     ///< delivered / expected ratio
    double last_egress_raw = 1.0;
    double last_sustained_raw = 1.0;  ///< last cohort-normalized window ratio
    /// Absolute effective-capacity estimate (fraction of nominal): goodput
    /// ratio x planned egress load / nominal — exact under proportional
    /// throttling whether or not the plan saturates the node.
    double last_estimate = 1.0;
    HysteresisDetector straggler;
    HysteresisDetector egress_health;
    /// Fresh healthy->degraded flips this tick: actions are transition-
    /// driven (one demote per trip), which is what stops a persistently
    /// degraded signal from ratcheting the node's class down every tick.
    bool egress_tripped = false;
    bool straggler_tripped = false;
    double factor = 1.0;
    /// Factor the node held when forgive() pardoned it (< 0: no pardon
    /// pending). The next tick lifts the demotion via a restore action.
    double pardon_from = -1.0;
    double last_action = -1e300;
    double last_restore = -1e300;
    double probe_interval = 0.0;  ///< 0 = use restore_cooldown
    double prev_delivered = 0.0;
    /// Consecutive windows in which every adjacent edge was frozen and no
    /// delivery moved — the stale-telemetry guard's counter. While > 0 the
    /// node is not judged; past stale_ttl its estimates expire.
    int stale_windows = 0;
  };
  struct EdgeState {
    Ewma goodput;
    Ewma loss;  ///< loss fraction (well-sampled windows only)
    double last_raw = 1.0;  ///< last raw per-window goodput ratio
    HysteresisDetector health;
    bool tripped = false;
    double last_action = -1e300;
    double prev_busy = 0.0;
    double prev_completed = 0.0;
    std::uint64_t prev_sent = 0;
    std::uint64_t prev_lost = 0;
    std::uint64_t prev_attempts = 0;
    int stale_windows = 0;  ///< consecutive frozen windows on this pipe
  };

  [[nodiscard]] double quantize(double value) const;

  ControllerConfig config_;
  std::map<int, NodeState> nodes_;
  std::map<std::pair<int, int>, EdgeState> edges_;
  int ticks_ = 0;
};

}  // namespace bmp::control
