#include "bmp/control/controller.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

namespace bmp::control {

Controller::Controller(ControllerConfig config) : config_(config) {
  if (!(config.sample_interval > 0.0) || !std::isfinite(config.sample_interval)) {
    throw std::invalid_argument("Controller: sample_interval must be > 0");
  }
  if (!(config.ewma_alpha > 0.0) || config.ewma_alpha > 1.0) {
    throw std::invalid_argument("Controller: ewma_alpha in (0, 1]");
  }
  if (config.capacity_classes < 1) {
    throw std::invalid_argument("Controller: capacity_classes must be >= 1");
  }
  if (!(config.demote_floor > 0.0) || config.demote_floor > 1.0) {
    throw std::invalid_argument("Controller: demote_floor in (0, 1]");
  }
  if (config.action_cooldown < 0.0 || config.restore_cooldown < 0.0) {
    throw std::invalid_argument("Controller: cooldowns must be >= 0");
  }
  if (!(config.replan_drift > 0.0)) {
    throw std::invalid_argument("Controller: replan_drift must be > 0");
  }
  if (config.restore_grid < 1) {
    throw std::invalid_argument("Controller: restore_grid must be >= 1");
  }
  if (config.stale_ttl < 1) {
    throw std::invalid_argument("Controller: stale_ttl must be >= 1");
  }
  // Detector configs validate themselves on first construction.
  (void)HysteresisDetector(config.straggler);
  (void)HysteresisDetector(config.egress);
  (void)HysteresisDetector(config.edge);
}

double Controller::quantize(double value) const {
  const double classes = static_cast<double>(config_.capacity_classes);
  double q = std::floor(value * classes + 1e-9) / classes;
  return std::clamp(q, config_.demote_floor, 1.0);
}

void Controller::forgive(int id) {
  const auto it = nodes_.find(id);
  if (it != nodes_.end()) {
    NodeState& node = it->second;
    if (node.factor < 1.0 && node.pardon_from < 0.0) {
      node.pardon_from = node.factor;
    }
    node.egress_health = HysteresisDetector(config_.egress);
    node.straggler = HysteresisDetector(config_.straggler);
    node.egress = Ewma();
    node.loss = Ewma();
    node.sustained = Ewma();
    node.stale_windows = 0;
    node.probe_interval = 0.0;
    node.egress_tripped = false;
    node.straggler_tripped = false;
    // prev_delivered stays: the raw counter is still monotone, wiping it
    // would turn the whole stream history into one giant first delta.
  }
  for (auto& [key, edge] : edges_) {
    if (key.first != id && key.second != id) continue;
    edge.health = HysteresisDetector(config_.edge);
    edge.goodput = Ewma();
    edge.loss = Ewma();
    edge.stale_windows = 0;
    edge.tripped = false;
    edge.last_action = -1e300;
    // prev_* counters stay, same reason as above.
  }
}

double Controller::factor(int id) const {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? 1.0 : it->second.factor;
}

NodeHealth Controller::node_health(int id) const {
  NodeHealth health;
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) return health;
  const NodeState& node = it->second;
  health.known = true;
  health.factor = node.factor;
  health.egress_ewma = node.egress.value();
  health.sustained_ewma = node.sustained.value();
  health.egress_degraded = node.egress_health.degraded();
  health.straggler = node.straggler.degraded();
  health.egress_trips = node.egress_health.trips();
  health.straggler_trips = node.straggler.trips();
  health.straggler_recoveries = node.straggler.recoveries();
  health.stale_windows = node.stale_windows;
  return health;
}

Directive Controller::tick(const TickInputs& inputs) {
  ++ticks_;
  Directive out;

  // ---- ingest per-edge telemetry; aggregate goodput per sender ----------
  // Node-level egress health aggregates the raw deltas across *all* of a
  // sender's pipes before judging: a browned-out node whose upload is
  // spread over many thin pipes still accumulates enough transmissions per
  // window at the node level, where each pipe alone would be unjudgeable.
  struct SenderAcc {
    double completed = 0.0;
    double busy = 0.0;
    double busy_rate = 0.0;  ///< sum of busy_i x rate_i (expected data)
    double planned = 0.0;    ///< sum of active pipe rates (egress load)
    std::uint64_t sent = 0;
    std::uint64_t lost = 0;
  };
  std::map<int, SenderAcc> by_sender;
  // Stale-telemetry detection is node-centric: the collector substitutes a
  // whole node's sample set at once (its node counters plus every adjacent
  // edge), so an edge only counts as stale when one of its *endpoints* is a
  // stale node. A merely glacial pipe — one transmission crawling across a
  // whole window leaves both sent and attempts at zero — still has a live
  // endpoint (deliveries or sibling pipes moving) and must keep weighing on
  // its sender's egress ratio, or a deep brownout would read as health.
  struct EdgeWork {
    const EdgeSample* sample = nullptr;
    EdgeState* edge = nullptr;
    double busy_delta = 0.0;
    double completed_delta = 0.0;
    std::uint64_t sent_delta = 0;
    std::uint64_t lost_delta = 0;
  };
  std::vector<EdgeWork> edge_work;
  edge_work.reserve(inputs.edges.size());
  std::map<int, int> adjacent_edges;
  std::map<int, int> frozen_edges;
  for (const EdgeSample& sample : inputs.edges) {
    const auto key = std::make_pair(sample.from, sample.to);
    auto edge_it = edges_.find(key);
    if (edge_it == edges_.end()) {
      EdgeState fresh;
      fresh.health = HysteresisDetector(config_.edge);
      edge_it = edges_.emplace(key, std::move(fresh)).first;
    }
    EdgeState& edge = edge_it->second;
    edge.tripped = false;
    double busy_delta = sample.busy_time - edge.prev_busy;
    double completed_delta = sample.completed - edge.prev_completed;
    std::uint64_t sent_delta = sample.sent - edge.prev_sent;
    std::uint64_t lost_delta = sample.lost - edge.prev_lost;
    std::uint64_t attempts_delta = sample.attempts - edge.prev_attempts;
    if (busy_delta < 0.0 || completed_delta < 0.0 ||
        sample.sent < edge.prev_sent || sample.lost < edge.prev_lost ||
        sample.attempts < edge.prev_attempts) {
      // The pipe was respliced by a re-plan; its counters restarted.
      busy_delta = sample.busy_time;
      completed_delta = sample.completed;
      sent_delta = sample.sent;
      lost_delta = sample.lost;
      attempts_delta = sample.attempts;
    }
    edge.prev_busy = sample.busy_time;
    edge.prev_completed = sample.completed;
    edge.prev_sent = sample.sent;
    edge.prev_lost = sample.lost;
    edge.prev_attempts = sample.attempts;
    // Freeze signature: a live pipe's counters move nearly every window
    // (even an idle pipe is offered work, bumping attempts); sent AND
    // attempts standing still together is this edge's staleness vote for
    // its endpoints. The vote alone proves nothing — see the census below.
    const bool frozen = sent_delta == 0 && attempts_delta == 0;
    ++adjacent_edges[sample.from];
    ++adjacent_edges[sample.to];
    if (frozen) {
      ++frozen_edges[sample.from];
      ++frozen_edges[sample.to];
    }
    EdgeWork work;
    work.sample = &sample;
    work.edge = &edge;
    work.busy_delta = busy_delta;
    work.completed_delta = completed_delta;
    work.sent_delta = sent_delta;
    work.lost_delta = lost_delta;
    edge_work.push_back(work);
  }

  // ---- stale-node census ------------------------------------------------
  // A node is dark when nothing about it moved this window: no delivery
  // progress and every adjacent pipe frozen. "No data" is not "data says
  // zero" — dark windows update no estimator and trip no detector, so a
  // telemetry blackout cannot manufacture a brownout.
  std::map<int, double> delivered_deltas;
  std::set<int> dark;
  for (const NodeSample& sample : inputs.nodes) {
    auto node_it = nodes_.find(sample.id);
    if (node_it == nodes_.end()) {
      NodeState fresh;
      fresh.straggler = HysteresisDetector(config_.straggler);
      fresh.egress_health = HysteresisDetector(config_.egress);
      node_it = nodes_.emplace(sample.id, std::move(fresh)).first;
    }
    NodeState& node = node_it->second;
    double delivered_delta = sample.delivered - node.prev_delivered;
    if (delivered_delta < 0.0) delivered_delta = sample.delivered;
    node.prev_delivered = sample.delivered;
    delivered_deltas.emplace(sample.id, delivered_delta);
    const auto adj_it = adjacent_edges.find(sample.id);
    if (adj_it != adjacent_edges.end() && delivered_delta <= 0.0 &&
        frozen_edges[sample.id] == adj_it->second) {
      dark.insert(sample.id);
    }
  }

  for (const EdgeWork& work : edge_work) {
    const EdgeSample& sample = *work.sample;
    EdgeState& edge = *work.edge;
    if (dark.count(sample.from) != 0 || dark.count(sample.to) != 0) {
      ++edge.stale_windows;
      ++out.stale_edges;
      if (edge.health.degraded()) ++out.degraded_edges;
      continue;
    }
    if (edge.stale_windows >= config_.stale_ttl) {
      // The carried estimates outlived their TTL in the dark; re-seed from
      // this first fresh window rather than trusting pre-blackout history.
      edge.goodput = Ewma();
      edge.loss = Ewma();
    }
    edge.stale_windows = 0;
    if (sample.rate > 0.0 && inputs.window > 0.0) {
      SenderAcc& acc = by_sender[sample.from];
      acc.completed += work.completed_delta;
      acc.busy += work.busy_delta;
      acc.busy_rate += work.busy_delta * sample.rate;
      acc.planned += sample.rate;
      acc.sent += work.sent_delta;
      acc.lost += work.lost_delta;
      // The per-edge detector (reroute trigger): service is judged from a
      // couple of sends (each transmission's duration is individually
      // informative); the loss EWMA only moves on well-sampled windows.
      if (work.sent_delta >=
          static_cast<std::uint64_t>(config_.min_edge_sends)) {
        edge.loss.observe(static_cast<double>(work.lost_delta) /
                              static_cast<double>(work.sent_delta),
                          config_.ewma_alpha);
      }
      if (work.sent_delta >=
              static_cast<std::uint64_t>(config_.min_service_sends) &&
          work.busy_delta >= config_.min_edge_utilization * inputs.window) {
        const double service =
            (work.completed_delta / work.busy_delta) / sample.rate;
        const double goodput = service * (1.0 - edge.loss.value(0.0));
        edge.last_raw = goodput;
        edge.goodput.observe(goodput, config_.ewma_alpha);
        if (edge.health.update(edge.goodput.value()) &&
            edge.health.degraded()) {
          edge.tripped = true;
          ++out.edge_trips;
        }
      }
    }
    if (edge.health.degraded()) ++out.degraded_edges;
  }

  // ---- ingest per-node telemetry ----------------------------------------
  std::vector<std::pair<int, double>> judged;  // (id, raw window ratio)
  for (const NodeSample& sample : inputs.nodes) {
    NodeState& node = nodes_.find(sample.id)->second;
    node.egress_tripped = false;
    node.straggler_tripped = false;
    const double delivered_delta = delivered_deltas[sample.id];
    if (dark.count(sample.id) != 0) {
      ++node.stale_windows;
      ++out.stale_nodes;
      continue;  // the stragglers census below still sees the node
    }
    if (node.stale_windows >= config_.stale_ttl) {
      // Carried estimates expired in the dark: re-seed from fresh data.
      node.egress = Ewma();
      node.loss = Ewma();
      node.sustained = Ewma();
    }
    node.stale_windows = 0;
    const auto acc_it = by_sender.find(sample.id);
    if (acc_it != by_sender.end() && acc_it->second.busy_rate > 0.0) {
      const SenderAcc& acc = acc_it->second;
      if (acc.sent >= static_cast<std::uint64_t>(config_.min_edge_sends)) {
        node.loss.observe(static_cast<double>(acc.lost) /
                              static_cast<double>(acc.sent),
                          config_.ewma_alpha);
      }
      if (acc.sent >=
              static_cast<std::uint64_t>(config_.min_service_sends) &&
          acc.busy >= config_.min_edge_utilization * inputs.window) {
        const double service = acc.completed / acc.busy_rate;
        node.last_egress_raw = service * (1.0 - node.loss.value(0.0));
        node.egress.observe(node.last_egress_raw, config_.ewma_alpha);
        if (sample.nominal > 0.0) {
          // Under proportional throttling the observed ratio is
          // effective / planned_load, so ratio x planned_load / nominal
          // recovers the *absolute* capacity fraction — exact whether or
          // not the current plan saturates the node, which is what lets
          // one demotion land on the right class instead of iterating.
          node.last_estimate = std::min(
              1.0, node.last_egress_raw * acc.planned / sample.nominal);
        }
        if (node.egress_health.update(node.egress.value()) &&
            node.egress_health.degraded()) {
          node.egress_tripped = true;
        }
      }
    }
    // Judge the sustained ratio only in windows wide enough that chunk
    // granularity is not the signal; the detector update itself waits for
    // the cohort median (second pass below).
    if (sample.judgeable && inputs.window > 0.0 &&
        inputs.expected_delta >=
            config_.min_expected_chunks * inputs.chunk_size) {
      judged.emplace_back(sample.id, delivered_delta / inputs.expected_delta);
    }
  }
  // Cohort-relative straggling: normalize each node's window ratio by the
  // median ratio, so the chunk engine's generic few-percent slack under
  // the fluid plan cancels out and only *relative* victims trip.
  if (!judged.empty()) {
    std::vector<double> ratios;
    ratios.reserve(judged.size());
    for (const auto& [id, ratio] : judged) ratios.push_back(ratio);
    std::nth_element(ratios.begin(), ratios.begin() + ratios.size() / 2,
                     ratios.end());
    const double median = std::max(ratios[ratios.size() / 2], 1e-9);
    for (const auto& [id, ratio] : judged) {
      NodeState& node = nodes_.find(id)->second;
      // Catch-up bursts are capped: being twice ahead this window must
      // not bank credit against falling behind later.
      const double normalized = std::min(ratio / median, 2.0);
      node.last_sustained_raw = normalized;
      node.sustained.observe(normalized, config_.ewma_alpha);
      if (node.straggler.update(node.sustained.value()) &&
          node.straggler.degraded()) {
        node.straggler_tripped = true;
        ++out.straggler_trips;
      }
    }
  }
  for (const NodeSample& sample : inputs.nodes) {
    if (nodes_.find(sample.id)->second.straggler.degraded()) ++out.stragglers;
  }

  // ---- decide: demotions and restores (ascending node id) ---------------
  const double step = 1.0 / static_cast<double>(config_.capacity_classes);
  for (const NodeSample& sample : inputs.nodes) {
    NodeState& node = nodes_.find(sample.id)->second;
    if (node.pardon_from >= 0.0) {
      // A forgive() pardon outranks everything else this window: lift the
      // demotion in one step (the probes' doubling climb is for *suspected*
      // recoveries; a heal is a certainty the platform told us about).
      Evidence ev;
      ev.detector = "heal";
      ev.action = "restore";
      ev.node = sample.id;
      ev.threshold = config_.egress.exit;
      ev.estimate = node.last_estimate;
      ev.factor_before = node.pardon_from;
      ev.factor_after = 1.0;
      out.evidence.push_back(ev);
      node.factor = 1.0;
      node.pardon_from = -1.0;
      node.last_action = inputs.now;
      node.last_restore = inputs.now;
      ++out.restores;
      continue;
    }
    if (node.stale_windows > 0) {
      // No actions from frozen windows — neither demotions (no evidence of
      // degradation) nor restore probes (no telemetry to judge the probe).
      // The current override set is carried unchanged.
      if (node.factor < 1.0) out.factors.emplace(sample.id, node.factor);
      continue;
    }
    // Actions fire on detector *transitions* — one demote per trip — plus
    // an escalation path while degraded when the latest reading sits well
    // below the current class (a deepening brownout, or the first demote
    // under-shooting on an unsaturated sender).
    double desired = node.factor;
    bool egress_cause = false;  // which detector drove the demotion
    if (node.egress_health.degraded()) {
      const double target = quantize(node.last_estimate);
      if (node.egress_tripped || target <= node.factor - 1.5 * step) {
        if (target < desired) egress_cause = true;
        desired = std::min(desired, target);
      }
    }
    if (node.straggler_tripped) {
      // A straggler can only relay what it receives — but its upload is
      // the symptom, not the cause (the browned-out *senders* are caught
      // by the egress path). Step it down one class, gently: mass-demoting
      // victims would shrink the platform and cascade.
      const double target = quantize(node.factor - step);
      if (target < desired) egress_cause = false;
      desired = std::min(desired, target);
    }
    const double probe_interval = node.probe_interval > 0.0
                                      ? node.probe_interval
                                      : config_.restore_cooldown;
    if (desired < node.factor - 1e-12) {
      if (inputs.now - node.last_action >= config_.action_cooldown) {
        Evidence ev;
        ev.action = "demote";
        ev.node = sample.id;
        if (egress_cause) {
          ev.detector = "egress";
          ev.window_value = node.last_egress_raw;
          ev.ewma = node.egress.value();
          ev.threshold = config_.egress.enter;
          ev.trips = node.egress_health.trips();
        } else {
          ev.detector = "straggler";
          ev.window_value = node.last_sustained_raw;
          ev.ewma = node.sustained.value();
          ev.threshold = config_.straggler.enter;
          ev.trips = node.straggler.trips();
        }
        ev.estimate = node.last_estimate;
        ev.factor_before = node.factor;
        ev.factor_after = desired;
        out.evidence.push_back(ev);
        node.factor = desired;
        node.last_action = inputs.now;
        // A demotion on the heels of a restore is a failed probe: back the
        // probe off exponentially so a persistent degradation goes quiet
        // instead of re-splicing the overlay forever.
        if (inputs.now - node.last_restore <= 2.0 * probe_interval) {
          node.probe_interval =
              std::min(2.0 * probe_interval,
                       config_.restore_backoff_max * config_.restore_cooldown);
        } else {
          node.probe_interval = 0.0;  // fresh degradation: fresh probes
        }
        ++out.demotions;
      }
    } else if (node.factor < 1.0 && !node.egress_health.degraded() &&
               !node.straggler.degraded() &&
               ticks_ % config_.restore_grid == 0 &&
               inputs.now - node.last_action >= probe_interval) {
      // Restores are *probes*: a demoted node's pipes run inside its cap,
      // so telemetry cannot show headroom — step the class up (doubling,
      // never past nominal) and let the detectors demote again if the
      // degradation persists. The probe interval bounds the flap rate.
      const double up = quantize(std::min(1.0, node.factor * 2.0));
      if (up > node.factor + 1e-12) {
        Evidence ev;
        ev.detector = "restore";
        ev.action = "restore";
        ev.node = sample.id;
        ev.window_value = node.last_egress_raw;
        ev.ewma = node.egress.value();
        ev.threshold = config_.egress.exit;
        ev.estimate = node.last_estimate;
        ev.factor_before = node.factor;
        ev.factor_after = up;
        ev.trips = node.egress_health.trips();
        out.evidence.push_back(ev);
        node.factor = up;
        node.last_action = inputs.now;
        node.last_restore = inputs.now;
        ++out.restores;
      }
    }
    if (node.factor < 1.0) out.factors.emplace(sample.id, node.factor);
  }

  // ---- decide: reroutes around degraded edges ---------------------------
  for (const EdgeSample& sample : inputs.edges) {
    EdgeState& edge =
        edges_.find(std::make_pair(sample.from, sample.to))->second;
    if (edge.stale_windows > 0) continue;  // no clamps from frozen windows
    if (!edge.health.degraded()) continue;
    // A demoted sender is already being routed around as a whole.
    if (factor(sample.from) < 1.0) continue;
    if (inputs.now - edge.last_action < config_.action_cooldown) continue;
    const double limit =
        sample.rate * std::clamp(edge.goodput.value(), 0.02, 1.0);
    // Clamp on the trip; afterwards only when it still buys a meaningful
    // cut (a lossy edge ratchets toward zero, i.e. gets routed around).
    if (!edge.tripped && limit >= sample.rate * 0.9) continue;
    if (limit >= sample.rate * (1.0 - 1e-9)) continue;
    edge.last_action = inputs.now;
    out.edge_limits.emplace_back(sample.from, sample.to, limit);
    Evidence ev;
    ev.detector = "edge";
    ev.action = "clamp";
    ev.from = sample.from;
    ev.to = sample.to;
    ev.window_value = edge.last_raw;
    ev.ewma = edge.goodput.value();
    ev.threshold = config_.edge.enter;
    ev.estimate = limit;
    ev.factor_before = sample.rate;
    ev.factor_after = limit;
    ev.trips = edge.health.trips();
    out.evidence.push_back(ev);
    ++out.reroutes;
  }

  // ---- escalate: drift past the fingerprint-distance bound --------------
  out.act = out.demotions + out.restores + out.reroutes > 0;
  if (out.act) {
    double granted_total = 0.0;
    double delta = 0.0;
    for (const NodeSample& sample : inputs.nodes) {
      granted_total += sample.granted;
      delta += std::abs(sample.nominal * factor(sample.id) - sample.granted);
    }
    out.drift = granted_total > 0.0 ? delta / granted_total : 0.0;
    out.force_replan = out.drift > config_.replan_drift;
    if (out.force_replan) {
      Evidence ev;
      ev.detector = "drift";
      ev.action = "replan";
      ev.drift = out.drift;
      ev.threshold = config_.replan_drift;
      out.evidence.push_back(ev);
    }
  }
  return out;
}

}  // namespace bmp::control
