#include "bmp/flow/maxflow.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace bmp::flow {

MaxFlowGraph::MaxFlowGraph(int num_nodes)
    : head_(static_cast<std::size_t>(num_nodes)) {
  if (num_nodes <= 0) throw std::invalid_argument("MaxFlowGraph: empty node set");
}

int MaxFlowGraph::add_edge(int from, int to, double capacity) {
  if (from < 0 || from >= num_nodes() || to < 0 || to >= num_nodes()) {
    throw std::out_of_range("MaxFlowGraph::add_edge: node out of range");
  }
  if (capacity < 0.0) throw std::invalid_argument("MaxFlowGraph: negative capacity");
  const int id = static_cast<int>(edges_.size());
  max_capacity_ = std::max(max_capacity_, capacity);
  edges_.push_back({to, capacity, capacity});
  edges_.push_back({from, 0.0, 0.0});
  head_[static_cast<std::size_t>(from)].push_back(id);
  head_[static_cast<std::size_t>(to)].push_back(id + 1);
  return id;
}

bool MaxFlowGraph::bfs_levels(int source, int sink) {
  level_.assign(head_.size(), -1);
  std::queue<int> frontier;
  level_[static_cast<std::size_t>(source)] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const int v = frontier.front();
    frontier.pop();
    for (const int id : head_[static_cast<std::size_t>(v)]) {
      const Edge& e = edges_[static_cast<std::size_t>(id)];
      if (e.cap > eps() && level_[static_cast<std::size_t>(e.to)] < 0) {
        level_[static_cast<std::size_t>(e.to)] = level_[static_cast<std::size_t>(v)] + 1;
        frontier.push(e.to);
      }
    }
  }
  return level_[static_cast<std::size_t>(sink)] >= 0;
}

double MaxFlowGraph::dfs_push(int vertex, int sink, double limit) {
  if (vertex == sink) return limit;
  auto& cursor = iter_[static_cast<std::size_t>(vertex)];
  const auto& out = head_[static_cast<std::size_t>(vertex)];
  while (cursor < out.size()) {
    const int id = out[cursor];
    Edge& e = edges_[static_cast<std::size_t>(id)];
    if (e.cap > eps() && level_[static_cast<std::size_t>(e.to)] ==
                            level_[static_cast<std::size_t>(vertex)] + 1) {
      const double pushed = dfs_push(e.to, sink, std::min(limit, e.cap));
      if (pushed > eps()) {
        e.cap -= pushed;
        edges_[static_cast<std::size_t>(id ^ 1)].cap += pushed;
        return pushed;
      }
    }
    ++cursor;
  }
  return 0.0;
}

double MaxFlowGraph::max_flow(int source, int sink) {
  if (source == sink) return std::numeric_limits<double>::infinity();
  double total = 0.0;
  while (bfs_levels(source, sink)) {
    iter_.assign(head_.size(), 0);
    for (;;) {
      const double pushed =
          dfs_push(source, sink, std::numeric_limits<double>::infinity());
      if (pushed <= eps()) break;
      total += pushed;
    }
  }
  return total;
}

void MaxFlowGraph::reset() {
  for (Edge& e : edges_) e.cap = e.original;
}

double MaxFlowGraph::flow_on(int edge_id) const {
  const Edge& e = edges_.at(static_cast<std::size_t>(edge_id));
  return e.original - e.cap;
}

namespace {
MaxFlowGraph graph_of(const BroadcastScheme& scheme) {
  MaxFlowGraph graph(scheme.num_nodes());
  for (int i = 0; i < scheme.num_nodes(); ++i) {
    for (const auto& [to, r] : scheme.out_edges(i)) graph.add_edge(i, to, r);
  }
  return graph;
}
}  // namespace

double scheme_max_flow_to(const BroadcastScheme& scheme, int sink) {
  MaxFlowGraph graph = graph_of(scheme);
  return graph.max_flow(0, sink);
}

double scheme_throughput(const BroadcastScheme& scheme) {
  MaxFlowGraph graph = graph_of(scheme);
  double best = std::numeric_limits<double>::infinity();
  for (int sink = 1; sink < scheme.num_nodes(); ++sink) {
    graph.reset();
    best = std::min(best, graph.max_flow(0, sink));
    if (best <= 0.0) return 0.0;
  }
  return best;
}

}  // namespace bmp::flow
