#include "bmp/flow/maxflow.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace bmp::flow {

MaxFlowGraph::MaxFlowGraph(int num_nodes) {
  if (num_nodes <= 0) throw std::invalid_argument("MaxFlowGraph: empty node set");
  assign(num_nodes);
}

void MaxFlowGraph::assign(int num_nodes) {
  if (num_nodes <= 0) throw std::invalid_argument("MaxFlowGraph: empty node set");
  num_nodes_ = num_nodes;
  to_.clear();
  cap_.clear();
  original_.clear();
  finalized_ = false;
  max_capacity_ = 0.0;
  bfs_rounds_ = 0;
}

int MaxFlowGraph::add_edge(int from, int to, double capacity) {
  if (from < 0 || from >= num_nodes_ || to < 0 || to >= num_nodes_) {
    throw std::out_of_range("MaxFlowGraph::add_edge: node out of range");
  }
  if (capacity < 0.0) throw std::invalid_argument("MaxFlowGraph: negative capacity");
  const int id = static_cast<int>(to_.size());
  max_capacity_ = std::max(max_capacity_, capacity);
  // Forward edge stores the head; the reverse edge stores the tail, so
  // from(id) is recoverable as to_[id ^ 1] when building the CSR index.
  to_.push_back(to);
  cap_.push_back(capacity);
  original_.push_back(capacity);
  to_.push_back(from);
  cap_.push_back(0.0);
  original_.push_back(0.0);
  finalized_ = false;
  return id;
}

void MaxFlowGraph::set_capacity(int edge_id, double capacity) {
  if (edge_id < 0 || edge_id >= static_cast<int>(to_.size()) || (edge_id & 1) != 0) {
    throw std::out_of_range("MaxFlowGraph::set_capacity: not a forward edge id");
  }
  if (capacity < 0.0) throw std::invalid_argument("MaxFlowGraph: negative capacity");
  // max_capacity_ only ratchets up: eps() must never shrink below the scale
  // of flow already pushed in earlier solves of this probe sequence.
  max_capacity_ = std::max(max_capacity_, capacity);
  const auto id = static_cast<std::size_t>(edge_id);
  original_[id] = capacity;
  cap_[id] = capacity;
  original_[id ^ 1] = 0.0;
  cap_[id ^ 1] = 0.0;
}

void MaxFlowGraph::finalize() {
  if (finalized_) return;
  const auto nodes = static_cast<std::size_t>(num_nodes_);
  csr_offset_.assign(nodes + 1, 0);
  for (std::size_t id = 0; id < to_.size(); ++id) {
    // Edge id leaves the node its partner points at.
    ++csr_offset_[static_cast<std::size_t>(to_[id ^ 1]) + 1];
  }
  for (std::size_t v = 0; v < nodes; ++v) csr_offset_[v + 1] += csr_offset_[v];
  csr_edges_.resize(to_.size());
  std::vector<int> cursor(csr_offset_.begin(), csr_offset_.end() - 1);
  for (std::size_t id = 0; id < to_.size(); ++id) {
    csr_edges_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(to_[id ^ 1])]++)] = static_cast<int>(id);
  }
  level_.resize(nodes);
  iter_.resize(nodes);
  queue_.resize(nodes);
  finalized_ = true;
}

bool MaxFlowGraph::bfs_levels(int source, int sink) {
  ++bfs_rounds_;
  std::fill(level_.begin(), level_.end(), -1);
  int head = 0;
  int tail = 0;
  level_[static_cast<std::size_t>(source)] = 0;
  queue_[tail++] = source;
  const double cutoff = eps();
  while (head < tail) {
    const int v = queue_[head++];
    const int begin = csr_offset_[static_cast<std::size_t>(v)];
    const int end = csr_offset_[static_cast<std::size_t>(v) + 1];
    for (int k = begin; k < end; ++k) {
      const int id = csr_edges_[static_cast<std::size_t>(k)];
      const int to = to_[static_cast<std::size_t>(id)];
      if (cap_[static_cast<std::size_t>(id)] > cutoff &&
          level_[static_cast<std::size_t>(to)] < 0) {
        level_[static_cast<std::size_t>(to)] =
            level_[static_cast<std::size_t>(v)] + 1;
        queue_[tail++] = to;
      }
    }
  }
  return level_[static_cast<std::size_t>(sink)] >= 0;
}

double MaxFlowGraph::dfs_push(int vertex, int sink, double limit) {
  if (vertex == sink) return limit;
  int& cursor = iter_[static_cast<std::size_t>(vertex)];
  const int end = csr_offset_[static_cast<std::size_t>(vertex) + 1];
  const double cutoff = eps();
  while (cursor < end) {
    const int id = csr_edges_[static_cast<std::size_t>(cursor)];
    const int to = to_[static_cast<std::size_t>(id)];
    if (cap_[static_cast<std::size_t>(id)] > cutoff &&
        level_[static_cast<std::size_t>(to)] ==
            level_[static_cast<std::size_t>(vertex)] + 1) {
      const double pushed = dfs_push(
          to, sink, std::min(limit, cap_[static_cast<std::size_t>(id)]));
      if (pushed > cutoff) {
        cap_[static_cast<std::size_t>(id)] -= pushed;
        cap_[static_cast<std::size_t>(id ^ 1)] += pushed;
        return pushed;
      }
    }
    ++cursor;
  }
  return 0.0;
}

double MaxFlowGraph::max_flow(int source, int sink) {
  return max_flow(source, sink, std::numeric_limits<double>::infinity());
}

double MaxFlowGraph::max_flow(int source, int sink, double limit) {
  if (source < 0 || source >= num_nodes_ || sink < 0 || sink >= num_nodes_) {
    throw std::out_of_range("MaxFlowGraph::max_flow: node out of range");
  }
  if (source == sink) return limit;
  finalize();
  double total = 0.0;
  while (total < limit - eps() && bfs_levels(source, sink)) {
    std::copy(csr_offset_.begin(), csr_offset_.end() - 1, iter_.begin());
    for (;;) {
      const double room = limit - total;
      if (room <= eps()) break;
      const double pushed = dfs_push(source, sink, room);
      if (pushed <= eps()) break;
      total += pushed;
    }
  }
  // An early exit lands within eps() of the limit; snap to it so a
  // min-over-sinks sweep reads "limit reached, no update" instead of
  // accumulating one eps of downward drift per saturating sink.
  return total >= limit - eps() ? limit : total;
}

void MaxFlowGraph::reset() { cap_ = original_; }

double MaxFlowGraph::flow_on(int edge_id) const {
  const auto id = static_cast<std::size_t>(edge_id);
  return original_.at(id) - cap_.at(id);
}

double scheme_max_flow_to(const BroadcastScheme& scheme, int sink) {
  MaxFlowGraph graph(scheme.num_nodes());
  for (int i = 0; i < scheme.num_nodes(); ++i) {
    for (const auto& [to, r] : scheme.out_edges(i)) graph.add_edge(i, to, r);
  }
  return graph.max_flow(0, sink);
}

double scheme_throughput_oracle(const BroadcastScheme& scheme) {
  MaxFlowGraph graph(scheme.num_nodes());
  for (int i = 0; i < scheme.num_nodes(); ++i) {
    for (const auto& [to, r] : scheme.out_edges(i)) graph.add_edge(i, to, r);
  }
  double best = std::numeric_limits<double>::infinity();
  for (int sink = 1; sink < scheme.num_nodes(); ++sink) {
    graph.reset();
    best = std::min(best, graph.max_flow(0, sink));
    if (best <= 0.0) return 0.0;
  }
  return best;
}

}  // namespace bmp::flow
