#include "bmp/flow/verify.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <thread>

#include "bmp/obs/profiler.hpp"
#include "bmp/obs/trace.hpp"
#include "bmp/util/thread_pool.hpp"

namespace bmp::flow {

namespace {

/// The process-shared pool behind VerifyOptions::auto_pool: sized to the
/// hardware, constructed on first use, shared by every verifier that did
/// not bring its own pool. Safe to share across verifiers on different
/// threads (planner workers included): sweep tasks are pure — they never
/// re-enter a verifier or submit to any pool — so no wait cycle can form.
util::ThreadPool* shared_verify_pool() {
  static util::ThreadPool pool;  // ThreadPool(0): hardware_concurrency
  return &pool;
}

}  // namespace

const char* to_string(VerifyTier tier) {
  switch (tier) {
    case VerifyTier::kAcyclicSweep: return "acyclic-sweep";
    case VerifyTier::kWarmMaxFlow: return "warm-maxflow";
    case VerifyTier::kOracle: return "oracle";
  }
  return "?";
}

Verifier::Verifier(VerifyOptions options) : options_(options) {}

bool Verifier::acyclic_sweep(const BroadcastScheme& scheme) {
  const int num_nodes = scheme.num_nodes();
  const auto nodes = static_cast<std::size_t>(num_nodes);
  indegree_.assign(nodes, 0);
  inflow_.assign(nodes, 0.0);
  for (int i = 0; i < num_nodes; ++i) {
    for (const auto& [to, rate] : scheme.out_edges(i)) {
      ++indegree_[static_cast<std::size_t>(to)];
      inflow_[static_cast<std::size_t>(to)] += rate;
    }
  }
  stack_.clear();
  for (int v = 0; v < num_nodes; ++v) {
    if (indegree_[static_cast<std::size_t>(v)] == 0) stack_.push_back(v);
  }
  int processed = 0;
  while (!stack_.empty()) {
    const int v = stack_.back();
    stack_.pop_back();
    ++processed;
    for (const auto& [to, rate] : scheme.out_edges(v)) {
      (void)rate;
      if (--indegree_[static_cast<std::size_t>(to)] == 0) stack_.push_back(to);
    }
  }
  return processed == num_nodes;
}

double limit_bounded_sink_sweep(MaxFlowGraph& graph, int source,
                                std::vector<std::pair<double, int>>& sinks,
                                int* solves) {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& [bound, sink] : sinks) {
    (void)sink;
    best = std::min(best, bound);
  }
  if (best <= 0.0) return 0.0;
  // Ascending-bound order: low-bound sinks are the likeliest to hold the
  // minimum, so visiting them first tightens the limit for the rest of the
  // sweep. Pair order ties break on sink id, keeping it deterministic.
  std::sort(sinks.begin(), sinks.end());
  for (const auto& [bound, sink] : sinks) {
    (void)bound;
    graph.reset();
    best = std::min(best, graph.max_flow(source, sink, best));
    if (solves != nullptr) ++*solves;
    if (best <= 0.0) return 0.0;
  }
  return best;
}

VerifyResult Verifier::warm_maxflow(const BroadcastScheme& scheme) {
  const int num_nodes = scheme.num_nodes();
  VerifyResult result;
  result.tier = VerifyTier::kWarmMaxFlow;

  // Min-inflow seed: maxflow(0 -> k) <= inflow(k) in any digraph, so the
  // minimum inflow upper-bounds the answer and is a valid limit for every
  // solve in the sweep.
  double bound = std::numeric_limits<double>::infinity();
  for (int v = 1; v < num_nodes; ++v) {
    bound = std::min(bound, inflow_[static_cast<std::size_t>(v)]);
  }
  if (bound <= 0.0) {
    result.throughput = 0.0;
    return result;
  }

  graph_.assign(num_nodes);
  for (int i = 0; i < num_nodes; ++i) {
    for (const auto& [to, rate] : scheme.out_edges(i)) {
      graph_.add_edge(i, to, rate);
    }
  }

  sink_order_.clear();
  sink_order_.reserve(static_cast<std::size_t>(num_nodes - 1));
  for (int v = 1; v < num_nodes; ++v) {
    sink_order_.emplace_back(inflow_[static_cast<std::size_t>(v)], v);
  }

  const auto sinks = sink_order_.size();
  // The parallel sweep is the default on multi-core hosts: an explicit
  // pool wins, else the shared verify pool when auto_pool allows it.
  util::ThreadPool* pool = options_.pool;
  if (pool == nullptr && options_.auto_pool &&
      static_cast<int>(sinks) >= options_.parallel_min_sinks &&
      std::thread::hardware_concurrency() > 1) {
    pool = shared_verify_pool();
  }
  const bool parallel =
      pool != nullptr && pool->size() > 1 &&
      static_cast<int>(sinks) >= options_.parallel_min_sinks &&
      options_.parallel_chunks > 1;
  if (!parallel) {
    const std::uint64_t bfs_base = graph_.bfs_rounds();
    result.throughput = limit_bounded_sink_sweep(graph_, 0, sink_order_,
                                                 &result.maxflow_solves);
    result.bfs_rounds = graph_.bfs_rounds() - bfs_base;
    return result;
  }

  // Parallel sweep: fixed-size chunks, one private graph copy and one
  // private running minimum per chunk. Every per-sink value is
  // min(flow_k, local_limit) with local_limit >= the true global minimum
  // (it starts at `bound` and only drops through values that are
  // themselves >= the minimum), so min over chunks is exact. The chunk
  // count is a fixed option, never pool-derived: the split, the per-chunk
  // minima, and every work counter are identical for any pool size or
  // scheduling.
  std::sort(sink_order_.begin(), sink_order_.end());
  graph_.finalize();  // chunks copy the built CSR index, not the edge list
  const std::size_t chunk_count =
      std::min(sinks, static_cast<std::size_t>(options_.parallel_chunks));
  const std::size_t chunk_size = (sinks + chunk_count - 1) / chunk_count;
  std::vector<double> chunk_min(chunk_count, bound);
  std::vector<int> chunk_solves(chunk_count, 0);
  std::vector<std::uint64_t> chunk_bfs(chunk_count, 0);
  const std::uint64_t bfs_base = graph_.bfs_rounds();
  util::parallel_for(
      *pool, 0, chunk_count,
      [&](std::size_t c) {
        MaxFlowGraph local = graph_;
        double best = bound;
        const std::size_t begin = c * chunk_size;
        const std::size_t end = std::min(sinks, begin + chunk_size);
        for (std::size_t k = begin; k < end && best > 0.0; ++k) {
          local.reset();
          best = std::min(best, local.max_flow(0, sink_order_[k].second, best));
          ++chunk_solves[c];
        }
        chunk_min[c] = best;
        chunk_bfs[c] = local.bfs_rounds() - bfs_base;
      },
      /*chunk=*/1);
  for (const int solves : chunk_solves) result.maxflow_solves += solves;
  for (const std::uint64_t bfs : chunk_bfs) result.bfs_rounds += bfs;
  result.throughput =
      std::max(*std::min_element(chunk_min.begin(), chunk_min.end()), 0.0);
  if (options_.profiler != nullptr) {
    options_.profiler->count("verify/tier2_maxflow", "parallel_sweeps");
    options_.profiler->count("verify/tier2_maxflow", "graph_copies",
                             chunk_count);
  }
  ++stats_.parallel_sweeps;
  return result;
}

VerifyResult Verifier::dispatch(const BroadcastScheme& scheme) {
  const int num_nodes = scheme.num_nodes();
  if (options_.force_tier && options_.tier == VerifyTier::kOracle) {
    // Same sweep as scheme_throughput_oracle (full solve per sink, early
    // exit at zero), run on the reusable graph so the solve count in the
    // result is the number of Dinic invocations that actually happened.
    VerifyResult result;
    result.tier = VerifyTier::kOracle;
    graph_.assign(num_nodes);
    for (int i = 0; i < num_nodes; ++i) {
      for (const auto& [to, rate] : scheme.out_edges(i)) {
        graph_.add_edge(i, to, rate);
      }
    }
    double best = std::numeric_limits<double>::infinity();
    const std::uint64_t bfs_base = graph_.bfs_rounds();
    for (int sink = 1; sink < num_nodes; ++sink) {
      graph_.reset();
      best = std::min(best, graph_.max_flow(0, sink));
      ++result.maxflow_solves;
      if (best <= 0.0) break;
    }
    result.bfs_rounds = graph_.bfs_rounds() - bfs_base;
    result.throughput = std::max(best, 0.0);
    return result;
  }

  const bool acyclic = acyclic_sweep(scheme);
  if (options_.force_tier && options_.tier == VerifyTier::kAcyclicSweep &&
      !acyclic) {
    throw std::invalid_argument(
        "Verifier: kAcyclicSweep forced on a cyclic scheme");
  }
  const bool sweep =
      options_.force_tier ? options_.tier == VerifyTier::kAcyclicSweep : acyclic;
  if (sweep) {
    VerifyResult result;
    result.tier = VerifyTier::kAcyclicSweep;
    double best = std::numeric_limits<double>::infinity();
    for (int v = 1; v < num_nodes; ++v) {
      best = std::min(best, inflow_[static_cast<std::size_t>(v)]);
    }
    result.throughput = best;
    return result;
  }
  return warm_maxflow(scheme);
}

VerifyResult Verifier::verify(const BroadcastScheme& scheme) {
  const auto start = options_.collect_timing
                         ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{};
  const VerifyResult result = dispatch(scheme);
  ++stats_.calls;
  if (result.tier == VerifyTier::kAcyclicSweep) {
    ++stats_.tier_sweep;
  } else {
    ++stats_.tier_maxflow;
  }
  stats_.maxflow_solves += static_cast<std::uint64_t>(result.maxflow_solves);
  stats_.bfs_rounds += result.bfs_rounds;
  if (options_.profiler != nullptr) {
    obs::Profiler& profiler = *options_.profiler;
    switch (result.tier) {
      case VerifyTier::kAcyclicSweep:
        profiler.enter("verify/tier1_sweep");
        profiler.count("verify/tier1_sweep", "nodes",
                       static_cast<std::uint64_t>(scheme.num_nodes()));
        break;
      case VerifyTier::kWarmMaxFlow:
        profiler.enter("verify/tier2_maxflow");
        profiler.count("verify/tier2_maxflow", "solves",
                       static_cast<std::uint64_t>(result.maxflow_solves));
        profiler.count("verify/tier2_maxflow", "bfs_rounds",
                       result.bfs_rounds);
        break;
      case VerifyTier::kOracle:
        profiler.enter("verify/oracle");
        profiler.count("verify/oracle", "solves",
                       static_cast<std::uint64_t>(result.maxflow_solves));
        profiler.count("verify/oracle", "bfs_rounds", result.bfs_rounds);
        break;
    }
  }
  if (options_.collect_timing) {
    stats_.last_us = std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    stats_.total_us += stats_.last_us;
    if (options_.profiler != nullptr && options_.profiler->wall_time()) {
      options_.profiler->add_wall(result.tier == VerifyTier::kAcyclicSweep
                                      ? "verify/tier1_sweep"
                                      : result.tier == VerifyTier::kWarmMaxFlow
                                            ? "verify/tier2_maxflow"
                                            : "verify/oracle",
                                  stats_.last_us);
    }
  }
  if (options_.trace != nullptr) {
    const double wall_us =
        options_.collect_timing ? stats_.last_us : -1.0;
    options_.trace->complete(
        obs::Lane::kVerify, "flow", "verify",
        {{"tier", to_string(result.tier)},
         {"n", scheme.num_nodes()},
         {"solves", result.maxflow_solves},
         {"throughput", result.throughput}},
        wall_us);
  }
  return result;
}

VerifyResult verify_throughput(const BroadcastScheme& scheme) {
  thread_local Verifier verifier;
  return verifier.verify(scheme);
}

double scheme_throughput(const BroadcastScheme& scheme) {
  return verify_throughput(scheme).throughput;
}

}  // namespace bmp::flow
