#include "bmp/flow/verify.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>

#include "bmp/obs/trace.hpp"
#include "bmp/util/thread_pool.hpp"

namespace bmp::flow {

const char* to_string(VerifyTier tier) {
  switch (tier) {
    case VerifyTier::kAcyclicSweep: return "acyclic-sweep";
    case VerifyTier::kWarmMaxFlow: return "warm-maxflow";
    case VerifyTier::kOracle: return "oracle";
  }
  return "?";
}

Verifier::Verifier(VerifyOptions options) : options_(options) {}

bool Verifier::acyclic_sweep(const BroadcastScheme& scheme) {
  const int num_nodes = scheme.num_nodes();
  const auto nodes = static_cast<std::size_t>(num_nodes);
  indegree_.assign(nodes, 0);
  inflow_.assign(nodes, 0.0);
  for (int i = 0; i < num_nodes; ++i) {
    for (const auto& [to, rate] : scheme.out_edges(i)) {
      ++indegree_[static_cast<std::size_t>(to)];
      inflow_[static_cast<std::size_t>(to)] += rate;
    }
  }
  stack_.clear();
  for (int v = 0; v < num_nodes; ++v) {
    if (indegree_[static_cast<std::size_t>(v)] == 0) stack_.push_back(v);
  }
  int processed = 0;
  while (!stack_.empty()) {
    const int v = stack_.back();
    stack_.pop_back();
    ++processed;
    for (const auto& [to, rate] : scheme.out_edges(v)) {
      (void)rate;
      if (--indegree_[static_cast<std::size_t>(to)] == 0) stack_.push_back(to);
    }
  }
  return processed == num_nodes;
}

double limit_bounded_sink_sweep(MaxFlowGraph& graph, int source,
                                std::vector<std::pair<double, int>>& sinks,
                                int* solves) {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& [bound, sink] : sinks) {
    (void)sink;
    best = std::min(best, bound);
  }
  if (best <= 0.0) return 0.0;
  // Ascending-bound order: low-bound sinks are the likeliest to hold the
  // minimum, so visiting them first tightens the limit for the rest of the
  // sweep. Pair order ties break on sink id, keeping it deterministic.
  std::sort(sinks.begin(), sinks.end());
  for (const auto& [bound, sink] : sinks) {
    (void)bound;
    graph.reset();
    best = std::min(best, graph.max_flow(source, sink, best));
    if (solves != nullptr) ++*solves;
    if (best <= 0.0) return 0.0;
  }
  return best;
}

VerifyResult Verifier::warm_maxflow(const BroadcastScheme& scheme) {
  const int num_nodes = scheme.num_nodes();
  VerifyResult result;
  result.tier = VerifyTier::kWarmMaxFlow;

  // Min-inflow seed: maxflow(0 -> k) <= inflow(k) in any digraph, so the
  // minimum inflow upper-bounds the answer and is a valid limit for every
  // solve in the sweep.
  double bound = std::numeric_limits<double>::infinity();
  for (int v = 1; v < num_nodes; ++v) {
    bound = std::min(bound, inflow_[static_cast<std::size_t>(v)]);
  }
  if (bound <= 0.0) {
    result.throughput = 0.0;
    return result;
  }

  graph_.assign(num_nodes);
  for (int i = 0; i < num_nodes; ++i) {
    for (const auto& [to, rate] : scheme.out_edges(i)) {
      graph_.add_edge(i, to, rate);
    }
  }

  sink_order_.clear();
  sink_order_.reserve(static_cast<std::size_t>(num_nodes - 1));
  for (int v = 1; v < num_nodes; ++v) {
    sink_order_.emplace_back(inflow_[static_cast<std::size_t>(v)], v);
  }

  const auto sinks = sink_order_.size();
  const bool parallel =
      options_.pool != nullptr && options_.pool->size() > 1 &&
      static_cast<int>(sinks) >= options_.parallel_min_sinks;
  if (!parallel) {
    result.throughput = limit_bounded_sink_sweep(graph_, 0, sink_order_,
                                                 &result.maxflow_solves);
    return result;
  }

  // Parallel sweep: fixed-size chunks, one private graph copy and one
  // private running minimum per chunk. Every per-sink value is
  // min(flow_k, local_limit) with local_limit >= the true global minimum
  // (it starts at `bound` and only drops through values that are
  // themselves >= the minimum), so min over chunks is exact — identical
  // for any pool size, chunk split, or scheduling.
  std::sort(sink_order_.begin(), sink_order_.end());
  graph_.finalize();  // chunks copy the built CSR index, not the edge list
  const std::size_t chunk_count =
      std::min(sinks, 2 * options_.pool->size());
  const std::size_t chunk_size = (sinks + chunk_count - 1) / chunk_count;
  std::vector<double> chunk_min(chunk_count, bound);
  std::vector<int> chunk_solves(chunk_count, 0);
  util::parallel_for(
      *options_.pool, 0, chunk_count,
      [&](std::size_t c) {
        MaxFlowGraph local = graph_;
        double best = bound;
        const std::size_t begin = c * chunk_size;
        const std::size_t end = std::min(sinks, begin + chunk_size);
        for (std::size_t k = begin; k < end && best > 0.0; ++k) {
          local.reset();
          best = std::min(best, local.max_flow(0, sink_order_[k].second, best));
          ++chunk_solves[c];
        }
        chunk_min[c] = best;
      },
      /*chunk=*/1);
  for (const int solves : chunk_solves) result.maxflow_solves += solves;
  result.throughput =
      std::max(*std::min_element(chunk_min.begin(), chunk_min.end()), 0.0);
  return result;
}

VerifyResult Verifier::dispatch(const BroadcastScheme& scheme) {
  const int num_nodes = scheme.num_nodes();
  if (options_.force_tier && options_.tier == VerifyTier::kOracle) {
    // Same sweep as scheme_throughput_oracle (full solve per sink, early
    // exit at zero), run on the reusable graph so the solve count in the
    // result is the number of Dinic invocations that actually happened.
    VerifyResult result;
    result.tier = VerifyTier::kOracle;
    graph_.assign(num_nodes);
    for (int i = 0; i < num_nodes; ++i) {
      for (const auto& [to, rate] : scheme.out_edges(i)) {
        graph_.add_edge(i, to, rate);
      }
    }
    double best = std::numeric_limits<double>::infinity();
    for (int sink = 1; sink < num_nodes; ++sink) {
      graph_.reset();
      best = std::min(best, graph_.max_flow(0, sink));
      ++result.maxflow_solves;
      if (best <= 0.0) break;
    }
    result.throughput = std::max(best, 0.0);
    return result;
  }

  const bool acyclic = acyclic_sweep(scheme);
  if (options_.force_tier && options_.tier == VerifyTier::kAcyclicSweep &&
      !acyclic) {
    throw std::invalid_argument(
        "Verifier: kAcyclicSweep forced on a cyclic scheme");
  }
  const bool sweep =
      options_.force_tier ? options_.tier == VerifyTier::kAcyclicSweep : acyclic;
  if (sweep) {
    VerifyResult result;
    result.tier = VerifyTier::kAcyclicSweep;
    double best = std::numeric_limits<double>::infinity();
    for (int v = 1; v < num_nodes; ++v) {
      best = std::min(best, inflow_[static_cast<std::size_t>(v)]);
    }
    result.throughput = best;
    return result;
  }
  return warm_maxflow(scheme);
}

VerifyResult Verifier::verify(const BroadcastScheme& scheme) {
  const auto start = options_.collect_timing
                         ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{};
  const VerifyResult result = dispatch(scheme);
  ++stats_.calls;
  if (result.tier == VerifyTier::kAcyclicSweep) {
    ++stats_.tier_sweep;
  } else {
    ++stats_.tier_maxflow;
  }
  stats_.maxflow_solves += static_cast<std::uint64_t>(result.maxflow_solves);
  if (options_.collect_timing) {
    stats_.last_us = std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    stats_.total_us += stats_.last_us;
  }
  if (options_.trace != nullptr) {
    const double wall_us =
        options_.collect_timing ? stats_.last_us : -1.0;
    options_.trace->complete(
        obs::Lane::kVerify, "flow", "verify",
        {{"tier", to_string(result.tier)},
         {"n", scheme.num_nodes()},
         {"solves", result.maxflow_solves},
         {"throughput", result.throughput}},
        wall_us);
  }
  return result;
}

VerifyResult verify_throughput(const BroadcastScheme& scheme) {
  thread_local Verifier verifier;
  return verifier.verify(scheme);
}

double scheme_throughput(const BroadcastScheme& scheme) {
  return verify_throughput(scheme).throughput;
}

}  // namespace bmp::flow
