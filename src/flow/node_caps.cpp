#include "bmp/flow/node_caps.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "bmp/flow/maxflow.hpp"

namespace bmp::flow {

std::vector<std::string> validate_download_caps(
    const BroadcastScheme& scheme, const std::vector<double>& download_cap,
    double tol) {
  if (static_cast<int>(download_cap.size()) != scheme.num_nodes()) {
    throw std::invalid_argument("validate_download_caps: size mismatch");
  }
  std::vector<std::string> issues;
  for (int v = 1; v < scheme.num_nodes(); ++v) {
    const double in = scheme.in_rate(v);
    if (in > download_cap[static_cast<std::size_t>(v)] + tol) {
      std::ostringstream os;
      os << "download cap violated at node " << v << ": receives " << in
         << " > cap " << download_cap[static_cast<std::size_t>(v)];
      issues.push_back(os.str());
    }
  }
  return issues;
}

double scheme_throughput_with_download_caps(
    const BroadcastScheme& scheme, const std::vector<double>& download_cap) {
  const int N = scheme.num_nodes();
  if (static_cast<int>(download_cap.size()) != N) {
    throw std::invalid_argument(
        "scheme_throughput_with_download_caps: size mismatch");
  }
  if (N == 1) return 0.0;
  // Split every node v into v_in (= v) and v_out (= v + N); scheme edges
  // run u_out -> v_in; the internal edge v_in -> v_out carries b_in(v).
  // The source's internal edge must not bind: total_rate upper-bounds any
  // flow, and stays on the scheme's own scale (an "infinite" sentinel
  // would wreck the solver's relative tolerances).
  const double unbounded = scheme.total_rate() + 1.0;
  MaxFlowGraph graph(2 * N);
  for (int v = 0; v < N; ++v) {
    const double cap =
        v == 0 ? unbounded
               : std::min(download_cap[static_cast<std::size_t>(v)], unbounded);
    graph.add_edge(v, v + N, cap);
    for (const auto& [to, rate] : scheme.out_edges(v)) {
      graph.add_edge(v + N, to, rate);
    }
  }
  double best = std::numeric_limits<double>::infinity();
  for (int sink = 1; sink < N; ++sink) {
    graph.reset();
    // The sink's own download cap applies: measure flow into v_out.
    best = std::min(best, graph.max_flow(N, sink + N));
    if (best <= 0.0) return 0.0;
  }
  return best;
}

double minimal_uniform_download_cap(const BroadcastScheme& scheme, double T,
                                    double tol) {
  if (T <= 0.0) return 0.0;
  double lo = 0.0;
  double hi = 0.0;
  for (int v = 1; v < scheme.num_nodes(); ++v) {
    hi = std::max(hi, scheme.in_rate(v));
  }
  if (hi <= 0.0) return 0.0;
  const std::vector<double> probe_base(
      static_cast<std::size_t>(scheme.num_nodes()), 0.0);
  for (int iter = 0; iter < 50; ++iter) {
    const double mid = 0.5 * (lo + hi);
    std::vector<double> caps(static_cast<std::size_t>(scheme.num_nodes()), mid);
    const double reached = scheme_throughput_with_download_caps(scheme, caps);
    if (reached + tol >= T) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace bmp::flow
