#include "bmp/flow/node_caps.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "bmp/flow/verify.hpp"

namespace bmp::flow {

std::vector<std::string> validate_download_caps(
    const BroadcastScheme& scheme, const std::vector<double>& download_cap,
    double tol) {
  if (static_cast<int>(download_cap.size()) != scheme.num_nodes()) {
    throw std::invalid_argument("validate_download_caps: size mismatch");
  }
  std::vector<std::string> issues;
  for (int v = 1; v < scheme.num_nodes(); ++v) {
    const double in = scheme.in_rate(v);
    if (in > download_cap[static_cast<std::size_t>(v)] + tol) {
      std::ostringstream os;
      os << "download cap violated at node " << v << ": receives " << in
         << " > cap " << download_cap[static_cast<std::size_t>(v)];
      issues.push_back(os.str());
    }
  }
  return issues;
}

DownloadCapProbe::DownloadCapProbe(const BroadcastScheme& scheme)
    : num_nodes_(scheme.num_nodes()) {
  const int N = num_nodes_;
  // Split every node v into v_in (= v) and v_out (= v + N); scheme edges
  // run u_out -> v_in; the internal edge v_in -> v_out carries the cap.
  // The source's internal edge must not bind: total_rate upper-bounds any
  // flow, and stays on the scheme's own scale (an "infinite" sentinel
  // would wreck the solver's relative tolerances).
  unbounded_ = scheme.total_rate() + 1.0;
  graph_.assign(2 * N);
  cap_edge_.assign(static_cast<std::size_t>(N), -1);
  cap_.assign(static_cast<std::size_t>(N), unbounded_);
  inflow_.assign(static_cast<std::size_t>(N), 0.0);
  for (int v = 0; v < N; ++v) {
    cap_edge_[static_cast<std::size_t>(v)] = graph_.add_edge(v, v + N, unbounded_);
    for (const auto& [to, rate] : scheme.out_edges(v)) {
      graph_.add_edge(v + N, to, rate);
      inflow_[static_cast<std::size_t>(to)] += rate;
    }
  }
}

void DownloadCapProbe::set_caps(const std::vector<double>& download_cap) {
  if (static_cast<int>(download_cap.size()) != num_nodes_) {
    throw std::invalid_argument("DownloadCapProbe: size mismatch");
  }
  for (int v = 1; v < num_nodes_; ++v) {
    const double cap =
        std::min(download_cap[static_cast<std::size_t>(v)], unbounded_);
    cap_[static_cast<std::size_t>(v)] = cap;
    graph_.set_capacity(cap_edge_[static_cast<std::size_t>(v)], cap);
  }
}

void DownloadCapProbe::set_uniform_cap(double cap) {
  const double clamped = std::min(cap, unbounded_);
  for (int v = 1; v < num_nodes_; ++v) {
    cap_[static_cast<std::size_t>(v)] = clamped;
    graph_.set_capacity(cap_edge_[static_cast<std::size_t>(v)], clamped);
  }
}

double DownloadCapProbe::throughput() {
  const int N = num_nodes_;
  if (N <= 1) return 0.0;
  // min(inflow, cap) upper-bounds the flow into every sink in any digraph.
  // The sink's own download cap applies: measure flow into v_out (v + N).
  sink_order_.clear();
  sink_order_.reserve(static_cast<std::size_t>(N - 1));
  for (int v = 1; v < N; ++v) {
    sink_order_.emplace_back(std::min(inflow_[static_cast<std::size_t>(v)],
                                      cap_[static_cast<std::size_t>(v)]),
                             v + N);
  }
  return limit_bounded_sink_sweep(graph_, /*source=*/N, sink_order_);
}

double scheme_throughput_with_download_caps(
    const BroadcastScheme& scheme, const std::vector<double>& download_cap) {
  if (static_cast<int>(download_cap.size()) != scheme.num_nodes()) {
    throw std::invalid_argument(
        "scheme_throughput_with_download_caps: size mismatch");
  }
  DownloadCapProbe probe(scheme);
  probe.set_caps(download_cap);
  return probe.throughput();
}

double minimal_uniform_download_cap(const BroadcastScheme& scheme, double T,
                                    double tol) {
  if (T <= 0.0) return 0.0;
  double lo = 0.0;
  double hi = 0.0;
  for (int v = 1; v < scheme.num_nodes(); ++v) {
    hi = std::max(hi, scheme.in_rate(v));
  }
  if (hi <= 0.0) return 0.0;
  // One probe for all 50 bisection iterations: only the N internal-edge
  // capacities change between evaluations.
  DownloadCapProbe probe(scheme);
  for (int iter = 0; iter < 50; ++iter) {
    const double mid = 0.5 * (lo + hi);
    probe.set_uniform_cap(mid);
    const double reached = probe.throughput();
    if (reached + tol >= T) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace bmp::flow
