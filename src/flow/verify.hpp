// Tiered throughput verification — the fast path for the paper's §II.D
// definition T(scheme) = min_k maxflow(C0 -> Ck).
//
// Tier 1 (acyclic sweep). For an acyclic overlay the minimum over sinks of
// the s-t max flow equals the minimum inflow over non-source nodes, so one
// O(V + E) topological sweep verifies the scheme exactly — zero max-flow
// solves. Proof of the identity:
//   * Upper bound: maxflow(0 -> j) <= inflow(j) (the in-edges of j are a
//     cut), so min_j maxflow(0 -> j) <= min_j inflow(j).
//   * Lower bound: take any 0/j cut (S, V\S) and let u be the node of V\S
//     that comes first in a fixed topological order. Every predecessor of u
//     is topologically earlier, hence inside S, so *all* of u's in-edges
//     cross the cut: capacity(S) >= inflow(u) >= min_v inflow(v). Thus
//     maxflow(0 -> j) = mincut(0 -> j) >= min_v inflow(v) for every j.
// This is exactly the structure the word-schedule constructions emit (every
// node fed at rate T), which makes the planner/session/runtime verification
// loop allocation- and solver-free in the common case.
//
// Tier 2 (warm max-flow sweep). Cyclic or irregular overlays fall back to
// Dinic, but the sweep is warm-started: the graph is built once in CSR form
// and reset by memcpy between sinks, the running minimum — seeded with the
// min-inflow upper bound, which is valid for *any* digraph — caps every
// solve through max_flow(s, t, limit), and sinks are visited in ascending
// inflow order so the cap tightens as early as possible. With a ThreadPool
// the sink range is split into deterministic chunks, each with its own
// graph copy and its own running minimum; the chunk minima combine to the
// exact global minimum regardless of thread count or timing.
//
// Tier 3 (oracle). scheme_throughput_oracle — one full Dinic solve per
// sink, nothing exploited. Kept as the differential-testing cross-check.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "bmp/core/scheme.hpp"
#include "bmp/flow/maxflow.hpp"

namespace bmp::util {
class ThreadPool;
}  // namespace bmp::util

namespace bmp::obs {
class Profiler;
class TraceSink;
}  // namespace bmp::obs

namespace bmp::flow {

enum class VerifyTier : std::uint8_t {
  kAcyclicSweep,  ///< tier 1: topological min-inflow sweep, no solves
  kWarmMaxFlow,   ///< tier 2: limit-bounded Dinic sink sweep
  kOracle,        ///< tier 3: full Dinic per sink (cross-check only)
};

[[nodiscard]] const char* to_string(VerifyTier tier);

struct VerifyResult {
  double throughput = 0.0;
  VerifyTier tier = VerifyTier::kAcyclicSweep;
  int maxflow_solves = 0;  ///< Dinic invocations (0 on the tier-1 path)
  /// BFS level-graph rebuilds across those solves — the per-verify Dinic
  /// work measure. Deterministic (pool-size-independent, like the solves).
  std::uint64_t bfs_rounds = 0;
};

/// Cumulative per-verifier counters; wall-clock total under `total_us`
/// (callers exporting metrics keep it under a `timing.` prefix).
struct VerifyStats {
  std::uint64_t calls = 0;
  std::uint64_t tier_sweep = 0;    ///< verifications served by tier 1
  std::uint64_t tier_maxflow = 0;  ///< verifications served by tier 2/3
  std::uint64_t maxflow_solves = 0;
  std::uint64_t bfs_rounds = 0;
  std::uint64_t parallel_sweeps = 0;  ///< tier-2 sweeps run on a pool
  double total_us = 0.0;
  double last_us = 0.0;
};

struct VerifyOptions {
  /// Force a tier instead of dispatching on structure. kAcyclicSweep may
  /// only be forced on acyclic schemes (throws otherwise); kOracle routes
  /// to scheme_throughput_oracle.
  bool force_tier = false;
  VerifyTier tier = VerifyTier::kAcyclicSweep;
  /// Parallel tier-2 sink sweep across this pool. The result — and, with a
  /// fixed `parallel_chunks`, the solve/BFS counts — is identical for any
  /// pool size. nullptr defers to `auto_pool`.
  util::ThreadPool* pool = nullptr;
  /// With pool == nullptr, run the parallel sweep on the process-shared
  /// verify pool whenever hardware_concurrency() > 1 — the deterministic
  /// parallel sweep is the *default*. Set false to force the serial sweep
  /// (single-core hosts always sweep serially).
  bool auto_pool = true;
  /// Minimum sink count before the parallel sweep is worth the per-chunk
  /// graph copies.
  int parallel_min_sinks = 256;
  /// Fixed chunk count of the parallel sweep (clamped to the sink count).
  /// Fixed — not pool-derived — so the chunk split, the per-chunk running
  /// minima, and therefore every profiler work counter are independent of
  /// the pool size, not just the verified throughput.
  int parallel_chunks = 16;
  /// Collect wall-clock timings into stats() (two steady_clock reads per
  /// verify; the measurement itself never affects the returned value).
  bool collect_timing = true;
  /// Emit one span per verify (tier, solves, throughput). Only set this on
  /// verifiers that run on the event-loop thread — the thread-local
  /// verifiers inside the planner pool stay untraced so trace append order
  /// is independent of thread count.
  obs::TraceSink* trace = nullptr;
  /// Performance attribution (null = off): per-tier phase counters —
  /// sweeps, solves, BFS rounds, graph copies — under "verify/...". Safe
  /// on any thread (counter sums are commutative); wall time rides along
  /// only when the profiler opted in *and* collect_timing is on.
  obs::Profiler* profiler = nullptr;
};

/// Reusable verification engine: owns the topological/inflow scratch and
/// the CSR max-flow graph so that verifying a stream of schemes (planner
/// constructions, churn repairs, runtime events) allocates only on
/// high-water-mark growth.
class Verifier {
 public:
  explicit Verifier(VerifyOptions options = {});

  VerifyResult verify(const BroadcastScheme& scheme);

  [[nodiscard]] const VerifyStats& stats() const { return stats_; }
  [[nodiscard]] const VerifyOptions& options() const { return options_; }

 private:
  VerifyResult dispatch(const BroadcastScheme& scheme);
  /// Kahn sweep; fills inflow_/indegree_ and returns true iff acyclic.
  bool acyclic_sweep(const BroadcastScheme& scheme);
  VerifyResult warm_maxflow(const BroadcastScheme& scheme);

  VerifyOptions options_;
  VerifyStats stats_;

  // Tier-1 scratch.
  std::vector<int> indegree_;
  std::vector<int> stack_;
  std::vector<double> inflow_;
  // Tier-2 scratch: (inflow bound, sink id) pairs for the sweep.
  std::vector<std::pair<double, int>> sink_order_;
  MaxFlowGraph graph_;
};

/// One-shot verification through a thread-local Verifier (scratch reused
/// across calls on each thread).
VerifyResult verify_throughput(const BroadcastScheme& scheme);

/// The limit-bounded min-over-sinks sweep shared by the tier-2 verifier
/// and the node-caps probes: `sinks` holds one (upper_bound, sink id) pair
/// per sink, where upper_bound must be a valid upper bound on
/// maxflow(source -> sink) (e.g. the sink's inflow). Sorts `sinks` in
/// place ascending by (bound, id) — deterministic — seeds the running
/// minimum with the smallest bound, and caps every solve with it; a sink
/// at or above the running minimum can never lower it, so its exact flow
/// is never computed. Returns the exact min over sinks; `solves` (if
/// non-null) is incremented per max-flow invocation.
double limit_bounded_sink_sweep(MaxFlowGraph& graph, int source,
                                std::vector<std::pair<double, int>>& sinks,
                                int* solves = nullptr);

}  // namespace bmp::flow
