// Dinic's max-flow on double capacities. This is the substrate that gives
// the *definition* of broadcast throughput (paper §II.D):
//     T(scheme) = min_k maxflow(C0 -> Ck)
// over the weighted overlay digraph, so every constructive algorithm in the
// library is verified against it.
//
// The solver is built for the verification hot path (flow/verify.hpp): a
// flat CSR adjacency with structure-of-arrays edge storage, scratch buffers
// (BFS queue, levels, arc cursors) that are allocated once and reused across
// solves, a memcpy reset, and an early-exit `max_flow(s, t, limit)` overload
// for min-over-sinks sweeps where the running minimum upper-bounds every
// later sink.
#pragma once

#include <cstdint>
#include <vector>

#include "bmp/core/instance.hpp"
#include "bmp/core/scheme.hpp"

namespace bmp::flow {

class MaxFlowGraph {
 public:
  /// An empty graph; assign() before use (reusable-scratch construction).
  MaxFlowGraph() = default;

  explicit MaxFlowGraph(int num_nodes);

  /// Re-targets the graph at a new node set, dropping all edges but keeping
  /// every internal buffer's capacity — the reuse entry point for callers
  /// that verify many schemes through one solver.
  void assign(int num_nodes);

  /// Adds a directed edge with the given capacity; returns its edge id.
  /// Invalidates the CSR index (rebuilt lazily on the next solve).
  int add_edge(int from, int to, double capacity);

  /// Overwrites the construction capacity of an existing edge (forward
  /// direction only) and resets its residual pair. Used by probes that
  /// re-solve the same topology under varying capacities (node_caps
  /// bisection) without rebuilding the graph. Keeps the CSR index valid.
  void set_capacity(int edge_id, double capacity);

  [[nodiscard]] int num_nodes() const { return num_nodes_; }
  [[nodiscard]] int num_edges() const { return static_cast<int>(to_.size()) / 2; }

  /// Computes max flow from s to t (Dinic: BFS levels + blocking DFS).
  /// Residual capacities are consumed; call reset() to restore.
  double max_flow(int source, int sink);

  /// Early-exit variant: stops augmenting once `limit` units have been
  /// pushed and returns min(true max flow, limit) up to the solver's
  /// relative tolerance. In a min-over-sinks sweep the running minimum is a
  /// valid limit for every later sink — a sink at or above the limit cannot
  /// lower the minimum, so its exact value is never needed.
  double max_flow(int source, int sink, double limit);

  /// Restores all capacities to their construction values (one memcpy).
  void reset();

  /// Builds the CSR adjacency index now instead of lazily on the first
  /// solve. Idempotent. Call it before copying the graph for a parallel
  /// sweep so the copies inherit the built index instead of each
  /// rebuilding it.
  void finalize();

  /// Flow currently pushed through edge id (cap_original - cap_residual).
  [[nodiscard]] double flow_on(int edge_id) const;

  /// Cumulative BFS level-graph rebuilds across every solve since assign()
  /// — the Dinic work counter the profiler attributes tier-2 cost by.
  /// Deterministic: a pure function of the solve sequence.
  [[nodiscard]] std::uint64_t bfs_rounds() const { return bfs_rounds_; }

 private:
  bool bfs_levels(int source, int sink);
  double dfs_push(int vertex, int sink, double limit);

  /// Scale-free augmentation cutoff: relative to the largest capacity.
  [[nodiscard]] double eps() const { return 1e-12 * max_capacity_; }

  // Edge arrays, SoA; edge 2k ~ forward, 2k+1 ~ reverse. The tail of a
  // stored edge is the head of its partner: from(id) == to_[id ^ 1].
  std::vector<int> to_;
  std::vector<double> cap_;
  std::vector<double> original_;

  // CSR adjacency over edge ids, built lazily from the edge list.
  std::vector<int> csr_offset_;  // size num_nodes_ + 1
  std::vector<int> csr_edges_;   // size 2 * num_edges()

  // Reusable per-solve scratch.
  std::vector<int> level_;
  std::vector<int> iter_;   // arc cursor into csr_edges_ per vertex
  std::vector<int> queue_;  // BFS frontier

  int num_nodes_ = 0;
  bool finalized_ = false;
  double max_capacity_ = 0.0;
  std::uint64_t bfs_rounds_ = 0;
};

/// Throughput of a broadcast scheme: min over all non-source nodes of the
/// max flow from the source. Dispatches through the tiered verifier
/// (flow/verify.hpp): one O(V+E) sweep for acyclic overlays, warm-started
/// limit-bounded Dinic sweep otherwise. Implemented in verify.cpp.
double scheme_throughput(const BroadcastScheme& scheme);

/// The tier-3 oracle: one full Dinic solve per sink, no early exit, no
/// structure exploited. This is the function of record the fast paths are
/// differential-tested against; production code should call
/// scheme_throughput instead.
double scheme_throughput_oracle(const BroadcastScheme& scheme);

/// Max flow from node 0 to a single sink on the scheme graph.
double scheme_max_flow_to(const BroadcastScheme& scheme, int sink);

}  // namespace bmp::flow
