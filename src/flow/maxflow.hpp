// Dinic's max-flow on double capacities. This is the substrate that gives
// the *definition* of broadcast throughput (paper §II.D):
//     T(scheme) = min_k maxflow(C0 -> Ck)
// over the weighted overlay digraph, so every constructive algorithm in the
// library is verified against it.
#pragma once

#include <vector>

#include "bmp/core/instance.hpp"
#include "bmp/core/scheme.hpp"

namespace bmp::flow {

class MaxFlowGraph {
 public:
  explicit MaxFlowGraph(int num_nodes);

  /// Adds a directed edge with the given capacity; returns its edge id.
  int add_edge(int from, int to, double capacity);

  [[nodiscard]] int num_nodes() const { return static_cast<int>(head_.size()); }

  /// Computes max flow from s to t (Dinic: BFS levels + blocking DFS).
  /// Residual capacities are consumed; call reset() to restore.
  double max_flow(int source, int sink);

  /// Restores all capacities to their construction values.
  void reset();

  /// Flow currently pushed through edge id (cap_original - cap_residual).
  [[nodiscard]] double flow_on(int edge_id) const;

 private:
  bool bfs_levels(int source, int sink);
  double dfs_push(int vertex, int sink, double limit);

  struct Edge {
    int to;
    double cap;
    double original;
  };

  /// Scale-free augmentation cutoff: relative to the largest capacity.
  [[nodiscard]] double eps() const { return 1e-12 * max_capacity_; }

  std::vector<Edge> edges_;                 // edge 2k ~ forward, 2k+1 ~ reverse
  std::vector<std::vector<int>> head_;      // adjacency: edge ids per vertex
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
  double max_capacity_ = 0.0;
};

/// Throughput of a broadcast scheme: min over all non-source nodes of the
/// max flow from the source. O(N * Dinic); meant for verification, not for
/// the inner loop of large sweeps.
double scheme_throughput(const BroadcastScheme& scheme);

/// Max flow from node 0 to a single sink on the scheme graph.
double scheme_max_flow_to(const BroadcastScheme& scheme, int sink);

}  // namespace bmp::flow
