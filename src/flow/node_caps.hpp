// Extension beyond the paper's model: finite *incoming* bandwidths. The
// paper assumes downloads are non-binding (§II.D, "we implicitly assume
// that the input bandwidth of each participating node is large enough");
// real residential links are asymmetric but downloads can still bind for
// fast uplinks. This module adds
//   * validation of a scheme against download caps, and
//   * throughput evaluation with node capacities via the classic
//     node-splitting reduction (v -> v_in/v_out with an internal edge of
//     capacity b_in(v)).
// It lets users check when the paper's assumption is safe (download cap
// >= target rate T suffices) and measure the degradation when it is not.
#pragma once

#include <string>
#include <vector>

#include "bmp/core/scheme.hpp"

namespace bmp::flow {

/// Violations of per-node download caps (in_rate(v) > download_cap[v]).
std::vector<std::string> validate_download_caps(
    const BroadcastScheme& scheme, const std::vector<double>& download_cap,
    double tol = 1e-7);

/// Throughput min_k maxflow(0 -> k) where every non-source node k also has
/// an incoming capacity download_cap[k] (node splitting). download_cap[0]
/// is ignored.
double scheme_throughput_with_download_caps(
    const BroadcastScheme& scheme, const std::vector<double>& download_cap);

/// Largest uniform download cap d such that capping every node at d still
/// leaves the scheme's throughput >= T - tol. For schemes with inflow
/// exactly T everywhere this is T itself — quantifying how tight the
/// paper's "large enough" assumption really is.
double minimal_uniform_download_cap(const BroadcastScheme& scheme, double T,
                                    double tol = 1e-6);

}  // namespace bmp::flow
