// Extension beyond the paper's model: finite *incoming* bandwidths. The
// paper assumes downloads are non-binding (§II.D, "we implicitly assume
// that the input bandwidth of each participating node is large enough");
// real residential links are asymmetric but downloads can still bind for
// fast uplinks. This module adds
//   * validation of a scheme against download caps, and
//   * throughput evaluation with node capacities via the classic
//     node-splitting reduction (v -> v_in/v_out with an internal edge of
//     capacity b_in(v)).
// It lets users check when the paper's assumption is safe (download cap
// >= target rate T suffices) and measure the degradation when it is not.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "bmp/core/scheme.hpp"
#include "bmp/flow/maxflow.hpp"

namespace bmp::flow {

/// Reusable throughput probe for one scheme under varying download caps.
/// The node-split graph is built once; each probe rewrites only the N
/// internal-edge capacities in place (MaxFlowGraph::set_capacity) and
/// re-runs a limit-bounded sink sweep on the same CSR storage and scratch —
/// a bisection such as minimal_uniform_download_cap pays the graph
/// construction once instead of per probe, and each sweep is seeded with
/// the min(inflow, cap) upper bound so most sinks exit early.
class DownloadCapProbe {
 public:
  explicit DownloadCapProbe(const BroadcastScheme& scheme);

  /// Per-node caps (index 0 = source, which is never capped); size must be
  /// the scheme's node count.
  void set_caps(const std::vector<double>& download_cap);
  /// Caps every non-source node at `cap`.
  void set_uniform_cap(double cap);

  /// min_k maxflow(source_out -> k_in..k_out) under the current caps.
  double throughput();

 private:
  int num_nodes_ = 0;
  double unbounded_ = 0.0;
  std::vector<int> cap_edge_;   ///< internal edge id of node v
  std::vector<double> inflow_;  ///< scheme inflow per node (cap-free)
  std::vector<double> cap_;     ///< caps currently applied
  /// Scratch for limit_bounded_sink_sweep: (bound, split sink id) pairs.
  std::vector<std::pair<double, int>> sink_order_;
  MaxFlowGraph graph_;
};

/// Violations of per-node download caps (in_rate(v) > download_cap[v]).
std::vector<std::string> validate_download_caps(
    const BroadcastScheme& scheme, const std::vector<double>& download_cap,
    double tol = 1e-7);

/// Throughput min_k maxflow(0 -> k) where every non-source node k also has
/// an incoming capacity download_cap[k] (node splitting). download_cap[0]
/// is ignored.
double scheme_throughput_with_download_caps(
    const BroadcastScheme& scheme, const std::vector<double>& download_cap);

/// Largest uniform download cap d such that capping every node at d still
/// leaves the scheme's throughput >= T - tol. For schemes with inflow
/// exactly T everywhere this is T itself — quantifying how tight the
/// paper's "large enough" assumption really is.
double minimal_uniform_download_cap(const BroadcastScheme& scheme, double T,
                                    double tol = 1e-6);

}  // namespace bmp::flow
