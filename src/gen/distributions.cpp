#include "bmp/gen/distributions.hpp"

#include <cmath>
#include <stdexcept>

#include "bmp/gen/planetlab_data.hpp"

namespace bmp::gen {

const std::vector<Dist>& all_distributions() {
  static const std::vector<Dist> kAll{Dist::kLogNormal1, Dist::kLogNormal2,
                                      Dist::kPower1,     Dist::kPower2,
                                      Dist::kUnif100,    Dist::kPlanetLab};
  return kAll;
}

std::string name(Dist dist) {
  switch (dist) {
    case Dist::kUnif100: return "Unif100";
    case Dist::kPower1: return "Power1";
    case Dist::kPower2: return "Power2";
    case Dist::kLogNormal1: return "LN1";
    case Dist::kLogNormal2: return "LN2";
    case Dist::kPlanetLab: return "PLab";
  }
  throw std::invalid_argument("unknown distribution");
}

ParetoParams pareto_params(double mean, double stddev) {
  if (mean <= 0.0 || stddev <= 0.0) {
    throw std::invalid_argument("pareto_params: mean/std must be positive");
  }
  const double r = (mean / stddev) * (mean / stddev);
  const double shape = 1.0 + std::sqrt(1.0 + r);
  const double scale = mean * (shape - 1.0) / shape;
  return {shape, scale};
}

double sample_pareto(double mean, double stddev, util::Xoshiro256& rng) {
  const ParetoParams p = pareto_params(mean, stddev);
  // Inverse CDF: x = x_m * U^(-1/a), U in (0,1].
  const double u = 1.0 - rng.uniform();  // (0, 1]
  return p.scale * std::pow(u, -1.0 / p.shape);
}

double sample_lognormal(double mean, double stddev, util::Xoshiro256& rng) {
  if (mean <= 0.0 || stddev <= 0.0) {
    throw std::invalid_argument("sample_lognormal: mean/std must be positive");
  }
  const double sigma2 = std::log(1.0 + (stddev * stddev) / (mean * mean));
  const double mu = std::log(mean) - 0.5 * sigma2;
  // Box-Muller normal draw.
  const double u1 = 1.0 - rng.uniform();
  const double u2 = rng.uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return std::exp(mu + std::sqrt(sigma2) * z);
}

double sample(Dist dist, util::Xoshiro256& rng) {
  switch (dist) {
    case Dist::kUnif100:
      return rng.uniform(1.0, 100.0);
    case Dist::kPower1:
      return sample_pareto(100.0, 100.0, rng);
    case Dist::kPower2:
      return sample_pareto(100.0, 1000.0, rng);
    case Dist::kLogNormal1:
      return sample_lognormal(100.0, 100.0, rng);
    case Dist::kLogNormal2:
      return sample_lognormal(100.0, 1000.0, rng);
    case Dist::kPlanetLab: {
      const auto& data = planetlab_bandwidths();
      return data[rng.below(data.size())];
    }
  }
  throw std::invalid_argument("unknown distribution");
}

std::vector<double> sample_many(Dist dist, int count, util::Xoshiro256& rng) {
  if (count < 0) throw std::invalid_argument("sample_many: negative count");
  std::vector<double> draws(static_cast<std::size_t>(count));
  for (auto& draw : draws) draw = sample(dist, rng);
  return draws;
}

}  // namespace bmp::gen
