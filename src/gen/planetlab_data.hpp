// Embedded synthetic stand-in for the PlanetLab outgoing-bandwidth sample
// used by the paper's PLab distribution (Fig. 19). See DESIGN.md
// ("Substitutions") for why and how this sample was produced.
#pragma once

#include <vector>

namespace bmp::gen {

/// 300 bandwidth values (Mbit/s-scale, heavy-tailed). Resample uniformly.
const std::vector<double>& planetlab_bandwidths();

}  // namespace bmp::gen
