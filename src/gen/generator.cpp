#include "bmp/gen/generator.hpp"

#include <stdexcept>
#include <vector>

#include "bmp/core/bounds.hpp"

namespace bmp::gen {

Instance random_instance(const InstanceConfig& config, util::Xoshiro256& rng) {
  if (config.size < 1) throw std::invalid_argument("random_instance: size < 1");
  if (config.p_open < 0.0 || config.p_open > 1.0) {
    throw std::invalid_argument("random_instance: p_open outside [0,1]");
  }
  std::vector<double> open;
  std::vector<double> guarded;
  for (int i = 0; i < config.size; ++i) {
    const double bw = sample(config.dist, rng);
    if (rng.uniform() < config.p_open) {
      open.push_back(bw);
    } else {
      guarded.push_back(bw);
    }
  }
  const double b0 = fixed_point_source_bandwidth(open, guarded);
  return {b0, std::move(open), std::move(guarded)};
}

}  // namespace bmp::gen
