// Random-instance generation for the Fig. 19 average-case experiment
// (§XII): `size` peers, each independently open with probability p_open,
// bandwidths i.i.d. from one of the six distributions, and the source
// bandwidth set to the fixed point of the cyclic bound so the source is
// exactly the cyclic bottleneck ("not a strong limiting bottleneck, and not
// sufficient by itself").
#pragma once

#include "bmp/core/instance.hpp"
#include "bmp/gen/distributions.hpp"
#include "bmp/util/rng.hpp"

namespace bmp::gen {

struct InstanceConfig {
  int size = 10;          ///< number of peers (source excluded)
  double p_open = 0.5;    ///< probability a peer is open
  Dist dist = Dist::kUnif100;
};

/// Draws one instance. Guarantees at least one peer; class draws can yield
/// n = 0 or m = 0, both of which the algorithms support.
Instance random_instance(const InstanceConfig& config, util::Xoshiro256& rng);

}  // namespace bmp::gen
