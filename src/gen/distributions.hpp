// The six bandwidth distributions of the Fig. 19 average-case study
// (§XII):
//   Unif100 : uniform on [1, 100]
//   Power1  : Pareto with mean 100, stddev 100
//   Power2  : Pareto with mean 100, stddev 1000
//   LN1     : log-normal with mean 100, stddev 100
//   LN2     : log-normal with mean 100, stddev 1000
//   PLab    : uniform resampling of the (synthetic) PlanetLab sample
//
// Pareto(shape a, scale x_m): mean = a x_m/(a-1), var = a x_m^2/((a-1)^2(a-2)),
// so var/mean^2 = 1/(a(a-2)) and a = 1 + sqrt(1 + (mean/std)^2).
// Log-normal: sigma^2 = ln(1 + std^2/mean^2), mu = ln(mean) - sigma^2/2.
#pragma once

#include <string>
#include <vector>

#include "bmp/util/rng.hpp"

namespace bmp::gen {

enum class Dist { kUnif100, kPower1, kPower2, kLogNormal1, kLogNormal2, kPlanetLab };

/// The six distributions in the paper's plotting order.
const std::vector<Dist>& all_distributions();
std::string name(Dist dist);

/// One bandwidth draw.
double sample(Dist dist, util::Xoshiro256& rng);

/// `count` i.i.d. bandwidth draws (runtime node-class generation).
std::vector<double> sample_many(Dist dist, int count, util::Xoshiro256& rng);

/// Parameterized building blocks (exposed for tests).
double sample_pareto(double mean, double stddev, util::Xoshiro256& rng);
double sample_lognormal(double mean, double stddev, util::Xoshiro256& rng);

/// Exact shape/scale used for a given Pareto parameterization.
struct ParetoParams {
  double shape;
  double scale;
};
ParetoParams pareto_params(double mean, double stddev);

}  // namespace bmp::gen
