// Sharded metric rollups — the observability layer the sharded /
// hierarchical runtime sits on.
//
// A ShardRegistry is a per-shard (per event loop) metric registry with
// *interned handles*: every series is registered once up front and
// recorded through an index into a flat array — no string hashing or map
// walk on the hot path (the per-sample cost runtime::MetricsRegistry
// pays). Four series kinds:
//   counters  monotone u64, merge by summation
//   gauges    double with a *configured reduction* (sum / min / max — the
//             commutative ones; "last write" deliberately doesn't exist
//             here because it has no order-independent merge)
//   sketches  obs::Sketch log-bucket histograms, merged bucket-wise
//   topk      obs::TopK heavy-hitter summaries, merged by exact union
//
// snapshot() freezes a shard into a RollupSnapshot; RollupSnapshot::merge
// folds two snapshots into one. Every merge is exact and commutative/
// associative (integer sums, min/max, bucket sums, summary unions), so a
// RollupTree can reduce S shards in any order, grouping, or parallel
// shape and the global snapshot — and everything rendered from it
// (to_metrics / to_json / exporters) — is byte-identical. That is the
// contract bench_obs gates and the sharded-runtime design relies on:
// telemetry cost is O(shards * series), never O(nodes * window).
//
// Snapshots serialize to a compact JSON (to_json / parse_rollup_json) so
// shards can be rolled up offline: tools/obs_query merges N dumped shard
// snapshots and answers quantile / heavy-hitter queries with no replay.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "bmp/obs/sketch.hpp"
#include "bmp/runtime/metrics.hpp"

namespace bmp::obs {

/// How a gauge folds across shards. Only commutative, associative
/// reductions are offered — a rollup must not depend on merge order.
enum class GaugeReduction { kSum, kMin, kMax };

[[nodiscard]] const char* to_string(GaugeReduction reduction);

/// A frozen shard (or a merge of several): the unit the rollup tree
/// reduces and the obs_query CLI consumes.
struct RollupSnapshot {
  struct GaugeCell {
    double value = 0.0;
    GaugeReduction reduction = GaugeReduction::kMax;
  };

  int shards = 1;  ///< shard snapshots folded into this one
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeCell> gauges;
  std::map<std::string, Sketch> sketches;
  std::map<std::string, TopK> topks;

  /// Exact fold: counters sum, gauges apply their reduction, sketches
  /// merge bucket-wise, top-K summaries union. Commutative and
  /// associative, so any merge tree over the same shard set yields a
  /// byte-identical snapshot. Throws on conflicting series definitions
  /// (same name, different reduction / sketch config / topk capacity).
  void merge(const RollupSnapshot& other);

  /// Flattens into the runtime's MetricsSnapshot form (the global view
  /// the rest of the stack already renders): counters and gauges map
  /// directly; each sketch becomes a HistogramStats whose quantiles carry
  /// the sketch's alpha relative-error contract and whose cumulative
  /// buckets are re-binned onto WindowedHistogram::kBucketBounds; each
  /// top-K row lands as a counter named `<series>.<key>`.
  [[nodiscard]] runtime::MetricsSnapshot to_metrics() const;

  /// Human-readable rollup: counters/gauges, one summary line per sketch,
  /// one table per top-K series. Deterministic.
  [[nodiscard]] std::string to_text() const;

  /// Compact deterministic JSON (one object, fixed key order) — the
  /// format parse_rollup_json() loads back losslessly.
  [[nodiscard]] std::string to_json() const;
  /// Writes to_json() to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;
};

/// Parses a RollupSnapshot::to_json() dump. Returns false on malformed
/// input (out is left unspecified).
bool parse_rollup_json(const std::string& text, RollupSnapshot& out);

/// Folds shard snapshots left to right (any order gives the same bytes).
[[nodiscard]] RollupSnapshot rollup(const std::vector<RollupSnapshot>& shards);

/// Per-shard registry with interned handles. Single-threaded by design:
/// one instance per shard event loop; cross-shard aggregation happens on
/// frozen snapshots, never on live registries.
class ShardRegistry {
 public:
  struct CounterHandle { std::size_t index = 0; };
  struct GaugeHandle { std::size_t index = 0; };
  struct SketchHandle { std::size_t index = 0; };
  struct TopKHandle { std::size_t index = 0; };

  /// Registration: idempotent per name (re-registering returns the same
  /// handle; conflicting definitions throw). Register at setup time, then
  /// record through the handle — the hot path is a bounds-unchecked array
  /// index away from the counter.
  CounterHandle counter(std::string_view name);
  GaugeHandle gauge(std::string_view name,
                    GaugeReduction reduction = GaugeReduction::kMax);
  SketchHandle sketch(std::string_view name, SketchConfig config = {});
  TopKHandle topk(std::string_view name, std::size_t capacity = 16);

  void inc(CounterHandle h, std::uint64_t delta = 1) {
    counter_values_[h.index] += delta;
  }
  void set_counter(CounterHandle h, std::uint64_t value) {
    counter_values_[h.index] = value;
  }
  void set(GaugeHandle h, double value) { gauge_values_[h.index] = value; }
  void observe(SketchHandle h, double value) {
    sketch_values_[h.index].record(value);
  }
  void offer(TopKHandle h, std::string_view key, std::uint64_t weight = 1) {
    topk_values_[h.index].offer(key, weight);
  }

  [[nodiscard]] std::uint64_t counter_value(CounterHandle h) const {
    return counter_values_[h.index];
  }
  [[nodiscard]] double gauge_value(GaugeHandle h) const {
    return gauge_values_[h.index];
  }
  [[nodiscard]] const Sketch& sketch_value(SketchHandle h) const {
    return sketch_values_[h.index];
  }
  [[nodiscard]] const TopK& topk_value(TopKHandle h) const {
    return topk_values_[h.index];
  }

  [[nodiscard]] std::size_t series() const {
    return counter_names_.size() + gauge_names_.size() +
           sketch_names_.size() + topk_names_.size();
  }

  /// Approximate heap footprint of the registry's telemetry state — the
  /// number bench_obs audits for the O(shards * series) memory bound.
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Freezes the shard into a mergeable snapshot (single-shard rollup).
  [[nodiscard]] RollupSnapshot snapshot() const;

  void clear();

 private:
  template <typename Handle>
  Handle intern(std::string_view name, std::vector<std::string>& names,
                std::map<std::string, std::size_t, std::less<>>& index);

  std::map<std::string, std::size_t, std::less<>> counter_index_;
  std::map<std::string, std::size_t, std::less<>> gauge_index_;
  std::map<std::string, std::size_t, std::less<>> sketch_index_;
  std::map<std::string, std::size_t, std::less<>> topk_index_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> sketch_names_;
  std::vector<std::string> topk_names_;
  std::vector<std::uint64_t> counter_values_;
  std::vector<double> gauge_values_;
  std::vector<GaugeReduction> gauge_reductions_;
  std::vector<Sketch> sketch_values_;
  std::vector<TopK> topk_values_;
};

/// Hierarchical reducer: shards fold into groups of `fanout`, groups fold
/// into one global snapshot — the shape a region-of-regions runtime will
/// produce. Because snapshot merge is exact and order-independent, the
/// tree shape is a pure performance choice; global() is byte-identical to
/// a flat left fold (a property the tests assert, not just assume).
class RollupTree {
 public:
  explicit RollupTree(int fanout = 8);

  void add(RollupSnapshot shard);
  [[nodiscard]] std::size_t size() const { return shards_.size(); }

  /// Reduces all added shards. Empty tree yields an empty snapshot with
  /// shards = 0.
  [[nodiscard]] RollupSnapshot global() const;

 private:
  int fanout_;
  std::vector<RollupSnapshot> shards_;
};

}  // namespace bmp::obs
