#include "bmp/obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>

namespace bmp::obs {

const char* to_string(Lane lane) {
  switch (lane) {
    case Lane::kRuntime: return "runtime";
    case Lane::kPlanner: return "planner";
    case Lane::kVerify: return "verify";
    case Lane::kSession: return "session";
    case Lane::kBroker: return "broker";
    case Lane::kExecution: return "execution";
    case Lane::kControl: return "control";
    case Lane::kLineage: return "lineage";
  }
  return "?";
}

namespace {

/// Fixed-format double: locale-independent and stable across platforms, so
/// golden traces and byte-identity tests hold.
std::string render_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

/// Microsecond timestamps get fixed decimals (Perfetto wants monotone-ish
/// numeric ts; scientific notation confuses some importers).
std::string render_us(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return buf;
}

bool needs_escape(char c) {
  return c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20;
}

void append_escaped(std::string& out, const char* text) {
  // Fast path: event names, categories and arg keys are plain identifiers,
  // so the whole string almost always appends in one piece.
  const char* p = text;
  while (*p != '\0' && !needs_escape(*p)) ++p;
  out.append(text, static_cast<std::size_t>(p - text));
  for (; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

TraceArg::TraceArg(const char* k, double value)
    : key(k), json(render_double(value)) {}
TraceArg::TraceArg(const char* k, int value)
    : key(k), json(std::to_string(value)) {}
TraceArg::TraceArg(const char* k, std::uint64_t value)
    : key(k), json(std::to_string(value)) {}
TraceArg::TraceArg(const char* k, bool value)
    : key(k), json(value ? "true" : "false") {}
TraceArg::TraceArg(const char* k, const char* value) : key(k) {
  json = "\"";
  append_escaped(json, value);
  json += "\"";
}

TraceSink::TraceSink(TraceConfig config) : config_(config) {
  events_.reserve(std::min<std::size_t>(config_.max_events, 4096));
}

void TraceSink::set_clock(double sim_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  clock_ = sim_seconds;
}

double TraceSink::clock() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return clock_;
}

void TraceSink::append(Lane lane, char phase, const char* cat,
                       const char* name, double sim_time, double sim_duration,
                       double wall_us, std::initializer_list<TraceArg> args) {
  std::string rendered;
  rendered.reserve(args.size() * 24);
  for (const auto& arg : args) {
    if (!rendered.empty()) rendered += ",";
    rendered += "\"";
    append_escaped(rendered, arg.key);
    rendered += "\":";
    rendered += arg.json;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= config_.max_events) {
    ++dropped_;
    return;
  }
  Event event;
  event.seq = next_seq_++;
  event.lane = static_cast<int>(lane);
  event.phase = phase;
  event.cat = cat;
  event.name = name;
  event.ts_us = sim_time * 1e6;
  event.dur_us = sim_duration * 1e6;
  event.wall_us = config_.wall_durations ? wall_us : -1.0;
  event.args = std::move(rendered);
  if (phase == 'X') ++span_count_;
  events_.push_back(std::move(event));
}

void TraceSink::complete(Lane lane, const char* cat, const char* name,
                         std::initializer_list<TraceArg> args,
                         double wall_us) {
  append(lane, 'X', cat, name, clock(), 0.0, wall_us, args);
}

void TraceSink::complete_at(Lane lane, const char* cat, const char* name,
                            double sim_time, double sim_duration,
                            std::initializer_list<TraceArg> args,
                            double wall_us) {
  append(lane, 'X', cat, name, sim_time, sim_duration, wall_us, args);
}

void TraceSink::instant(Lane lane, const char* cat, const char* name,
                        std::initializer_list<TraceArg> args) {
  append(lane, 'i', cat, name, clock(), 0.0, -1.0, args);
}

void TraceSink::instant_at(Lane lane, const char* cat, const char* name,
                           double sim_time,
                           std::initializer_list<TraceArg> args) {
  append(lane, 'i', cat, name, sim_time, 0.0, -1.0, args);
}

std::size_t TraceSink::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::size_t TraceSink::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return span_count_;
}

std::uint64_t TraceSink::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::string TraceSink::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"traceEvents\":[\n";
  // Metadata first: one named track per lane, so Perfetto labels the rows.
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
         "\"args\":{\"name\":\"bmp\"}}";
  for (int lane = 0; lane <= static_cast<int>(Lane::kLineage); ++lane) {
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
    out += std::to_string(lane);
    out += ",\"args\":{\"name\":\"";
    out += to_string(static_cast<Lane>(lane));
    out += "\"}}";
  }
  for (const auto& event : events_) {
    out += ",\n{\"name\":\"";
    append_escaped(out, event.name);
    out += "\",\"cat\":\"";
    append_escaped(out, event.cat);
    out += "\",\"ph\":\"";
    out += event.phase;
    out += "\",\"ts\":";
    out += render_us(event.ts_us);
    if (event.phase == 'X') {
      out += ",\"dur\":";
      out += render_us(event.dur_us);
    } else {
      out += ",\"s\":\"t\"";
    }
    out += ",\"pid\":0,\"tid\":";
    out += std::to_string(event.lane);
    out += ",\"args\":{\"seq\":";
    out += std::to_string(event.seq);
    if (event.wall_us >= 0.0) {
      out += ",\"wall_us\":";
      out += render_double(event.wall_us);
    }
    if (!event.args.empty()) {
      out += ",";
      out += event.args;
    }
    out += "}}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
         "\"clock\":\"sim-time-microseconds\",\"dropped\":";
  out += std::to_string(dropped_);
  out += "}}\n";
  return out;
}

bool TraceSink::write(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

namespace {
std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

WallTimer::WallTimer(const TraceSink* sink)
    : armed_(sink != nullptr && sink->wall_durations()) {
  if (armed_) start_ns_ = steady_ns();
}

double WallTimer::elapsed_us() const {
  if (!armed_) return -1.0;
  return static_cast<double>(steady_ns() - start_ns_) * 1e-3;
}

}  // namespace bmp::obs
