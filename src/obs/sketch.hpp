// Mergeable distribution sketches for telemetry at scale.
//
// `Sketch` is a deterministic fixed-boundary log-bucket histogram in the
// DDSketch family: values land in buckets with exponentially growing
// boundaries gamma^i where gamma = (1 + alpha) / (1 - alpha), so any
// quantile read back from the sketch is within a *relative* error of
// alpha of the true order statistic (contract spelled out on quantile()).
// Unlike runtime::WindowedHistogram — which keeps a 1024-sample ring per
// series and sorts it on every export — a sketch stores only bucket
// counters: O(log_gamma(max/min)) integers per series regardless of how
// many observations flowed through it, recording is O(1) (amortized), and
// two sketches merge *losslessly* by adding bucket counts. Integer bucket
// addition is commutative and associative, so a fleet of per-shard
// sketches rolls up to a byte-identical global sketch no matter the merge
// order or grouping — the property the sharded-runtime rollup
// (obs/rollup.hpp) is built on.
//
// `TopK` is the companion heavy-hitter tracker (space-saving algorithm):
// bounded-memory "worst offenders" (nodes by retransmits, edges by
// stalls, ...) without a per-entity series. Recording is the classic
// stream algorithm (deterministic min-eviction with lexicographic
// tie-break); merging takes the exact union of the summaries (counts and
// error bounds add), which again is commutative/associative, and
// truncation to K happens only at query time under a total order — so the
// merged top table is also independent of shard merge order.
//
// Everything here is single-threaded by design (one instance per shard /
// event loop), mirroring runtime::MetricsRegistry.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace bmp::obs {

struct SketchConfig {
  /// Relative-accuracy target: quantile(q) is within alpha of the true
  /// value, relatively. alpha = 0.01 needs ~log(1e12)/log(1.0202) ≈ 1400
  /// buckets to span twelve decades — a few KB per series, worst case.
  double alpha = 0.01;
  /// Values in [0, min_value) collapse into the zero bucket (reported as
  /// 0.0). Keeps the bucket range finite for denormal-ish inputs.
  double min_value = 1e-9;
};

/// Log-bucket histogram sketch with exact, order-independent merge.
class Sketch {
 public:
  explicit Sketch(SketchConfig config = {});

  /// O(1) amortized. Throws on negative or non-finite values (telemetry
  /// here is latencies / ratios / counts — all non-negative by
  /// construction; a negative value is a caller bug worth failing loud).
  void record(double value);
  /// Adds `weight` observations of `value` in one step.
  void record(double value, std::uint64_t weight);

  /// Exact lossless merge: bucket counts add, min/max combine. The result
  /// equals the sketch of the concatenated observation streams, so merge
  /// is commutative and associative (integer addition), and any merge
  /// tree over the same shard set produces a byte-identical sketch.
  /// Throws if the configs (alpha / min_value) differ.
  void merge(const Sketch& other);

  [[nodiscard]] std::uint64_t count() const { return zero_count_ + bucket_total_; }
  [[nodiscard]] std::uint64_t zero_count() const { return zero_count_; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Approximate sum, reconstructed from bucket representatives at read
  /// time (not accumulated at record time): each observation contributes
  /// its bucket's midpoint, so the total carries the same relative-error
  /// bound alpha — and, crucially, is a pure function of the (exactly
  /// merged) bucket counts, keeping exports byte-identical across merge
  /// orders where a floating-point running sum would not be.
  [[nodiscard]] double sum() const;
  [[nodiscard]] double mean() const;

  /// Relative-error contract: for q in [0, 1], returns a value v with
  ///   |v - x_q| <= alpha * x_q
  /// where x_q is the nearest-rank q-quantile of everything recorded
  /// (values under min_value read back as 0.0). Returns 0.0 when empty.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] const SketchConfig& config() const { return config_; }
  [[nodiscard]] double gamma() const { return gamma_; }

  /// Dense bucket store: counts()[k] observations fell in bucket index
  /// `bucket_offset() + k`, i.e. in (gamma^(i-1), gamma^i] for
  /// i = bucket_offset() + k. Exposed for exporters and serialization.
  [[nodiscard]] std::int32_t bucket_offset() const { return offset_; }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }
  /// Upper boundary gamma^i of bucket index i.
  [[nodiscard]] double bucket_upper(std::int32_t index) const;
  /// Representative value 2*gamma^i/(gamma+1) of bucket index i — the
  /// point minimizing worst-case relative error over the bucket.
  [[nodiscard]] double bucket_value(std::int32_t index) const;

  void clear();

  /// Deserialization hook (parse_rollup_json): installs a dumped bucket
  /// store verbatim — exact by construction, so a dump -> load -> dump
  /// cycle is byte-identical.
  void restore(std::int32_t offset, std::vector<std::uint64_t> counts,
               std::uint64_t zero_count, double min, double max);

 private:
  [[nodiscard]] std::int32_t index_of(double value) const;

  SketchConfig config_;
  double gamma_ = 0.0;
  double inv_log_gamma_ = 0.0;
  /// Last bucketed value -> index memo. Telemetry streams repeat values
  /// heavily (a rate-paced pipe delivers identical transfer times), and an
  /// equal double maps to an equal bucket by construction, so the memo
  /// skips the log() without touching the mapping contract.
  double memo_value_ = -1.0;
  std::int32_t memo_index_ = 0;
  std::uint64_t zero_count_ = 0;
  std::uint64_t bucket_total_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  /// Dense contiguous counters; counts_[k] belongs to bucket offset_ + k.
  /// Grows at either end as the observed range widens.
  std::int32_t offset_ = 0;
  std::vector<std::uint64_t> counts_;
};

/// One heavy-hitter row: `count` overestimates the key's true weight by at
/// most `error` (space-saving invariant: true <= count, count - error <=
/// true).
struct TopKEntry {
  std::string key;
  std::uint64_t count = 0;
  std::uint64_t error = 0;
};

/// Space-saving heavy hitters with order-independent merge.
class TopK {
 public:
  explicit TopK(std::size_t capacity = 16);

  /// Streams `weight` onto `key`. Bounded memory: at most `capacity`
  /// tracked keys; when full, the minimum-count entry (ties broken by
  /// lexicographically smallest key, so the eviction victim is a pure
  /// function of the summary) is recycled and its count becomes the new
  /// key's error bound.
  void offer(std::string_view key, std::uint64_t weight = 1);

  /// Union-merge: shared keys add counts and error bounds, disjoint keys
  /// concatenate. Deliberately does NOT truncate back to `capacity`: a
  /// merge of S shard summaries holds at most S * capacity entries
  /// (bounded by shards, not by population), and deferring truncation to
  /// top() is what makes the merge exactly commutative and associative —
  /// so the global heavy-hitter table is byte-identical for every shard
  /// merge order.
  void merge(const TopK& other);

  /// The K heaviest entries under the total order (count desc, error asc,
  /// key asc) — deterministic even among ties. `k == 0` uses capacity().
  [[nodiscard]] std::vector<TopKEntry> top(std::size_t k = 0) const;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t tracked() const { return entries_.size(); }
  /// Total weight streamed into (or merged into) this summary.
  [[nodiscard]] std::uint64_t total_weight() const { return total_; }

  void clear();

  /// Deserialization hooks (parse_rollup_json): re-insert a summary row /
  /// the streamed total verbatim. Like merge(), restore() may carry the
  /// summary past `capacity` — dumps of merged rollups load losslessly.
  void restore(std::string_view key, std::uint64_t count,
               std::uint64_t error) {
    entries_.emplace(std::string(key), Cell{count, error});
  }
  void restore_total(std::uint64_t total) { total_ = total; }

 private:
  struct Cell {
    std::uint64_t count = 0;
    std::uint64_t error = 0;
  };
  std::size_t capacity_;
  std::uint64_t total_ = 0;
  /// Ordered map: deterministic iteration for eviction tie-breaks and
  /// serialization. Size <= capacity_ while streaming; may exceed it after
  /// merges (see merge()).
  std::map<std::string, Cell, std::less<>> entries_;
};

}  // namespace bmp::obs
