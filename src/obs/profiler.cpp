#include "bmp/obs/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace bmp::obs {

namespace {

std::string escaped(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Wall time rendered at fixed precision so the opt-in output is at least
/// stable in *format* (its values are nondeterministic by nature).
std::string wall_str(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

}  // namespace

Profiler::Profiler(ProfilerConfig config) : config_(config) {}

void Profiler::enter(std::string_view phase) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = phases_.find(phase);
  if (it == phases_.end()) it = phases_.emplace(std::string(phase), Phase{}).first;
  ++it->second.calls;
}

void Profiler::count(std::string_view phase, std::string_view counter,
                     std::uint64_t delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = phases_.find(phase);
  if (it == phases_.end()) it = phases_.emplace(std::string(phase), Phase{}).first;
  auto cit = it->second.counters.find(std::string(counter));
  if (cit == it->second.counters.end()) {
    it->second.counters.emplace(std::string(counter), delta);
  } else {
    cit->second += delta;
  }
}

void Profiler::add_wall(std::string_view phase, double us) {
  if (!config_.wall_time) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = phases_.find(phase);
  if (it == phases_.end()) it = phases_.emplace(std::string(phase), Phase{}).first;
  it->second.wall_us += us;
}

bool Profiler::empty() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return phases_.empty();
}

std::size_t Profiler::phase_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return phases_.size();
}

std::uint64_t Profiler::calls(std::string_view phase) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = phases_.find(phase);
  return it == phases_.end() ? 0 : it->second.calls;
}

std::uint64_t Profiler::counter(std::string_view phase,
                                std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = phases_.find(phase);
  if (it == phases_.end()) return 0;
  const auto cit = it->second.counters.find(std::string(name));
  return cit == it->second.counters.end() ? 0 : cit->second;
}

std::uint64_t Profiler::total(std::string_view counter) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t sum = 0;
  const std::string name(counter);
  for (const auto& [path, phase] : phases_) {
    (void)path;
    const auto cit = phase.counters.find(name);
    if (cit != phase.counters.end()) sum += cit->second;
  }
  return sum;
}

std::uint64_t Profiler::work_of(const Phase& phase) {
  if (phase.counters.empty()) return phase.calls;
  std::uint64_t sum = 0;
  for (const auto& [name, value] : phase.counters) {
    (void)name;
    sum += value;
  }
  return sum;
}

std::uint64_t Profiler::work(std::string_view phase) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = phases_.find(phase);
  return it == phases_.end() ? 0 : work_of(it->second);
}

std::uint64_t Profiler::total_work() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t sum = 0;
  for (const auto& [path, phase] : phases_) {
    (void)path;
    sum += work_of(phase);
  }
  return sum;
}

double Profiler::wall_us(std::string_view phase) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = phases_.find(phase);
  return it == phases_.end() ? 0.0 : it->second.wall_us;
}

namespace {

/// Tree node materialized from the flat path map at export time. Interior
/// segments that were never recorded directly exist with null stats.
struct TreeNode {
  std::uint64_t calls = 0;
  std::uint64_t work = 0;
  double wall_us = 0.0;
  bool recorded = false;
  std::string counters_json;  ///< rendered "{...}" (empty = none)
  std::map<std::string, TreeNode> children;
};

void render_tree(const TreeNode& node, bool wall, std::string& out,
                 int depth) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  out += "{\n";
  out += pad + "  \"calls\": " + std::to_string(node.calls) + ",\n";
  out += pad + "  \"work\": " + std::to_string(node.work) + ",\n";
  if (wall) {
    out += pad + "  \"wall_us\": " + wall_str(node.wall_us) + ",\n";
  }
  out += pad + "  \"counters\": " +
         (node.counters_json.empty() ? "{}" : node.counters_json) + ",\n";
  out += pad + "  \"children\": {";
  bool first = true;
  for (const auto& [name, child] : node.children) {
    out += first ? "\n" : ",\n";
    first = false;
    out += pad + "    \"" + escaped(name) + "\": ";
    render_tree(child, wall, out, depth + 2);
  }
  if (!first) out += "\n" + pad + "  ";
  out += "}\n" + pad + "}";
}

std::string render_counters(
    const std::map<std::string, std::uint64_t>& counters) {
  if (counters.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + escaped(name) + "\": " + std::to_string(value);
  }
  out += "}";
  return out;
}

}  // namespace

std::string Profiler::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  TreeNode root;
  for (const auto& [path, phase] : phases_) {
    TreeNode* node = &root;
    std::size_t begin = 0;
    while (begin <= path.size()) {
      const std::size_t slash = path.find('/', begin);
      const std::string segment =
          path.substr(begin, slash == std::string::npos ? std::string::npos
                                                        : slash - begin);
      node = &node->children[segment];
      if (slash == std::string::npos) break;
      begin = slash + 1;
    }
    node->recorded = true;
    node->calls = phase.calls;
    node->work = work_of(phase);
    node->wall_us = phase.wall_us;
    node->counters_json = render_counters(phase.counters);
  }
  std::string out = "{\n  \"schema\": 1,\n  \"wall_time\": ";
  out += config_.wall_time ? "true" : "false";
  out += ",\n  \"phases\": {";
  bool first = true;
  for (const auto& [name, child] : root.children) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + escaped(name) + "\": ";
    render_tree(child, config_.wall_time, out, 2);
  }
  if (!first) out += "\n  ";
  out += "}\n}\n";
  return out;
}

std::string Profiler::to_collapsed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [path, phase] : phases_) {
    std::string line = path;
    std::replace(line.begin(), line.end(), '/', ';');
    out += line + " " + std::to_string(work_of(phase)) + "\n";
  }
  return out;
}

std::string Profiler::summary_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"phases\": {";
  bool first = true;
  std::uint64_t total = 0;
  for (const auto& [path, phase] : phases_) {
    if (!first) out += ", ";
    first = false;
    const std::uint64_t w = work_of(phase);
    total += w;
    out += "\"" + escaped(path) + "\": {\"calls\": " +
           std::to_string(phase.calls) + ", \"work\": " + std::to_string(w);
    const std::string counters = render_counters(phase.counters);
    if (!counters.empty()) out += ", \"counters\": " + counters;
    out += "}";
  }
  out += "}, \"total_work\": " + std::to_string(total) + "}";
  return out;
}

std::string Profiler::attribution_table(std::size_t top_n) const {
  std::vector<std::pair<std::string, Phase>> ranked;
  double total_wall = 0.0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ranked.reserve(phases_.size());
    for (const auto& [path, phase] : phases_) {
      ranked.emplace_back(path, phase);
      total_wall += phase.wall_us;
    }
  }
  std::uint64_t total = 0;
  for (const auto& [path, phase] : ranked) {
    (void)path;
    total += work_of(phase);
  }
  // Work-descending, path-ascending on ties: a deterministic ranking.
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     const std::uint64_t wa = work_of(a.second);
                     const std::uint64_t wb = work_of(b.second);
                     if (wa != wb) return wa > wb;
                     return a.first < b.first;
                   });
  if (ranked.size() > top_n) ranked.resize(top_n);

  std::size_t width = 5;  // "phase"
  for (const auto& [path, phase] : ranked) {
    (void)phase;
    width = std::max(width, path.size());
  }
  std::ostringstream os;
  os << "performance attribution (top " << ranked.size() << " of "
     << phase_count() << " phases, by work units)\n";
  os << "  " << std::string(width, '-') << "\n";
  for (const auto& [path, phase] : ranked) {
    const std::uint64_t w = work_of(phase);
    const double share = total == 0 ? 0.0 : 100.0 * static_cast<double>(w) /
                                                static_cast<double>(total);
    char head[64];
    std::snprintf(head, sizeof(head), "%5.1f%%  ", share);
    os << "  " << head << path << std::string(width - path.size(), ' ')
       << "  calls=" << phase.calls << " work=" << w;
    if (config_.wall_time) {
      char wall[48];
      std::snprintf(wall, sizeof(wall), " wall=%.2fms", phase.wall_us / 1e3);
      os << wall;
      if (total_wall > 0.0) {
        std::snprintf(wall, sizeof(wall), " (%.1f%%)",
                      100.0 * phase.wall_us / total_wall);
        os << wall;
      }
    }
    // The phase's dominant counter, so the table names the work unit.
    const std::map<std::string, std::uint64_t>& counters = phase.counters;
    if (!counters.empty()) {
      auto top = counters.begin();
      for (auto it = counters.begin(); it != counters.end(); ++it) {
        if (it->second > top->second) top = it;
      }
      os << "  [" << top->first << "=" << top->second << "]";
    }
    os << "\n";
  }
  return os.str();
}

bool Profiler::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

bool Profiler::write_collapsed(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_collapsed();
  return static_cast<bool>(out);
}

void Profiler::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  phases_.clear();
}

}  // namespace bmp::obs
