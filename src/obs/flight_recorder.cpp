#include "bmp/obs/flight_recorder.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace bmp::obs {

namespace {

std::string render_time(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

void append_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(std::move(config)) {
  if (config_.per_channel == 0) {
    throw std::invalid_argument("FlightRecorder: per_channel must be > 0");
  }
}

void FlightRecorder::record(double time, int channel, std::string kind,
                            std::string detail) {
  auto& ring = channels_[channel];
  if (ring.size() >= config_.per_channel) {
    ring.pop_front();
    ++evicted_;
  }
  FlightEvent event;
  event.seq = next_seq_++;
  event.time = time;
  event.channel = channel;
  event.kind = std::move(kind);
  event.detail = std::move(detail);
  ring.push_back(std::move(event));
  ++recorded_;
}

bool FlightRecorder::record_failure(double time, int channel, const char* what,
                                    const std::vector<std::string>& violations) {
  for (const auto& violation : violations) {
    record(time, channel, "failure", std::string(what) + ": " + violation);
  }
  if (violations.empty()) {
    record(time, channel, "failure", what);
  }
  if (config_.dump_path.empty()) return false;
  return dump(config_.dump_path);
}

std::vector<FlightEvent> FlightRecorder::channel_events(int channel) const {
  const auto it = channels_.find(channel);
  if (it == channels_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::string FlightRecorder::to_json() const {
  std::string out = "{\"channels\":{";
  bool first_channel = true;
  for (const auto& [channel, ring] : channels_) {
    if (!first_channel) out += ",";
    first_channel = false;
    out += "\"";
    out += std::to_string(channel);
    out += "\":[";
    bool first_event = true;
    for (const auto& event : ring) {
      if (!first_event) out += ",";
      first_event = false;
      out += "\n{\"seq\":";
      out += std::to_string(event.seq);
      out += ",\"time\":";
      out += render_time(event.time);
      out += ",\"kind\":\"";
      append_escaped(out, event.kind);
      out += "\",\"detail\":\"";
      append_escaped(out, event.detail);
      out += "\"}";
    }
    out += "]";
  }
  out += "},\"recorded\":";
  out += std::to_string(recorded_);
  out += ",\"evicted\":";
  out += std::to_string(evicted_);
  out += "}\n";
  return out;
}

bool FlightRecorder::dump(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << to_json();
  if (!out) return false;
  ++dumps_;
  return true;
}

}  // namespace bmp::obs
