#include "bmp/obs/export.hpp"

#include <cctype>
#include <cstdio>

namespace bmp::obs {

namespace {

std::string render_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

std::string sanitize(std::string_view prefix, const std::string& name) {
  std::string out(prefix);
  for (const char c : name) {
    const auto u = static_cast<unsigned char>(c);
    out += (std::isalnum(u) != 0 || c == '_') ? c : '_';
  }
  return out;
}

bool skip(const std::string& name, bool include_timing) {
  return !include_timing && runtime::MetricsRegistry::is_timing(name);
}

}  // namespace

std::string to_prometheus(const runtime::MetricsSnapshot& snap,
                          bool include_timing, std::string_view prefix) {
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    if (skip(name, include_timing)) continue;
    const std::string metric = sanitize(prefix, name) + "_total";
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    if (skip(name, include_timing)) continue;
    const std::string metric = sanitize(prefix, name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " " + render_double(value) + "\n";
  }
  for (const auto& [name, stats] : snap.histograms) {
    if (skip(name, include_timing)) continue;
    const std::string metric = sanitize(prefix, name);
    out += "# TYPE " + metric + " summary\n";
    out += metric + "{quantile=\"0.5\"} " + render_double(stats.p50) + "\n";
    out += metric + "{quantile=\"0.9\"} " + render_double(stats.p90) + "\n";
    out += metric + "{quantile=\"0.99\"} " + render_double(stats.p99) + "\n";
    out += metric + "_sum " + render_double(stats.sum) + "\n";
    out += metric + "_count " + std::to_string(stats.count) + "\n";
    // The same metric additionally as a native Prometheus histogram:
    // cumulative fixed-bound buckets over ALL observations (the summary's
    // quantiles cover only the retained window). A distinct `_hist` family
    // because one metric name cannot carry two TYPEs.
    if (!stats.buckets.empty()) {
      const std::string hist = metric + "_hist";
      out += "# TYPE " + hist + " histogram\n";
      for (std::size_t i = 0;
           i < runtime::WindowedHistogram::kBucketBounds.size(); ++i) {
        out += hist + "_bucket{le=\"" +
               render_double(runtime::WindowedHistogram::kBucketBounds[i]) +
               "\"} " + std::to_string(stats.buckets[i]) + "\n";
      }
      out += hist + "_bucket{le=\"+Inf\"} " + std::to_string(stats.count) +
             "\n";
      out += hist + "_sum " + render_double(stats.sum) + "\n";
      out += hist + "_count " + std::to_string(stats.count) + "\n";
    }
  }
  return out;
}

std::string to_json(const runtime::MetricsSnapshot& snap,
                    bool include_timing) {
  // Metric names are dot-separated identifiers (no quotes/backslashes to
  // escape); keys render verbatim.
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (skip(name, include_timing)) continue;
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (skip(name, include_timing)) continue;
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + render_double(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, stats] : snap.histograms) {
    if (skip(name, include_timing)) continue;
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{\"count\":" + std::to_string(stats.count) +
           ",\"sum\":" + render_double(stats.sum) +
           ",\"min\":" + render_double(stats.min) +
           ",\"max\":" + render_double(stats.max) +
           ",\"mean\":" + render_double(stats.mean) +
           ",\"p50\":" + render_double(stats.p50) +
           ",\"p90\":" + render_double(stats.p90) +
           ",\"p99\":" + render_double(stats.p99) + "}";
  }
  out += "}}";
  return out;
}

std::string to_prometheus(const RollupSnapshot& snap, bool include_timing,
                          std::string_view prefix) {
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    if (skip(name, include_timing)) continue;
    const std::string metric = sanitize(prefix, name) + "_total";
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, cell] : snap.gauges) {
    if (skip(name, include_timing)) continue;
    const std::string metric = sanitize(prefix, name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " " + render_double(cell.value) + "\n";
  }
  for (const auto& [name, sketch] : snap.sketches) {
    if (skip(name, include_timing)) continue;
    const std::string metric = sanitize(prefix, name);
    out += "# TYPE " + metric + " summary\n";
    out += metric + "{quantile=\"0.5\"} " +
           render_double(sketch.quantile(0.5)) + "\n";
    out += metric + "{quantile=\"0.9\"} " +
           render_double(sketch.quantile(0.9)) + "\n";
    out += metric + "{quantile=\"0.99\"} " +
           render_double(sketch.quantile(0.99)) + "\n";
    out += metric + "_sum " + render_double(sketch.sum()) + "\n";
    out += metric + "_count " + std::to_string(sketch.count()) + "\n";
    // Native cumulative histogram on the sketch's own log-bucket grid.
    // Distinct `_sketch` family (one name cannot carry two TYPEs); empty
    // buckets are elided — cumulative counts only move at occupied ones.
    const std::string hist = metric + "_sketch";
    out += "# TYPE " + hist + " histogram\n";
    std::uint64_t running = sketch.zero_count();
    if (running > 0) {
      out += hist + "_bucket{le=\"" +
             render_double(sketch.config().min_value) + "\"} " +
             std::to_string(running) + "\n";
    }
    const std::vector<std::uint64_t>& counts = sketch.counts();
    for (std::size_t k = 0; k < counts.size(); ++k) {
      if (counts[k] == 0) continue;
      running += counts[k];
      out += hist + "_bucket{le=\"" +
             render_double(sketch.bucket_upper(
                 sketch.bucket_offset() + static_cast<std::int32_t>(k))) +
             "\"} " + std::to_string(running) + "\n";
    }
    out += hist + "_bucket{le=\"+Inf\"} " + std::to_string(sketch.count()) +
           "\n";
    out += hist + "_sum " + render_double(sketch.sum()) + "\n";
    out += hist + "_count " + std::to_string(sketch.count()) + "\n";
  }
  for (const auto& [name, topk] : snap.topks) {
    if (skip(name, include_timing)) continue;
    const std::string metric = sanitize(prefix, name);
    out += "# TYPE " + metric + " gauge\n";
    for (const TopKEntry& row : topk.top()) {
      out += metric + "{key=\"" + row.key + "\"} " +
             std::to_string(row.count) + "\n";
    }
  }
  return out;
}

std::string to_json(const RollupSnapshot& snap, bool include_timing) {
  std::string out = "{\"shards\":" + std::to_string(snap.shards) +
                    ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (skip(name, include_timing)) continue;
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, cell] : snap.gauges) {
    if (skip(name, include_timing)) continue;
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + render_double(cell.value);
  }
  out += "},\"sketches\":{";
  first = true;
  for (const auto& [name, sketch] : snap.sketches) {
    if (skip(name, include_timing)) continue;
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{\"count\":" + std::to_string(sketch.count()) +
           ",\"sum\":" + render_double(sketch.sum()) +
           ",\"min\":" + render_double(sketch.min()) +
           ",\"max\":" + render_double(sketch.max()) +
           ",\"mean\":" + render_double(sketch.mean()) +
           ",\"p50\":" + render_double(sketch.quantile(0.50)) +
           ",\"p90\":" + render_double(sketch.quantile(0.90)) +
           ",\"p99\":" + render_double(sketch.quantile(0.99)) +
           ",\"alpha\":" + render_double(sketch.config().alpha) + "}";
  }
  out += "},\"topk\":{";
  first = true;
  for (const auto& [name, topk] : snap.topks) {
    if (skip(name, include_timing)) continue;
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":[";
    bool first_row = true;
    for (const TopKEntry& row : topk.top()) {
      if (!first_row) out += ",";
      first_row = false;
      out += "[\"" + row.key + "\"," + std::to_string(row.count) + "," +
             std::to_string(row.error) + "]";
    }
    out += "]";
  }
  out += "}}";
  return out;
}

}  // namespace bmp::obs
