// SloMonitor — deterministic per-channel SLO evaluation on the control
// sample grid.
//
// Three SLIs, all computed from scenario-clock telemetry (never wall
// time, so two runs — at any planner thread count — produce byte-identical
// alert sequences):
//   * worst-node sustained ratio: min over judgeable nodes of delivered
//     data / design-rate integral (the finalize_stream measure, sampled
//     live at every control tick);
//   * chunk-latency p99 over a sliding window of recent deliveries;
//   * time-to-recover: once a control directive fires, the sustained SLI
//     must climb back over its target within `recover_timeout` seconds.
//
// Alerting is multi-window burn-rate in the SRE sense: each tick scores
// "violating" when any SLI misses its target; the monitor keeps a short
// and a long window of tick outcomes and transitions
//   ok   -> warn  when the short window burns past `warn_burn`,
//   warn -> page  when short AND long windows burn past `page_burn`,
//   back down as the burn rates clear.
// Every transition appends an SloAlert (bounded ring, drop counter)
// carrying the violating window sample, and is mirrored into the flight
// recorder (kind "slo"), so a page links straight to the black box.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "bmp/runtime/metrics.hpp"

namespace bmp::obs {

class FlightRecorder;

struct SloConfig {
  double target_sustained = 0.7;   ///< worst-node sustained ratio floor
  double target_latency_p99 = 5.0; ///< chunk-latency p99 ceiling, seconds
  double recover_timeout = 3.0;    ///< directive -> sustained-ok deadline, s
  int short_window = 4;            ///< ticks in the fast burn window
  int long_window = 12;            ///< ticks in the slow burn window
  double warn_burn = 0.5;          ///< short-window violation fraction
  double page_burn = 0.75;         ///< short+long violation fraction
  std::size_t latency_window = 512;  ///< recent deliveries for the p99 SLI
  std::size_t max_alerts = 256;    ///< alert ring bound
};

enum class SloState : int { kOk = 0, kWarn = 1, kPage = 2 };

[[nodiscard]] const char* to_string(SloState state);

/// One control-tick observation of every SLI.
struct SloSample {
  double time = 0.0;
  double sustained_worst = 1.0;  ///< 1.0 when no node is judgeable yet
  double latency_p99 = 0.0;
  double recover_wait = 0.0;     ///< seconds since the oldest open directive
  bool violating_sustained = false;
  bool violating_latency = false;
  bool violating_recover = false;
  [[nodiscard]] bool violating() const {
    return violating_sustained || violating_latency || violating_recover;
  }
  /// The SLI that tripped (worst-first: sustained, recover, latency).
  [[nodiscard]] const char* worst_sli() const;
};

/// One state transition, with the evidence that caused it.
struct SloAlert {
  std::uint64_t seq = 0;
  double time = 0.0;
  SloState from = SloState::kOk;
  SloState to = SloState::kOk;
  std::string sli;        ///< violating SLI (or "clear" on downgrades)
  double short_burn = 0.0;
  double long_burn = 0.0;
  SloSample sample;       ///< the tick sample that sealed the transition
};

class SloMonitor {
 public:
  SloMonitor(int channel, SloConfig config = {},
             FlightRecorder* recorder = nullptr);

  /// Feed one delivered chunk's latency (arrival - emission, seconds).
  void observe_latency(double latency);
  /// Arms the time-to-recover SLI; called when a directive is applied.
  /// Re-arming while already armed keeps the earlier deadline.
  void on_directive(double time);

  /// Evaluates one control tick. `sustained_worst` is the worst judgeable
  /// node's sustained ratio (pass 1.0 when nothing is judgeable yet).
  /// Returns the state after the tick.
  SloState evaluate(double time, double sustained_worst);

  [[nodiscard]] int channel() const { return channel_; }
  [[nodiscard]] SloState state() const { return state_; }
  [[nodiscard]] const std::vector<SloAlert>& alerts() const { return alerts_; }
  [[nodiscard]] std::uint64_t dropped_alerts() const { return dropped_; }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  [[nodiscard]] std::uint64_t pages() const { return pages_; }
  [[nodiscard]] std::uint64_t warns() const { return warns_; }

  /// Deterministic JSON of the alert sequence (the byte-identity surface
  /// the determinism tests compare).
  [[nodiscard]] std::string alerts_json() const;

 private:
  [[nodiscard]] double burn(const std::deque<bool>& window) const;
  void transition(SloState to, const SloSample& sample, double short_burn,
                  double long_burn);

  int channel_;
  SloConfig config_;
  FlightRecorder* recorder_;
  SloState state_ = SloState::kOk;
  runtime::WindowedHistogram latencies_;
  std::deque<bool> short_window_;
  std::deque<bool> long_window_;
  double directive_time_ = -1.0;  ///< < 0: no open recovery deadline
  std::vector<SloAlert> alerts_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t ticks_ = 0;
  std::uint64_t pages_ = 0;
  std::uint64_t warns_ = 0;
};

}  // namespace bmp::obs
