// TraceSink — structured, deterministic tracing for the five-layer loop.
//
// Events carry sim-time timestamps (the scenario clock), not wall time, so
// two runs of the same scenario produce byte-identical traces regardless of
// host load or planner thread count. Wall-clock durations can be opted in
// (`TraceConfig::wall_durations`) for profiling; they ride along as an
// `wall_us` arg and deliberately break byte-identity, mirroring the
// `timing.*` convention in MetricsRegistry.
//
// The sink is thread-safe (the planner pool may race with the event loop),
// but determinism is an append-order contract owned by the call sites: the
// runtime's event loop is single-threaded, and `Planner::plan_batch` emits
// its per-item spans after the worker barrier in work-item index order, so
// the sequence numbers assigned at append are reproducible.
//
// Output is Chrome trace-event JSON (`{"traceEvents":[...]}`) loadable in
// Perfetto / chrome://tracing. Lanes map to `tid` so the subsystems render
// as parallel tracks.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <vector>

namespace bmp::obs {

/// Logical track ("thread" in the trace-viewer sense) an event belongs to.
enum class Lane : int {
  kRuntime = 0,    ///< scenario event loop
  kPlanner = 1,    ///< Planner::plan / plan_batch
  kVerify = 2,     ///< flow::Verifier tiers
  kSession = 3,    ///< Session repair / adapt
  kBroker = 4,     ///< capacity admissions and renegotiations
  kExecution = 5,  ///< chunk lifecycle (sampled)
  kControl = 6,    ///< controller boundaries and directives
  kLineage = 7,    ///< critical-path blame segments (lineage analysis)
};

[[nodiscard]] const char* to_string(Lane lane);

struct TraceConfig {
  /// Hard cap on retained events; appends past it are counted as drops so
  /// a runaway scenario degrades to a truncated trace, not OOM.
  std::size_t max_events = 1u << 20;
  /// Attach wall-clock durations (`wall_us` arg) to spans that measure
  /// them. Off by default: wall time is nondeterministic and would break
  /// the byte-identity contract the replay tests assert on.
  bool wall_durations = false;
};

/// One key/value pair for an event's `args` object, pre-rendered to JSON
/// at the call site (which only runs when the sink pointer is non-null).
struct TraceArg {
  TraceArg(const char* k, double value);
  TraceArg(const char* k, int value);
  TraceArg(const char* k, std::uint64_t value);
  TraceArg(const char* k, bool value);
  TraceArg(const char* k, const char* value);

  const char* key;
  std::string json;  ///< rendered value, e.g. `3.25`, `true`, `"oracle"`
};

class TraceSink {
 public:
  explicit TraceSink(TraceConfig config = {});

  /// Ambient sim-time for events that don't pass an explicit timestamp.
  /// The runtime event loop advances this as it dispatches.
  void set_clock(double sim_seconds);
  [[nodiscard]] double clock() const;
  [[nodiscard]] bool wall_durations() const { return config_.wall_durations; }

  /// Complete span ("ph":"X") at the ambient clock. `wall_us < 0` means no
  /// wall measurement (the deterministic default).
  void complete(Lane lane, const char* cat, const char* name,
                std::initializer_list<TraceArg> args = {},
                double wall_us = -1.0);
  /// Complete span at an explicit sim time with an explicit sim duration.
  void complete_at(Lane lane, const char* cat, const char* name,
                   double sim_time, double sim_duration,
                   std::initializer_list<TraceArg> args = {},
                   double wall_us = -1.0);
  /// Instant event ("ph":"i") at the ambient clock.
  void instant(Lane lane, const char* cat, const char* name,
               std::initializer_list<TraceArg> args = {});
  /// Instant event at an explicit sim time.
  void instant_at(Lane lane, const char* cat, const char* name,
                  double sim_time, std::initializer_list<TraceArg> args = {});

  [[nodiscard]] std::size_t events() const;
  /// Number of complete spans (what CI asserts is nonzero).
  [[nodiscard]] std::size_t spans() const;
  [[nodiscard]] std::uint64_t dropped() const;

  /// Full trace as Chrome trace-event JSON. Deterministic: events render
  /// in append order with their sequence numbers.
  [[nodiscard]] std::string to_json() const;
  /// Writes to_json() to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  struct Event {
    std::uint64_t seq;
    int lane;
    char phase;  // 'X' or 'i'
    const char* cat;
    const char* name;
    double ts_us;
    double dur_us;   // 'X' only
    double wall_us;  // < 0: absent
    std::string args;  // rendered pairs without braces, "" when empty
  };

  void append(Lane lane, char phase, const char* cat, const char* name,
              double sim_time, double sim_duration, double wall_us,
              std::initializer_list<TraceArg> args);

  TraceConfig config_;
  mutable std::mutex mutex_;
  double clock_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
  std::size_t span_count_ = 0;
  std::vector<Event> events_;
};

/// Wall-clock stopwatch that only arms itself when `sink` is non-null and
/// opted into wall durations — the deterministic path never reads the
/// steady clock.
class WallTimer {
 public:
  explicit WallTimer(const TraceSink* sink);
  /// Elapsed microseconds, or -1 when unarmed (caller passes it straight
  /// through as a span's `wall_us`).
  [[nodiscard]] double elapsed_us() const;

 private:
  bool armed_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace bmp::obs
