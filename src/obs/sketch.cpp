#include "bmp/obs/sketch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bmp::obs {

Sketch::Sketch(SketchConfig config) : config_(config) {
  if (!(config_.alpha > 0.0 && config_.alpha < 1.0)) {
    throw std::invalid_argument("Sketch: alpha must be in (0, 1)");
  }
  if (!(config_.min_value > 0.0)) {
    throw std::invalid_argument("Sketch: min_value must be > 0");
  }
  gamma_ = (1.0 + config_.alpha) / (1.0 - config_.alpha);
  inv_log_gamma_ = 1.0 / std::log(gamma_);
}

std::int32_t Sketch::index_of(double value) const {
  // Bucket i covers (gamma^(i-1), gamma^i]; ceil(log_gamma(v)) finds it.
  // The tiny relative nudge keeps exact powers of gamma in their own
  // bucket despite log() rounding (determinism across libm is not assumed
  // — only determinism across runs of the same binary, like the rest of
  // the codebase).
  return static_cast<std::int32_t>(
      std::ceil(std::log(value) * inv_log_gamma_ - 1e-11));
}

void Sketch::record(double value) { record(value, 1); }

void Sketch::record(double value, std::uint64_t weight) {
  if (!std::isfinite(value) || value < 0.0) {
    throw std::invalid_argument("Sketch::record: non-finite or negative");
  }
  if (weight == 0) return;
  if (count() == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  if (value < config_.min_value) {
    zero_count_ += weight;
    return;
  }
  std::int32_t index;
  if (value == memo_value_) {
    index = memo_index_;
  } else {
    index = index_of(value);
    memo_value_ = value;
    memo_index_ = index;
  }
  if (counts_.empty()) {
    offset_ = index;
    counts_.push_back(weight);
  } else if (index < offset_) {
    counts_.insert(counts_.begin(),
                   static_cast<std::size_t>(offset_ - index), 0);
    offset_ = index;
    counts_.front() += weight;
  } else {
    const auto pos = static_cast<std::size_t>(index - offset_);
    if (pos >= counts_.size()) counts_.resize(pos + 1, 0);
    counts_[pos] += weight;
  }
  bucket_total_ += weight;
}

void Sketch::merge(const Sketch& other) {
  if (other.config_.alpha != config_.alpha ||
      other.config_.min_value != config_.min_value) {
    throw std::invalid_argument("Sketch::merge: config mismatch");
  }
  if (other.count() == 0) return;
  if (count() == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  zero_count_ += other.zero_count_;
  for (std::size_t k = 0; k < other.counts_.size(); ++k) {
    if (other.counts_[k] == 0) continue;
    const std::int32_t index = other.offset_ + static_cast<std::int32_t>(k);
    if (counts_.empty()) {
      offset_ = index;
      counts_.push_back(other.counts_[k]);
    } else if (index < offset_) {
      counts_.insert(counts_.begin(),
                     static_cast<std::size_t>(offset_ - index), 0);
      offset_ = index;
      counts_.front() += other.counts_[k];
    } else {
      const auto pos = static_cast<std::size_t>(index - offset_);
      if (pos >= counts_.size()) counts_.resize(pos + 1, 0);
      counts_[pos] += other.counts_[k];
    }
  }
  bucket_total_ += other.bucket_total_;
}

double Sketch::min() const { return count() == 0 ? 0.0 : min_; }
double Sketch::max() const { return count() == 0 ? 0.0 : max_; }

double Sketch::bucket_upper(std::int32_t index) const {
  return std::pow(gamma_, static_cast<double>(index));
}

double Sketch::bucket_value(std::int32_t index) const {
  return 2.0 * std::pow(gamma_, static_cast<double>(index)) / (gamma_ + 1.0);
}

double Sketch::sum() const {
  // Fixed ascending-index accumulation order: a pure function of the
  // merged bucket counts, so byte-identical across shard merge orders.
  double total = 0.0;
  for (std::size_t k = 0; k < counts_.size(); ++k) {
    if (counts_[k] == 0) continue;
    total += static_cast<double>(counts_[k]) *
             bucket_value(offset_ + static_cast<std::int32_t>(k));
  }
  return total;
}

double Sketch::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Sketch::quantile(double q) const {
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument("Sketch::quantile: q in [0, 1]");
  }
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  // Nearest-rank, matching WindowedHistogram: smallest value whose
  // cumulative fraction >= q.
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank <= zero_count_) return 0.0;
  std::uint64_t running = zero_count_;
  for (std::size_t k = 0; k < counts_.size(); ++k) {
    running += counts_[k];
    if (running >= rank) {
      return bucket_value(offset_ + static_cast<std::int32_t>(k));
    }
  }
  return max();  // unreachable when counters are consistent
}

void Sketch::restore(std::int32_t offset, std::vector<std::uint64_t> counts,
                     std::uint64_t zero_count, double min, double max) {
  offset_ = offset;
  counts_ = std::move(counts);
  zero_count_ = zero_count;
  bucket_total_ = 0;
  for (const std::uint64_t count : counts_) bucket_total_ += count;
  min_ = min;
  max_ = max;
}

void Sketch::clear() {
  zero_count_ = 0;
  bucket_total_ = 0;
  min_ = 0.0;
  max_ = 0.0;
  offset_ = 0;
  counts_.clear();
}

TopK::TopK(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("TopK: capacity must be > 0");
  }
}

void TopK::offer(std::string_view key, std::uint64_t weight) {
  if (weight == 0) return;
  total_ += weight;
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.count += weight;
    return;
  }
  if (entries_.size() < capacity_) {
    entries_.emplace(std::string(key), Cell{weight, 0});
    return;
  }
  // Space-saving eviction: recycle the minimum-count entry. The ordered
  // map makes "first minimum in key order" a deterministic victim.
  auto victim = entries_.begin();
  for (auto cell = entries_.begin(); cell != entries_.end(); ++cell) {
    if (cell->second.count < victim->second.count) victim = cell;
  }
  const Cell evicted = victim->second;
  entries_.erase(victim);
  entries_.emplace(std::string(key),
                   Cell{evicted.count + weight, evicted.count});
}

void TopK::merge(const TopK& other) {
  total_ += other.total_;
  for (const auto& [key, cell] : other.entries_) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      entries_.emplace(key, cell);
    } else {
      it->second.count += cell.count;
      it->second.error += cell.error;
    }
  }
}

std::vector<TopKEntry> TopK::top(std::size_t k) const {
  if (k == 0) k = capacity_;
  std::vector<TopKEntry> rows;
  rows.reserve(entries_.size());
  for (const auto& [key, cell] : entries_) {
    rows.push_back({key, cell.count, cell.error});
  }
  std::sort(rows.begin(), rows.end(),
            [](const TopKEntry& a, const TopKEntry& b) {
              if (a.count != b.count) return a.count > b.count;
              if (a.error != b.error) return a.error < b.error;
              return a.key < b.key;
            });
  if (rows.size() > k) rows.resize(k);
  return rows;
}

void TopK::clear() {
  total_ = 0;
  entries_.clear();
}

}  // namespace bmp::obs
