// Profiler — hierarchical performance attribution for the five-layer loop.
//
// Where TraceSink answers *when* (a timeline of spans), the Profiler answers
// *where the work goes*: every instrumented site records deterministic work
// counters (max-flow solves, BFS rounds, LP pivots, scheduler probes, cache
// hits, graph copies, ...) under a phase path like
// "runtime/session/churn" or "verify/tier2_maxflow". Phases aggregate into
// a stable tree keyed by path; sums of counters are commutative, and the
// exports walk a sorted map — so the JSON report and the collapsed-stack
// text are byte-identical across runs *and across planner thread counts*.
//
// Wall-clock time is opt-in (`ProfilerConfig::wall_time`), mirroring the
// `timing.*` metrics and `TraceConfig::wall_durations` conventions: wall
// measurements deliberately break byte-identity and never appear in the
// deterministic exports unless opted in.
//
// Hook convention (PR 6): call sites hold a raw null-by-default
// `obs::Profiler*` and pay exactly one branch when profiling is off. Sites
// pass the *full* phase path — there is no ambient thread-local stack, so
// a worker-pool site attributes to the same path from any thread.
//
// Exports:
//   * to_json()            nested phase tree (schema-versioned)
//   * to_collapsed()       pprof collapsed-stack lines "a;b;c <work>",
//                          flamegraph.pl / speedscope ready
//   * summary_json()       flat per-phase object for BENCH_*.json embedding
//   * attribution_table()  human top-N table for `--profile` binaries
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace bmp::obs {

struct ProfilerConfig {
  /// Accumulate wall-clock microseconds per phase (PhaseScope / add_wall).
  /// Off by default: wall time is nondeterministic, and the determinism
  /// tests assert byte-identical reports without it.
  bool wall_time = false;
};

class Profiler {
 public:
  explicit Profiler(ProfilerConfig config = {});

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// One entry into `phase` (increments its call count). Counters are
  /// independent — a phase may have counts without calls and vice versa.
  void enter(std::string_view phase);
  /// Adds `delta` to `phase`'s named counter. Thread-safe; sums are
  /// commutative, so concurrent sites aggregate deterministically.
  void count(std::string_view phase, std::string_view counter,
             std::uint64_t delta = 1);
  /// Accumulates wall microseconds into `phase`; dropped (one branch)
  /// unless the profiler opted into wall_time.
  void add_wall(std::string_view phase, double us);

  [[nodiscard]] bool wall_time() const { return config_.wall_time; }
  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t phase_count() const;
  [[nodiscard]] std::uint64_t calls(std::string_view phase) const;
  [[nodiscard]] std::uint64_t counter(std::string_view phase,
                                      std::string_view name) const;
  /// Sum of one named counter across every phase.
  [[nodiscard]] std::uint64_t total(std::string_view counter) const;
  /// A phase's work units: the sum of its counter values, or its call
  /// count when it has no counters — the weight the exports rank by.
  [[nodiscard]] std::uint64_t work(std::string_view phase) const;
  [[nodiscard]] std::uint64_t total_work() const;
  /// Accumulated wall microseconds (0 unless wall_time).
  [[nodiscard]] double wall_us(std::string_view phase) const;

  /// Nested phase tree as JSON (sorted by path segment — deterministic).
  /// Wall fields appear only when wall_time is on.
  [[nodiscard]] std::string to_json() const;
  /// pprof-style collapsed stacks: one line per recorded phase,
  /// "seg1;seg2;seg3 <work>", sorted by path. Feed to flamegraph.pl or
  /// paste into speedscope.
  [[nodiscard]] std::string to_collapsed() const;
  /// Flat {"phases":{path:{calls,work,counters}},"total_work":N} object for
  /// embedding in BENCH_*.json; wall time is never included, so committed
  /// baselines gate on it exactly across machines.
  [[nodiscard]] std::string summary_json() const;
  /// Human attribution table: top `top_n` phases by work share.
  [[nodiscard]] std::string attribution_table(std::size_t top_n = 12) const;

  bool write_json(const std::string& path) const;
  bool write_collapsed(const std::string& path) const;

  void clear();

 private:
  struct Phase {
    std::uint64_t calls = 0;
    double wall_us = 0.0;
    std::map<std::string, std::uint64_t> counters;
  };

  [[nodiscard]] static std::uint64_t work_of(const Phase& phase);

  ProfilerConfig config_;
  mutable std::mutex mutex_;
  /// Keyed by '/'-separated phase path; ordered so every export walk is
  /// independent of insertion (and therefore scheduling) order.
  std::map<std::string, Phase, std::less<>> phases_;
};

/// RAII phase scope, null-safe: `PhaseScope scope(profiler, "a/b")` counts
/// one call on construction and, iff the profiler collects wall time, adds
/// the scope's wall microseconds on destruction. With a null profiler the
/// whole object is two branches.
class PhaseScope {
 public:
  PhaseScope(Profiler* profiler, const char* phase)
      : profiler_(profiler), phase_(phase) {
    if (profiler_ == nullptr) return;
    profiler_->enter(phase_);
    if (profiler_->wall_time()) {
      timed_ = true;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~PhaseScope() {
    if (!timed_) return;
    profiler_->add_wall(
        phase_, std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - start_)
                    .count());
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Profiler* profiler_;
  const char* phase_;
  std::chrono::steady_clock::time_point start_;
  bool timed_ = false;
};

/// Scoped counter, null-safe: increments accumulate lock-free in the scope
/// and flush to the profiler once at destruction. This is how hot loops
/// (per-sink solves, scheduler probes, scratch allocations) count work
/// without taking the profiler mutex per event — and how worker threads
/// keep their counter sums commutative.
class ScopedCounter {
 public:
  ScopedCounter(Profiler* profiler, const char* phase, const char* counter)
      : profiler_(profiler), phase_(phase), counter_(counter) {}
  ~ScopedCounter() {
    if (profiler_ != nullptr && value_ != 0) {
      profiler_->count(phase_, counter_, value_);
    }
  }

  ScopedCounter(const ScopedCounter&) = delete;
  ScopedCounter& operator=(const ScopedCounter&) = delete;

  void add(std::uint64_t delta) { value_ += delta; }
  ScopedCounter& operator++() {
    ++value_;
    return *this;
  }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  Profiler* profiler_;
  const char* phase_;
  const char* counter_;
  std::uint64_t value_ = 0;
};

}  // namespace bmp::obs
