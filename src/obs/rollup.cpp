#include "bmp/obs/rollup.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bmp::obs {

namespace {

/// %.17g round-trips every finite double exactly — the serialization must
/// be lossless so a dump -> parse -> re-dump cycle is byte-identical.
std::string render_double(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

const char* to_string(GaugeReduction reduction) {
  switch (reduction) {
    case GaugeReduction::kSum: return "sum";
    case GaugeReduction::kMin: return "min";
    case GaugeReduction::kMax: return "max";
  }
  return "?";
}

void RollupSnapshot::merge(const RollupSnapshot& other) {
  shards += other.shards;
  for (const auto& [name, value] : other.counters) {
    counters[name] += value;
  }
  for (const auto& [name, cell] : other.gauges) {
    const auto it = gauges.find(name);
    if (it == gauges.end()) {
      gauges.emplace(name, cell);
      continue;
    }
    if (it->second.reduction != cell.reduction) {
      throw std::invalid_argument("RollupSnapshot::merge: gauge '" + name +
                                  "' reduction mismatch");
    }
    switch (cell.reduction) {
      case GaugeReduction::kSum: it->second.value += cell.value; break;
      case GaugeReduction::kMin:
        it->second.value = std::min(it->second.value, cell.value);
        break;
      case GaugeReduction::kMax:
        it->second.value = std::max(it->second.value, cell.value);
        break;
    }
  }
  for (const auto& [name, sketch] : other.sketches) {
    const auto it = sketches.find(name);
    if (it == sketches.end()) {
      sketches.emplace(name, sketch);
    } else {
      it->second.merge(sketch);
    }
  }
  for (const auto& [name, topk] : other.topks) {
    const auto it = topks.find(name);
    if (it == topks.end()) {
      topks.emplace(name, topk);
    } else {
      if (it->second.capacity() != topk.capacity()) {
        throw std::invalid_argument("RollupSnapshot::merge: topk '" + name +
                                    "' capacity mismatch");
      }
      it->second.merge(topk);
    }
  }
}

runtime::MetricsSnapshot RollupSnapshot::to_metrics() const {
  runtime::MetricsSnapshot snap;
  snap.counters = counters;
  for (const auto& [name, cell] : gauges) {
    snap.gauges.emplace(name, cell.value);
  }
  for (const auto& [name, sketch] : sketches) {
    runtime::HistogramStats stats;
    stats.count = sketch.count();
    stats.sum = sketch.sum();
    stats.min = sketch.min();
    stats.max = sketch.max();
    stats.mean = sketch.mean();
    stats.p50 = sketch.quantile(0.50);
    stats.p90 = sketch.quantile(0.90);
    stats.p99 = sketch.quantile(0.99);
    if (stats.count > 0) {
      // Re-bin onto the registry's fixed export bounds: a bucket counts
      // toward bound `le` when its representative value is <= le, so the
      // re-binned cumulative counts inherit the sketch's alpha contract.
      stats.buckets.reserve(runtime::WindowedHistogram::kBucketBounds.size());
      std::size_t k = 0;
      std::uint64_t running = sketch.zero_count();
      for (const double bound : runtime::WindowedHistogram::kBucketBounds) {
        const auto& counts = sketch.counts();
        while (k < counts.size() &&
               sketch.bucket_value(sketch.bucket_offset() +
                                   static_cast<std::int32_t>(k)) <= bound) {
          running += counts[k];
          ++k;
        }
        stats.buckets.push_back(running);
      }
    }
    snap.histograms.emplace(name, stats);
  }
  for (const auto& [name, topk] : topks) {
    for (const TopKEntry& row : topk.top()) {
      snap.counters.emplace(name + "." + row.key, row.count);
    }
  }
  return snap;
}

std::string RollupSnapshot::to_text() const {
  std::ostringstream out;
  out.precision(12);
  out << "rollup shards=" << shards << "\n";
  for (const auto& [name, value] : counters) {
    out << "counter " << name << " " << value << "\n";
  }
  for (const auto& [name, cell] : gauges) {
    out << "gauge " << name << " " << cell.value << " ("
        << to_string(cell.reduction) << ")\n";
  }
  for (const auto& [name, sketch] : sketches) {
    out << "sketch " << name << " count=" << sketch.count()
        << " sum=" << sketch.sum() << " min=" << sketch.min()
        << " max=" << sketch.max() << " p50=" << sketch.quantile(0.50)
        << " p90=" << sketch.quantile(0.90)
        << " p99=" << sketch.quantile(0.99)
        << " (alpha=" << sketch.config().alpha << ")\n";
  }
  for (const auto& [name, topk] : topks) {
    out << "topk " << name << " total=" << topk.total_weight() << "\n";
    for (const TopKEntry& row : topk.top()) {
      out << "  " << row.key << " count=" << row.count
          << " (overcount<=" << row.error << ")\n";
    }
  }
  return out.str();
}

std::string RollupSnapshot::to_json() const {
  // Metric / heavy-hitter keys are identifier-ish (dots, digits, ':',
  // '->'); no quotes or backslashes to escape, so keys render verbatim —
  // same convention as obs::to_json and lineage dumps.
  std::string out = "{\"rollup_schema\":1,\"shards\":" +
                    std::to_string(shards) + ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, cell] : gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{\"red\":\"" +
           std::string(to_string(cell.reduction)) + "\",\"value\":" +
           render_double(cell.value) + "}";
  }
  out += "},\"sketches\":{";
  first = true;
  for (const auto& [name, sketch] : sketches) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{\"alpha\":" +
           render_double(sketch.config().alpha) + ",\"min_value\":" +
           render_double(sketch.config().min_value) + ",\"zero\":" +
           std::to_string(sketch.zero_count()) + ",\"min\":" +
           render_double(sketch.min()) + ",\"max\":" +
           render_double(sketch.max()) + ",\"offset\":" +
           std::to_string(sketch.bucket_offset()) + ",\"counts\":[";
    bool first_count = true;
    for (const std::uint64_t count : sketch.counts()) {
      if (!first_count) out += ",";
      first_count = false;
      out += std::to_string(count);
    }
    out += "]}";
  }
  out += "},\"topk\":{";
  first = true;
  for (const auto& [name, topk] : topks) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{\"capacity\":" +
           std::to_string(topk.capacity()) + ",\"total\":" +
           std::to_string(topk.total_weight()) + ",\"entries\":[";
    bool first_row = true;
    // top(tracked()) = every retained entry, in the deterministic export
    // order — the dump is the full summary, not a K-truncation, so
    // offline merges of dumped shards stay exact.
    for (const TopKEntry& row : topk.top(std::max<std::size_t>(
             topk.tracked(), 1))) {
      if (!first_row) out += ",";
      first_row = false;
      out += "[\"" + row.key + "\"," + std::to_string(row.count) + "," +
             std::to_string(row.error) + "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

bool RollupSnapshot::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json() << "\n";
  return static_cast<bool>(out);
}

namespace {

/// Minimal cursor parser for the fixed-shape JSON to_json() emits (keys
/// in emission order, strings without escapes) — the same philosophy as
/// parse_lineage_json: we only ever load our own dumps.
struct Cursor {
  const char* p;
  const char* end;

  void ws() {
    while (p < end && (*p == ' ' || *p == '\n' || *p == '\t' || *p == '\r')) {
      ++p;
    }
  }
  bool lit(const char* text) {
    ws();
    const std::size_t n = std::strlen(text);
    if (static_cast<std::size_t>(end - p) < n ||
        std::strncmp(p, text, n) != 0) {
      return false;
    }
    p += n;
    return true;
  }
  bool str(std::string& out) {
    ws();
    if (p >= end || *p != '"') return false;
    const char* start = ++p;
    while (p < end && *p != '"') ++p;
    if (p >= end) return false;
    out.assign(start, p);
    ++p;
    return true;
  }
  bool u64(std::uint64_t& out) {
    ws();
    char* next = nullptr;
    out = std::strtoull(p, &next, 10);
    if (next == p) return false;
    p = next;
    return true;
  }
  bool i64(long long& out) {
    ws();
    char* next = nullptr;
    out = std::strtoll(p, &next, 10);
    if (next == p) return false;
    p = next;
    return true;
  }
  bool num(double& out) {
    ws();
    char* next = nullptr;
    out = std::strtod(p, &next);
    if (next == p) return false;
    p = next;
    return true;
  }
};

bool parse_gauge_reduction(const std::string& text, GaugeReduction& out) {
  if (text == "sum") { out = GaugeReduction::kSum; return true; }
  if (text == "min") { out = GaugeReduction::kMin; return true; }
  if (text == "max") { out = GaugeReduction::kMax; return true; }
  return false;
}

}  // namespace

bool parse_rollup_json(const std::string& text, RollupSnapshot& out) {
  out = RollupSnapshot{};
  Cursor c{text.data(), text.data() + text.size()};
  if (!c.lit("{\"rollup_schema\":1,\"shards\":")) return false;
  long long shards = 0;
  if (!c.i64(shards) || shards < 0) return false;
  out.shards = static_cast<int>(shards);
  if (!c.lit(",\"counters\":{")) return false;
  while (!c.lit("}")) {
    if (!out.counters.empty() && !c.lit(",")) return false;
    std::string name;
    std::uint64_t value = 0;
    if (!c.str(name) || !c.lit(":") || !c.u64(value)) return false;
    out.counters.emplace(std::move(name), value);
  }
  if (!c.lit(",\"gauges\":{")) return false;
  while (!c.lit("}")) {
    if (!out.gauges.empty() && !c.lit(",")) return false;
    std::string name;
    std::string red;
    RollupSnapshot::GaugeCell cell;
    if (!c.str(name) || !c.lit(":{\"red\":") || !c.str(red) ||
        !parse_gauge_reduction(red, cell.reduction) ||
        !c.lit(",\"value\":") || !c.num(cell.value) || !c.lit("}")) {
      return false;
    }
    out.gauges.emplace(std::move(name), cell);
  }
  if (!c.lit(",\"sketches\":{")) return false;
  while (!c.lit("}")) {
    if (!out.sketches.empty() && !c.lit(",")) return false;
    std::string name;
    SketchConfig config;
    std::uint64_t zero = 0;
    double min = 0.0;
    double max = 0.0;
    long long offset = 0;
    if (!c.str(name) || !c.lit(":{\"alpha\":") || !c.num(config.alpha) ||
        !c.lit(",\"min_value\":") || !c.num(config.min_value) ||
        !c.lit(",\"zero\":") || !c.u64(zero) || !c.lit(",\"min\":") ||
        !c.num(min) || !c.lit(",\"max\":") || !c.num(max) ||
        !c.lit(",\"offset\":") || !c.i64(offset) ||
        !c.lit(",\"counts\":[")) {
      return false;
    }
    Sketch sketch(config);
    std::vector<std::uint64_t> counts;
    while (!c.lit("]")) {
      if (!counts.empty() && !c.lit(",")) return false;
      std::uint64_t count = 0;
      if (!c.u64(count)) return false;
      counts.push_back(count);
    }
    if (!c.lit("}")) return false;
    sketch.restore(static_cast<std::int32_t>(offset), std::move(counts),
                   zero, min, max);
    out.sketches.emplace(std::move(name), std::move(sketch));
  }
  if (!c.lit(",\"topk\":{")) return false;
  while (!c.lit("}")) {
    if (!out.topks.empty() && !c.lit(",")) return false;
    std::string name;
    std::uint64_t capacity = 0;
    std::uint64_t total = 0;
    if (!c.str(name) || !c.lit(":{\"capacity\":") || !c.u64(capacity) ||
        capacity == 0 || !c.lit(",\"total\":") || !c.u64(total) ||
        !c.lit(",\"entries\":[")) {
      return false;
    }
    TopK topk(capacity);
    bool first = true;
    while (!c.lit("]")) {
      if (!first && !c.lit(",")) return false;
      first = false;
      std::string key;
      std::uint64_t count = 0;
      std::uint64_t error = 0;
      if (!c.lit("[") || !c.str(key) || !c.lit(",") || !c.u64(count) ||
          !c.lit(",") || !c.u64(error) || !c.lit("]")) {
        return false;
      }
      topk.restore(key, count, error);
    }
    if (!c.lit("}")) return false;
    topk.restore_total(total);
    out.topks.emplace(std::move(name), std::move(topk));
  }
  if (!c.lit("}")) return false;
  c.ws();
  return c.p == c.end;
}

RollupSnapshot rollup(const std::vector<RollupSnapshot>& shards) {
  RollupSnapshot global;
  global.shards = 0;
  for (const RollupSnapshot& shard : shards) global.merge(shard);
  return global;
}

template <typename Handle>
Handle ShardRegistry::intern(
    std::string_view name, std::vector<std::string>& names,
    std::map<std::string, std::size_t, std::less<>>& index) {
  const auto it = index.find(name);
  if (it != index.end()) return Handle{it->second};
  const std::size_t slot = names.size();
  names.emplace_back(name);
  index.emplace(std::string(name), slot);
  return Handle{slot};
}

ShardRegistry::CounterHandle ShardRegistry::counter(std::string_view name) {
  const CounterHandle h =
      intern<CounterHandle>(name, counter_names_, counter_index_);
  if (h.index == counter_values_.size()) counter_values_.push_back(0);
  return h;
}

ShardRegistry::GaugeHandle ShardRegistry::gauge(std::string_view name,
                                                GaugeReduction reduction) {
  const GaugeHandle h = intern<GaugeHandle>(name, gauge_names_, gauge_index_);
  if (h.index == gauge_values_.size()) {
    gauge_values_.push_back(0.0);
    gauge_reductions_.push_back(reduction);
  } else if (gauge_reductions_[h.index] != reduction) {
    throw std::invalid_argument("ShardRegistry::gauge: '" +
                                std::string(name) + "' reduction mismatch");
  }
  return h;
}

ShardRegistry::SketchHandle ShardRegistry::sketch(std::string_view name,
                                                  SketchConfig config) {
  const SketchHandle h =
      intern<SketchHandle>(name, sketch_names_, sketch_index_);
  if (h.index == sketch_values_.size()) {
    sketch_values_.emplace_back(config);
  } else if (sketch_values_[h.index].config().alpha != config.alpha ||
             sketch_values_[h.index].config().min_value !=
                 config.min_value) {
    throw std::invalid_argument("ShardRegistry::sketch: '" +
                                std::string(name) + "' config mismatch");
  }
  return h;
}

ShardRegistry::TopKHandle ShardRegistry::topk(std::string_view name,
                                              std::size_t capacity) {
  const TopKHandle h = intern<TopKHandle>(name, topk_names_, topk_index_);
  if (h.index == topk_values_.size()) {
    topk_values_.emplace_back(capacity);
  } else if (topk_values_[h.index].capacity() != capacity) {
    throw std::invalid_argument("ShardRegistry::topk: '" +
                                std::string(name) + "' capacity mismatch");
  }
  return h;
}

std::size_t ShardRegistry::memory_bytes() const {
  std::size_t bytes = 0;
  const auto names_bytes = [](const std::vector<std::string>& names) {
    std::size_t total = names.capacity() * sizeof(std::string);
    for (const std::string& name : names) total += name.capacity();
    return total;
  };
  bytes += names_bytes(counter_names_) + names_bytes(gauge_names_) +
           names_bytes(sketch_names_) + names_bytes(topk_names_);
  bytes += counter_values_.capacity() * sizeof(std::uint64_t);
  bytes += gauge_values_.capacity() * sizeof(double);
  bytes += gauge_reductions_.capacity() * sizeof(GaugeReduction);
  bytes += sketch_values_.capacity() * sizeof(Sketch);
  for (const Sketch& sketch : sketch_values_) {
    bytes += sketch.counts().capacity() * sizeof(std::uint64_t);
  }
  bytes += topk_values_.capacity() * sizeof(TopK);
  for (const TopK& topk : topk_values_) {
    for (const TopKEntry& row : topk.top(topk.tracked())) {
      bytes += row.key.capacity() + 3 * sizeof(std::uint64_t) + 48;
    }
  }
  // Index maps: ~one node (key + pointers) per series.
  bytes += series() * 64;
  return bytes;
}

RollupSnapshot ShardRegistry::snapshot() const {
  RollupSnapshot snap;
  snap.shards = 1;
  for (std::size_t k = 0; k < counter_names_.size(); ++k) {
    snap.counters.emplace(counter_names_[k], counter_values_[k]);
  }
  for (std::size_t k = 0; k < gauge_names_.size(); ++k) {
    snap.gauges.emplace(
        gauge_names_[k],
        RollupSnapshot::GaugeCell{gauge_values_[k], gauge_reductions_[k]});
  }
  for (std::size_t k = 0; k < sketch_names_.size(); ++k) {
    snap.sketches.emplace(sketch_names_[k], sketch_values_[k]);
  }
  for (std::size_t k = 0; k < topk_names_.size(); ++k) {
    snap.topks.emplace(topk_names_[k], topk_values_[k]);
  }
  return snap;
}

void ShardRegistry::clear() {
  for (std::uint64_t& value : counter_values_) value = 0;
  for (double& value : gauge_values_) value = 0.0;
  for (Sketch& sketch : sketch_values_) sketch.clear();
  for (TopK& topk : topk_values_) topk.clear();
}

RollupTree::RollupTree(int fanout) : fanout_(fanout) {
  if (fanout_ < 2) {
    throw std::invalid_argument("RollupTree: fanout must be >= 2");
  }
}

void RollupTree::add(RollupSnapshot shard) {
  shards_.push_back(std::move(shard));
}

RollupSnapshot RollupTree::global() const {
  if (shards_.empty()) {
    RollupSnapshot empty;
    empty.shards = 0;
    return empty;
  }
  // Reduce level by level in groups of `fanout_` — the hierarchy a
  // region-of-regions deployment would materialize over the network.
  std::vector<RollupSnapshot> level = shards_;
  while (level.size() > 1) {
    std::vector<RollupSnapshot> next;
    next.reserve((level.size() + static_cast<std::size_t>(fanout_) - 1) /
                 static_cast<std::size_t>(fanout_));
    for (std::size_t base = 0; base < level.size();
         base += static_cast<std::size_t>(fanout_)) {
      RollupSnapshot group = std::move(level[base]);
      const std::size_t stop =
          std::min(level.size(), base + static_cast<std::size_t>(fanout_));
      for (std::size_t k = base + 1; k < stop; ++k) {
        group.merge(level[k]);
      }
      next.push_back(std::move(group));
    }
    level = std::move(next);
  }
  return level.front();
}

}  // namespace bmp::obs
