#include "bmp/obs/lineage.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>

#include "bmp/obs/trace.hpp"

namespace bmp::obs {

namespace {

/// Round-trip-exact double rendering: the dump must reload to the same
/// bits, and two runs must render the same bytes.
std::string render_time(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

// ------------------------------------------------------------ LineageSink

LineageSink::LineageSink(LineageConfig config) : config_(config) {
  if (config_.sample_mod == 0 ||
      (config_.sample_mod & (config_.sample_mod - 1)) != 0) {
    throw std::invalid_argument(
        "LineageSink: sample_mod must be a power of two");
  }
  sample_mod_ = config_.sample_mod;
  raw_.reserve(std::min<std::size_t>(config_.max_hops, 1u << 16));
}

void LineageSink::resample() {
  while (raw_.size() > config_.auto_sample_target &&
         sample_mod_ < (1u << 30)) {
    sample_mod_ *= 2;
    // Re-filter everything already retained under the tightened sample.
    // Walking raw_ in record order keeps the retry sideband aligned and
    // makes the surviving set — and therefore the dump — a pure function
    // of the record sequence.
    std::vector<RawHop> kept_raw;
    kept_raw.reserve(raw_.size() / 2);
    std::vector<RetryData> kept_retries;
    std::size_t retry = 0;
    for (const RawHop& raw : raw_) {
      const bool has_retry = (raw.packed & kRetryBit) != 0;
      const std::size_t retry_index = retry;
      if (has_retry) ++retry;
      if (!sampled(raw.channel, static_cast<int>(raw.packed & kChunkMask))) {
        ++sampled_out_;
        continue;
      }
      kept_raw.push_back(raw);
      if (has_retry) kept_retries.push_back(retries_[retry_index]);
    }
    raw_.swap(kept_raw);
    retries_.swap(kept_retries);
    // Roots of now-unsampled chunks only existed to resolve enqueue times
    // of hops we no longer hold; drop them too so root storage shrinks at
    // the same rate. Channel/chunk come back out of the packed key.
    std::vector<std::pair<std::uint64_t, double>> kept_roots;
    kept_roots.reserve(roots_.size() / 2);
    for (const auto& root : roots_) {
      if (sampled(static_cast<int>(root.first >> 48),
                  static_cast<int>(root.first & 0xFFFFFFu))) {
        kept_roots.push_back(root);
      }
    }
    roots_.swap(kept_roots);
    resolved_ = false;
  }
}

void LineageSink::resolve() const {
  if (resolved_) return;
  resolved_ = true;
  hops_.clear();
  hops_.reserve(raw_.size());
  std::size_t retry = 0;
  for (const RawHop& raw : raw_) {
    HopRecord& hop = hops_.emplace_back();
    hop.chunk = static_cast<int>(raw.packed & kChunkMask);
    hop.from = raw.from;
    hop.to = raw.to;
    hop.channel = raw.channel;
    hop.start = raw.start;
    hop.finish = raw.finish;
    hop.hol_stalled = (raw.packed & kHolBit) != 0;
    hop.overtake = (raw.packed & kOvertakeBit) != 0;
    if ((raw.packed & kRetryBit) != 0) {
      hop.retransmits = retries_[retry].retransmits;
      hop.loss_time = retries_[retry].loss_time;
      ++retry;
    }
  }
  avail_.clear();
  avail_.reserve(roots_.size() + hops_.size());
  // First copy wins: a late duplicate must not rewrite the DAG parent.
  // Roots (emissions, re-seeds, drop-counter overflow) go first; a node's
  // delivery hops never collide with them because the emitting node does
  // not also receive the chunk.
  for (const auto& [root_key, time] : roots_) avail_.emplace(root_key, time);
  for (const HopRecord& hop : hops_) {
    avail_.emplace(key(hop.channel, hop.to, hop.chunk), hop.finish);
  }
  for (HopRecord& hop : hops_) {
    const auto it = avail_.find(key(hop.channel, hop.from, hop.chunk));
    hop.enqueue = it == avail_.end() ? hop.start : it->second;
  }
}

double LineageSink::available_at(int channel, int node, int chunk,
                                 double fallback) const {
  resolve();
  const auto it = avail_.find(key(channel, node, chunk));
  return it == avail_.end() ? fallback : it->second;
}

std::string LineageSink::to_json() const {
  resolve();
  std::string out = "{\"dropped\":" + std::to_string(dropped_) +
                    ",\"sample_mod\":" + std::to_string(sample_mod_) +
                    ",\"sampled_out\":" + std::to_string(sampled_out_) +
                    ",\"hops\":[\n";
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    const HopRecord& hop = hops_[i];
    out += "{\"chunk\":" + std::to_string(hop.chunk) +
           ",\"from\":" + std::to_string(hop.from) +
           ",\"to\":" + std::to_string(hop.to) +
           ",\"channel\":" + std::to_string(hop.channel) +
           ",\"enqueue\":" + render_time(hop.enqueue) +
           ",\"start\":" + render_time(hop.start) +
           ",\"finish\":" + render_time(hop.finish) +
           ",\"retransmits\":" + std::to_string(hop.retransmits) +
           ",\"loss_time\":" + render_time(hop.loss_time) +
           ",\"hol\":" + std::to_string(hop.hol_stalled ? 1 : 0) +
           ",\"overtake\":" + std::to_string(hop.overtake ? 1 : 0) + "}";
    if (i + 1 < hops_.size()) out += ",";
    out += "\n";
  }
  out += "]}\n";
  return out;
}

bool LineageSink::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

bool parse_lineage_json(const std::string& text, std::vector<HopRecord>& hops,
                        std::uint64_t& dropped, std::uint64_t& sampled_out,
                        std::uint32_t& sample_mod) {
  hops.clear();
  dropped = 0;
  sampled_out = 0;
  sample_mod = 1;
  unsigned long long dropped_ull = 0;
  if (std::sscanf(text.c_str(), "{\"dropped\":%llu", &dropped_ull) != 1) {
    return false;
  }
  dropped = dropped_ull;
  // Sampling fields are optional: dumps written before chunk sampling
  // existed (and hand-built test fixtures) omit them.
  const std::size_t header_end = text.find("\"hops\":[");
  const std::size_t mod_pos = text.find("\"sample_mod\":");
  if (mod_pos != std::string::npos && mod_pos < header_end) {
    unsigned long long mod_ull = 1;
    if (std::sscanf(text.c_str() + mod_pos, "\"sample_mod\":%llu", &mod_ull) !=
            1 ||
        mod_ull == 0 || mod_ull > (1ull << 30)) {
      return false;
    }
    sample_mod = static_cast<std::uint32_t>(mod_ull);
  }
  const std::size_t out_pos = text.find("\"sampled_out\":");
  if (out_pos != std::string::npos && out_pos < header_end) {
    unsigned long long out_ull = 0;
    if (std::sscanf(text.c_str() + out_pos, "\"sampled_out\":%llu",
                    &out_ull) != 1) {
      return false;
    }
    sampled_out = out_ull;
  }
  std::size_t pos = header_end;
  if (pos == std::string::npos) return false;
  pos += 8;
  while (true) {
    const std::size_t line_start = text.find('{', pos);
    const std::size_t array_end = text.find(']', pos);
    if (line_start == std::string::npos || array_end < line_start) break;
    HopRecord hop;
    int hol = 0;
    int overtake = 0;
    const int got = std::sscanf(
        text.c_str() + line_start,
        "{\"chunk\":%d,\"from\":%d,\"to\":%d,\"channel\":%d,"
        "\"enqueue\":%lf,\"start\":%lf,\"finish\":%lf,"
        "\"retransmits\":%d,\"loss_time\":%lf,\"hol\":%d,\"overtake\":%d}",
        &hop.chunk, &hop.from, &hop.to, &hop.channel, &hop.enqueue,
        &hop.start, &hop.finish, &hop.retransmits, &hop.loss_time, &hol,
        &overtake);
    if (got != 11) return false;
    hop.hol_stalled = hol != 0;
    hop.overtake = overtake != 0;
    hops.push_back(hop);
    pos = text.find('\n', line_start);
    if (pos == std::string::npos) break;
  }
  return true;
}

bool parse_lineage_json(const std::string& text, std::vector<HopRecord>& hops,
                        std::uint64_t& dropped) {
  std::uint64_t sampled_out = 0;
  std::uint32_t sample_mod = 1;
  return parse_lineage_json(text, hops, dropped, sampled_out, sample_mod);
}

// -------------------------------------------------- critical-path analysis

namespace {

/// Delay decomposition of one hop. `total = finish - enqueue` splits into
/// the pre-transmission gap (failed attempts first, then HOL stall or
/// ordinary queueing) and the successful transmission itself.
PathSegment decompose(const HopRecord& hop) {
  PathSegment seg;
  seg.chunk = hop.chunk;
  seg.from = hop.from;
  seg.to = hop.to;
  seg.enqueue = hop.enqueue;
  seg.start = hop.start;
  seg.finish = hop.finish;
  seg.overtake = hop.overtake;
  const double total = hop.finish - hop.enqueue;
  const double gap =
      std::clamp(hop.start - hop.enqueue, 0.0, std::max(total, 0.0));
  seg.transmit = total - gap;
  seg.retransmit_loss = std::clamp(hop.loss_time, 0.0, gap);
  const double remainder = gap - seg.retransmit_loss;
  if (hop.hol_stalled) {
    seg.sched_stall = remainder;
  } else {
    seg.queue_wait = remainder;
  }
  return seg;
}

void accumulate(BlameRow& row, const PathSegment& seg) {
  const double delay =
      seg.queue_wait + seg.transmit + seg.retransmit_loss + seg.sched_stall;
  row.delay += delay;
  row.queue_wait += seg.queue_wait;
  row.transmit += seg.transmit;
  row.retransmit_loss += seg.retransmit_loss;
  row.sched_stall += seg.sched_stall;
}

std::vector<BlameRow> top_rows(std::map<std::string, BlameRow>& rows,
                               std::size_t top_n) {
  std::vector<BlameRow> out;
  out.reserve(rows.size());
  for (auto& [key, row] : rows) {
    row.key = key;
    out.push_back(row);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const BlameRow& a, const BlameRow& b) {
                     if (a.delay != b.delay) return a.delay > b.delay;
                     return a.key < b.key;
                   });
  if (out.size() > top_n) out.resize(top_n);
  return out;
}

std::string row_json(const BlameRow& row, const char* key_field) {
  return std::string("{\"") + key_field + "\":\"" + row.key +
         "\",\"delay\":" + render_time(row.delay) +
         ",\"queue_wait\":" + render_time(row.queue_wait) +
         ",\"transmit\":" + render_time(row.transmit) +
         ",\"retransmit_loss\":" + render_time(row.retransmit_loss) +
         ",\"sched_stall\":" + render_time(row.sched_stall) + "}";
}

}  // namespace

BlameTable analyze_critical_path(const std::vector<HopRecord>& hops,
                                 int channel, std::size_t top_n,
                                 std::uint32_t sample_mod) {
  BlameTable table;
  table.sample_mod = sample_mod;
  // The last-completing node: the receiver of the hop with the latest
  // finish (ties resolve to the latest record — the event loop's order).
  const HopRecord* last = nullptr;
  for (const HopRecord& hop : hops) {
    if (channel >= 0 && hop.channel != channel) continue;
    if (last == nullptr || hop.finish >= last->finish) last = &hop;
  }
  if (last == nullptr) return table;
  table.valid = true;
  table.channel = last->channel;
  table.last_node = last->to;
  table.critical_chunk = last->chunk;
  table.completion_time = last->finish;

  // Parent index for the critical chunk: who delivered it to each node.
  // First delivery wins (a late duplicate is not the DAG parent).
  std::unordered_map<int, const HopRecord*> parent;
  for (const HopRecord& hop : hops) {
    if (hop.channel != table.channel || hop.chunk != table.critical_chunk) {
      continue;
    }
    parent.emplace(hop.to, &hop);
  }
  std::vector<const HopRecord*> chain;
  int node = table.last_node;
  while (true) {
    const auto it = parent.find(node);
    if (it == parent.end()) break;  // reached the emitting node (or a drop)
    chain.push_back(it->second);
    node = it->second->from;
    if (chain.size() > hops.size()) break;  // defensive: malformed input
  }
  std::map<std::string, BlameRow> edge_rows;
  std::map<std::string, BlameRow> node_rows;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const PathSegment seg = decompose(**it);
    table.path.push_back(seg);
    accumulate(edge_rows[std::to_string(seg.from) + "->" +
                         std::to_string(seg.to)],
               seg);
    accumulate(node_rows[std::to_string(seg.from)], seg);
  }
  table.edges = top_rows(edge_rows, top_n);
  table.nodes = top_rows(node_rows, top_n);

  // The invariant: emit_delay plus the per-segment delays telescopes to the
  // last node's completion time (enqueue_{k+1} == finish_k by construction).
  table.emit_delay = table.path.empty() ? table.completion_time
                                        : table.path.front().enqueue;
  table.attributed_total = table.emit_delay;
  for (const PathSegment& seg : table.path) {
    table.attributed_total += seg.queue_wait + seg.transmit +
                              seg.retransmit_loss + seg.sched_stall;
  }
  return table;
}

std::string BlameTable::to_json() const {
  std::string out = "{\"valid\":" + std::string(valid ? "true" : "false") +
                    ",\"channel\":" + std::to_string(channel) +
                    ",\"last_node\":" + std::to_string(last_node) +
                    ",\"critical_chunk\":" + std::to_string(critical_chunk) +
                    ",\"completion_time\":" + render_time(completion_time) +
                    ",\"emit_delay\":" + render_time(emit_delay) +
                    ",\"attributed_total\":" + render_time(attributed_total) +
                    ",\"sample_mod\":" + std::to_string(sample_mod) +
                    ",\"path\":[";
  for (std::size_t i = 0; i < path.size(); ++i) {
    const PathSegment& seg = path[i];
    if (i != 0) out += ",";
    out += "{\"chunk\":" + std::to_string(seg.chunk) +
           ",\"from\":" + std::to_string(seg.from) +
           ",\"to\":" + std::to_string(seg.to) +
           ",\"enqueue\":" + render_time(seg.enqueue) +
           ",\"start\":" + render_time(seg.start) +
           ",\"finish\":" + render_time(seg.finish) +
           ",\"queue_wait\":" + render_time(seg.queue_wait) +
           ",\"transmit\":" + render_time(seg.transmit) +
           ",\"retransmit_loss\":" + render_time(seg.retransmit_loss) +
           ",\"sched_stall\":" + render_time(seg.sched_stall) +
           ",\"overtake\":" + std::to_string(seg.overtake ? 1 : 0) + "}";
  }
  out += "],\"edges\":[";
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (i != 0) out += ",";
    out += row_json(edges[i], "edge");
  }
  out += "],\"nodes\":[";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i != 0) out += ",";
    out += row_json(nodes[i], "node");
  }
  out += "]}";
  return out;
}

std::string BlameTable::to_text() const {
  if (!valid) return "lineage: no hops recorded\n";
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "critical path: node %d completed at t=%.6f via chunk %d "
                "(%zu hops, emit delay %.6f)\n",
                last_node, completion_time, critical_chunk, path.size(),
                emit_delay);
  out += buf;
  if (sample_mod > 1) {
    std::snprintf(buf, sizeof(buf),
                  "note: built from a 1-in-%u chunk sample; the true "
                  "critical path may lie on an unsampled chunk\n",
                  sample_mod);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "%-12s %10s %10s %10s %10s %10s\n", "edge",
                "delay", "queue", "transmit", "retx_loss", "hol_stall");
  out += buf;
  for (const BlameRow& row : edges) {
    std::snprintf(buf, sizeof(buf), "%-12s %10.4f %10.4f %10.4f %10.4f %10.4f\n",
                  row.key.c_str(), row.delay, row.queue_wait, row.transmit,
                  row.retransmit_loss, row.sched_stall);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "%-12s %10s %10s %10s %10s %10s\n", "node",
                "delay", "queue", "transmit", "retx_loss", "hol_stall");
  out += buf;
  for (const BlameRow& row : nodes) {
    std::snprintf(buf, sizeof(buf), "%-12s %10.4f %10.4f %10.4f %10.4f %10.4f\n",
                  row.key.c_str(), row.delay, row.queue_wait, row.transmit,
                  row.retransmit_loss, row.sched_stall);
    out += buf;
  }
  return out;
}

void emit_blame_trace(const BlameTable& table, TraceSink* trace) {
  if (trace == nullptr || !table.valid) return;
  for (const PathSegment& seg : table.path) {
    trace->instant_at(Lane::kLineage, "lineage", "segment", seg.finish,
                      {{"chunk", seg.chunk},
                       {"from", seg.from},
                       {"to", seg.to},
                       {"queue_wait", seg.queue_wait},
                       {"transmit", seg.transmit},
                       {"retransmit_loss", seg.retransmit_loss},
                       {"sched_stall", seg.sched_stall}});
  }
  trace->instant_at(Lane::kLineage, "lineage", "blame", table.completion_time,
                    {{"channel", table.channel},
                     {"last_node", table.last_node},
                     {"critical_chunk", table.critical_chunk},
                     {"completion_time", table.completion_time},
                     {"hops", static_cast<int>(table.path.size())}});
}

}  // namespace bmp::obs
