#include "bmp/obs/slo.hpp"

#include <cstdio>

#include "bmp/obs/flight_recorder.hpp"

namespace bmp::obs {

namespace {

std::string render_double(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

}  // namespace

const char* to_string(SloState state) {
  switch (state) {
    case SloState::kOk: return "ok";
    case SloState::kWarn: return "warn";
    case SloState::kPage: return "page";
  }
  return "?";
}

const char* SloSample::worst_sli() const {
  if (violating_sustained) return "sustained";
  if (violating_recover) return "recover";
  if (violating_latency) return "latency_p99";
  return "none";
}

SloMonitor::SloMonitor(int channel, SloConfig config, FlightRecorder* recorder)
    : channel_(channel),
      config_(config),
      recorder_(recorder),
      latencies_(config.latency_window) {}

void SloMonitor::observe_latency(double latency) {
  latencies_.observe(latency);
}

void SloMonitor::on_directive(double time) {
  if (directive_time_ < 0.0) directive_time_ = time;
}

double SloMonitor::burn(const std::deque<bool>& window) const {
  if (window.empty()) return 0.0;
  std::size_t violating = 0;
  for (const bool v : window) {
    if (v) ++violating;
  }
  return static_cast<double>(violating) / static_cast<double>(window.size());
}

SloState SloMonitor::evaluate(double time, double sustained_worst) {
  ++ticks_;
  SloSample sample;
  sample.time = time;
  sample.sustained_worst = sustained_worst;
  sample.latency_p99 =
      latencies_.count() == 0 ? 0.0 : latencies_.quantile(0.99);
  sample.violating_sustained = sustained_worst < config_.target_sustained;
  sample.violating_latency = sample.latency_p99 > config_.target_latency_p99;
  if (directive_time_ >= 0.0) {
    if (sustained_worst >= config_.target_sustained) {
      directive_time_ = -1.0;  // recovered
    } else {
      sample.recover_wait = time - directive_time_;
      sample.violating_recover = sample.recover_wait > config_.recover_timeout;
    }
  }

  const bool violating = sample.violating();
  short_window_.push_back(violating);
  long_window_.push_back(violating);
  while (static_cast<int>(short_window_.size()) > config_.short_window) {
    short_window_.pop_front();
  }
  while (static_cast<int>(long_window_.size()) > config_.long_window) {
    long_window_.pop_front();
  }
  const double short_burn = burn(short_window_);
  const double long_burn = burn(long_window_);

  // Multi-window burn-rate: page needs the fast window fully burning AND
  // the slow window past the warn floor — a sustained problem, not a blip.
  SloState next = SloState::kOk;
  if (short_burn >= config_.page_burn && long_burn >= config_.warn_burn) {
    next = SloState::kPage;
  } else if (short_burn >= config_.warn_burn) {
    next = SloState::kWarn;
  }
  if (next != state_) transition(next, sample, short_burn, long_burn);
  return state_;
}

void SloMonitor::transition(SloState to, const SloSample& sample,
                            double short_burn, double long_burn) {
  SloAlert alert;
  alert.seq = next_seq_++;
  alert.time = sample.time;
  alert.from = state_;
  alert.to = to;
  alert.sli = to > state_ ? sample.worst_sli() : "clear";
  alert.short_burn = short_burn;
  alert.long_burn = long_burn;
  alert.sample = sample;
  state_ = to;
  if (to == SloState::kPage) ++pages_;
  if (to == SloState::kWarn) ++warns_;
  if (recorder_ != nullptr) {
    recorder_->record(sample.time, channel_, "slo",
                      std::string(to_string(alert.from)) + "->" +
                          to_string(alert.to) + " sli=" + alert.sli +
                          " sustained=" + render_double(sample.sustained_worst) +
                          " latency_p99=" + render_double(sample.latency_p99) +
                          " recover_wait=" + render_double(sample.recover_wait) +
                          " burn=" + render_double(short_burn) + "/" +
                          render_double(long_burn));
  }
  if (alerts_.size() >= config_.max_alerts) {
    ++dropped_;
    return;
  }
  alerts_.push_back(std::move(alert));
}

std::string SloMonitor::alerts_json() const {
  std::string out = "{\"channel\":" + std::to_string(channel_) +
                    ",\"state\":\"" + to_string(state_) +
                    "\",\"ticks\":" + std::to_string(ticks_) +
                    ",\"dropped\":" + std::to_string(dropped_) +
                    ",\"alerts\":[";
  for (std::size_t i = 0; i < alerts_.size(); ++i) {
    const SloAlert& alert = alerts_[i];
    if (i != 0) out += ",";
    out += std::string("{\"seq\":") + std::to_string(alert.seq) +
           ",\"time\":" + render_double(alert.time) + ",\"from\":\"" +
           to_string(alert.from) + "\",\"to\":\"" + to_string(alert.to) +
           "\",\"sli\":\"" + alert.sli +
           "\",\"short_burn\":" + render_double(alert.short_burn) +
           ",\"long_burn\":" + render_double(alert.long_burn) +
           ",\"sample\":{\"sustained_worst\":" +
           render_double(alert.sample.sustained_worst) +
           ",\"latency_p99\":" + render_double(alert.sample.latency_p99) +
           ",\"recover_wait\":" + render_double(alert.sample.recover_wait) +
           "}}";
  }
  out += "]}";
  return out;
}

}  // namespace bmp::obs
