// FlightRecorder — per-channel ring buffers of recent structured events,
// dumped to JSON automatically when an invariant trips (Execution::validate
// mismatch, budget audit failure) and on demand. The point is post-mortems
// without a re-run: when a 30-minute scenario fails its final audit, the
// last N decisions per channel are already on disk.
//
// Entries are sequence-numbered at record time; since every producer sits
// on the runtime's single-threaded event loop, two identical runs produce
// identical recorder contents (asserted by the replay-determinism tests).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace bmp::obs {

struct FlightRecorderConfig {
  std::size_t per_channel = 256;  ///< ring capacity per channel lane
  /// Where automatic dumps land; empty disables auto-dump-to-file (the
  /// failure is still recorded and `to_json()` still works).
  std::string dump_path;
};

struct FlightEvent {
  std::uint64_t seq = 0;
  double time = 0.0;  ///< sim time
  int channel = -1;   ///< -1 = global lane (scenario events, audits)
  std::string kind;   ///< "event", "control", "churn", "admit", "failure", ...
  std::string detail;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config = {});

  void record(double time, int channel, std::string kind, std::string detail);

  /// Records each violation on the global lane and, if a dump path is
  /// configured, writes the full recorder state there. Returns true when a
  /// dump file was written. This is the hook Runtime::validate(),
  /// Execution::validate() and the stream rate audit call on failure.
  bool record_failure(double time, int channel, const char* what,
                      const std::vector<std::string>& violations);

  [[nodiscard]] std::size_t recorded() const { return recorded_; }
  [[nodiscard]] std::uint64_t evicted() const { return evicted_; }
  [[nodiscard]] int dumps() const { return dumps_; }

  /// Events for one channel lane, oldest first (empty if never written).
  [[nodiscard]] std::vector<FlightEvent> channel_events(int channel) const;

  /// Whole recorder as JSON: `{"channels":{"-1":[...],"0":[...]},...}`.
  /// Deterministic: lanes render in channel order, entries oldest-first.
  [[nodiscard]] std::string to_json() const;
  bool dump(const std::string& path) const;

 private:
  FlightRecorderConfig config_;
  std::map<int, std::deque<FlightEvent>> channels_;
  std::uint64_t next_seq_ = 0;
  std::size_t recorded_ = 0;
  std::uint64_t evicted_ = 0;
  mutable int dumps_ = 0;
};

}  // namespace bmp::obs
