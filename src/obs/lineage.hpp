// Chunk lineage — per-chunk delivery paths as a first-class observable.
//
// A LineageSink collects one HopRecord per successful chunk delivery: which
// edge carried the chunk, when the chunk became available at the sender
// (enqueue), when the successful transmission started, when it arrived, how
// many failed attempts preceded it and what stalled the sender. Records
// arrive in event-loop order, so two runs of the same scenario fill the
// sink with byte-identical contents regardless of planner thread count —
// the PR-6 determinism convention (null-by-default raw-pointer hook,
// scenario-clock timestamps, bounded ring with a drop counter).
//
// The records form per-node delivery DAGs: the hop that delivered chunk c
// to node n is the unique parent of every later hop sending c *from* n.
// analyze_critical_path() walks that DAG backwards from the last-completing
// node and decomposes its completion time into per-edge queue-wait /
// transmit / retransmit-loss / scheduler-stall segments — the "blame table"
// that turns "p99 regressed" into "edge 17->42 queued 61% of the critical
// path". tools/lineage_report renders the same analysis from a dumped
// lineage JSON file.
//
// Node and chunk ids are dataplane Execution ids; `channel` is the
// execution's trace_id, so one sink can serve every channel of a runtime.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace bmp::obs {

class TraceSink;

/// One successful chunk delivery over one edge, in scenario time.
struct HopRecord {
  int chunk = 0;
  int from = 0;
  int to = 0;
  int channel = -1;       ///< ExecutionConfig::trace_id of the execution
  double enqueue = 0.0;   ///< when the sender first held the chunk
  double start = 0.0;     ///< when the successful transmission started
  double finish = 0.0;    ///< delivery time at the receiver
  int retransmits = 0;    ///< failed attempts (loss/corruption) before this
  double loss_time = 0.0; ///< scenario time burned by those failed attempts
  bool hol_stalled = false;  ///< sender hit receiver-window backpressure
  bool overtake = false;     ///< reservation overtake picked this chunk
};

struct LineageConfig {
  /// Hard cap on retained hop records; deliveries past it are counted as
  /// drops so a long stream degrades to a truncated lineage, not OOM.
  std::size_t max_hops = 1u << 20;
  /// Deterministic chunk sampling (power of two; 1 = record everything):
  /// a chunk is in the sample iff a stable hash of (channel, chunk) lands
  /// in residue 0 mod sample_mod. Sampling whole chunks — not individual
  /// hops — keeps every retained delivery DAG complete, so critical-path
  /// blame on the sample is exact for the sampled chunks; tables carry
  /// the factor as an annotation (BlameTable::sample_mod). Unlike the
  /// drop counter (which truncates the *tail* of a long run), sampling
  /// thins uniformly across the whole stream.
  std::uint32_t sample_mod = 1;
  /// When nonzero: each time retained hops exceed this budget the sink
  /// doubles sample_mod and deterministically prunes already-recorded
  /// chunks that fell out of the sample. Memory stays O(target) at any
  /// population size, and the final factor is a pure function of the
  /// record sequence — byte-identical across runs and planner thread
  /// counts (the PR-6 determinism convention).
  std::size_t auto_sample_target = 0;
};

class LineageSink {
 public:
  explicit LineageSink(LineageConfig config = {});

  /// Marks the chunk available at `node` (source emission or failover
  /// re-seed); roots the chunk's delivery DAG.
  void record_emit(int channel, int node, int chunk, double time) {
    if (!sampled(channel, chunk)) return;
    roots_.push_back({key(channel, node, chunk), time});
    resolved_ = false;
  }

  /// Records one delivery. `hop.enqueue` is resolved lazily from the
  /// availability index (the time the sender itself received — or emitted —
  /// the chunk) the first time the sink is read, keeping the hot path to a
  /// plain append; callers leave it zero. Records past `max_hops` are
  /// dropped but their availability is still tracked, so later enqueue
  /// times stay right.
  void record(const HopRecord& hop) {
    if (record_hop(hop.channel, hop.from, hop.to, hop.chunk, hop.start,
                   hop.finish, hop.hol_stalled, hop.overtake) &&
        hop.retransmits > 0) {
      record_hop_retry(hop.retransmits, hop.loss_time);
    }
  }

  /// Hot-path recorder: appends a packed 32-byte raw hop (half a
  /// HopRecord's cache footprint — the record stream must not evict the
  /// caller's working set). Returns false when the sink was full and the
  /// delivery fell to the drop counter. Retransmit data, rare by nature,
  /// rides in a sideband via record_hop_retry().
  bool record_hop(int channel, int from, int to, int chunk, double start,
                  double finish, bool hol, bool overtake) {
    ++recorded_;
    if (!sampled(channel, chunk)) {
      ++sampled_out_;
      return false;
    }
    if (raw_.size() >= config_.max_hops) {
      ++dropped_;
      // Keep the dropped delivery as an availability root so surviving
      // children still resolve their enqueue times correctly.
      roots_.push_back({key(channel, to, chunk), finish});
      return false;
    }
    resolved_ = false;
    RawHop& raw = raw_.emplace_back();
    raw.start = start;
    raw.finish = finish;
    raw.packed = (static_cast<std::uint32_t>(chunk) & kChunkMask) |
                 (hol ? kHolBit : 0u) | (overtake ? kOvertakeBit : 0u);
    raw.from = from;
    raw.to = to;
    raw.channel = channel;
    if (config_.auto_sample_target != 0 &&
        raw_.size() > config_.auto_sample_target) {
      resample();
    }
    return true;
  }

  /// Attaches retransmit data to the hop most recently accepted by
  /// record_hop(). Call only after record_hop() returned true.
  void record_hop_retry(int retransmits, double loss_time) {
    raw_.back().packed |= kRetryBit;
    retries_.push_back({retransmits, loss_time});
  }

  /// Forgets every record but keeps the allocated capacity — re-arming a
  /// sink for a fresh run without re-faulting its buffers in.
  void clear() {
    raw_.clear();
    retries_.clear();
    hops_.clear();
    roots_.clear();
    avail_.clear();
    recorded_ = 0;
    dropped_ = 0;
    sampled_out_ = 0;
    sample_mod_ = config_.sample_mod;
    resolved_ = true;
  }

  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// Deliveries outside the chunk sample (distinct from dropped_: those
  /// hit the capacity ceiling, these were never candidates).
  [[nodiscard]] std::uint64_t sampled_out() const { return sampled_out_; }
  /// Current sampling factor — config_.sample_mod, possibly doubled by
  /// auto-resampling. The blame-table annotation.
  [[nodiscard]] std::uint32_t sample_mod() const { return sample_mod_; }
  /// Whether chunk (channel, chunk) is inside the current sample.
  [[nodiscard]] bool sampled(int channel, int chunk) const {
    return sample_mod_ <= 1 ||
           (chunk_hash(channel, chunk) & (sample_mod_ - 1)) == 0;
  }
  [[nodiscard]] const std::vector<HopRecord>& hops() const {
    resolve();
    return hops_;
  }

  /// When the chunk became available at the node (delivery finish or emit
  /// time); `fallback` when unknown (e.g. the root hop fell to the drop
  /// counter).
  [[nodiscard]] double available_at(int channel, int node, int chunk,
                                    double fallback) const;

  /// Deterministic JSON dump: one hop object per line inside "hops", plus
  /// the drop counter — the format tools/lineage_report parses back.
  [[nodiscard]] std::string to_json() const;
  /// Writes to_json() to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  static constexpr std::uint32_t kChunkMask = 0xFFFFFFu;
  static constexpr std::uint32_t kHolBit = 1u << 24;
  static constexpr std::uint32_t kOvertakeBit = 1u << 25;
  static constexpr std::uint32_t kRetryBit = 1u << 26;

  /// Cache-lean on-the-wire form of a hop: 32 bytes vs HopRecord's 64.
  /// `packed` holds the chunk id (24 bits) plus the hol/overtake/retry
  /// flags; retransmit counts and loss times live in `retries_`, in hop
  /// order, for the rare hops whose retry bit is set.
  struct RawHop {
    double start = 0.0;
    double finish = 0.0;
    std::uint32_t packed = 0;
    std::int32_t from = 0;
    std::int32_t to = 0;
    std::int32_t channel = 0;
  };
  struct RetryData {
    int retransmits = 0;
    double loss_time = 0.0;
  };

  static std::uint64_t key(int channel, int node, int chunk) {
    // channel is a small id (trace_id), node < 16M, chunk < 16M.
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(channel))
            << 48) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node) &
                                       0xFFFFFFu)
            << 24) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(chunk)) &
            0xFFFFFFu);
  }

  /// Splitmix64 of (channel, chunk). Fields are masked exactly as key()
  /// stores them, so resample() hashes a chunk recovered from a root key
  /// to the same value as the original record_hop() call.
  static std::uint64_t chunk_hash(int channel, int chunk) {
    std::uint64_t x = (static_cast<std::uint64_t>(
                           static_cast<std::uint32_t>(channel) & 0xFFFFu)
                       << 24) |
                      (static_cast<std::uint32_t>(chunk) & kChunkMask);
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  /// Doubles sample_mod_ (possibly repeatedly) until retained hops fit the
  /// auto_sample_target budget, pruning already-recorded chunks that fell
  /// out of the sample. Off the common path: runs only when the budget is
  /// exceeded, and each run halves the expected retained set.
  void resample();

  /// Expands raw_ into hops_, builds the availability index and fills
  /// every hop's `enqueue` field. Idempotent; invalidated by the record
  /// calls. Off the record() hot path by design — hashing twice per
  /// delivery costs ~10% wall on the dataplane event loop.
  void resolve() const;

  LineageConfig config_;
  std::vector<RawHop> raw_;
  std::vector<RetryData> retries_;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t sampled_out_ = 0;
  /// Live sampling factor; starts at config_.sample_mod, doubled by
  /// resample(). Always a power of two.
  std::uint32_t sample_mod_ = 1;
  /// Availability roots that are not delivery hops: source emissions,
  /// failover re-seeds, and hops that fell to the drop counter.
  std::vector<std::pair<std::uint64_t, double>> roots_;
  /// Expanded view of raw_; built by resolve().
  mutable std::vector<HopRecord> hops_;
  /// (channel, node, chunk) -> availability time; built by resolve().
  mutable std::unordered_map<std::uint64_t, double> avail_;
  mutable bool resolved_ = true;
};

/// One critical-path edge with its delay decomposition. The four components
/// sum to `finish - enqueue`; summed over the whole path (plus the leading
/// emission segment) they telescope to the last node's completion time.
struct PathSegment {
  int chunk = 0;
  int from = 0;
  int to = 0;
  double enqueue = 0.0;
  double start = 0.0;
  double finish = 0.0;
  double queue_wait = 0.0;      ///< sender held the chunk, pipe served others
  double transmit = 0.0;        ///< successful transmission + propagation
  double retransmit_loss = 0.0; ///< failed attempts before the good copy
  double sched_stall = 0.0;     ///< receiver-window (HOL) backpressure
  bool overtake = false;
};

/// Aggregated blame for one edge or one node, sorted by total delay.
struct BlameRow {
  std::string key;  ///< "from->to" for edges, node id rendered for nodes
  double delay = 0.0;
  double queue_wait = 0.0;
  double transmit = 0.0;
  double retransmit_loss = 0.0;
  double sched_stall = 0.0;
};

struct BlameTable {
  bool valid = false;    ///< false when the sink held no matching hops
  int channel = -1;
  int last_node = -1;    ///< the last-completing node
  int critical_chunk = -1;  ///< its last-arriving chunk
  double completion_time = 0.0;  ///< finish of the final hop
  double emit_delay = 0.0;  ///< source pacing: first segment's enqueue time
  std::vector<PathSegment> path;  ///< source -> last node, in path order
  std::vector<BlameRow> edges;    ///< top-N edges by attributed delay
  std::vector<BlameRow> nodes;    ///< top-N sender nodes by attributed delay
  /// Sum of emit_delay and every segment delay — equals completion_time by
  /// construction; exported so validators can check the invariant.
  double attributed_total = 0.0;
  /// Chunk-sampling factor of the sink the hops came from: the table was
  /// built from 1-in-sample_mod of the stream's chunks. 1 = exhaustive.
  std::uint32_t sample_mod = 1;

  /// Deterministic JSON rendering of the decomposition.
  [[nodiscard]] std::string to_json() const;
  /// Human-readable table (what lineage_report prints).
  [[nodiscard]] std::string to_text() const;
};

/// Walks the delivery DAG back from the last-completing node (max hop
/// finish; ties resolve to the latest record) and decomposes its completion
/// time. `channel` filters the hops (-1 = the channel of the globally last
/// hop). Top-N rows per blame dimension.
[[nodiscard]] BlameTable analyze_critical_path(
    const std::vector<HopRecord>& hops, int channel = -1,
    std::size_t top_n = 10, std::uint32_t sample_mod = 1);

/// Emits the blame table's path segments as instant events on the lineage
/// lane (one per segment, at the segment's finish time). Null sink = no-op.
void emit_blame_trace(const BlameTable& table, TraceSink* trace);

/// Parses a LineageSink::to_json() dump back into hop records (the
/// lineage_report CLI's loader). Returns false on malformed input. Dumps
/// written before chunk sampling existed load with sample_mod = 1 and
/// sampled_out = 0.
bool parse_lineage_json(const std::string& text, std::vector<HopRecord>& hops,
                        std::uint64_t& dropped, std::uint64_t& sampled_out,
                        std::uint32_t& sample_mod);
bool parse_lineage_json(const std::string& text, std::vector<HopRecord>& hops,
                        std::uint64_t& dropped);

}  // namespace bmp::obs
