// Metrics exporters: Prometheus text exposition and compact JSON for
// MetricsSnapshot. Both honour the `timing.*` exclusion convention
// (MetricsRegistry::is_timing) so the default export of a timed run is
// still deterministic; the JSON form is single-line-per-section so
// bench_util::JsonReport can embed it verbatim in BENCH_*.json files.
#pragma once

#include <string>
#include <string_view>

#include "bmp/obs/rollup.hpp"
#include "bmp/runtime/metrics.hpp"

namespace bmp::obs {

/// Prometheus text exposition (# TYPE lines, counters as `<name>_total`,
/// histograms as summaries with quantile labels). Metric names are
/// sanitized (`.` and other non-[a-zA-Z0-9_] become `_`) and prefixed.
[[nodiscard]] std::string to_prometheus(const runtime::MetricsSnapshot& snap,
                                        bool include_timing = false,
                                        std::string_view prefix = "bmp_");

/// Compact JSON object:
/// `{"counters":{...},"gauges":{...},"histograms":{"x":{"count":..}}}`.
/// Keys stay in registry (name-sorted) order; values use %.12g formatting,
/// matching MetricsSnapshot::to_string precision.
[[nodiscard]] std::string to_json(const runtime::MetricsSnapshot& snap,
                                  bool include_timing = false);

/// Prometheus rendering of a (possibly merged) shard rollup. Counters and
/// gauges render as for MetricsSnapshot. Each sketch renders twice: a
/// summary with q=0.5/0.9/0.99 quantile labels, and a native cumulative
/// histogram `<name>_sketch` whose `le` bounds are the sketch's own
/// log-bucket boundaries gamma^i (empty buckets elided; the cumulative
/// counts are unaffected). Relative-error contract: every quantile — and
/// every `le` boundary read as a quantile — is within the sketch's
/// configured alpha of the true order statistic (see obs::Sketch).
/// Top-K series render as one `<name>{key="..."}` gauge sample per
/// retained heavy hitter, in the deterministic top() order.
[[nodiscard]] std::string to_prometheus(const RollupSnapshot& snap,
                                        bool include_timing = false,
                                        std::string_view prefix = "bmp_");

/// Compact JSON rendering of a rollup (display form — for the lossless
/// wire form use RollupSnapshot::to_json): sketches export count / sum /
/// min / max / mean and p50/p90/p99 under the alpha contract above; topk
/// series export `[key, count, error]` rows in top() order.
[[nodiscard]] std::string to_json(const RollupSnapshot& snap,
                                  bool include_timing = false);

}  // namespace bmp::obs
