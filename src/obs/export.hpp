// Metrics exporters: Prometheus text exposition and compact JSON for
// MetricsSnapshot. Both honour the `timing.*` exclusion convention
// (MetricsRegistry::is_timing) so the default export of a timed run is
// still deterministic; the JSON form is single-line-per-section so
// bench_util::JsonReport can embed it verbatim in BENCH_*.json files.
#pragma once

#include <string>
#include <string_view>

#include "bmp/runtime/metrics.hpp"

namespace bmp::obs {

/// Prometheus text exposition (# TYPE lines, counters as `<name>_total`,
/// histograms as summaries with quantile labels). Metric names are
/// sanitized (`.` and other non-[a-zA-Z0-9_] become `_`) and prefixed.
[[nodiscard]] std::string to_prometheus(const runtime::MetricsSnapshot& snap,
                                        bool include_timing = false,
                                        std::string_view prefix = "bmp_");

/// Compact JSON object:
/// `{"counters":{...},"gauges":{...},"histograms":{"x":{"count":..}}}`.
/// Keys stay in registry (name-sorted) order; values use %.12g formatting,
/// matching MetricsSnapshot::to_string precision.
[[nodiscard]] std::string to_json(const runtime::MetricsSnapshot& snap,
                                  bool include_timing = false);

}  // namespace bmp::obs
