#include "bmp/util/table.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace bmp::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(int v) { return std::to_string(v); }
std::string Table::num(long v) { return std::to_string(v); }
std::string Table::num(std::size_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(width[c])) << std::left
         << (c < row.size() ? row[c] : "") << " |";
    }
    os << '\n';
  };
  print_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_csv() const {
  std::ostringstream os;
  const auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

bool Table::maybe_write_csv(const std::string& name) const {
  const char* dir = std::getenv("BMP_RESULTS_DIR");
  if (dir == nullptr || *dir == '\0') return false;
  std::filesystem::create_directories(dir);
  std::ofstream out(std::filesystem::path(dir) / (name + ".csv"));
  if (!out) return false;
  out << to_csv();
  return true;
}

void print_banner(std::ostream& os, const std::string& title) {
  os << '\n' << std::string(72, '=') << '\n'
     << title << '\n'
     << std::string(72, '=') << '\n';
}

}  // namespace bmp::util
