#include "bmp/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace bmp::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  RunningStats rs;
  for (const double x : xs) rs.add(x);
  return rs.stddev();
}

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  std::sort(xs.begin(), xs.end());
  const double h = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double median(const std::vector<double>& xs) { return quantile(xs, 0.5); }

BoxStats box_stats(std::vector<double> xs) {
  BoxStats b;
  if (xs.empty()) return b;
  b.n = xs.size();
  b.mean = mean(xs);
  std::sort(xs.begin(), xs.end());
  const auto q = [&xs](double p) {
    const double h = p * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(h);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = h - static_cast<double>(lo);
    return xs[lo] + frac * (xs[hi] - xs[lo]);
  };
  b.min = xs.front();
  b.q05 = q(0.05);
  b.q25 = q(0.25);
  b.median = q(0.5);
  b.q75 = q(0.75);
  b.q95 = q(0.95);
  b.max = xs.back();
  return b;
}

std::string to_string(const BoxStats& b, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << "min=" << b.min << " q05=" << b.q05 << " q25=" << b.q25
     << " med=" << b.median << " q75=" << b.q75 << " q95=" << b.q95
     << " max=" << b.max << " mean=" << b.mean;
  return os.str();
}

}  // namespace bmp::util
