// Exact rational arithmetic on 64-bit numerator/denominator with __int128
// intermediates. Used as the exact number type for the coding-word state
// machinery (Lemma 4.4 recursions) and for ground-truth throughput values in
// tests (e.g. the tight 5/7 instances of Theorem 6.2), where floating point
// would blur feasibility boundaries.
#pragma once

#include <cstdint>
#include <numeric>
#include <ostream>
#include <stdexcept>
#include <string>

namespace bmp::util {

/// Exact rational p/q, always stored normalized (gcd(p,q)=1, q>0).
/// Overflow of the reduced representation throws std::overflow_error rather
/// than wrapping silently; intermediates are computed in __int128.
class Rational {
 public:
  constexpr Rational() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): integers convert exactly.
  constexpr Rational(std::int64_t value) : num_(value), den_(1) {}
  Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
    if (den_ == 0) throw std::domain_error("Rational: zero denominator");
    normalize();
  }

  [[nodiscard]] constexpr std::int64_t num() const { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const { return den_; }

  [[nodiscard]] double to_double() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  friend Rational operator+(const Rational& a, const Rational& b) {
    return from_i128(i128(a.num_) * b.den_ + i128(b.num_) * a.den_,
                     i128(a.den_) * b.den_);
  }
  friend Rational operator-(const Rational& a, const Rational& b) {
    return from_i128(i128(a.num_) * b.den_ - i128(b.num_) * a.den_,
                     i128(a.den_) * b.den_);
  }
  friend Rational operator*(const Rational& a, const Rational& b) {
    return from_i128(i128(a.num_) * b.num_, i128(a.den_) * b.den_);
  }
  friend Rational operator/(const Rational& a, const Rational& b) {
    if (b.num_ == 0) throw std::domain_error("Rational: division by zero");
    return from_i128(i128(a.num_) * b.den_, i128(a.den_) * b.num_);
  }
  Rational operator-() const {
    Rational r;
    r.num_ = -num_;
    r.den_ = den_;
    return r;
  }

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend bool operator!=(const Rational& a, const Rational& b) { return !(a == b); }
  friend bool operator<(const Rational& a, const Rational& b) {
    return i128(a.num_) * b.den_ < i128(b.num_) * a.den_;
  }
  friend bool operator>(const Rational& a, const Rational& b) { return b < a; }
  friend bool operator<=(const Rational& a, const Rational& b) { return !(b < a); }
  friend bool operator>=(const Rational& a, const Rational& b) { return !(a < b); }

  [[nodiscard]] std::string str() const {
    if (den_ == 1) return std::to_string(num_);
    return std::to_string(num_) + "/" + std::to_string(den_);
  }

  friend std::ostream& operator<<(std::ostream& os, const Rational& r) {
    return os << r.str();
  }

 private:
  __extension__ typedef __int128 i128;  // NOLINT: GCC extension, sanctioned via __extension__

  static Rational from_i128(i128 num, i128 den) {
    if (den < 0) {
      num = -num;
      den = -den;
    }
    const i128 g = gcd128(num < 0 ? -num : num, den);
    if (g > 1) {
      num /= g;
      den /= g;
    }
    constexpr i128 kMax = INT64_MAX;
    constexpr i128 kMin = INT64_MIN;
    if (num > kMax || num < kMin || den > kMax) {
      throw std::overflow_error("Rational: 64-bit overflow after reduction");
    }
    Rational r;
    r.num_ = static_cast<std::int64_t>(num);
    r.den_ = static_cast<std::int64_t>(den);
    return r;
  }

  static i128 gcd128(i128 a, i128 b) {
    while (b != 0) {
      const i128 t = a % b;
      a = b;
      b = t;
    }
    return a == 0 ? 1 : a;
  }

  void normalize() {
    if (den_ < 0) {
      num_ = -num_;
      den_ = -den_;
    }
    const std::int64_t g = std::gcd(num_, den_);
    if (g > 1) {
      num_ /= g;
      den_ /= g;
    }
  }

  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

/// min/max helpers so templated code works uniformly for double and Rational.
inline Rational min(const Rational& a, const Rational& b) { return a < b ? a : b; }
inline Rational max(const Rational& a, const Rational& b) { return a < b ? b : a; }

}  // namespace bmp::util
