#include "bmp/util/thread_pool.hpp"

#include <algorithm>

namespace bmp::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t chunk) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  if (chunk == 0) {
    chunk = std::max<std::size_t>(1, total / (pool.size() * 8));
  }
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(lo + chunk, end);
    pool.submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  pool.wait_idle();
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  ThreadPool pool;
  parallel_for(pool, begin, end, fn);
}

}  // namespace bmp::util
