#include "bmp/util/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace bmp::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) {
      throw std::runtime_error("ThreadPool::submit: pool is stopped");
    }
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_exception_) {
    std::exception_ptr rethrown = std::exchange(first_exception_, nullptr);
    lock.unlock();
    std::rethrow_exception(rethrown);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_exception_) first_exception_ = error;
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t chunk) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  if (chunk == 0) {
    chunk = std::max<std::size_t>(1, total / (pool.size() * 8));
  }
  // Completion and exceptions are tracked per-call, not in the pool:
  // concurrent parallel_for calls sharing one pool must each join (only)
  // their own chunks and see (only) their own failures — wait_idle would
  // both over-wait and rethrow stale exceptions from unrelated submits.
  std::mutex state_mutex;
  std::condition_variable done_cv;
  std::size_t pending = (total + chunk - 1) / chunk;
  std::exception_ptr first_exception;
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(lo + chunk, end);
    pool.submit([lo, hi, &fn, &state_mutex, &done_cv, &pending,
                 &first_exception] {
      std::exception_ptr error;
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        error = std::current_exception();
      }
      const std::lock_guard<std::mutex> lock(state_mutex);
      if (error && !first_exception) first_exception = error;
      if (--pending == 0) done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(state_mutex);
  done_cv.wait(lock, [&] { return pending == 0; });
  if (first_exception) std::rethrow_exception(first_exception);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  ThreadPool pool;
  parallel_for(pool, begin, end, fn);
}

}  // namespace bmp::util
