// Plain-text aligned table rendering + CSV export for the experiment
// binaries, so every paper table/figure prints as a readable block and can
// optionally be dumped for plotting (set BMP_RESULTS_DIR).
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace bmp::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);

  /// Format helpers for mixed numeric rows.
  static std::string num(double v, int precision = 4);
  static std::string num(int v);
  static std::string num(long v);
  static std::string num(std::size_t v);

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_csv() const;

  /// Writes <name>.csv under $BMP_RESULTS_DIR if that env var is set;
  /// returns true if a file was written.
  bool maybe_write_csv(const std::string& name) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Section banner used by the bench binaries.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace bmp::util
