// Deterministic, fast RNG (xoshiro256**) with SplitMix64 seeding. The
// experiment harness derives one independent stream per (experiment, cell,
// replicate) so results are reproducible regardless of thread scheduling.
#pragma once

#include <cstdint>

namespace bmp::util {

/// SplitMix64: used to expand a single 64-bit seed into stream state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna. Satisfies UniformRandomBitGenerator so
/// it plugs into <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0xB10C0DEULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derive an independent child stream (for per-replicate seeding).
  [[nodiscard]] constexpr Xoshiro256 fork(std::uint64_t salt) const {
    std::uint64_t sm = state_[0] ^ (salt * 0x9E3779B97F4A7C15ULL) ^ state_[3];
    Xoshiro256 child(0);
    for (auto& word : child.state_) word = splitmix64(sm);
    return child;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  constexpr std::uint64_t below(std::uint64_t n) {
    // Lemire's multiply-shift rejection-free bound is overkill here; modulo
    // bias is negligible for n << 2^64 but we keep a rejection loop for
    // exactness in property tests.
    const std::uint64_t threshold = (0ULL - n) % n;
    for (;;) {
      const std::uint64_t r = operator()();
      if (r >= threshold) return r % n;
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace bmp::util
