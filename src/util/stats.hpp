// Small descriptive-statistics toolkit used by the experiment harness
// (Fig. 19 boxplots, degree audits). Quantiles follow the "type 7" linear
// interpolation convention (the default of R/NumPy), which is what the
// paper's boxplots use.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace bmp::util {

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (divides by n-1); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);
/// Type-7 quantile with linear interpolation, q in [0,1]. Sorts a copy.
double quantile(std::vector<double> xs, double q);
double median(const std::vector<double>& xs);

/// Five-number summary + mean, as used for the Fig. 19 boxplots.
struct BoxStats {
  std::size_t n = 0;
  double min = 0, q05 = 0, q25 = 0, median = 0, q75 = 0, q95 = 0, max = 0;
  double mean = 0;
};

BoxStats box_stats(std::vector<double> xs);

/// "min=.. q25=.. med=.. .." one-line rendering for bench tables.
std::string to_string(const BoxStats& b, int precision = 4);

}  // namespace bmp::util
