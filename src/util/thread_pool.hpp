// Minimal work-stealing-free thread pool plus parallel_for. The experiment
// sweeps (Fig. 7 grid, Fig. 19 Monte Carlo) are embarrassingly parallel;
// cells are seeded deterministically so any thread count gives identical
// output.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bmp::util {

class ThreadPool {
 public:
  /// threads == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; fire-and-forget (use wait_idle to join logically).
  /// Throws std::runtime_error if the pool is shutting down.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have completed. If any task threw, the
  /// *first* captured exception is rethrown here (later ones are dropped);
  /// the pool stays usable afterwards.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  std::exception_ptr first_exception_;
  bool stop_ = false;
};

/// Run fn(i) for i in [begin, end) across the pool, blocking until done.
/// Work is chunked to amortize queue overhead. If any fn(i) throws, the
/// remaining chunks still drain and the first exception is rethrown.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t chunk = 0);

/// Convenience: one-shot pool with default thread count.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

}  // namespace bmp::util
