#include "bmp/trees/arborescence.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>
#include <vector>

namespace bmp::trees {

Decomposition decompose_acyclic(const BroadcastScheme& scheme, double T,
                                double tol) {
  if (!scheme.is_acyclic()) {
    throw std::invalid_argument("decompose_acyclic: scheme has cycles");
  }
  if (scheme.max_inflow_deviation(T) > tol) {
    throw std::invalid_argument(
        "decompose_acyclic: inflow differs from T at some node");
  }
  const int N = scheme.num_nodes();
  Decomposition result;
  if (T <= tol) return result;

  // Residual in-edges per node: (sender -> residual rate).
  std::vector<std::map<int, double>> in(static_cast<std::size_t>(N));
  for (int i = 0; i < N; ++i) {
    for (const auto& [to, r] : scheme.out_edges(i)) {
      in[static_cast<std::size_t>(to)][i] = r;
    }
  }

  // Two scales: `stop` bounds how much of T may remain unpacked (well below
  // the validation tolerance), while `erase` only discards machine-noise
  // residuals — erasing more aggressively would silently drain a node's
  // in-edges over many peels and strand it.
  const double stop = 1e-9 * T;
  const double erase = 1e-13 * T;
  // Nodes that the scheme feeds must stay spanned until the weight budget
  // is exhausted.
  std::vector<bool> fed(static_cast<std::size_t>(N), false);
  for (int v = 1; v < N; ++v) {
    fed[static_cast<std::size_t>(v)] = !in[static_cast<std::size_t>(v)].empty();
  }

  double remaining = T;
  const int max_trees = scheme.edge_count() + 1;
  for (int round = 0; round < max_trees && remaining > stop; ++round) {
    WeightedArborescence tree;
    tree.parent.assign(static_cast<std::size_t>(N), -1);
    double weight = remaining;
    // Pick, for every fed node, the in-edge with the largest residual
    // (fewer trees than picking arbitrarily).
    for (int v = 1; v < N; ++v) {
      if (!fed[static_cast<std::size_t>(v)]) continue;
      const auto& candidates = in[static_cast<std::size_t>(v)];
      int best_parent = -1;
      double best_residual = 0.0;
      for (const auto& [sender, residual] : candidates) {
        if (residual > best_residual) {
          best_residual = residual;
          best_parent = sender;
        }
      }
      if (best_parent < 0 || best_residual <= erase) {
        throw std::logic_error(
            "decompose_acyclic: residual inflow invariant violated");
      }
      tree.parent[static_cast<std::size_t>(v)] = best_parent;
      weight = std::min(weight, best_residual);
    }
    tree.weight = weight;
    // Peel: subtract the weight from every chosen edge.
    for (int v = 1; v < N; ++v) {
      const int parent = tree.parent[static_cast<std::size_t>(v)];
      if (parent < 0) continue;
      auto& candidates = in[static_cast<std::size_t>(v)];
      auto it = candidates.find(parent);
      it->second -= weight;
      if (it->second <= erase) candidates.erase(it);
    }
    remaining -= weight;
    result.total_weight += weight;
    result.trees.push_back(std::move(tree));
  }
  if (remaining > stop) {
    throw std::logic_error("decompose_acyclic: failed to exhaust throughput");
  }
  // Report exactly T so callers can schedule the full stream on the trees.
  if (!result.trees.empty()) result.trees.back().weight += remaining;
  result.total_weight += remaining;
  return result;
}

bool validate_decomposition(const BroadcastScheme& scheme, const Decomposition& d,
                            double T, double tol) {
  const int N = scheme.num_nodes();
  const double eps = tol * std::max(T, 1e-300);  // relative, scale-free
  double weight_sum = 0.0;
  std::map<std::pair<int, int>, double> usage;

  // Which nodes must be covered: those with positive inflow in the scheme.
  std::vector<bool> fed(static_cast<std::size_t>(N), false);
  for (int i = 0; i < N; ++i) {
    for (const auto& [to, r] : scheme.out_edges(i)) {
      if (r > eps) fed[static_cast<std::size_t>(to)] = true;
    }
  }

  for (const auto& tree : d.trees) {
    if (tree.weight <= 0.0) return false;
    if (static_cast<int>(tree.parent.size()) != N) return false;
    if (tree.parent[0] != -1) return false;
    weight_sum += tree.weight;
    for (int v = 1; v < N; ++v) {
      const int p = tree.parent[static_cast<std::size_t>(v)];
      if (p < 0) {
        if (fed[static_cast<std::size_t>(v)]) return false;  // must be spanned
        continue;
      }
      usage[{p, v}] += tree.weight;
      // Walk to the root to confirm reachability (acyclic parents, <= N hops).
      int cursor = v;
      int hops = 0;
      while (cursor > 0 && hops++ <= N) {
        cursor = tree.parent[static_cast<std::size_t>(cursor)];
        if (cursor < 0) return false;
      }
      if (cursor != 0) return false;
    }
  }
  if (std::abs(weight_sum - T) > eps) return false;
  for (const auto& [edge, used] : usage) {
    if (used > scheme.rate(edge.first, edge.second) + eps) return false;
  }
  return true;
}

}  // namespace bmp::trees
