// Broadcast-tree decomposition (paper §II.C): a broadcast scheme of
// throughput T can be decomposed into weighted broadcast trees (spanning
// arborescences rooted at the source) whose weights sum to T — Schrijver,
// Combinatorial Optimization, ch. 53. The decomposition tells the transport
// layer which data to push on which edge.
//
// For the ACYCLIC schemes our algorithms emit, every non-source node has
// inflow exactly T, which admits a simple greedy peeling: each node picks a
// parent among its positive-residual in-edges, the minimum residual (capped
// by the remaining weight) is peeled off as one tree, and the invariant
// "residual inflow == remaining weight at every node" is preserved because
// each tree uses exactly one in-edge per node. Each peel zeroes at least
// one edge or finishes, so at most |E| + 1 trees are produced.
#pragma once

#include <vector>

#include "bmp/core/scheme.hpp"

namespace bmp::trees {

struct WeightedArborescence {
  double weight = 0.0;
  /// parent[v] for every node; parent[0] == -1 (the source). Nodes that are
  /// not reached (only possible for inflow-0 nodes of partial schemes) also
  /// hold -1.
  std::vector<int> parent;
};

struct Decomposition {
  std::vector<WeightedArborescence> trees;
  double total_weight = 0.0;
};

/// Decomposes an acyclic scheme feeding every non-source node at rate T
/// into weighted arborescences. Throws std::invalid_argument when the
/// scheme is cyclic or some node's inflow deviates from T beyond tolerance.
Decomposition decompose_acyclic(const BroadcastScheme& scheme, double T,
                                double tol = 1e-6);

/// Checks that `d` is a valid decomposition of `scheme`: every tree is a
/// spanning arborescence rooted at 0, weights are positive and sum to T,
/// and per-edge usage stays within capacity (+tol).
bool validate_decomposition(const BroadcastScheme& scheme, const Decomposition& d,
                            double T, double tol = 1e-6);

}  // namespace bmp::trees
