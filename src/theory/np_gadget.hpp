// Theorem 3.1 (appendix VIII): the degree-constrained broadcast problem is
// strongly NP-complete, by reduction from 3-PARTITION. This module makes
// the reduction executable:
//
//   3-PARTITION instance (3p items a_i, sum pT, T/4 < a_i < T/2)
//     -> broadcast instance (Fig. 8): source b0 = 3pT, 3p intermediate open
//        nodes with b_i = a_i, p final open nodes with b = 0, target T.
//
// A 3-partition solution maps to a throughput-T scheme where every node has
// outdegree exactly ceil(b_i/T), and conversely — so an exact small-scale
// 3-PARTITION solver doubles as the degree-constrained broadcast oracle.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "bmp/core/instance.hpp"
#include "bmp/core/scheme.hpp"

namespace bmp::theory {

struct ThreePartition {
  std::vector<long> items;  ///< 3p items
  long target = 0;          ///< T; a valid instance has sum(items) = p*T

  [[nodiscard]] int groups() const { return static_cast<int>(items.size()) / 3; }
  /// Structural well-formedness: |items| = 3p, sum = pT, T/4 < a_i < T/2.
  [[nodiscard]] bool well_formed() const;
};

/// The Fig. 8 gadget instance (all nodes open).
Instance np_gadget_instance(const ThreePartition& tp);

/// Exhaustive 3-PARTITION solver (backtracking; fine for p <= ~5). Returns
/// the triples of item indices, or nullopt if no partition exists.
std::optional<std::vector<std::array<int, 3>>> solve_three_partition(
    const ThreePartition& tp);

/// Builds the degree-optimal broadcast scheme of the reduction from a
/// 3-partition solution: throughput T, outdegree(i) == ceil(b_i/T) for all.
BroadcastScheme scheme_from_three_partition(
    const ThreePartition& tp, const std::vector<std::array<int, 3>>& triples);

}  // namespace bmp::theory
