#include "bmp/theory/instances.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace bmp::theory {

using util::Rational;

Instance fig1_instance() { return Instance(6.0, {5.0, 5.0}, {4.0, 1.0, 1.0}); }

RationalInstance fig1_rational() {
  return RationalInstance(Rational(6), {Rational(5), Rational(5)},
                          {Rational(4), Rational(1), Rational(1)});
}

Instance fig6_instance(int m) {
  if (m < 1) throw std::invalid_argument("fig6_instance: m >= 1 required");
  std::vector<double> guarded(static_cast<std::size_t>(m), 1.0 / m);
  return Instance(1.0, {static_cast<double>(m - 1)}, std::move(guarded));
}

Instance fig18_instance(double eps) {
  if (eps < 0.0 || eps >= 0.5) {
    throw std::invalid_argument("fig18_instance: eps in [0, 1/2) required");
  }
  return Instance(1.0, {1.0 + 2.0 * eps}, {0.5 - eps, 0.5 - eps});
}

RationalInstance fig18_rational(const Rational& eps) {
  const Rational half(1, 2);
  return RationalInstance(Rational(1), {Rational(1) + Rational(2) * eps},
                          {half - eps, half - eps});
}

Rational fig18_worst_eps() { return {1, 14}; }

Instance thm63_instance(int k, int p, int q) {
  if (k < 1 || p < 1 || q <= p) {
    throw std::invalid_argument("thm63_instance: need k>=1 and alpha=p/q<1");
  }
  const double alpha = static_cast<double>(p) / q;
  std::vector<double> open(static_cast<std::size_t>(k) * q, alpha);
  std::vector<double> guarded(static_cast<std::size_t>(k) * p, 1.0 / alpha);
  return Instance(1.0, std::move(open), std::move(guarded));
}

double thm63_alpha() { return (std::sqrt(41.0) - 3.0) / 8.0; }
double thm63_limit_ratio() { return (1.0 + std::sqrt(41.0)) / 8.0; }

Instance tight_homogeneous(int n, int m, double delta) {
  if (n < 1 || m < 1) {
    throw std::invalid_argument("tight_homogeneous: n, m >= 1 required");
  }
  if (delta < 0.0 || delta > static_cast<double>(n)) {
    throw std::invalid_argument("tight_homogeneous: delta in [0, n] required");
  }
  const double o = (m - 1 + delta) / n;
  const double g = (n - delta) / m;
  return Instance(1.0, std::vector<double>(static_cast<std::size_t>(n), o),
                  std::vector<double>(static_cast<std::size_t>(m), g));
}

RationalInstance tight_homogeneous_rational(int n, int m, const Rational& delta) {
  if (n < 1 || m < 1) {
    throw std::invalid_argument("tight_homogeneous_rational: n, m >= 1 required");
  }
  if (delta < Rational(0) || Rational(n) < delta) {
    throw std::invalid_argument("tight_homogeneous_rational: delta in [0, n]");
  }
  const Rational o = (Rational(m - 1) + delta) / Rational(n);
  const Rational g = (Rational(n) - delta) / Rational(m);
  return RationalInstance(
      Rational(1), std::vector<Rational>(static_cast<std::size_t>(n), o),
      std::vector<Rational>(static_cast<std::size_t>(m), g));
}

Instance tight_homogeneous_open(int n) {
  if (n < 1) throw std::invalid_argument("tight_homogeneous_open: n >= 1");
  const double o = static_cast<double>(n - 1) / n;
  return Instance(1.0, std::vector<double>(static_cast<std::size_t>(n), o), {});
}

}  // namespace bmp::theory
