#include "bmp/theory/np_gadget.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace bmp::theory {

bool ThreePartition::well_formed() const {
  if (items.empty() || items.size() % 3 != 0 || target <= 0) return false;
  const long total = std::accumulate(items.begin(), items.end(), 0L);
  if (total != static_cast<long>(groups()) * target) return false;
  return std::all_of(items.begin(), items.end(), [this](long a) {
    return 4 * a > target && 2 * a < target;
  });
}

Instance np_gadget_instance(const ThreePartition& tp) {
  if (!tp.well_formed()) {
    throw std::invalid_argument("np_gadget_instance: malformed 3-PARTITION input");
  }
  const int p = tp.groups();
  std::vector<double> open;
  open.reserve(tp.items.size() + static_cast<std::size_t>(p));
  for (const long a : tp.items) open.push_back(static_cast<double>(a));
  for (int j = 0; j < p; ++j) open.push_back(0.0);
  return {static_cast<double>(3L * p * tp.target), std::move(open), {}};
}

namespace {
bool backtrack(const ThreePartition& tp, std::vector<int>& group_of,
               std::vector<long>& group_sum, int item,
               const std::vector<int>& order) {
  if (item == static_cast<int>(order.size())) return true;
  const int idx = order[static_cast<std::size_t>(item)];
  const long a = tp.items[static_cast<std::size_t>(idx)];
  int tried_empty = 0;
  for (int g = 0; g < tp.groups(); ++g) {
    if (group_sum[static_cast<std::size_t>(g)] + a > tp.target) continue;
    // Symmetry breaking: trying more than one currently-empty group is
    // redundant.
    if (group_sum[static_cast<std::size_t>(g)] == 0) {
      if (tried_empty++ > 0) continue;
    }
    group_of[static_cast<std::size_t>(idx)] = g;
    group_sum[static_cast<std::size_t>(g)] += a;
    if (backtrack(tp, group_of, group_sum, item + 1, order)) return true;
    group_sum[static_cast<std::size_t>(g)] -= a;
    group_of[static_cast<std::size_t>(idx)] = -1;
  }
  return false;
}
}  // namespace

std::optional<std::vector<std::array<int, 3>>> solve_three_partition(
    const ThreePartition& tp) {
  if (!tp.well_formed()) return std::nullopt;
  std::vector<int> order(tp.items.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&tp](int a, int b) {
    return tp.items[static_cast<std::size_t>(a)] >
           tp.items[static_cast<std::size_t>(b)];
  });
  std::vector<int> group_of(tp.items.size(), -1);
  std::vector<long> group_sum(static_cast<std::size_t>(tp.groups()), 0);
  if (!backtrack(tp, group_of, group_sum, 0, order)) return std::nullopt;

  std::vector<std::array<int, 3>> triples(static_cast<std::size_t>(tp.groups()),
                                          {-1, -1, -1});
  std::vector<int> fill(static_cast<std::size_t>(tp.groups()), 0);
  for (int i = 0; i < static_cast<int>(tp.items.size()); ++i) {
    const int g = group_of[static_cast<std::size_t>(i)];
    auto& slot = fill[static_cast<std::size_t>(g)];
    if (slot >= 3) return std::nullopt;  // the (T/4,T/2) window forces 3 items
    triples[static_cast<std::size_t>(g)][static_cast<std::size_t>(slot++)] = i;
  }
  return triples;
}

BroadcastScheme scheme_from_three_partition(
    const ThreePartition& tp, const std::vector<std::array<int, 3>>& triples) {
  if (!tp.well_formed() ||
      triples.size() != static_cast<std::size_t>(tp.groups())) {
    throw std::invalid_argument("scheme_from_three_partition: bad inputs");
  }
  const int p = tp.groups();
  const auto T = static_cast<double>(tp.target);
  // Node numbering of np_gadget_instance AFTER sorting: intermediates are
  // ranked by bandwidth; map via item value order. To stay simple we build
  // against the gadget's sorted layout: intermediates occupy 1..3p sorted
  // non-increasingly, finals 3p+1..4p (bandwidth 0).
  std::vector<int> order(tp.items.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&tp](int a, int b) {
    return tp.items[static_cast<std::size_t>(a)] >
           tp.items[static_cast<std::size_t>(b)];
  });
  std::vector<int> sorted_pos(tp.items.size());
  for (int rank = 0; rank < static_cast<int>(order.size()); ++rank) {
    sorted_pos[static_cast<std::size_t>(order[static_cast<std::size_t>(rank)])] =
        rank + 1;  // node ids 1..3p
  }

  BroadcastScheme scheme(1 + 3 * p + p);
  for (int i = 1; i <= 3 * p; ++i) scheme.add(0, i, T);
  for (int g = 0; g < p; ++g) {
    const int final_node = 3 * p + 1 + g;
    for (const int item : triples[static_cast<std::size_t>(g)]) {
      scheme.add(sorted_pos[static_cast<std::size_t>(item)], final_node,
                 static_cast<double>(tp.items[static_cast<std::size_t>(item)]));
    }
  }
  return scheme;
}

}  // namespace bmp::theory
