// The paper's named instance families:
//
//  * fig1_instance        — the running example (§II.D, T* = 4.4);
//  * fig6_instance(m)     — cyclic+guarded degree blow-up: optimal cyclic
//                           schemes need source degree m while ceil(b0/T*)=1;
//  * fig18_instance(eps)  — the Theorem 6.2 tight family: at eps = 1/14 the
//                           acyclic/cyclic ratio hits exactly 5/7;
//  * thm63_instance(k)    — I(alpha,k) of Theorem 6.3: kq opens at alpha,
//                           kp guardeds at 1/alpha, ratio -> (1+sqrt41)/8;
//  * tight_homogeneous    — the Fig. 7 grid family: b0 = T* = 1, opens at
//                           o = (m-1+Delta)/n, guardeds at g = (n-Delta)/m.
#pragma once

#include "bmp/core/instance.hpp"
#include "bmp/util/rational.hpp"

namespace bmp::theory {

Instance fig1_instance();
RationalInstance fig1_rational();

/// Fig. 6: b0 = 1, one open node at m-1, m guarded nodes at 1/m. T* = 1.
Instance fig6_instance(int m);

/// Fig. 18 / Thm 6.2: b0 = 1, open {1+2eps}, guarded {1/2-eps, 1/2-eps}.
Instance fig18_instance(double eps);
RationalInstance fig18_rational(const util::Rational& eps);

/// eps at which both orderings of the 5/7 proof tie: 1/14.
util::Rational fig18_worst_eps();

/// Theorem 6.2's tight ratio.
constexpr double five_sevenths() { return 5.0 / 7.0; }

/// I(alpha = p/q, k): b0 = 1, kq open nodes at p/q, kp guarded at q/p.
/// Defaults approximate alpha* = (sqrt(41)-3)/8 ~ 0.42539 (20/47 ~ 0.42553).
Instance thm63_instance(int k, int p = 20, int q = 47);

/// alpha* = (sqrt(41)-3)/8: the worst open/guarded balance.
double thm63_alpha();
/// Asymptotic ceiling of T*_ac/T*: (1+sqrt(41))/8 ~ 0.92539.
double thm63_limit_ratio();

/// Tight homogeneous instance (§XI-B): b0 = T* = 1. Requires n >= 1,
/// m >= 1 and 0 <= delta <= n. (For m = 0 use tight_homogeneous_open.)
Instance tight_homogeneous(int n, int m, double delta);
RationalInstance tight_homogeneous_rational(int n, int m,
                                            const util::Rational& delta);

/// Open-only tight instance: b0 = 1, n opens at (n-1)/n (so (b0+O)/n = 1).
Instance tight_homogeneous_open(int n);

}  // namespace bmp::theory
