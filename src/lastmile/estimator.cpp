#include "bmp/lastmile/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace bmp::lastmile {

namespace {

/// Exact minimizer of f(x) = sum_k (m_k - min(x, cap_k))^2 over x >= 0.
/// Piecewise quadratic with breakpoints at the caps: on a segment where
/// caps below x are "saturated" (contribute constants), the optimum is the
/// mean of the m_k with cap_k > x, clamped to the segment.
double best_parameter(std::vector<std::pair<double, double>>& cap_and_m) {
  if (cap_and_m.empty()) return 0.0;
  std::sort(cap_and_m.begin(), cap_and_m.end());
  const std::size_t K = cap_and_m.size();
  // Suffix sums of m over caps > segment start.
  std::vector<double> suffix_m(K + 1, 0.0);
  for (std::size_t k = K; k-- > 0;) {
    suffix_m[k] = suffix_m[k + 1] + cap_and_m[k].second;
  }
  const auto eval = [&](double x) {
    double err = 0.0;
    for (const auto& [cap, m] : cap_and_m) {
      const double predicted = std::min(x, cap);
      err += (m - predicted) * (m - predicted);
    }
    return err;
  };

  double best_x = 0.0;
  double best_err = eval(0.0);
  // Segment s: x in [cap_{s-1}, cap_s] — entries < s are saturated.
  for (std::size_t s = 0; s <= K; ++s) {
    const double lo = s == 0 ? 0.0 : cap_and_m[s - 1].first;
    const double hi =
        s == K ? std::numeric_limits<double>::infinity() : cap_and_m[s].first;
    const std::size_t active = K - s;
    double candidate;
    if (active == 0) {
      candidate = lo;  // flat beyond all caps
    } else {
      candidate = std::clamp(suffix_m[s] / static_cast<double>(active), lo, hi);
    }
    const double err = eval(candidate);
    if (err < best_err) {
      best_err = err;
      best_x = candidate;
    }
  }
  return best_x;
}

}  // namespace

double model_rmse(const Matrix& measured, const std::vector<double>& out_bw,
                  const std::vector<double>& in_bw) {
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    for (std::size_t j = 0; j < measured[i].size(); ++j) {
      if (i == j || measured[i][j] < 0.0) continue;
      const double predicted = std::min(out_bw[i], in_bw[j]);
      sum += (measured[i][j] - predicted) * (measured[i][j] - predicted);
      ++count;
    }
  }
  return count == 0 ? 0.0 : std::sqrt(sum / static_cast<double>(count));
}

Estimate fit(const Matrix& measured, const EstimatorConfig& config) {
  const std::size_t N = measured.size();
  for (const auto& row : measured) {
    if (row.size() != N) throw std::invalid_argument("lastmile::fit: non-square matrix");
  }
  Estimate est;
  est.out_bw.assign(N, 0.0);
  est.in_bw.assign(N, 0.0);
  // Init: the largest observation in a row/column lower-bounds the capacity.
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t j = 0; j < N; ++j) {
      if (i == j || measured[i][j] < 0.0) continue;
      est.out_bw[i] = std::max(est.out_bw[i], measured[i][j]);
      est.in_bw[j] = std::max(est.in_bw[j], measured[i][j]);
    }
  }

  double last_rmse = model_rmse(measured, est.out_bw, est.in_bw);
  for (est.iterations = 1; est.iterations <= config.max_iterations;
       ++est.iterations) {
    // Update every out_bw[i] against fixed in_bw.
    for (std::size_t i = 0; i < N; ++i) {
      std::vector<std::pair<double, double>> terms;
      for (std::size_t j = 0; j < N; ++j) {
        if (i == j || measured[i][j] < 0.0) continue;
        terms.emplace_back(est.in_bw[j], measured[i][j]);
      }
      if (!terms.empty()) est.out_bw[i] = best_parameter(terms);
    }
    // Update every in_bw[j] against fixed out_bw.
    for (std::size_t j = 0; j < N; ++j) {
      std::vector<std::pair<double, double>> terms;
      for (std::size_t i = 0; i < N; ++i) {
        if (i == j || measured[i][j] < 0.0) continue;
        terms.emplace_back(est.out_bw[i], measured[i][j]);
      }
      if (!terms.empty()) est.in_bw[j] = best_parameter(terms);
    }
    const double rmse = model_rmse(measured, est.out_bw, est.in_bw);
    if (last_rmse - rmse < config.tolerance) {
      last_rmse = rmse;
      break;
    }
    last_rmse = rmse;
  }
  est.rmse = last_rmse;
  return est;
}

Matrix synthesize_matrix(const std::vector<double>& out_bw,
                         const std::vector<double>& in_bw, double noise_sigma,
                         util::Xoshiro256& rng) {
  if (out_bw.size() != in_bw.size()) {
    throw std::invalid_argument("synthesize_matrix: size mismatch");
  }
  const std::size_t N = out_bw.size();
  Matrix m(N, std::vector<double>(N, -1.0));
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t j = 0; j < N; ++j) {
      if (i == j) continue;
      double noise = 1.0;
      if (noise_sigma > 0.0) {
        const double u1 = 1.0 - rng.uniform();
        const double u2 = rng.uniform();
        const double z =
            std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
        noise = std::exp(noise_sigma * z);
      }
      m[i][j] = std::min(out_bw[i], in_bw[j]) * noise;
    }
  }
  return m;
}

}  // namespace bmp::lastmile
