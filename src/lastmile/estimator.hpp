// LastMile parameter estimation — the Bedibe substitute (paper §II.C,
// reference [14]): from a matrix of point-to-point bandwidth measurements
// M[i][j] ~ min(b_out[i], b_in[j]) * noise, recover per-node outgoing and
// incoming capacities. This is the front-end of the paper's pipeline: the
// recovered b_out values instantiate the broadcast Instance.
//
// Fitting: alternating 1-D coordinate descent on the squared error
//   E = sum_{i != j} (M[i][j] - min(out[i], in[j]))^2.
// For a fixed row i, E(out_i) is piecewise quadratic with breakpoints at
// the in[j] values, so each update is exact (sort + prefix scan).
#pragma once

#include <vector>

#include "bmp/util/rng.hpp"

namespace bmp::lastmile {

using Matrix = std::vector<std::vector<double>>;

struct EstimatorConfig {
  int max_iterations = 60;
  double tolerance = 1e-10;  ///< stop when the RMSE improvement drops below
};

struct Estimate {
  std::vector<double> out_bw;
  std::vector<double> in_bw;
  double rmse = 0.0;      ///< residual fit error
  int iterations = 0;
};

/// Fits the LastMile model. Entries < 0 are treated as missing (e.g. the
/// diagonal). Throws on non-square input.
Estimate fit(const Matrix& measured, const EstimatorConfig& config = {});

/// Forward model: builds the measurement matrix for ground-truth
/// capacities, with multiplicative log-normal noise of the given sigma
/// (sigma = 0 -> exact). Diagonal entries are set to -1 (missing).
Matrix synthesize_matrix(const std::vector<double>& out_bw,
                         const std::vector<double>& in_bw, double noise_sigma,
                         util::Xoshiro256& rng);

/// RMSE of a parameter pair against a measurement matrix (for tests).
double model_rmse(const Matrix& measured, const std::vector<double>& out_bw,
                  const std::vector<double>& in_bw);

}  // namespace bmp::lastmile
