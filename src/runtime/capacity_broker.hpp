// CapacityBroker — partitions the platform's bounded multi-port upload
// budgets across concurrent broadcast channels. The broker works in
// *fractions* of each node's budget b_i: a channel granted fraction g gets
// the scaled platform {g * b_i}, so as long as the granted fractions sum to
// <= 1 every node's summed per-channel allocation respects its multi-port
// budget by construction — the invariant the runtime audits after every
// event.
//
// Policy (requested admissions, weighted fair renegotiation):
//   * a channel is admitted with the fraction it *requests*, iff that
//     request fits in the unallocated remainder — an admission that would
//     oversubscribe any node's budget is rejected outright, and existing
//     grants are never squeezed by an admission, so an open channel's
//     design rate only moves at explicit renegotiation points;
//   * `rebalance(utilization)` resets every grant to its exact weighted
//     fair share of `utilization * usable` — the capacity-renegotiation
//     event — and reports which grants changed; keeping utilization < 1
//     preserves admission headroom for future channels;
//   * `release` reclaims a closing channel's fraction immediately.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

namespace bmp::runtime {

struct Grant {
  int channel = -1;
  double weight = 1.0;
  double fraction = 0.0;  ///< of every node's budget b_i
};

class CapacityBroker {
 public:
  /// `headroom` in [0, 1) is withheld from every node's budget (operator
  /// safety margin); channels share the remaining `1 - headroom`.
  explicit CapacityBroker(double headroom = 0.0);

  /// Admits `channel` (not currently granted, weight > 0) with the
  /// requested `fraction` in (0, 1] of every node's budget, or rejects it
  /// when the request would oversubscribe the pool. Returns the grant on
  /// success, nullopt on rejection.
  std::optional<Grant> admit(int channel, double weight, double fraction);

  /// Reclaims a channel's fraction; returns it. Throws if unknown.
  double release(int channel);

  /// Resets every grant to its weighted fair share of
  /// `utilization * usable` capacity (utilization in (0, 1]). Returns the
  /// grants whose fraction changed (new values).
  std::vector<Grant> rebalance(double utilization = 1.0);

  /// The grant currently held by `channel`, nullopt if none.
  [[nodiscard]] std::optional<Grant> grant(int channel) const;

  [[nodiscard]] double usable() const { return usable_; }
  /// Sum of granted fractions (<= usable, always).
  [[nodiscard]] double allocated() const { return allocated_; }
  [[nodiscard]] double available() const { return usable_ - allocated_; }
  [[nodiscard]] std::size_t channels() const { return grants_.size(); }

  [[nodiscard]] std::uint64_t admissions() const { return admissions_; }
  [[nodiscard]] std::uint64_t rejections() const { return rejections_; }
  [[nodiscard]] std::uint64_t releases() const { return releases_; }

 private:
  double usable_ = 1.0;
  double allocated_ = 0.0;
  double total_weight_ = 0.0;
  std::map<int, Grant> grants_;  // ordered: deterministic iteration
  std::uint64_t admissions_ = 0;
  std::uint64_t rejections_ = 0;
  std::uint64_t releases_ = 0;
};

}  // namespace bmp::runtime
