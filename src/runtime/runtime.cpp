#include "bmp/runtime/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <unordered_set>

#include "bmp/obs/flight_recorder.hpp"
#include "bmp/obs/profiler.hpp"
#include "bmp/obs/trace.hpp"

namespace bmp::runtime {

const char* to_string(EventType type) {
  switch (type) {
    case EventType::kChannelOpen: return "channel_open";
    case EventType::kChannelClose: return "channel_close";
    case EventType::kNodeJoin: return "node_join";
    case EventType::kNodeLeave: return "node_leave";
    case EventType::kRenegotiate: return "renegotiate";
    case EventType::kDegrade: return "degrade";
    case EventType::kFault: return "fault";
  }
  throw std::invalid_argument("unknown event type");
}

const char* to_string(FaultAction::Kind kind) {
  switch (kind) {
    case FaultAction::Kind::kCrash: return "crash";
    case FaultAction::Kind::kPartitionStart: return "partition_start";
    case FaultAction::Kind::kPartitionHeal: return "partition_heal";
    case FaultAction::Kind::kCorruptStart: return "corrupt_start";
    case FaultAction::Kind::kCorruptEnd: return "corrupt_end";
    case FaultAction::Kind::kBlackoutStart: return "blackout_start";
    case FaultAction::Kind::kBlackoutEnd: return "blackout_end";
    case FaultAction::Kind::kPlannerOutageStart: return "planner_outage_start";
    case FaultAction::Kind::kPlannerOutageEnd: return "planner_outage_end";
  }
  throw std::invalid_argument("unknown fault kind");
}

namespace {

// The trace sink and profiler ride into the planner through its config;
// the planner is constructed in the member-init list, so the splice
// happens in a value helper rather than in the constructor body.
engine::PlannerConfig with_obs(engine::PlannerConfig planner,
                               obs::TraceSink* trace,
                               obs::Profiler* profiler,
                               engine::PlannerOutage* outage) {
  planner.trace = trace;
  planner.profiler = profiler;
  // Fault events toggle the runtime-owned outage unless the caller wired
  // in an external one (tests driving the outage by hand).
  if (planner.outage == nullptr) planner.outage = outage;
  return planner;
}

}  // namespace

Runtime::Runtime(RuntimeConfig config, double source_bandwidth,
                 const std::vector<NodeSpec>& initial_peers)
    : config_(config),
      planner_(with_obs(config.planner, config.trace, config.profiler,
                        &planner_outage_)),
      broker_(config.broker_headroom) {
  outage_ = planner_.config().outage;
  // One timing switch for the whole loop: a runtime that opts out of
  // timing.* metrics must not pay the per-verify clock reads inside its
  // sessions either.
  config_.session.verify.collect_timing = config_.collect_timing;
  // One trace switch likewise: the runtime's sink reaches every session
  // (and its event-loop verifier) and every chunk stream. Planner-pool
  // thread-local verifiers stay untraced by design — see VerifyOptions.
  config_.session.trace = config_.trace;
  config_.session.verify.trace = config_.trace;
  config_.dataplane.execution.trace = config_.trace;
  config_.dataplane.execution.recorder = config_.recorder;
  // One profiler switch likewise: the event-loop verifier and every chunk
  // stream attribute their work to the same tree the planner writes into.
  config_.session.verify.profiler = config_.profiler;
  config_.dataplane.execution.profiler = config_.profiler;
  // One lineage switch likewise: every chunk stream records delivery hops
  // into the shared sink (records carry the channel id, so streams never
  // collide).
  config_.dataplane.execution.lineage = config_.lineage;
  if (!is_valid_bandwidth(source_bandwidth)) {
    throw std::invalid_argument("Runtime: invalid source bandwidth");
  }
  if (config_.control.enabled && !config_.dataplane.execute) {
    throw std::invalid_argument(
        "Runtime: the control plane needs execution mode (its telemetry "
        "source) — set dataplane.execute");
  }
  nodes_.reserve(1 + initial_peers.size());
  Node source;
  source.bandwidth = source_bandwidth;
  nodes_.push_back(source);
  for (const NodeSpec& spec : initial_peers) {
    if (!is_valid_bandwidth(spec.bandwidth)) {
      throw std::invalid_argument("Runtime: invalid peer bandwidth");
    }
    if (spec.wan) dataplane::check_link_profile(spec.profile, "Runtime: peer");
    Node node;
    node.bandwidth = spec.bandwidth;
    node.guarded = spec.guarded;
    node.wan = spec.wan;
    node.profile = spec.profile;
    nodes_.push_back(node);
  }
  alive_peers_ = static_cast<int>(initial_peers.size());
  // These two gauges exist from construction, so their handles can be
  // interned eagerly; everything else in hot_ resolves lazily on first
  // use to keep snapshot contents identical to create-on-first-touch.
  hot_.population_alive = metrics_.gauge_handle("population.alive");
  hot_.channels_open = metrics_.gauge_handle("channels.open");
  *hot_.population_alive = static_cast<double>(alive_peers_);
  *hot_.channels_open = 0.0;
  if (config_.telemetry != nullptr) {
    // Scale-facing series, registered once; recording is an array index.
    obs::ShardRegistry& shard = *config_.telemetry;
    tel_.delivered = shard.counter("dataplane.delivered");
    tel_.losses = shard.counter("dataplane.losses");
    tel_.retransmits = shard.counter("dataplane.retransmits");
    tel_.hol_stalls = shard.counter("dataplane.hol_stalls");
    tel_.duplicates = shard.counter("dataplane.duplicates");
    tel_.events = shard.counter("events.total");
    tel_.alive = shard.gauge("population.alive", obs::GaugeReduction::kSum);
    tel_.latency = shard.sketch("dataplane.chunk_latency");
    tel_.sustained = shard.sketch("dataplane.sustained_ratio");
    tel_.slo_worst = shard.sketch("slo.sustained_worst");
    tel_.recovered = shard.sketch("control.recovered_ratio");
    tel_.node_retransmits = shard.topk("hot.node_retransmits");
    tel_.node_stalls = shard.topk("hot.node_stalls");
    tel_.edge_retransmits = shard.topk("hot.edge_retransmits");
    tel_.node_demotions = shard.topk("hot.node_demotion_weight");
    shard.set(tel_.alive, static_cast<double>(alive_peers_));
  }
}

void Runtime::run(const std::vector<Event>& events) {
  for (std::size_t i = 1; i < events.size(); ++i) {
    if (event_before(events[i], events[i - 1])) {
      throw std::invalid_argument("Runtime::run: events not time-sorted");
    }
  }
  for (const Event& event : events) step(event);
}

void Runtime::step(const Event& event) {
  if (event.time < now_) {
    throw std::invalid_argument("Runtime::step: event precedes loop clock");
  }
  now_ = event.time;
  const auto start = config_.collect_timing
                         ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{};
  // Execution mode: every live chunk stream catches up to this instant on
  // the pre-event overlays before the event reshapes them.
  advance_executions(event.time);
  // After the catch-up (control ticks pin the clock to their boundaries):
  // everything the handlers emit is stamped with this event's sim-time.
  if (config_.trace != nullptr) config_.trace->set_clock(event.time);
  if (config_.recorder != nullptr) {
    std::string detail = to_string(event.type);
    if (event.channel >= 0) {
      detail += " channel=" + std::to_string(event.channel);
    }
    if (!event.joins.empty()) {
      detail += " joins=" + std::to_string(event.joins.size());
    }
    if (!event.leaves.empty()) {
      detail += " leaves=" + std::to_string(event.leaves.size());
    }
    if (!event.degrades.empty()) {
      detail += " degrades=" + std::to_string(event.degrades.size());
    }
    if (!event.faults.empty()) {
      detail += " faults=" + std::to_string(event.faults.size());
    }
    config_.recorder->record(event.time, event.channel, "event",
                             std::move(detail));
  }
  // Deferred channel opens whose backoff expired get their retry before the
  // event lands (the queue drains on the event clock, deterministically).
  if (!pending_opens_.empty()) retry_pending_opens(event.time, false);
  switch (event.type) {
    case EventType::kChannelOpen:
      try {
        on_channel_open(event);
      } catch (const engine::PlannerUnavailable&) {
        if (!config_.fault.planner_fallback) throw;
        // The broker grant was already released by on_channel_open's
        // unwind; queue the open and retry once the planner may be back.
        PendingOpen pending;
        pending.event = event;
        pending.backoff = config_.fault.planner_retry_initial;
        pending.next_retry = now_ + pending.backoff;
        pending_opens_.push_back(std::move(pending));
        metrics_.inc("fault.opens_deferred");
        if (config_.recorder != nullptr) {
          config_.recorder->record(now_, event.channel, "open_deferred",
                                   "planner outage; retry at " +
                                       std::to_string(pending_opens_.back()
                                                          .next_retry));
        }
      }
      break;
    case EventType::kChannelClose: on_channel_close(event); break;
    case EventType::kNodeJoin: on_node_join(event); break;
    case EventType::kNodeLeave: on_node_leave(event); break;
    case EventType::kRenegotiate: on_renegotiate(event); break;
    case EventType::kDegrade: on_degrade(event); break;
    case EventType::kFault: on_fault(event); break;
  }
  // Interned hot-path counters: the names resolve to storage cells once
  // (on first use, preserving create-on-first-touch snapshot contents) and
  // every later event is a pointer bump, not a map walk.
  if (hot_.events_total == nullptr) {
    hot_.events_total = metrics_.counter_handle("events.total");
  }
  ++*hot_.events_total;
  std::uint64_t*& by_type =
      hot_.events_by_type[static_cast<std::size_t>(event.type)];
  if (by_type == nullptr) {
    by_type = metrics_.counter_handle(std::string("events.") +
                                      to_string(event.type));
  }
  ++*by_type;
  if (config_.telemetry != nullptr) config_.telemetry->inc(tel_.events);
  if (config_.profiler != nullptr) {
    config_.profiler->enter("runtime/step");
    config_.profiler->count("runtime/step", to_string(event.type));
  }
  // The broker is the single source of truth for admission accounting;
  // mirror its totals instead of double-counting at every call site.
  if (hot_.broker_admitted == nullptr) {
    hot_.broker_admitted = metrics_.counter_handle("broker.admitted");
    hot_.broker_rejected = metrics_.counter_handle("broker.rejected");
    hot_.broker_released = metrics_.counter_handle("broker.released");
    hot_.broker_allocated = metrics_.gauge_handle("broker.allocated");
  }
  *hot_.broker_admitted = broker_.admissions();
  *hot_.broker_rejected = broker_.rejections();
  *hot_.broker_released = broker_.releases();
  *hot_.broker_allocated = broker_.allocated();
  *hot_.channels_open = static_cast<double>(channels_.size());
  *hot_.population_alive = static_cast<double>(alive_peers_);
  if (config_.telemetry != nullptr) {
    config_.telemetry->set(tel_.alive, static_cast<double>(alive_peers_));
  }
  if (config_.dataplane.execute) {
    for (auto& [id, channel] : channels_) {
      export_dataplane_metrics(id, channel);
    }
  }
  if (config_.collect_timing) {
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    if (hot_.timing_event_loop == nullptr) {
      hot_.timing_event_loop =
          metrics_.histogram_handle("timing.event_loop_us");
    }
    hot_.timing_event_loop->observe(us);
    if (config_.profiler != nullptr && config_.profiler->wall_time()) {
      config_.profiler->add_wall("runtime/step", us);
    }
    if (config_.trace != nullptr) {
      config_.trace->complete(
          obs::Lane::kRuntime, "runtime", to_string(event.type),
          {{"channel", event.channel},
           {"channels_open", static_cast<int>(channels_.size())},
           {"alive", alive_peers_}},
          config_.trace->wall_durations() ? us : -1.0);
    }
  } else if (config_.trace != nullptr) {
    config_.trace->complete(obs::Lane::kRuntime, "runtime",
                            to_string(event.type),
                            {{"channel", event.channel},
                             {"channels_open", static_cast<int>(channels_.size())},
                             {"alive", alive_peers_}});
  }
}

std::string Runtime::channel_metric(int id, const char* what) const {
  return "channel." + std::to_string(id) + "." + what;
}

void Runtime::set_channel_gauges(int id, const Channel& channel) {
  metrics_.set(channel_metric(id, "fraction"), channel.grant.fraction);
  metrics_.set(channel_metric(id, "design_rate"),
               channel.session->design_rate());
  metrics_.set(channel_metric(id, "achieved_rate"),
               channel.session->current_rate());
}

void Runtime::build_session(int id, Channel& channel) {
  // Gather the alive population in runtime-id order, opens before guardeds
  // — the instance's caller-side numbering the slot map is derived from.
  std::vector<double> open_bw;
  std::vector<double> guarded_bw;
  std::vector<int> open_ids;
  std::vector<int> guarded_ids;
  const double fraction = channel.grant.fraction;
  for (int node = 1; node < static_cast<int>(nodes_.size()); ++node) {
    const Node& info = nodes_[static_cast<std::size_t>(node)];
    if (!info.alive) continue;
    if (info.guarded) {
      guarded_bw.push_back(info.bandwidth * fraction);
      guarded_ids.push_back(node);
    } else {
      open_bw.push_back(info.bandwidth * fraction);
      open_ids.push_back(node);
    }
  }
  Instance scaled(nodes_[0].bandwidth * fraction, std::move(open_bw),
                  std::move(guarded_bw));
  engine::SessionConfig session_config = config_.session;
  session_config.trace_id = id;  // repair/adapt spans name their channel
  channel.session = std::make_unique<engine::Session>(planner_, scaled,
                                                      session_config);
  if (channel.session->initial_plan_verified()) {
    // Channel opens and join replans verify their computed plans too —
    // without this the verify.* counters would only see leave events.
    metrics_.inc("verify.calls");
    metrics_.inc(channel.session->initial_plan_tier() ==
                         flow::VerifyTier::kAcyclicSweep
                     ? "verify.tier_sweep"
                     : "verify.tier_maxflow");
  }
  // original_id(slot) indexes [source, opens..., guardeds...] directly.
  channel.node_of_slot.assign(static_cast<std::size_t>(scaled.size()), 0);
  for (int slot = 1; slot < scaled.size(); ++slot) {
    const int input_id = scaled.original_id(slot);
    channel.node_of_slot[static_cast<std::size_t>(slot)] =
        input_id <= static_cast<int>(open_ids.size())
            ? open_ids[static_cast<std::size_t>(input_id - 1)]
            : guarded_ids[static_cast<std::size_t>(
                  input_id - 1 - static_cast<int>(open_ids.size()))];
  }
  if (config_.profiler != nullptr) {
    config_.profiler->enter("runtime/session/build");
    config_.profiler->count("runtime/session/build", "nodes",
                            static_cast<std::uint64_t>(scaled.size()));
  }
  set_channel_gauges(id, channel);
  // A live chunk stream follows every re-plan without restarting.
  sync_execution(id, channel);
}

void Runtime::on_channel_open(const Event& event) {
  if (channels_.count(event.channel) != 0) {
    throw std::invalid_argument("Runtime: channel already open");
  }
  const std::optional<Grant> granted =
      broker_.admit(event.channel, event.weight, event.fraction);
  if (config_.trace != nullptr) {
    if (granted) {
      config_.trace->instant(obs::Lane::kBroker, "runtime", "admit",
                             {{"channel", event.channel},
                              {"fraction", granted->fraction},
                              {"weight", event.weight}});
    } else {
      config_.trace->instant(obs::Lane::kBroker, "runtime", "reject",
                             {{"channel", event.channel},
                              {"requested", event.fraction}});
    }
  }
  if (config_.recorder != nullptr) {
    config_.recorder->record(now_, event.channel,
                             granted ? "admit" : "reject",
                             granted ? "fraction=" +
                                           std::to_string(granted->fraction)
                                     : "requested=" +
                                           std::to_string(event.fraction));
  }
  if (!granted) return;  // counted via broker_.rejections()
  Channel channel;
  channel.grant = *granted;
  try {
    if (config_.dataplane.execute) {
      // The operator's engine knobs pass through wholesale; the runtime
      // owns the stream lifecycle, so only these four are overridden.
      dataplane::ExecutionConfig exec_config = config_.dataplane.execution;
      exec_config.total_chunks = 0;  // live stream: paced until close/drain
      exec_config.emission_rate = 0.0;  // set by sync once the plan exists
      exec_config.start_time = now_;
      exec_config.seed = engine::mix64(
          config_.dataplane.execution.seed ^
          static_cast<std::uint64_t>(event.channel) * 0x9E3779B97F4A7C15ULL);
      exec_config.trace_id = event.channel;
      channel.open_time = now_;
      channel.execution = std::make_unique<dataplane::Execution>(exec_config);
      if (config_.control.enabled) {
        channel.controller =
            std::make_unique<control::Controller>(config_.control.controller);
        channel.last_control_time = now_;
        if (config_.control.slo_enabled) {
          channel.slo = std::make_unique<obs::SloMonitor>(
              event.channel, config_.control.slo, config_.recorder);
        }
      }
    }
    build_session(event.channel, channel);
  } catch (...) {
    // The broker grant must not leak when plan or stream setup throws
    // mid-open: a channel that never went live holds no capacity.
    broker_.release(event.channel);
    throw;
  }
  channels_.emplace(event.channel, std::move(channel));
}

void Runtime::on_channel_close(const Event& event) {
  // A close for a channel still waiting in the retry queue cancels the
  // pending open — its lifetime ended before the planner came back.
  for (auto pending = pending_opens_.begin();
       pending != pending_opens_.end();) {
    if (pending->event.channel == event.channel) {
      metrics_.inc("fault.opens_abandoned");
      pending = pending_opens_.erase(pending);
    } else {
      ++pending;
    }
  }
  const auto it = channels_.find(event.channel);
  if (it == channels_.end()) {
    // Scenarios emit open/close pairs without knowing whether the broker
    // admitted the open; closing a never-admitted channel is expected data.
    metrics_.inc("broker.close_ignored");
    return;
  }
  if (it->second.execution) {
    stream_log_.push_back(finalize_stream(event.channel, it->second));
  }
  broker_.release(event.channel);
  // Drop the per-channel gauges: under Poisson channel arrivals a
  // long-lived runtime would otherwise accumulate dead entries forever.
  metrics_.erase(channel_metric(event.channel, "fraction"));
  metrics_.erase(channel_metric(event.channel, "design_rate"));
  metrics_.erase(channel_metric(event.channel, "achieved_rate"));
  metrics_.erase(channel_metric(event.channel, "control.stragglers"));
  metrics_.erase(channel_metric(event.channel, "control.degraded_edges"));
  metrics_.erase(channel_metric(event.channel, "control.overrides"));
  metrics_.erase(channel_metric(event.channel, "slo.state"));
  channels_.erase(it);
}

void Runtime::on_node_join(const Event& event) {
  // Validate the whole batch before mutating: a rejected event must leave
  // the population untouched.
  for (const NodeSpec& spec : event.joins) {
    if (!is_valid_bandwidth(spec.bandwidth)) {
      throw std::invalid_argument("Runtime: invalid join bandwidth");
    }
    if (spec.wan) dataplane::check_link_profile(spec.profile, "Runtime: join");
  }
  for (const NodeSpec& spec : event.joins) {
    Node node;
    node.bandwidth = spec.bandwidth;
    node.guarded = spec.guarded;
    node.wan = spec.wan;
    node.profile = spec.profile;
    nodes_.push_back(node);
    ++alive_peers_;
  }
  if (event.joins.empty() || config_.join_policy == JoinPolicy::kIgnore) {
    return;
  }
  // Recruit the new uploaders: re-plan every live channel on the grown
  // platform. The shared cache dedupes channels whose scaled platforms
  // collide; the session's design rate resets to the new optimum.
  for (auto& [id, channel] : channels_) {
    try {
      build_session(id, channel);
    } catch (const engine::PlannerUnavailable&) {
      if (!config_.fault.planner_fallback) throw;
      // Planner down: the channel keeps its pre-join overlay (the joiner
      // is simply not recruited yet) and is rebuilt when the outage ends.
      if (channel.plan_stale_since < 0.0) channel.plan_stale_since = now_;
      metrics_.inc("fault.planner_faults");
      if (config_.recorder != nullptr) {
        config_.recorder->record(now_, id, "plan_stale",
                                 "join replan refused (planner outage)");
      }
      continue;
    }
    metrics_.inc("replans.join");
    ChurnReport report;
    report.time = now_;
    report.channel = id;
    report.type = EventType::kNodeJoin;
    report.full_replan = true;
    report.design_rate = channel.session->design_rate();
    report.achieved_rate = channel.session->current_rate();
    churn_log_.push_back(report);
    if (config_.recorder != nullptr) {
      config_.recorder->record(
          now_, id, "churn",
          "join replan design=" + std::to_string(report.design_rate));
    }
  }
}

void Runtime::on_node_leave(const Event& event) {
  // Validate the whole batch (range, aliveness, in-event duplicates)
  // before mutating: a rejected event must leave the population untouched.
  // Exception: a node that already died by kCrash is *skipped silently* —
  // a chaos plan may crash a peer whose scripted polite leave lands later,
  // and the crash already was its departure.
  std::set<int> departed;
  std::unordered_set<int> seen;
  for (const int node : event.leaves) {
    if (node <= 0 || node >= static_cast<int>(nodes_.size())) {
      throw std::invalid_argument("Runtime: departure of unknown node");
    }
    if (!seen.insert(node).second) {
      throw std::invalid_argument("Runtime: duplicate departure");
    }
    const Node& info = nodes_[static_cast<std::size_t>(node)];
    if (!info.alive) {
      if (info.crashed) continue;
      throw std::invalid_argument("Runtime: departure of dead node");
    }
    departed.insert(node);
  }
  if (departed.empty()) return;
  for (const int node : departed) {
    nodes_[static_cast<std::size_t>(node)].alive = false;
    --alive_peers_;
  }
  apply_departures(departed, now_);
}

void Runtime::apply_departures(const std::set<int>& departed, double when) {
  for (auto& [id, channel] : channels_) {
    // Translate runtime ids to this channel's session slots. Channels
    // opened after a joiner arrived include it; older ones may not.
    std::vector<int> slots;
    const std::vector<int>& node_of_slot = channel.node_of_slot;
    for (int slot = 1; slot < static_cast<int>(node_of_slot.size()); ++slot) {
      if (departed.count(node_of_slot[static_cast<std::size_t>(slot)]) != 0) {
        slots.push_back(slot);
      }
    }
    if (slots.empty()) continue;

    // Survivors in the session's *current sorted order*, opens first: this
    // is exactly the caller-side numbering sim::remove_nodes hands the
    // post-churn instance, so original_id() maps new slots back into it.
    std::vector<int> survivors;
    survivors.reserve(node_of_slot.size() - slots.size() - 1);
    for (int pass = 0; pass < 2; ++pass) {
      for (int slot = 1; slot < static_cast<int>(node_of_slot.size());
           ++slot) {
        const int node = node_of_slot[static_cast<std::size_t>(slot)];
        if (departed.count(node) != 0) continue;
        if (nodes_[static_cast<std::size_t>(node)].guarded == (pass == 1)) {
          survivors.push_back(node);
        }
      }
    }

    const engine::ChurnOutcome outcome = channel.session->on_departure(slots);
    const Instance& instance = channel.session->instance();
    std::vector<int> remapped(static_cast<std::size_t>(instance.size()),
                              node_of_slot[0]);
    for (int slot = 1; slot < instance.size(); ++slot) {
      remapped[static_cast<std::size_t>(slot)] =
          survivors[static_cast<std::size_t>(instance.original_id(slot) - 1)];
    }
    channel.node_of_slot = std::move(remapped);

    if (outcome.planner_fault) {
      // The session wanted a full re-plan but the planner was down; it kept
      // its incremental repair. Mark the channel stale for the rebuild pass
      // that runs when the outage ends.
      if (channel.plan_stale_since < 0.0) channel.plan_stale_since = when;
      metrics_.inc("fault.planner_faults");
      if (config_.recorder != nullptr) {
        config_.recorder->record(when, id, "plan_stale",
                                 "departure replan refused (planner outage)");
      }
    }
    metrics_.inc(outcome.full_replan ? "repairs.full" : "repairs.incremental");
    // Verification telemetry: tier counts are deterministic (structure
    // decides the tier), so they live beside the repair counters; the
    // wall-clock cost goes under timing.* like every other latency.
    metrics_.inc("verify.calls", static_cast<std::uint64_t>(outcome.verify_calls));
    metrics_.inc("verify.tier_sweep",
                 static_cast<std::uint64_t>(outcome.verify_sweep));
    metrics_.inc("verify.tier_maxflow",
                 static_cast<std::uint64_t>(outcome.verify_maxflow));
    if (config_.collect_timing) {
      metrics_.observe("timing.verify.us", outcome.verify_us);
    }
    if (config_.profiler != nullptr) {
      obs::Profiler& prof = *config_.profiler;
      prof.enter("runtime/session/churn");
      prof.count("runtime/session/churn", "departures",
                 static_cast<std::uint64_t>(outcome.departed));
      prof.count("runtime/session/churn",
                 outcome.full_replan ? "full_replans" : "incremental_repairs");
      prof.count("runtime/session/churn", "verify_calls",
                 static_cast<std::uint64_t>(outcome.verify_calls));
    }
    set_channel_gauges(id, channel);
    // Live-patch the running stream: the departed peers' in-flight chunks
    // drop, the repaired overlay's edges splice in — no restart.
    sync_execution(id, channel);
    ChurnReport report;
    report.time = when;
    report.channel = id;
    report.type = EventType::kNodeLeave;
    report.departed = outcome.departed;
    report.full_replan = outcome.full_replan;
    report.design_rate = channel.session->design_rate();
    report.achieved_rate = outcome.achieved_rate;
    churn_log_.push_back(report);
    if (config_.recorder != nullptr) {
      config_.recorder->record(
          when, id, "churn",
          std::string(outcome.full_replan ? "replan" : "repair") +
              " departed=" + std::to_string(outcome.departed) +
              " achieved=" + std::to_string(outcome.achieved_rate));
    }
    if (report.design_rate > 0.0) {
      metrics_.observe("channel.recovery_ratio",
                       report.achieved_rate / report.design_rate);
    }
  }
  // Departed peers carry no telemetry history forward: drop their
  // crash-silence counters and cached (blackout) samples everywhere.
  for (auto& [id, channel] : channels_) {
    (void)id;
    for (const int node : departed) {
      channel.silence_activity.erase(node);
      channel.silent_windows.erase(node);
      channel.last_node_sample.erase(node);
    }
    for (auto it = channel.last_edge_sample.begin();
         it != channel.last_edge_sample.end();) {
      if (departed.count(it->first.first) != 0 ||
          departed.count(it->first.second) != 0) {
        it = channel.last_edge_sample.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void Runtime::on_renegotiate(const Event& event) {
  const std::vector<Grant> changed = broker_.rebalance(event.utilization);
  for (const Grant& grant : changed) {
    const auto it = channels_.find(grant.channel);
    if (it == channels_.end()) continue;
    Channel& channel = it->second;
    const double factor = grant.fraction / channel.grant.fraction;
    channel.session->rescale(factor);
    channel.grant = grant;
    metrics_.inc("broker.renegotiated");
    if (config_.profiler != nullptr) {
      config_.profiler->enter("runtime/broker/rebalance");
      config_.profiler->count("runtime/broker/rebalance", "rescales");
    }
    if (config_.trace != nullptr) {
      config_.trace->instant(obs::Lane::kBroker, "runtime", "renegotiate",
                             {{"channel", grant.channel},
                              {"fraction", grant.fraction},
                              {"factor", factor}});
    }
    if (config_.recorder != nullptr) {
      config_.recorder->record(
          now_, grant.channel, "renegotiate",
          "fraction=" + std::to_string(grant.fraction));
    }
    set_channel_gauges(grant.channel, channel);
    // Renegotiated rates reach the stream live: pipes re-rate in place,
    // the source re-paces its emission.
    sync_execution(grant.channel, channel);
  }
}

void Runtime::on_degrade(const Event& event) {
  // Validate the whole batch before mutating (mirrors join/leave). A node
  // dead by kCrash is tolerated — a chaos plan may schedule a brownout for
  // a peer that crashed first; the degradation is simply moot.
  for (const Degradation& degrade : event.degrades) {
    if (degrade.node <= 0 ||
        degrade.node >= static_cast<int>(nodes_.size())) {
      throw std::invalid_argument("Runtime: degradation of unknown node");
    }
    const Node& info = nodes_[static_cast<std::size_t>(degrade.node)];
    if (!info.alive && !info.crashed) {
      throw std::invalid_argument("Runtime: degradation of dead node");
    }
    if (degrade.set_factor &&
        (!(degrade.capacity_factor > 0.0) || degrade.capacity_factor > 1.0)) {
      throw std::invalid_argument("Runtime: capacity_factor in (0, 1]");
    }
    if (degrade.set_profile && degrade.clear_profile) {
      throw std::invalid_argument(
          "Runtime: set_profile and clear_profile are exclusive");
    }
    if (degrade.set_profile) {
      dataplane::check_link_profile(degrade.profile, "Runtime: degradation");
    }
  }
  const dataplane::LinkProfile defaults{
      config_.dataplane.execution.loss_rate,
      config_.dataplane.execution.latency, 0.0};
  for (const Degradation& degrade : event.degrades) {
    Node& info = nodes_[static_cast<std::size_t>(degrade.node)];
    if (!info.alive) continue;  // crashed first: nothing left to degrade
    if (degrade.set_factor) info.capacity_factor = degrade.capacity_factor;
    if (degrade.set_profile) {
      info.wan = true;
      info.profile = degrade.profile;
    } else if (degrade.clear_profile) {
      info.wan = false;
      info.profile = dataplane::LinkProfile{};
    }
    metrics_.inc("degrade.nodes");
  }
  if (!config_.dataplane.execute) return;
  // The planner is deliberately not told; only the live executions change.
  for (auto& [id, channel] : channels_) {
    (void)id;
    if (!channel.execution) continue;
    for (const Degradation& degrade : event.degrades) {
      const Node& info = nodes_[static_cast<std::size_t>(degrade.node)];
      if (!info.alive) continue;
      const auto it = channel.dp_of_node.find(degrade.node);
      if (it == channel.dp_of_node.end()) continue;
      if (degrade.set_factor) {
        channel.execution->set_effective_capacity(
            it->second, info.capacity_factor < 1.0
                            ? info.capacity_factor * info.bandwidth *
                                  channel.grant.fraction
                            : -1.0);
      }
      if (degrade.set_profile) {
        channel.execution->set_egress_profile(it->second, degrade.profile);
      } else if (degrade.clear_profile) {
        channel.execution->set_egress_profile(it->second, defaults);
      }
    }
  }
}

void Runtime::on_fault(const Event& event) {
  // Validate every action before mutating (mirrors the other handlers).
  // The source (node 0) never faults: its crash would be a different paper.
  const auto check_node = [this](int node, FaultAction::Kind kind) {
    if (node <= 0 || node >= static_cast<int>(nodes_.size())) {
      throw std::invalid_argument(std::string("Runtime: ") + to_string(kind) +
                                  " of unknown node");
    }
  };
  for (const FaultAction& fault : event.faults) {
    switch (fault.kind) {
      case FaultAction::Kind::kCrash:
      case FaultAction::Kind::kCorruptEnd:
        check_node(fault.node, fault.kind);
        break;
      case FaultAction::Kind::kCorruptStart:
        check_node(fault.node, fault.kind);
        if (!(fault.rate >= 0.0) || fault.rate > 1.0) {
          throw std::invalid_argument("Runtime: corruption rate in [0, 1]");
        }
        break;
      case FaultAction::Kind::kPartitionStart:
        if (fault.group <= 0) {
          throw std::invalid_argument("Runtime: partition group must be > 0");
        }
        [[fallthrough]];
      case FaultAction::Kind::kBlackoutStart:
      case FaultAction::Kind::kBlackoutEnd:
        for (const int node : fault.nodes) check_node(node, fault.kind);
        break;
      case FaultAction::Kind::kPartitionHeal:
      case FaultAction::Kind::kPlannerOutageStart:
      case FaultAction::Kind::kPlannerOutageEnd:
        break;
    }
  }

  const auto note = [&](const FaultAction& fault, const std::string& detail) {
    metrics_.inc(std::string("fault.") + to_string(fault.kind));
    if (config_.trace != nullptr) {
      config_.trace->instant(obs::Lane::kRuntime, "runtime",
                             to_string(fault.kind),
                             {{"node", fault.node},
                              {"group", fault.group},
                              {"rate", fault.rate}});
    }
    if (config_.recorder != nullptr) {
      config_.recorder->record(now_, -1, to_string(fault.kind), detail);
    }
  };

  for (const FaultAction& fault : event.faults) {
    switch (fault.kind) {
      case FaultAction::Kind::kCrash: {
        Node& info = nodes_[static_cast<std::size_t>(fault.node)];
        if (!info.alive) break;  // idempotent: already dead (crash or leave)
        info.alive = false;
        info.crashed = true;
        info.crash_time = now_;
        --alive_peers_;
        // The dataplane sees the crash instantly (in-flight transmissions
        // from/to the peer die, its reservations release, pipes freeze);
        // the *sessions* do not — they keep planning around a ghost until
        // crash detection reads the silence off the telemetry.
        for (auto& [id, channel] : channels_) {
          (void)id;
          if (!channel.execution) continue;
          const auto it = channel.dp_of_node.find(fault.node);
          if (it != channel.dp_of_node.end()) {
            channel.execution->crash_node(it->second);
          }
        }
        note(fault, "node=" + std::to_string(fault.node));
        if (config_.fault.detect_crashes &&
            (!config_.dataplane.execute || !config_.control.enabled)) {
          // Detection is wanted but there is no telemetry path to read the
          // silence from: degrade to an immediate synthesized departure so
          // sessions stay consistent. With detection off the crash simply
          // festers — that is the un-hardened baseline the chaos tests
          // compare against.
          apply_departures({fault.node}, now_);
        }
        break;
      }
      case FaultAction::Kind::kPartitionStart: {
        for (const int node : fault.nodes) {
          Node& info = nodes_[static_cast<std::size_t>(node)];
          if (!info.alive) continue;
          info.partition_group = fault.group;
          for (auto& [id, channel] : channels_) {
            (void)id;
            if (!channel.execution) continue;
            const auto it = channel.dp_of_node.find(node);
            if (it != channel.dp_of_node.end()) {
              channel.execution->set_partition_group(it->second, fault.group);
            }
          }
        }
        note(fault, "group=" + std::to_string(fault.group) +
                        " nodes=" + std::to_string(fault.nodes.size()));
        break;
      }
      case FaultAction::Kind::kPartitionHeal: {
        std::vector<int> healed;
        for (std::size_t n = 0; n < nodes_.size(); ++n) {
          if (nodes_[n].partition_group != 0) {
            healed.push_back(static_cast<int>(n));
            nodes_[n].partition_group = 0;
          }
        }
        for (auto& [id, channel] : channels_) {
          if (channel.execution) {
            for (const auto& [rid, dp] : channel.dp_of_node) {
              (void)rid;
              channel.execution->set_partition_group(dp, 0);
            }
          }
          if (channel.controller) {
            // Everything the controller measured about the island it
            // measured across the cut — demotions, clamps and straggler
            // verdicts get pardoned, not probed back over half an hour.
            for (const int rid : healed) {
              channel.controller->forgive(rid);
              metrics_.inc("fault.heal_pardons");
            }
          }
          // Reconcile immediately: re-splice pipes to the session overlay
          // and re-pace emission so post-heal recovery starts this instant
          // (receivers re-request everything the partition swallowed).
          sync_execution(id, channel);
        }
        note(fault, "all groups collapse");
        break;
      }
      case FaultAction::Kind::kCorruptStart:
      case FaultAction::Kind::kCorruptEnd: {
        Node& info = nodes_[static_cast<std::size_t>(fault.node)];
        if (!info.alive) break;
        info.corrupt_rate =
            fault.kind == FaultAction::Kind::kCorruptStart ? fault.rate : 0.0;
        for (auto& [id, channel] : channels_) {
          (void)id;
          if (!channel.execution) continue;
          const auto it = channel.dp_of_node.find(fault.node);
          if (it != channel.dp_of_node.end()) {
            channel.execution->set_corrupt_rate(it->second, info.corrupt_rate);
          }
        }
        note(fault, "node=" + std::to_string(fault.node) +
                        " rate=" + std::to_string(info.corrupt_rate));
        break;
      }
      case FaultAction::Kind::kBlackoutStart:
      case FaultAction::Kind::kBlackoutEnd: {
        const bool dark = fault.kind == FaultAction::Kind::kBlackoutStart;
        for (const int node : fault.nodes) {
          nodes_[static_cast<std::size_t>(node)].blackout = dark;
        }
        note(fault, "nodes=" + std::to_string(fault.nodes.size()));
        break;
      }
      case FaultAction::Kind::kPlannerOutageStart: {
        outage_->down = true;
        note(fault, "planner down");
        break;
      }
      case FaultAction::Kind::kPlannerOutageEnd: {
        outage_->down = false;
        note(fault, "planner back; failures=" +
                        std::to_string(outage_->failures));
        // The outage is over: deferred opens get their final retry now and
        // channels serving a stale overlay rebuild through the planner.
        retry_pending_opens(now_, true);
        rebuild_stale_channels();
        break;
      }
    }
  }
  metrics_.set("population.alive", static_cast<double>(alive_peers_));
}

void Runtime::retry_pending_opens(double t, bool force) {
  for (auto it = pending_opens_.begin(); it != pending_opens_.end();) {
    if (!force && it->next_retry > t) {
      ++it;
      continue;
    }
    try {
      on_channel_open(it->event);
      metrics_.inc("fault.opens_recovered");
      if (config_.recorder != nullptr) {
        config_.recorder->record(t, it->event.channel, "open_retried",
                                 "recovered after planner outage");
      }
      it = pending_opens_.erase(it);
    } catch (const engine::PlannerUnavailable&) {
      it->backoff = std::min(it->backoff * 2.0,
                             config_.fault.planner_retry_max);
      it->next_retry = t + it->backoff;
      ++it;
    }
  }
}

void Runtime::rebuild_stale_channels() {
  for (auto& [id, channel] : channels_) {
    if (channel.plan_stale_since < 0.0) continue;
    try {
      build_session(id, channel);
    } catch (const engine::PlannerUnavailable&) {
      continue;  // overlapping outages: the next outage end retries
    }
    metrics_.inc("fault.stale_rebuilds");
    if (config_.recorder != nullptr) {
      config_.recorder->record(
          now_, id, "plan_rebuilt",
          "stale since " + std::to_string(channel.plan_stale_since));
    }
    channel.plan_stale_since = -1.0;
  }
}

const engine::Session* Runtime::session(int channel) const {
  const auto it = channels_.find(channel);
  return it == channels_.end() ? nullptr : it->second.session.get();
}

const dataplane::Execution* Runtime::execution(int channel) const {
  const auto it = channels_.find(channel);
  return it == channels_.end() ? nullptr : it->second.execution.get();
}

const control::Controller* Runtime::controller(int channel) const {
  const auto it = channels_.find(channel);
  return it == channels_.end() ? nullptr : it->second.controller.get();
}

const obs::SloMonitor* Runtime::slo_monitor(int channel) const {
  const auto it = channels_.find(channel);
  return it == channels_.end() ? nullptr : it->second.slo.get();
}

void Runtime::advance_executions(double t) {
  if (!config_.dataplane.execute) return;
  if (!config_.control.enabled) {
    advance_streams_to(t);
    return;
  }
  // Stop at every sampling boundary on the global interval grid so each
  // channel's controller observes its stream at deterministic instants,
  // regardless of how event times fall between them.
  const double interval = config_.control.controller.sample_interval;
  while (true) {
    const double boundary =
        static_cast<double>(control_ticks_done_ + 1) * interval;
    if (boundary > t) break;
    advance_streams_to(boundary);
    ++control_ticks_done_;
    control_tick(boundary);
  }
  advance_streams_to(t);
}

void Runtime::advance_streams_to(double t) {
  const double dt = t - dp_clock_;
  for (auto& [id, channel] : channels_) {
    (void)id;
    if (!channel.execution) continue;
    if (dt > 0.0) {
      // Integrate the design-rate promise while it was in force; the
      // StreamReport's sustained_ratio is measured against this.
      channel.design_integral += channel.session->design_rate() * dt /
                                 config_.dataplane.execution.chunk_size;
      // ... and the *emission* promise (the controller's straggler
      // reference: what the stream actually tried to deliver).
      channel.control_expected += channel.session->current_rate() * dt;
    }
    channel.execution->run_until(t);
  }
  dp_clock_ = t;
}

void Runtime::control_tick(double t) {
  // Everything downstream (session adapt spans, directive audit) is
  // stamped at this sampling boundary, not the triggering event's time.
  if (config_.trace != nullptr) config_.trace->set_clock(t);
  // Peers silent past the crash threshold in *any* hosting channel, applied
  // once across all of them after the sampling sweep.
  std::set<int> crash_candidates;
  for (auto& [id, channel] : channels_) {
    if (!channel.execution || !channel.controller) continue;
    const dataplane::Execution& exec = *channel.execution;
    const engine::Session& session = *channel.session;
    const double chunk = config_.dataplane.execution.chunk_size;
    if (hot_.control_samples == nullptr) {
      hot_.control_samples = metrics_.counter_handle("control.samples");
    }
    ++*hot_.control_samples;
    if (config_.telemetry != nullptr) feed_edge_telemetry(channel, exec);

    control::TickInputs inputs;
    inputs.now = t;
    inputs.window = t - channel.last_control_time;
    channel.last_control_time = t;
    inputs.expected_delta = channel.control_expected;
    inputs.chunk_size = chunk;
    channel.control_expected = 0.0;

    // Per-node samples in ascending runtime-id order (dp_of_node is an
    // ordered map); capacities come from the session's current slots.
    const std::vector<double> caps = session.capacities();
    std::map<int, double> granted;
    for (std::size_t slot = 0; slot < caps.size(); ++slot) {
      granted[channel.node_of_slot[slot]] = caps[slot];
    }
    const double warmup_grace = config_.control.controller.warmup_grace;
    std::map<int, int> rid_of_dp;
    for (const auto& [rid, dp] : channel.dp_of_node) {
      rid_of_dp[dp] = rid;
      const Node& info = nodes_[static_cast<std::size_t>(rid)];
      control::NodeSample sample;
      sample.id = rid;
      sample.nominal = info.bandwidth * channel.grant.fraction;
      const auto grant_it = granted.find(rid);
      sample.granted = grant_it == granted.end() ? 0.0 : grant_it->second;
      sample.delivered = exec.delivered(dp) * chunk;
      const dataplane::NodeProgress progress = exec.progress(dp);
      sample.judgeable = dp != 0 && progress.alive &&
                         progress.joined + warmup_grace <= t - inputs.window;
      if (info.blackout) {
        // Telemetry blackout: the collector is dark, so the controller
        // sees the last sample it actually observed, frozen — the exact
        // signature its stale-telemetry guard refuses to judge — never
        // fresh data it could not have collected.
        const auto cached = channel.last_node_sample.find(rid);
        if (cached != channel.last_node_sample.end()) sample = cached->second;
      } else {
        channel.last_node_sample[rid] = sample;
      }
      inputs.nodes.push_back(sample);
    }
    // Per-edge samples, re-keyed from execution ids to runtime ids and
    // re-sorted so the controller's iteration order is stable.
    for (const dataplane::EdgeStats& stats : exec.edge_stats()) {
      const auto from_it = rid_of_dp.find(stats.from);
      const auto to_it = rid_of_dp.find(stats.to);
      if (from_it == rid_of_dp.end() || to_it == rid_of_dp.end()) continue;
      control::EdgeSample sample;
      sample.from = from_it->second;
      sample.to = to_it->second;
      sample.rate = stats.rate;
      sample.busy_time = stats.busy_time;
      sample.completed = stats.completed;
      sample.sent = stats.sent;
      sample.lost = stats.lost;
      sample.attempts = stats.attempts;
      const std::pair<int, int> key{sample.from, sample.to};
      if (nodes_[static_cast<std::size_t>(sample.from)].blackout ||
          nodes_[static_cast<std::size_t>(sample.to)].blackout) {
        const auto cached = channel.last_edge_sample.find(key);
        if (cached != channel.last_edge_sample.end()) sample = cached->second;
      } else {
        channel.last_edge_sample[key] = sample;
      }
      inputs.edges.push_back(sample);
    }
    std::sort(inputs.edges.begin(), inputs.edges.end(),
              [](const control::EdgeSample& a, const control::EdgeSample& b) {
                return std::make_pair(a.from, a.to) <
                       std::make_pair(b.from, b.to);
              });

    if (config_.fault.detect_crashes && session.current_rate() > 0.0) {
      // Crash detection. A crashed peer sends no leave event, but its
      // signature is unmistakable: delivered stands still and every
      // adjacent pipe's attempts + sent counters freeze (try_send bails on
      // a dead endpoint *before* counting the attempt). A partitioned peer
      // is the opposite — senders keep attempting and losing — so
      // partitions never false-trigger. Counters are read raw from the
      // execution (the failure detector is not behind the blackout's
      // telemetry veil), but blacked-out peers still get the benefit of
      // the doubt: their silence counters pause rather than accumulate.
      std::map<int, std::uint64_t> activity;
      for (const dataplane::EdgeStats& stats : exec.edge_stats()) {
        const auto from_it = rid_of_dp.find(stats.from);
        const auto to_it = rid_of_dp.find(stats.to);
        if (from_it == rid_of_dp.end() || to_it == rid_of_dp.end()) continue;
        activity[from_it->second] += stats.attempts + stats.sent;
        activity[to_it->second] += stats.attempts + stats.sent;
      }
      const int source_rid = channel.node_of_slot[0];
      for (const auto& [rid, dp] : channel.dp_of_node) {
        if (rid == source_rid) continue;
        if (nodes_[static_cast<std::size_t>(rid)].blackout) continue;
        // Correlated silence across a whole region is a partition
        // signature, not a crash — real failure detectors gate on quorum
        // for exactly this reason. Pause the counter until the heal.
        if (nodes_[static_cast<std::size_t>(rid)].partition_group != 0) {
          continue;
        }
        const std::uint64_t observed =
            activity[rid] + static_cast<std::uint64_t>(exec.delivered(dp));
        const auto prev = channel.silence_activity.find(rid);
        if (prev != channel.silence_activity.end() &&
            prev->second == observed) {
          if (++channel.silent_windows[rid] >=
              config_.fault.crash_silence_windows) {
            crash_candidates.insert(rid);
          }
        } else {
          channel.silent_windows[rid] = 0;
        }
        channel.silence_activity[rid] = observed;
      }
    }

    const control::Directive directive = channel.controller->tick(inputs);
    if (config_.profiler != nullptr) {
      obs::Profiler& prof = *config_.profiler;
      prof.enter("runtime/control/decide");
      prof.count("runtime/control/decide", "node_samples",
                 inputs.nodes.size());
      prof.count("runtime/control/decide", "edge_samples",
                 inputs.edges.size());
      prof.count("runtime/control/decide", "straggler_trips",
                 static_cast<std::uint64_t>(directive.straggler_trips));
      prof.count("runtime/control/decide", "edge_trips",
                 static_cast<std::uint64_t>(directive.edge_trips));
      if (directive.act) prof.count("runtime/control/decide", "directives");
    }
    metrics_.inc("control.straggler_detections",
                 static_cast<std::uint64_t>(directive.straggler_trips));
    metrics_.inc("control.edge_detections",
                 static_cast<std::uint64_t>(directive.edge_trips));
    metrics_.set(channel_metric(id, "control.stragglers"),
                 static_cast<double>(directive.stragglers));
    metrics_.set(channel_metric(id, "control.degraded_edges"),
                 static_cast<double>(directive.degraded_edges));
    metrics_.set(channel_metric(id, "control.overrides"),
                 static_cast<double>(directive.factors.size()));
    metrics_.inc("control.stale_nodes",
                 static_cast<std::uint64_t>(directive.stale_nodes));
    metrics_.inc("control.stale_edges",
                 static_cast<std::uint64_t>(directive.stale_edges));
    if (directive.act) apply_directive(id, channel, directive, t);

    if (channel.slo) {
      // Fresh latency SLI input at the boundary (the same tee as the
      // per-event drain in export_dataplane_metrics — identical observation
      // sequence, just not deferred to the next event).
      for (const double latency : channel.execution->drain_latencies()) {
        if (hot_.dp_chunk_latency == nullptr) {
          hot_.dp_chunk_latency =
              metrics_.histogram_handle("dataplane.chunk_latency");
        }
        hot_.dp_chunk_latency->observe(latency);
        if (config_.telemetry != nullptr) {
          config_.telemetry->observe(tel_.latency, latency);
        }
        channel.slo->observe_latency(latency);
      }
      // Windowed sustained SLI: the worst judgeable node's delivered delta
      // against the emission promise over the last slo_sustained_window
      // ticks. Windowed — not cumulative — so a node crippled by a healed
      // partition recovers to ok once its recent windows look healthy
      // again, even though it can never make up the backlog.
      double worst = 1.0;
      const double expected_total =
          channel.slo_expected_total + inputs.expected_delta;
      const int window_ticks =
          std::max(1, config_.control.slo_sustained_window);
      if (static_cast<int>(channel.slo_history.size()) >= window_ticks) {
        const Channel::SloSnapshot& base = channel.slo_history.front();
        const double promised = expected_total - base.expected;
        if (promised > 1e-12) {
          // Both sides are sorted by node id, so the join is a linear
          // two-pointer walk.
          auto prev = base.delivered.begin();
          for (const control::NodeSample& sample : inputs.nodes) {
            if (!sample.judgeable) continue;
            while (prev != base.delivered.end() && prev->first < sample.id) {
              ++prev;
            }
            if (prev == base.delivered.end()) break;
            if (prev->first != sample.id) continue;
            worst = std::min(worst,
                             (sample.delivered - prev->second) / promised);
          }
        }
      }
      channel.slo_expected_total = expected_total;
      Channel::SloSnapshot snap;
      snap.expected = expected_total;
      snap.delivered.reserve(inputs.nodes.size());
      for (const control::NodeSample& sample : inputs.nodes) {
        snap.delivered.emplace_back(sample.id, sample.delivered);
      }
      channel.slo_history.push_back(std::move(snap));
      while (static_cast<int>(channel.slo_history.size()) > window_ticks) {
        channel.slo_history.pop_front();
      }
      const std::uint64_t pages_before = channel.slo->pages();
      const std::uint64_t warns_before = channel.slo->warns();
      const obs::SloState state = channel.slo->evaluate(t, worst);
      metrics_.set(channel_metric(id, "slo.state"),
                   static_cast<double>(state));
      metrics_.observe("slo.sustained_worst", worst);
      metrics_.inc("slo.pages", channel.slo->pages() - pages_before);
      metrics_.inc("slo.warns", channel.slo->warns() - warns_before);
      if (config_.telemetry != nullptr) {
        config_.telemetry->observe(tel_.slo_worst, worst);
      }
    }
  }
  if (!crash_candidates.empty()) detect_crashes(crash_candidates, t);
}

void Runtime::detect_crashes(const std::set<int>& candidates, double t) {
  std::set<int> departed;
  for (const int node : candidates) {
    Node& info = nodes_[static_cast<std::size_t>(node)];
    if (info.alive) {
      // The detector can evict a live-but-totally-silent peer too; after
      // crash_silence_windows of nothing the distinction no longer pays
      // its way — real failure detectors are exactly this ruthless.
      info.alive = false;
      --alive_peers_;
    }
    departed.insert(node);
    metrics_.inc("fault.crashes_detected");
    if (info.crashed) {
      metrics_.observe("fault.detect_latency", t - info.crash_time);
    }
    if (config_.trace != nullptr) {
      config_.trace->instant(obs::Lane::kRuntime, "runtime", "crash_detected",
                             {{"node", node}});
    }
    if (config_.recorder != nullptr) {
      config_.recorder->record(
          t, -1, "crash_detected",
          "node=" + std::to_string(node) + " silent for " +
              std::to_string(config_.fault.crash_silence_windows) +
              " windows");
    }
  }
  // One synthesized leave across *every* hosting channel at once: the
  // crashed peer's grants reclaim everywhere in the same boundary instead
  // of each channel's controller re-detecting on its own schedule.
  apply_departures(departed, t);
  metrics_.set("population.alive", static_cast<double>(alive_peers_));
}

void Runtime::apply_directive(int id, Channel& channel,
                              const control::Directive& directive, double t) {
  // Arm the time-to-recover SLI: the sustained ratio now has
  // recover_timeout seconds to climb back over its target.
  if (channel.slo) channel.slo->on_directive(t);
  const double rate_before = channel.session->current_rate();
  const Instance& instance = channel.session->instance();
  engine::AdaptationRequest request;
  request.force_replan = directive.force_replan;
  // Effective caps per current slot: the broker-granted nominal scaled by
  // the controller's capacity-class factor.
  request.capacities.resize(static_cast<std::size_t>(instance.size()));
  std::map<int, int> slot_of_node;
  for (int slot = 0; slot < instance.size(); ++slot) {
    const int rid = channel.node_of_slot[static_cast<std::size_t>(slot)];
    slot_of_node[rid] = slot;
    double factor = 1.0;
    const auto it = directive.factors.find(rid);
    if (it != directive.factors.end()) factor = it->second;
    request.capacities[static_cast<std::size_t>(slot)] =
        nodes_[static_cast<std::size_t>(rid)].bandwidth *
        channel.grant.fraction * factor;
  }
  for (const auto& [from, to, limit] : directive.edge_limits) {
    const auto from_it = slot_of_node.find(from);
    const auto to_it = slot_of_node.find(to);
    if (from_it == slot_of_node.end() || to_it == slot_of_node.end()) continue;
    request.edge_limits.emplace_back(from_it->second, to_it->second, limit);
  }

  const engine::ChurnOutcome outcome = channel.session->adapt(request);
  // Same node set, new sorted order: remap slots through original_id.
  const Instance& updated = channel.session->instance();
  std::vector<int> remapped(static_cast<std::size_t>(updated.size()));
  for (int slot = 0; slot < updated.size(); ++slot) {
    remapped[static_cast<std::size_t>(slot)] =
        channel.node_of_slot[static_cast<std::size_t>(
            updated.original_id(slot))];
  }
  channel.node_of_slot = std::move(remapped);

  if (outcome.planner_fault) {
    if (channel.plan_stale_since < 0.0) channel.plan_stale_since = t;
    metrics_.inc("fault.planner_faults");
    if (config_.recorder != nullptr) {
      config_.recorder->record(t, id, "plan_stale",
                               "adapt replan refused (planner outage)");
    }
  }
  if (config_.profiler != nullptr) {
    obs::Profiler& prof = *config_.profiler;
    prof.enter("runtime/session/adapt");
    prof.count("runtime/session/adapt", "demotions",
               static_cast<std::uint64_t>(directive.demotions));
    prof.count("runtime/session/adapt", "restores",
               static_cast<std::uint64_t>(directive.restores));
    prof.count("runtime/session/adapt", "reroutes",
               static_cast<std::uint64_t>(directive.reroutes));
    prof.count("runtime/session/adapt",
               outcome.full_replan ? "replans" : "repairs");
    prof.count("runtime/session/adapt", "verify_calls",
               static_cast<std::uint64_t>(outcome.verify_calls));
  }
  metrics_.inc("control.demotions",
               static_cast<std::uint64_t>(directive.demotions));
  metrics_.inc("control.restores",
               static_cast<std::uint64_t>(directive.restores));
  metrics_.inc("control.reroutes",
               static_cast<std::uint64_t>(directive.reroutes));
  metrics_.inc(outcome.full_replan ? "control.replans" : "control.repairs");
  metrics_.observe("control.drift", directive.drift);
  // Every adapted overlay went through flow verification (repair_scheme's
  // verifier or the planner's verify_plans) — fold into the verify.* view.
  metrics_.inc("verify.calls",
               static_cast<std::uint64_t>(outcome.verify_calls));
  metrics_.inc("verify.tier_sweep",
               static_cast<std::uint64_t>(outcome.verify_sweep));
  metrics_.inc("verify.tier_maxflow",
               static_cast<std::uint64_t>(outcome.verify_maxflow));
  if (config_.collect_timing) {
    metrics_.observe("timing.verify.us", outcome.verify_us);
  }
  if (rate_before > 0.0) {
    metrics_.observe("control.recovered_ratio",
                     outcome.achieved_rate / rate_before);
    if (config_.telemetry != nullptr && outcome.achieved_rate >= 0.0) {
      config_.telemetry->observe(tel_.recovered,
                                 outcome.achieved_rate / rate_before);
    }
  }
  if (config_.telemetry != nullptr) {
    // Heavy-hitter view of the control plane: which nodes keep costing
    // capacity. Weight = milli-units of capacity factor surrendered, so a
    // node demoted 1.0 -> 0.25 outweighs ten 0.95 -> 0.90 nudges.
    for (const control::Evidence& ev : directive.evidence) {
      if (ev.node < 0 || std::strcmp(ev.action, "demote") != 0) continue;
      const double drop = std::max(0.0, ev.factor_before - ev.factor_after);
      config_.telemetry->offer(
          tel_.node_demotions,
          "node:" + config_.telemetry_node_prefix + std::to_string(ev.node),
          std::max<std::uint64_t>(
              1, static_cast<std::uint64_t>(std::lround(drop * 1000.0))));
    }
  }
  set_channel_gauges(id, channel);
  // The adapted overlay splices into the running stream — no restart; the
  // source re-paces to the newly verified rate.
  sync_execution(id, channel);

  ControlReport report;
  report.time = t;
  report.channel = id;
  report.demotions = directive.demotions;
  report.restores = directive.restores;
  report.reroutes = directive.reroutes;
  report.stragglers = directive.stragglers;
  report.degraded_edges = directive.degraded_edges;
  report.drift = directive.drift;
  report.replan = directive.force_replan;
  report.full_replan = outcome.full_replan;
  report.rate_before = rate_before;
  report.rate_after = outcome.achieved_rate;
  report.evidence = directive.evidence;
  if (config_.trace != nullptr) {
    config_.trace->complete_at(
        obs::Lane::kControl, "control", "directive", t, 0.0,
        {{"channel", id},
         {"demotions", directive.demotions},
         {"restores", directive.restores},
         {"reroutes", directive.reroutes},
         {"drift", directive.drift},
         {"replan", directive.force_replan},
         {"rate_before", rate_before},
         {"rate_after", outcome.achieved_rate}});
    // The causal audit, event by event: each record names the detector
    // that judged, the signal it saw and the capacity move it drove.
    for (const control::Evidence& ev : directive.evidence) {
      config_.trace->instant_at(obs::Lane::kControl, "control", ev.action, t,
                                {{"channel", id},
                                 {"detector", ev.detector},
                                 {"node", ev.node},
                                 {"from", ev.from},
                                 {"to", ev.to},
                                 {"window", ev.window_value},
                                 {"ewma", ev.ewma},
                                 {"threshold", ev.threshold},
                                 {"estimate", ev.estimate},
                                 {"factor_before", ev.factor_before},
                                 {"factor_after", ev.factor_after},
                                 {"drift", ev.drift},
                                 {"trips", ev.trips}});
    }
  }
  if (config_.recorder != nullptr) {
    for (const control::Evidence& ev : directive.evidence) {
      std::string detail = std::string(ev.detector);
      if (ev.node >= 0) detail += " node=" + std::to_string(ev.node);
      if (ev.from >= 0) {
        detail += " edge=" + std::to_string(ev.from) + "->" +
                  std::to_string(ev.to);
      }
      detail += " ewma=" + std::to_string(ev.ewma) +
                " threshold=" + std::to_string(ev.threshold);
      config_.recorder->record(t, id, ev.action, std::move(detail));
    }
  }
  control_log_.push_back(report);
}

void Runtime::sync_execution(int id, Channel& channel) {
  (void)id;
  if (!channel.execution) return;
  dataplane::Execution& exec = *channel.execution;
  const engine::Session& session = *channel.session;
  const Instance& instance = session.instance();
  // Nodes: the session's current platform, keyed by runtime node id.
  std::map<int, int> slot_of_node;
  for (int slot = 0; slot < instance.size(); ++slot) {
    slot_of_node[channel.node_of_slot[static_cast<std::size_t>(slot)]] = slot;
  }
  for (auto it = channel.dp_of_node.begin(); it != channel.dp_of_node.end();) {
    if (slot_of_node.count(it->first) == 0) {
      // Departed (or dropped from the overlay): in-flight chunks vanish,
      // reservations release, survivors re-request elsewhere.
      exec.remove_node(it->second);
      channel.expected_at_join.erase(it->second);
      it = channel.dp_of_node.erase(it);
    } else {
      ++it;
    }
  }
  for (int slot = 0; slot < instance.size(); ++slot) {
    const int node = channel.node_of_slot[static_cast<std::size_t>(slot)];
    const auto it = channel.dp_of_node.find(node);
    const Node& info = nodes_[static_cast<std::size_t>(node)];
    int dp;
    if (it == channel.dp_of_node.end()) {
      dp = exec.add_node(instance.b(slot));
      channel.dp_of_node.emplace(node, dp);
      // A live-edge joiner is only on the hook for chunks emitted after it
      // arrived.
      channel.expected_at_join.emplace(dp, channel.design_integral);
      // The effective world follows the node into this stream: an already
      // WAN-classed, partitioned or corrupting peer joins on its current
      // fault state, not a clean slate.
      if (info.wan) exec.set_egress_profile(dp, info.profile);
      if (info.partition_group != 0) {
        exec.set_partition_group(dp, info.partition_group);
      }
      if (info.corrupt_rate > 0.0) exec.set_corrupt_rate(dp, info.corrupt_rate);
    } else {
      dp = it->second;
      // An abruptly crashed node stays in the session's platform until the
      // silence detector synthesizes its departure; until then its stream
      // slot is a corpse — nothing to budget or cap.
      if (!exec.node_alive(dp)) continue;
      exec.set_node_budget(dp, instance.b(slot));
    }
    // Brownout caps are absolute (a fraction of the *nominal* channel
    // grant), so they survive demotions and follow renegotiations.
    exec.set_effective_capacity(
        dp, info.capacity_factor < 1.0
                ? info.capacity_factor * info.bandwidth * channel.grant.fraction
                : -1.0);
  }
  // Pipes: splice the session's current overlay in, preserving in-flight
  // transmissions on edges that survived.
  const BroadcastScheme& scheme = session.scheme();
  std::vector<std::tuple<int, int, double>> desired;
  desired.reserve(static_cast<std::size_t>(scheme.edge_count()));
  for (int slot = 0; slot < scheme.num_nodes(); ++slot) {
    const int from = channel.dp_of_node.at(
        channel.node_of_slot[static_cast<std::size_t>(slot)]);
    // Splice around crashed-but-undetected nodes: the plan still names
    // them, but their pipes stay down until detection repairs the overlay.
    if (!exec.node_alive(from)) continue;
    for (const auto& [to_slot, rate] : scheme.out_edges(slot)) {
      const int to = channel.dp_of_node.at(
          channel.node_of_slot[static_cast<std::size_t>(to_slot)]);
      if (!exec.node_alive(to)) continue;
      desired.emplace_back(from, to, rate);
    }
  }
  exec.reconcile_edges(desired);
  // Emit at the verified rate of the overlay actually in service — the
  // stream can never outrun what the flow bound proves deliverable.
  exec.set_emission_rate(session.current_rate());
  channel.max_verified = std::max(channel.max_verified, session.current_rate());
}

void Runtime::export_dataplane_metrics(int id, Channel& channel) {
  if (!channel.execution) return;
  dataplane::Execution& exec = *channel.execution;
  // Interned delta export: each dataplane counter's cell resolves once
  // (lazily, on the first positive delta — so a run that never loses a
  // chunk still never materializes dataplane.losses) and the telemetry
  // shard mirrors the same delta through its O(1) handle.
  const auto delta = [this](std::uint64_t*& slot, const char* name,
                            obs::ShardRegistry::CounterHandle mirror,
                            std::uint64_t current, std::uint64_t& seen) {
    if (current > seen) {
      if (slot == nullptr) slot = metrics_.counter_handle(name);
      *slot += current - seen;
      if (config_.telemetry != nullptr) {
        config_.telemetry->inc(mirror, current - seen);
      }
      seen = current;
    }
  };
  delta(hot_.dp_delivered, "dataplane.delivered", tel_.delivered,
        exec.delivered_chunks(), channel.seen_delivered);
  delta(hot_.dp_losses, "dataplane.losses", tel_.losses, exec.losses(),
        channel.seen_losses);
  delta(hot_.dp_retransmits, "dataplane.retransmits", tel_.retransmits,
        exec.retransmits(), channel.seen_retransmits);
  delta(hot_.dp_hol_stalls, "dataplane.hol_stalls", tel_.hol_stalls,
        exec.hol_stalls(), channel.seen_stalls);
  delta(hot_.dp_duplicates, "dataplane.duplicates", tel_.duplicates,
        exec.duplicates(), channel.seen_duplicates);
  for (const double latency : exec.drain_latencies()) {
    if (hot_.dp_chunk_latency == nullptr) {
      hot_.dp_chunk_latency =
          metrics_.histogram_handle("dataplane.chunk_latency");
    }
    hot_.dp_chunk_latency->observe(latency);
    if (config_.telemetry != nullptr) {
      config_.telemetry->observe(tel_.latency, latency);
    }
    if (channel.slo) channel.slo->observe_latency(latency);
  }
  metrics_.set(channel_metric(id, "dataplane.delivered"),
               static_cast<double>(exec.delivered_chunks()));
}

void Runtime::feed_edge_telemetry(Channel& channel,
                                  const dataplane::Execution& exec) {
  obs::ShardRegistry& shard = *config_.telemetry;
  const std::string& prefix = config_.telemetry_node_prefix;
  // This sweep runs at every control tick; both lookup structures are
  // reused scratch, so the steady state allocates nothing.
  std::vector<int>& rid_of_dp = rid_of_dp_scratch_;
  rid_of_dp.clear();
  for (const auto& [rid, dp] : channel.dp_of_node) {
    const auto slot = static_cast<std::size_t>(dp);
    if (slot >= rid_of_dp.size()) rid_of_dp.resize(slot + 1, -1);
    rid_of_dp[slot] = rid;
  }
  const auto rid_of = [&](int dp) {
    const auto slot = static_cast<std::size_t>(dp);
    return dp >= 0 && slot < rid_of_dp.size() ? rid_of_dp[slot] : -1;
  };
  exec.edge_stats_into(edge_stats_scratch_);
  for (const dataplane::EdgeStats& stats : edge_stats_scratch_) {
    const int from_rid = rid_of(stats.from);
    const int to_rid = rid_of(stats.to);
    if (from_rid < 0 || to_rid < 0) continue;
    auto& seen = channel.seen_edge_telemetry
                     [static_cast<std::uint64_t>(
                          static_cast<std::uint32_t>(from_rid))
                          << 32 |
                      static_cast<std::uint32_t>(to_rid)];
    // Pipes reset their counters when an overlay patch re-splices them; a
    // counter below its watermark restarts the delta from zero.
    const std::uint64_t lost_delta =
        stats.lost >= seen.first ? stats.lost - seen.first : stats.lost;
    const std::uint64_t stall_delta = stats.window_stalls >= seen.second
                                          ? stats.window_stalls - seen.second
                                          : stats.window_stalls;
    seen = {stats.lost, stats.window_stalls};
    if (lost_delta == 0 && stall_delta == 0) continue;
    const std::string node_key =
        "node:" + prefix + std::to_string(from_rid);
    if (lost_delta > 0) {
      shard.offer(tel_.edge_retransmits,
                  "edge:" + prefix + std::to_string(from_rid) + "->" +
                      std::to_string(to_rid),
                  lost_delta);
      shard.offer(tel_.node_retransmits, node_key, lost_delta);
    }
    if (stall_delta > 0) shard.offer(tel_.node_stalls, node_key, stall_delta);
  }
}

StreamReport Runtime::finalize_stream(int id, Channel& channel) {
  dataplane::Execution& exec = *channel.execution;
  // End of stream: stop the source and let the in-flight tail drain (in
  // virtual time) so backpressured chunks still count.
  exec.stop_emission();
  exec.run_to_completion();
  export_dataplane_metrics(id, channel);
  const dataplane::ExecutionReport executed =
      exec.report(channel.session->current_rate());
  StreamReport report;
  report.channel = id;
  report.open_time = channel.open_time;
  report.end_time = now_;
  report.emitted = executed.emitted;
  report.delivered_chunks = executed.delivered_chunks;
  report.retransmits = executed.retransmits;
  report.hol_stalls = executed.hol_stalls;
  report.duplicates = executed.duplicates;
  report.expected_chunks = channel.design_integral;
  report.achieved_rate = executed.achieved_rate;
  report.verified_rate = channel.max_verified;
  for (const auto& [node, dp] : channel.dp_of_node) {
    (void)node;
    if (dp == 0 || !exec.node_alive(dp)) continue;
    const double expected =
        channel.design_integral - channel.expected_at_join.at(dp);
    if (expected < 1.0) continue;  // too young for a meaningful ratio
    report.sustained_ratio =
        std::min(report.sustained_ratio, exec.delivered(dp) / expected);
  }
  // flow::Verifier cross-check: a windowed empirical rate may wobble a few
  // percent above the fluid bound on short windows, never materially.
  report.rate_within_verified =
      report.achieved_rate <= report.verified_rate * 1.02 + 1e-9;
  metrics_.inc("dataplane.streams_finalized");
  if (config_.trace != nullptr) {
    config_.trace->complete_at(obs::Lane::kExecution, "dataplane",
                               "stream_end", now_, 0.0,
                               {{"channel", id},
                                {"emitted", report.emitted},
                                {"delivered", report.delivered_chunks},
                                {"achieved", report.achieved_rate},
                                {"verified", report.verified_rate},
                                {"audit_ok", report.rate_within_verified}});
  }
  if (config_.recorder != nullptr) {
    config_.recorder->record(
        now_, id, "stream_end",
        "achieved=" + std::to_string(report.achieved_rate) +
            " verified=" + std::to_string(report.verified_rate));
  }
  if (!report.rate_within_verified) {
    metrics_.inc("dataplane.rate_audit_failures");
    // Budget audit failed: snapshot the channel's recent history to disk
    // (if a dump path is configured) while the cause is still in the ring.
    if (config_.recorder != nullptr) {
      config_.recorder->record_failure(
          now_, id, "Runtime::finalize_stream",
          {"achieved rate " + std::to_string(report.achieved_rate) +
           " exceeds verified " + std::to_string(report.verified_rate)});
    }
  }
  metrics_.observe("dataplane.sustained_ratio", report.sustained_ratio);
  metrics_.observe("dataplane.achieved_rate", report.achieved_rate);
  if (config_.telemetry != nullptr) {
    config_.telemetry->observe(tel_.sustained,
                               std::max(0.0, report.sustained_ratio));
    // Control-less runs never tick feed_edge_telemetry; the close-out
    // sweep attributes whatever accumulated since the last boundary.
    feed_edge_telemetry(channel, exec);
  }
  metrics_.erase(channel_metric(id, "dataplane.delivered"));
  channel.execution.reset();
  return report;
}

std::vector<StreamReport> Runtime::drain(double t) {
  std::vector<StreamReport> reports;
  if (!config_.dataplane.execute) return reports;
  if (t < dp_clock_) {
    throw std::invalid_argument("Runtime::drain: time went backwards");
  }
  now_ = std::max(now_, t);
  advance_executions(t);
  if (config_.trace != nullptr) config_.trace->set_clock(now_);
  for (auto& [id, channel] : channels_) {
    if (!channel.execution) continue;
    reports.push_back(finalize_stream(id, channel));
    stream_log_.push_back(reports.back());
  }
  return reports;
}

std::vector<std::string> Runtime::validate(double tol) const {
  std::vector<double> allocated(nodes_.size(), 0.0);
  for (const auto& [id, channel] : channels_) {
    (void)id;
    const std::vector<double> caps = channel.session->capacities();
    for (std::size_t slot = 0; slot < caps.size(); ++slot) {
      allocated[static_cast<std::size_t>(channel.node_of_slot[slot])] +=
          caps[slot];
    }
  }
  std::vector<std::string> violations;
  for (std::size_t node = 0; node < nodes_.size(); ++node) {
    const double budget = nodes_[node].bandwidth;
    if (allocated[node] > budget * (1.0 + tol) + tol) {
      violations.push_back("node " + std::to_string(node) +
                           " oversubscribed: allocated " +
                           std::to_string(allocated[node]) + " > budget " +
                           std::to_string(budget));
    }
  }
  // Broker audit: granted fractions fit the usable pool even after faulty
  // teardowns (a leaked grant from a mid-fault unwind would show up here).
  if (broker_.allocated() > broker_.usable() * (1.0 + tol) + tol) {
    violations.push_back(
        "broker oversubscribed: allocated " +
        std::to_string(broker_.allocated()) + " > usable " +
        std::to_string(broker_.usable()));
  }
  for (const auto& [id, channel] : channels_) {
    // Slot map <-> execution map consistency: every planned slot resolves
    // to exactly one live dataplane node.
    if (channel.execution) {
      for (std::size_t slot = 0; slot < channel.node_of_slot.size(); ++slot) {
        if (channel.dp_of_node.count(channel.node_of_slot[slot]) == 0) {
          violations.push_back(
              "channel " + std::to_string(id) + " slot " +
              std::to_string(slot) + " (node " +
              std::to_string(channel.node_of_slot[slot]) +
              ") missing from its execution map");
        }
      }
      // The stream's own no-orphan audit: windows, reservations and
      // in-flight copies reconcile even mid-crash / mid-partition.
      for (const std::string& violation : channel.execution->validate(tol)) {
        violations.push_back("channel " + std::to_string(id) +
                             " execution: " + violation);
      }
    }
  }
  // An invariant breach is exactly when the flight recorder earns its keep:
  // capture the violations beside the recent history (and auto-dump).
  if (!violations.empty() && config_.recorder != nullptr) {
    config_.recorder->record_failure(now_, -1, "Runtime::validate",
                                     violations);
  }
  return violations;
}

}  // namespace bmp::runtime
