#include "bmp/runtime/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace bmp::runtime {

const char* to_string(EventType type) {
  switch (type) {
    case EventType::kChannelOpen: return "channel_open";
    case EventType::kChannelClose: return "channel_close";
    case EventType::kNodeJoin: return "node_join";
    case EventType::kNodeLeave: return "node_leave";
    case EventType::kRenegotiate: return "renegotiate";
  }
  throw std::invalid_argument("unknown event type");
}

Runtime::Runtime(RuntimeConfig config, double source_bandwidth,
                 const std::vector<NodeSpec>& initial_peers)
    : config_(config),
      planner_(config.planner),
      broker_(config.broker_headroom) {
  // One timing switch for the whole loop: a runtime that opts out of
  // timing.* metrics must not pay the per-verify clock reads inside its
  // sessions either.
  config_.session.verify.collect_timing = config_.collect_timing;
  if (!is_valid_bandwidth(source_bandwidth)) {
    throw std::invalid_argument("Runtime: invalid source bandwidth");
  }
  nodes_.reserve(1 + initial_peers.size());
  nodes_.push_back(Node{source_bandwidth, false, true});
  for (const NodeSpec& spec : initial_peers) {
    if (!is_valid_bandwidth(spec.bandwidth)) {
      throw std::invalid_argument("Runtime: invalid peer bandwidth");
    }
    nodes_.push_back(Node{spec.bandwidth, spec.guarded, true});
  }
  alive_peers_ = static_cast<int>(initial_peers.size());
  metrics_.set("population.alive", static_cast<double>(alive_peers_));
  metrics_.set("channels.open", 0.0);
}

void Runtime::run(const std::vector<Event>& events) {
  for (std::size_t i = 1; i < events.size(); ++i) {
    if (event_before(events[i], events[i - 1])) {
      throw std::invalid_argument("Runtime::run: events not time-sorted");
    }
  }
  for (const Event& event : events) step(event);
}

void Runtime::step(const Event& event) {
  if (event.time < now_) {
    throw std::invalid_argument("Runtime::step: event precedes loop clock");
  }
  now_ = event.time;
  const auto start = config_.collect_timing
                         ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{};
  switch (event.type) {
    case EventType::kChannelOpen: on_channel_open(event); break;
    case EventType::kChannelClose: on_channel_close(event); break;
    case EventType::kNodeJoin: on_node_join(event); break;
    case EventType::kNodeLeave: on_node_leave(event); break;
    case EventType::kRenegotiate: on_renegotiate(event); break;
  }
  metrics_.inc("events.total");
  metrics_.inc(std::string("events.") + to_string(event.type));
  // The broker is the single source of truth for admission accounting;
  // mirror its totals instead of double-counting at every call site.
  metrics_.set_counter("broker.admitted", broker_.admissions());
  metrics_.set_counter("broker.rejected", broker_.rejections());
  metrics_.set_counter("broker.released", broker_.releases());
  metrics_.set("broker.allocated", broker_.allocated());
  metrics_.set("channels.open", static_cast<double>(channels_.size()));
  metrics_.set("population.alive", static_cast<double>(alive_peers_));
  if (config_.collect_timing) {
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    metrics_.observe("timing.event_loop_us", us);
  }
}

std::string Runtime::channel_metric(int id, const char* what) const {
  return "channel." + std::to_string(id) + "." + what;
}

void Runtime::set_channel_gauges(int id, const Channel& channel) {
  metrics_.set(channel_metric(id, "fraction"), channel.grant.fraction);
  metrics_.set(channel_metric(id, "design_rate"),
               channel.session->design_rate());
  metrics_.set(channel_metric(id, "achieved_rate"),
               channel.session->current_rate());
}

void Runtime::build_session(int id, Channel& channel) {
  // Gather the alive population in runtime-id order, opens before guardeds
  // — the instance's caller-side numbering the slot map is derived from.
  std::vector<double> open_bw;
  std::vector<double> guarded_bw;
  std::vector<int> open_ids;
  std::vector<int> guarded_ids;
  const double fraction = channel.grant.fraction;
  for (int node = 1; node < static_cast<int>(nodes_.size()); ++node) {
    const Node& info = nodes_[static_cast<std::size_t>(node)];
    if (!info.alive) continue;
    if (info.guarded) {
      guarded_bw.push_back(info.bandwidth * fraction);
      guarded_ids.push_back(node);
    } else {
      open_bw.push_back(info.bandwidth * fraction);
      open_ids.push_back(node);
    }
  }
  Instance scaled(nodes_[0].bandwidth * fraction, std::move(open_bw),
                  std::move(guarded_bw));
  channel.session = std::make_unique<engine::Session>(planner_, scaled,
                                                      config_.session);
  if (channel.session->initial_plan_verified()) {
    // Channel opens and join replans verify their computed plans too —
    // without this the verify.* counters would only see leave events.
    metrics_.inc("verify.calls");
    metrics_.inc(channel.session->initial_plan_tier() ==
                         flow::VerifyTier::kAcyclicSweep
                     ? "verify.tier_sweep"
                     : "verify.tier_maxflow");
  }
  // original_id(slot) indexes [source, opens..., guardeds...] directly.
  channel.node_of_slot.assign(static_cast<std::size_t>(scaled.size()), 0);
  for (int slot = 1; slot < scaled.size(); ++slot) {
    const int input_id = scaled.original_id(slot);
    channel.node_of_slot[static_cast<std::size_t>(slot)] =
        input_id <= static_cast<int>(open_ids.size())
            ? open_ids[static_cast<std::size_t>(input_id - 1)]
            : guarded_ids[static_cast<std::size_t>(
                  input_id - 1 - static_cast<int>(open_ids.size()))];
  }
  set_channel_gauges(id, channel);
}

void Runtime::on_channel_open(const Event& event) {
  if (channels_.count(event.channel) != 0) {
    throw std::invalid_argument("Runtime: channel already open");
  }
  const std::optional<Grant> granted =
      broker_.admit(event.channel, event.weight, event.fraction);
  if (!granted) return;  // counted via broker_.rejections()
  Channel channel;
  channel.grant = *granted;
  build_session(event.channel, channel);
  channels_.emplace(event.channel, std::move(channel));
}

void Runtime::on_channel_close(const Event& event) {
  const auto it = channels_.find(event.channel);
  if (it == channels_.end()) {
    // Scenarios emit open/close pairs without knowing whether the broker
    // admitted the open; closing a never-admitted channel is expected data.
    metrics_.inc("broker.close_ignored");
    return;
  }
  broker_.release(event.channel);
  // Drop the per-channel gauges: under Poisson channel arrivals a
  // long-lived runtime would otherwise accumulate dead entries forever.
  metrics_.erase(channel_metric(event.channel, "fraction"));
  metrics_.erase(channel_metric(event.channel, "design_rate"));
  metrics_.erase(channel_metric(event.channel, "achieved_rate"));
  channels_.erase(it);
}

void Runtime::on_node_join(const Event& event) {
  // Validate the whole batch before mutating: a rejected event must leave
  // the population untouched.
  for (const NodeSpec& spec : event.joins) {
    if (!is_valid_bandwidth(spec.bandwidth)) {
      throw std::invalid_argument("Runtime: invalid join bandwidth");
    }
  }
  for (const NodeSpec& spec : event.joins) {
    nodes_.push_back(Node{spec.bandwidth, spec.guarded, true});
    ++alive_peers_;
  }
  if (event.joins.empty() || config_.join_policy == JoinPolicy::kIgnore) {
    return;
  }
  // Recruit the new uploaders: re-plan every live channel on the grown
  // platform. The shared cache dedupes channels whose scaled platforms
  // collide; the session's design rate resets to the new optimum.
  for (auto& [id, channel] : channels_) {
    build_session(id, channel);
    metrics_.inc("replans.join");
    ChurnReport report;
    report.time = now_;
    report.channel = id;
    report.type = EventType::kNodeJoin;
    report.full_replan = true;
    report.design_rate = channel.session->design_rate();
    report.achieved_rate = channel.session->current_rate();
    churn_log_.push_back(report);
  }
}

void Runtime::on_node_leave(const Event& event) {
  // Validate the whole batch (range, aliveness, in-event duplicates)
  // before mutating: a rejected event must leave the population untouched.
  std::unordered_set<int> departed;
  for (const int node : event.leaves) {
    if (node <= 0 || node >= static_cast<int>(nodes_.size())) {
      throw std::invalid_argument("Runtime: departure of unknown node");
    }
    if (!nodes_[static_cast<std::size_t>(node)].alive) {
      throw std::invalid_argument("Runtime: departure of dead node");
    }
    if (!departed.insert(node).second) {
      throw std::invalid_argument("Runtime: duplicate departure");
    }
  }
  if (departed.empty()) return;
  for (const int node : departed) {
    nodes_[static_cast<std::size_t>(node)].alive = false;
    --alive_peers_;
  }

  for (auto& [id, channel] : channels_) {
    // Translate runtime ids to this channel's session slots. Channels
    // opened after a joiner arrived include it; older ones may not.
    std::vector<int> slots;
    const std::vector<int>& node_of_slot = channel.node_of_slot;
    for (int slot = 1; slot < static_cast<int>(node_of_slot.size()); ++slot) {
      if (departed.count(node_of_slot[static_cast<std::size_t>(slot)]) != 0) {
        slots.push_back(slot);
      }
    }
    if (slots.empty()) continue;

    // Survivors in the session's *current sorted order*, opens first: this
    // is exactly the caller-side numbering sim::remove_nodes hands the
    // post-churn instance, so original_id() maps new slots back into it.
    std::vector<int> survivors;
    survivors.reserve(node_of_slot.size() - slots.size() - 1);
    for (int pass = 0; pass < 2; ++pass) {
      for (int slot = 1; slot < static_cast<int>(node_of_slot.size());
           ++slot) {
        const int node = node_of_slot[static_cast<std::size_t>(slot)];
        if (departed.count(node) != 0) continue;
        if (nodes_[static_cast<std::size_t>(node)].guarded == (pass == 1)) {
          survivors.push_back(node);
        }
      }
    }

    const engine::ChurnOutcome outcome = channel.session->on_departure(slots);
    const Instance& instance = channel.session->instance();
    std::vector<int> remapped(static_cast<std::size_t>(instance.size()),
                              node_of_slot[0]);
    for (int slot = 1; slot < instance.size(); ++slot) {
      remapped[static_cast<std::size_t>(slot)] =
          survivors[static_cast<std::size_t>(instance.original_id(slot) - 1)];
    }
    channel.node_of_slot = std::move(remapped);

    metrics_.inc(outcome.full_replan ? "repairs.full" : "repairs.incremental");
    // Verification telemetry: tier counts are deterministic (structure
    // decides the tier), so they live beside the repair counters; the
    // wall-clock cost goes under timing.* like every other latency.
    metrics_.inc("verify.calls", static_cast<std::uint64_t>(outcome.verify_calls));
    metrics_.inc("verify.tier_sweep",
                 static_cast<std::uint64_t>(outcome.verify_sweep));
    metrics_.inc("verify.tier_maxflow",
                 static_cast<std::uint64_t>(outcome.verify_maxflow));
    if (config_.collect_timing) {
      metrics_.observe("timing.verify.us", outcome.verify_us);
    }
    set_channel_gauges(id, channel);
    ChurnReport report;
    report.time = now_;
    report.channel = id;
    report.type = EventType::kNodeLeave;
    report.departed = outcome.departed;
    report.full_replan = outcome.full_replan;
    report.design_rate = channel.session->design_rate();
    report.achieved_rate = outcome.achieved_rate;
    churn_log_.push_back(report);
    if (report.design_rate > 0.0) {
      metrics_.observe("channel.recovery_ratio",
                       report.achieved_rate / report.design_rate);
    }
  }
}

void Runtime::on_renegotiate(const Event& event) {
  const std::vector<Grant> changed = broker_.rebalance(event.utilization);
  for (const Grant& grant : changed) {
    const auto it = channels_.find(grant.channel);
    if (it == channels_.end()) continue;
    Channel& channel = it->second;
    const double factor = grant.fraction / channel.grant.fraction;
    channel.session->rescale(factor);
    channel.grant = grant;
    metrics_.inc("broker.renegotiated");
    set_channel_gauges(grant.channel, channel);
  }
}

const engine::Session* Runtime::session(int channel) const {
  const auto it = channels_.find(channel);
  return it == channels_.end() ? nullptr : it->second.session.get();
}

std::vector<std::string> Runtime::validate(double tol) const {
  std::vector<double> allocated(nodes_.size(), 0.0);
  for (const auto& [id, channel] : channels_) {
    (void)id;
    const std::vector<double> caps = channel.session->capacities();
    for (std::size_t slot = 0; slot < caps.size(); ++slot) {
      allocated[static_cast<std::size_t>(channel.node_of_slot[slot])] +=
          caps[slot];
    }
  }
  std::vector<std::string> violations;
  for (std::size_t node = 0; node < nodes_.size(); ++node) {
    const double budget = nodes_[node].bandwidth;
    if (allocated[node] > budget * (1.0 + tol) + tol) {
      violations.push_back("node " + std::to_string(node) +
                           " oversubscribed: allocated " +
                           std::to_string(allocated[node]) + " > budget " +
                           std::to_string(budget));
    }
  }
  return violations;
}

}  // namespace bmp::runtime
