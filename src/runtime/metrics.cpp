#include "bmp/runtime/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace bmp::runtime {

WindowedHistogram::WindowedHistogram(std::size_t window) : window_(window) {
  if (window_ == 0) {
    throw std::invalid_argument("WindowedHistogram: window must be > 0");
  }
  recent_.reserve(window_);
}

void WindowedHistogram::observe(double value) {
  if (!std::isfinite(value)) {
    throw std::invalid_argument("WindowedHistogram: non-finite observation");
  }
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  for (std::size_t i = 0; i < kBucketBounds.size(); ++i) {
    if (value <= kBucketBounds[i]) {
      ++bins_[i];
      break;
    }
  }
  if (recent_.size() < window_) {
    recent_.push_back(value);
  } else {
    recent_[next_] = value;
  }
  next_ = (next_ + 1) % window_;
}

double WindowedHistogram::min() const { return count_ == 0 ? 0.0 : min_; }
double WindowedHistogram::max() const { return count_ == 0 ? 0.0 : max_; }

double WindowedHistogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

namespace {
/// Nearest-rank quantile of a sorted, non-empty window: the smallest value
/// with cumulative fraction >= q.
double sorted_quantile(const std::vector<double>& sorted, double q) {
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}
}  // namespace

double WindowedHistogram::quantile(double q) const {
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument("WindowedHistogram::quantile: q in [0, 1]");
  }
  if (recent_.empty()) return 0.0;
  std::vector<double> sorted(recent_);
  std::sort(sorted.begin(), sorted.end());
  return sorted_quantile(sorted, q);
}

HistogramStats WindowedHistogram::stats() const {
  HistogramStats stats;
  stats.count = count_;
  stats.sum = sum_;
  stats.min = min();
  stats.max = max();
  stats.mean = mean();
  if (!recent_.empty()) {
    std::vector<double> sorted(recent_);
    std::sort(sorted.begin(), sorted.end());
    stats.p50 = sorted_quantile(sorted, 0.50);
    stats.p90 = sorted_quantile(sorted, 0.90);
    stats.p99 = sorted_quantile(sorted, 0.99);
  }
  if (count_ > 0) {
    stats.buckets.reserve(kBucketBounds.size());
    std::uint64_t running = 0;
    for (const std::uint64_t bin : bins_) {
      running += bin;
      stats.buckets.push_back(running);
    }
  }
  return stats;
}

std::string MetricsSnapshot::to_string(bool include_timing) const {
  const auto timed = [&](const std::string& name) {
    return !include_timing && MetricsRegistry::is_timing(name);
  };
  std::ostringstream out;
  out.precision(12);
  for (const auto& [name, value] : counters) {
    if (timed(name)) continue;
    out << "counter " << name << " " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    if (timed(name)) continue;
    out << "gauge " << name << " " << value << "\n";
  }
  for (const auto& [name, stats] : histograms) {
    if (timed(name)) continue;
    out << "histogram " << name << " count=" << stats.count
        << " sum=" << stats.sum << " min=" << stats.min << " max=" << stats.max
        << " mean=" << stats.mean << " p50=" << stats.p50
        << " p90=" << stats.p90 << " p99=" << stats.p99 << "\n";
  }
  return out.str();
}

std::uint64_t* MetricsRegistry::counter_handle(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), 0).first;
  }
  return &it->second;
}

double* MetricsRegistry::gauge_handle(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), 0.0).first;
  }
  return &it->second;
}

WindowedHistogram* MetricsRegistry::histogram_handle(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), WindowedHistogram()).first;
  }
  return &it->second;
}

void MetricsRegistry::inc(std::string_view name, std::uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::set_counter(std::string_view name, std::uint64_t value) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::set(std::string_view name, double value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::observe(std::string_view name, double value) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), WindowedHistogram()).first;
  }
  it->second.observe(value);
}

void MetricsRegistry::erase(std::string_view name) {
  const auto erase_from = [&](auto& map) {
    const auto it = map.find(name);
    if (it != map.end()) map.erase(it);
  };
  erase_from(counters_);
  erase_from(gauges_);
  erase_from(histograms_);
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

const WindowedHistogram* MetricsRegistry::histogram(
    std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.counters.insert(counters_.begin(), counters_.end());
  snap.gauges.insert(gauges_.begin(), gauges_.end());
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.emplace(name, hist.stats());
  }
  return snap;
}

}  // namespace bmp::runtime
