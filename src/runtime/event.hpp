// The runtime's input language: a deterministic, timestamped event stream.
// Scenarios compile workloads (Poisson channel arrivals, flash crowds,
// diurnal churn, correlated failures, capacity renegotiations) down to a
// flat, time-sorted vector of these events; the Runtime consumes them one
// by one. Ties are broken by `sequence`, assigned once at build time, so a
// replay of the same stream is bit-for-bit identical regardless of how it
// was generated.
#pragma once

#include <cstdint>
#include <vector>

#include "bmp/dataplane/link_profile.hpp"

namespace bmp::runtime {

enum class EventType {
  kChannelOpen,   ///< admit a channel through the broker, plan its overlay
  kChannelClose,  ///< tear a channel down, reclaim its capacity fraction
  kNodeJoin,      ///< peers enter the population (ids assigned sequentially)
  kNodeLeave,     ///< peers depart — every hosting channel repairs/replans
  kRenegotiate,   ///< rebalance all grants to weighted fair shares
  kDegrade,       ///< effective-world change: brownouts / WAN profiles shift
  kFault,         ///< impolite failure: crash / partition / corruption / ...
};

[[nodiscard]] const char* to_string(EventType type);

/// One impolite failure. Unlike kNodeLeave/kDegrade, a fault carries *no*
/// cooperation from the affected node: a crash sends no leave event (the
/// runtime must detect the silence), a partition drops traffic without
/// telling either side, corruption flips payload bits in flight, a
/// blackout freezes the telemetry the control plane reads, and a planner
/// outage makes `Planner::plan` throw until the outage ends. Faults are
/// authored by `fault::FaultPlan` / `fault::Injector` (src/fault) and
/// merged into the scenario stream, so chaos runs replay bit-identically.
struct FaultAction {
  enum class Kind {
    kCrash,              ///< node dies abruptly; no leave event is emitted
    kPartitionStart,     ///< nodes in `group` can no longer reach group 0
    kPartitionHeal,      ///< all partition groups collapse back to one
    kCorruptStart,       ///< node's egress corrupts payloads at `rate`
    kCorruptEnd,         ///< egress corruption stops
    kBlackoutStart,      ///< telemetry from `nodes` freezes (EdgeStats stale)
    kBlackoutEnd,        ///< telemetry resumes
    kPlannerOutageStart, ///< Planner::plan throws PlannerUnavailable
    kPlannerOutageEnd,   ///< planner recovers; stale channels rebuild
  };
  Kind kind = Kind::kCrash;
  /// kCrash / kCorruptStart / kCorruptEnd: the runtime node id (never 0).
  int node = -1;
  /// kPartitionStart: partition group the listed nodes move to (> 0).
  int group = 1;
  /// kCorruptStart: probability in [0, 1] a sent chunk corrupts in flight.
  double rate = 0.0;
  /// kPartitionStart / kBlackoutStart / kBlackoutEnd: affected node ids.
  std::vector<int> nodes;
};

[[nodiscard]] const char* to_string(FaultAction::Kind kind);

/// A peer entering the population: upload budget + firewall class, plus an
/// optional egress WAN class (per-edge LinkProfile every pipe out of the
/// node inherits in execution mode).
struct NodeSpec {
  double bandwidth = 0.0;
  bool guarded = false;
  bool wan = false;  ///< apply `profile` instead of the config defaults
  dataplane::LinkProfile profile;
};

/// One node's effective-world change. The planner is deliberately *not*
/// told: plans keep using nominal capacities, the dataplane delivers less,
/// and only the adaptive control plane — watching achieved-rate telemetry —
/// can close the gap. capacity_factor 1.0 + set_profile false is a restore.
struct Degradation {
  int node = 0;                  ///< runtime node id (never 0, the source)
  bool set_factor = false;       ///< apply `capacity_factor` (1.0 restores)
  double capacity_factor = 1.0;  ///< effective egress multiplier in (0, 1]
  bool set_profile = false;      ///< (re)assign the egress WAN profile
  dataplane::LinkProfile profile;
  /// Drop the explicit WAN profile: the node falls back to the execution
  /// config's default loss/latency (mutually exclusive with set_profile).
  bool clear_profile = false;
};

struct Event {
  double time = 0.0;
  std::uint64_t sequence = 0;  ///< tie-break for equal timestamps
  EventType type = EventType::kChannelOpen;

  // kChannelOpen / kChannelClose
  int channel = -1;
  double weight = 1.0;    ///< open: renegotiation fair-share weight (> 0)
  double fraction = 0.1;  ///< open: requested capacity fraction in (0, 1]

  // kNodeJoin
  std::vector<NodeSpec> joins;
  // kNodeLeave — runtime node ids (never 0, the source)
  std::vector<int> leaves;
  // kDegrade — effective capacity / WAN profile changes
  std::vector<Degradation> degrades;
  // kFault — impolite failures applied in order at `time`
  std::vector<FaultAction> faults;

  // kRenegotiate: fraction of broker capacity the fair shares sum to;
  // keeping it < 1 leaves admission headroom for future channels.
  double utilization = 1.0;
};

/// Orders a stream for replay: by time, then by build-time sequence.
[[nodiscard]] inline bool event_before(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.sequence < b.sequence;
}

}  // namespace bmp::runtime
