#include "bmp/runtime/capacity_broker.hpp"

#include <cmath>
#include <stdexcept>

namespace bmp::runtime {

namespace {
constexpr double kTol = 1e-12;
}  // namespace

CapacityBroker::CapacityBroker(double headroom) {
  if (!std::isfinite(headroom) || headroom < 0.0 || headroom >= 1.0) {
    throw std::invalid_argument("CapacityBroker: headroom in [0, 1)");
  }
  usable_ = 1.0 - headroom;
}

std::optional<Grant> CapacityBroker::admit(int channel, double weight,
                                           double fraction) {
  if (!std::isfinite(weight) || weight <= 0.0) {
    throw std::invalid_argument("CapacityBroker::admit: weight must be > 0");
  }
  if (!std::isfinite(fraction) || fraction <= 0.0 || fraction > 1.0) {
    throw std::invalid_argument("CapacityBroker::admit: fraction in (0, 1]");
  }
  if (grants_.count(channel) != 0) {
    throw std::invalid_argument("CapacityBroker::admit: channel already held");
  }
  if (fraction > available() + kTol) {
    ++rejections_;
    return std::nullopt;
  }
  const Grant granted{channel, weight, fraction};
  grants_.emplace(channel, granted);
  total_weight_ += weight;
  allocated_ += fraction;
  ++admissions_;
  return granted;
}

double CapacityBroker::release(int channel) {
  const auto it = grants_.find(channel);
  if (it == grants_.end()) {
    throw std::invalid_argument("CapacityBroker::release: unknown channel");
  }
  const double reclaimed = it->second.fraction;
  total_weight_ -= it->second.weight;
  allocated_ -= reclaimed;
  grants_.erase(it);
  if (grants_.empty()) {  // absorb float residue at quiescence
    total_weight_ = 0.0;
    allocated_ = 0.0;
  }
  ++releases_;
  return reclaimed;
}

std::vector<Grant> CapacityBroker::rebalance(double utilization) {
  if (!std::isfinite(utilization) || utilization <= 0.0 || utilization > 1.0) {
    throw std::invalid_argument("CapacityBroker::rebalance: utilization in (0, 1]");
  }
  std::vector<Grant> changed;
  if (grants_.empty()) return changed;
  const double pool = utilization * usable_;
  double allocated = 0.0;
  for (auto& [id, held] : grants_) {
    const double share = pool * held.weight / total_weight_;
    if (std::abs(share - held.fraction) > kTol) {
      held.fraction = share;
      changed.push_back(held);
    }
    allocated += held.fraction;
  }
  allocated_ = allocated;
  return changed;
}

std::optional<Grant> CapacityBroker::grant(int channel) const {
  const auto it = grants_.find(channel);
  if (it == grants_.end()) return std::nullopt;
  return it->second;
}

}  // namespace bmp::runtime
