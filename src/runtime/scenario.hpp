// Scenario driver — compiles composable workload descriptions into the
// deterministic Event stream the Runtime replays. A Scenario is a builder:
// stack any mix of
//   * heterogeneous node classes (gen:: bandwidth distributions, open /
//     guarded split) for the initial population,
//   * fixed channels and Poisson channel arrivals with exponential holds,
//   * flash crowds (a burst of joiners, optionally leaving together later
//     — a correlated failure),
//   * diurnal churn waves (sinusoidally modulated leave/rejoin process),
//   * one-shot correlated failures (a fraction of the alive population
//     departs at one instant),
//   * periodic capacity renegotiations,
// then build(). Identical builder state + seed => identical script, byte
// for byte: every generator draws from its own forked rng stream for event
// *times*, and all node picks happen in one time-ordered sweep that tracks
// the alive population exactly as the Runtime will.
#pragma once

#include <cstdint>
#include <vector>

#include "bmp/gen/distributions.hpp"
#include "bmp/runtime/event.hpp"

namespace bmp::runtime {

/// A heterogeneous class of peers: `count` draws from `dist` (scaled),
/// each open with probability `p_open`. A class may carry an egress WAN
/// LinkProfile (loss / latency / rate jitter) — in execution mode every
/// pipe out of a member inherits it, so edge behaviour is classed instead
/// of sharing one global loss rate.
struct NodeClassSpec {
  int count = 0;
  double p_open = 0.5;
  gen::Dist dist = gen::Dist::kUnif100;
  double bandwidth_scale = 1.0;
  bool wan = false;  ///< assign `profile` to members' egress
  dataplane::LinkProfile profile;
};

/// A channel with scripted open/close times. `close_time < 0` keeps it
/// open past the horizon. `fraction` is the capacity share requested at
/// admission; `weight` drives renegotiation fair shares.
struct ChannelSpec {
  double open_time = 0.0;
  double close_time = -1.0;
  double weight = 1.0;
  double fraction = 0.1;
};

/// Poisson channel arrivals at `rate` per unit time, exponential holding
/// times with mean `mean_hold`.
struct PoissonChannelsSpec {
  double rate = 0.0;
  double mean_hold = 1.0;
  double weight = 1.0;
  double fraction = 0.1;
};

/// `joins` peers drawn from `node_class` arrive together at `time`; a
/// `leave_fraction` of them departs together `leave_delay` later.
struct FlashCrowdSpec {
  double time = 0.0;
  int joins = 0;
  NodeClassSpec node_class;  ///< count is ignored
  double leave_fraction = 0.0;
  double leave_delay = 0.0;
};

/// Churn ticks from a nonhomogeneous Poisson process with rate
/// `mean_events_per_period / period * (1 + amplitude * sin(2 pi t / period))`;
/// each tick is a rejoin (one `node_class` draw) with probability
/// `rejoin_probability`, otherwise one uniformly chosen alive peer leaves.
struct DiurnalChurnSpec {
  double period = 1.0;
  double amplitude = 0.5;
  double mean_events_per_period = 0.0;
  double rejoin_probability = 0.5;
  NodeClassSpec node_class;  ///< count is ignored
};

/// A correlated failure: `fraction` of the alive peers leave at `time`.
struct CorrelatedFailureSpec {
  double time = 0.0;
  double fraction = 0.1;
};

// ------------------------------------------------------ adaptive scenarios
// Mid-stream degradations of the *effective* world: the planner keeps its
// nominal capacities, the dataplane delivers less, and the adaptive
// control plane has to detect and re-plan around it. Both specs pick a
// correlated set of alive peers at one instant (optionally restricted to
// one initial-population class — a "region"), degrade them together, and
// restore them together `duration` later (duration < 0 = permanent).

/// A capacity brownout: the picked peers' effective egress capacity drops
/// to `capacity_factor` of nominal.
struct BrownoutSpec {
  double time = 0.0;
  double duration = -1.0;        ///< < 0: never restored
  double fraction = 0.1;         ///< of the eligible alive peers at `time`
  double capacity_factor = 0.25; ///< effective multiplier in (0, 1]
  /// Restrict picks to initial-population class k (index into the order
  /// population() was called); -1 = the whole alive population.
  int population_class = -1;
};

/// A WAN degradation: the picked peers' egress LinkProfile switches to
/// `profile` (restored to their class profile / defaults afterwards).
struct LinkDegradeSpec {
  double time = 0.0;
  double duration = -1.0;
  double fraction = 0.1;
  dataplane::LinkProfile profile;
  int population_class = -1;
};

/// The compiled scenario: initial population plus the replayable stream.
struct ScenarioScript {
  double source_bandwidth = 0.0;
  std::vector<NodeSpec> initial_peers;
  std::vector<Event> events;
};

class Scenario {
 public:
  Scenario(double horizon, std::uint64_t seed);

  Scenario& source(double bandwidth);
  Scenario& population(const NodeClassSpec& spec);
  Scenario& channel(const ChannelSpec& spec);
  Scenario& poisson_channels(const PoissonChannelsSpec& spec);
  Scenario& flash_crowd(const FlashCrowdSpec& spec);
  Scenario& diurnal_churn(const DiurnalChurnSpec& spec);
  Scenario& correlated_failure(const CorrelatedFailureSpec& spec);
  /// Adaptive layer: a correlated effective-capacity brownout.
  Scenario& brownout(const BrownoutSpec& spec);
  /// Adaptive layer: a correlated WAN-profile degradation.
  Scenario& degrade_links(const LinkDegradeSpec& spec);
  /// Rebalances grants every `interval`, fair shares summing to
  /// `utilization` of broker capacity.
  Scenario& renegotiate_every(double interval, double utilization = 1.0);

  /// Compiles the description. Pure: repeated calls return the same script.
  [[nodiscard]] ScenarioScript build() const;

 private:
  double horizon_;
  std::uint64_t seed_;
  double source_bandwidth_ = 1000.0;
  std::vector<NodeClassSpec> population_;
  std::vector<ChannelSpec> channels_;
  std::vector<PoissonChannelsSpec> poisson_;
  std::vector<FlashCrowdSpec> crowds_;
  std::vector<DiurnalChurnSpec> diurnal_;
  std::vector<CorrelatedFailureSpec> failures_;
  std::vector<BrownoutSpec> brownouts_;
  std::vector<LinkDegradeSpec> link_degrades_;
  struct Renegotiation {
    double interval;
    double utilization;
  };
  std::vector<Renegotiation> renegotiations_;
};

}  // namespace bmp::runtime
