#include "bmp/runtime/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "bmp/sim/churn.hpp"
#include "bmp/util/rng.hpp"

namespace bmp::runtime {

namespace {

void check_class(const NodeClassSpec& spec, const char* where) {
  if (spec.p_open < 0.0 || spec.p_open > 1.0) {
    throw std::invalid_argument(std::string(where) + ": p_open in [0, 1]");
  }
  if (!(spec.bandwidth_scale > 0.0)) {
    throw std::invalid_argument(std::string(where) +
                                ": bandwidth_scale must be > 0");
  }
  if (spec.wan) dataplane::check_link_profile(spec.profile, where);
}

/// One peer draw from a class template.
NodeSpec draw_node(const NodeClassSpec& spec, util::Xoshiro256& rng) {
  NodeSpec node;
  node.bandwidth = spec.bandwidth_scale * gen::sample(spec.dist, rng);
  node.guarded = rng.uniform() >= spec.p_open;
  node.wan = spec.wan;
  node.profile = spec.profile;
  return node;
}

/// Exponential inter-arrival draw, rate > 0.
double exponential(double rate, util::Xoshiro256& rng) {
  return -std::log(1.0 - rng.uniform()) / rate;
}

/// An intermediate record: either a fully resolved event, or a population
/// action whose node picks are deferred to the time-ordered sweep.
struct Tick {
  enum class Kind {
    kEvent,
    kCrowdJoin,
    kCrowdLeave,
    kDiurnal,
    kFailure,
    kBrownoutStart,
    kBrownoutEnd,
    kLinkStart,
    kLinkEnd,
  };
  double time = 0.0;
  std::uint64_t order = 0;  ///< creation order, tie-break
  Kind kind = Kind::kEvent;
  Event event;    // kEvent
  int index = -1; // crowd / diurnal / failure spec index
};

}  // namespace

Scenario::Scenario(double horizon, std::uint64_t seed)
    : horizon_(horizon), seed_(seed) {
  if (!(horizon > 0.0) || !std::isfinite(horizon)) {
    throw std::invalid_argument("Scenario: horizon must be > 0");
  }
}

Scenario& Scenario::source(double bandwidth) {
  if (!(bandwidth >= 0.0) || !std::isfinite(bandwidth)) {
    throw std::invalid_argument("Scenario::source: invalid bandwidth");
  }
  source_bandwidth_ = bandwidth;
  return *this;
}

Scenario& Scenario::population(const NodeClassSpec& spec) {
  check_class(spec, "Scenario::population");
  if (spec.count < 0) {
    throw std::invalid_argument("Scenario::population: negative count");
  }
  population_.push_back(spec);
  return *this;
}

Scenario& Scenario::channel(const ChannelSpec& spec) {
  if (spec.open_time < 0.0 || !(spec.weight > 0.0)) {
    throw std::invalid_argument("Scenario::channel: bad open_time/weight");
  }
  if (!(spec.fraction > 0.0) || spec.fraction > 1.0) {
    throw std::invalid_argument("Scenario::channel: fraction in (0, 1]");
  }
  if (spec.close_time >= 0.0 && spec.close_time < spec.open_time) {
    throw std::invalid_argument("Scenario::channel: closes before opening");
  }
  channels_.push_back(spec);
  return *this;
}

Scenario& Scenario::poisson_channels(const PoissonChannelsSpec& spec) {
  if (!(spec.rate >= 0.0) || !(spec.mean_hold > 0.0) || !(spec.weight > 0.0)) {
    throw std::invalid_argument("Scenario::poisson_channels: bad spec");
  }
  if (!(spec.fraction > 0.0) || spec.fraction > 1.0) {
    throw std::invalid_argument(
        "Scenario::poisson_channels: fraction in (0, 1]");
  }
  poisson_.push_back(spec);
  return *this;
}

Scenario& Scenario::flash_crowd(const FlashCrowdSpec& spec) {
  check_class(spec.node_class, "Scenario::flash_crowd");
  if (spec.time < 0.0 || spec.joins < 0 || spec.leave_fraction < 0.0 ||
      spec.leave_fraction > 1.0 || spec.leave_delay < 0.0) {
    throw std::invalid_argument("Scenario::flash_crowd: bad spec");
  }
  crowds_.push_back(spec);
  return *this;
}

Scenario& Scenario::diurnal_churn(const DiurnalChurnSpec& spec) {
  check_class(spec.node_class, "Scenario::diurnal_churn");
  if (!(spec.period > 0.0) || spec.amplitude < 0.0 || spec.amplitude >= 1.0 ||
      spec.mean_events_per_period < 0.0 || spec.rejoin_probability < 0.0 ||
      spec.rejoin_probability > 1.0) {
    throw std::invalid_argument("Scenario::diurnal_churn: bad spec");
  }
  diurnal_.push_back(spec);
  return *this;
}

Scenario& Scenario::correlated_failure(const CorrelatedFailureSpec& spec) {
  if (spec.time < 0.0 || spec.fraction < 0.0 || spec.fraction >= 1.0) {
    throw std::invalid_argument("Scenario::correlated_failure: bad spec");
  }
  failures_.push_back(spec);
  return *this;
}

Scenario& Scenario::brownout(const BrownoutSpec& spec) {
  if (spec.time < 0.0 || spec.fraction < 0.0 || spec.fraction > 1.0 ||
      !(spec.capacity_factor > 0.0) || spec.capacity_factor > 1.0 ||
      spec.population_class < -1) {
    throw std::invalid_argument("Scenario::brownout: bad spec");
  }
  brownouts_.push_back(spec);
  return *this;
}

Scenario& Scenario::degrade_links(const LinkDegradeSpec& spec) {
  if (spec.time < 0.0 || spec.fraction < 0.0 || spec.fraction > 1.0 ||
      spec.population_class < -1) {
    throw std::invalid_argument("Scenario::degrade_links: bad spec");
  }
  dataplane::check_link_profile(spec.profile, "Scenario::degrade_links");
  link_degrades_.push_back(spec);
  return *this;
}

Scenario& Scenario::renegotiate_every(double interval, double utilization) {
  if (!(interval > 0.0) || !(utilization > 0.0) || utilization > 1.0) {
    throw std::invalid_argument("Scenario::renegotiate_every: bad spec");
  }
  renegotiations_.push_back(Renegotiation{interval, utilization});
  return *this;
}

ScenarioScript Scenario::build() const {
  const util::Xoshiro256 root(seed_);
  ScenarioScript script;
  script.source_bandwidth = source_bandwidth_;

  for (const BrownoutSpec& spec : brownouts_) {
    if (spec.population_class >= static_cast<int>(population_.size())) {
      throw std::invalid_argument("Scenario::brownout: unknown class");
    }
  }
  for (const LinkDegradeSpec& spec : link_degrades_) {
    if (spec.population_class >= static_cast<int>(population_.size())) {
      throw std::invalid_argument("Scenario::degrade_links: unknown class");
    }
  }

  // Initial population: class by class, bandwidth draws then firewall
  // flags; each peer remembers its class ("region") for the adaptive layer.
  std::vector<int> initial_class;
  util::Xoshiro256 pop = root.fork(1);
  for (std::size_t c = 0; c < population_.size(); ++c) {
    const NodeClassSpec& cls = population_[c];
    const std::vector<double> bandwidths =
        gen::sample_many(cls.dist, cls.count, pop);
    for (const double bw : bandwidths) {
      NodeSpec node;
      node.bandwidth = cls.bandwidth_scale * bw;
      node.guarded = pop.uniform() >= cls.p_open;
      node.wan = cls.wan;
      node.profile = cls.profile;
      script.initial_peers.push_back(node);
      initial_class.push_back(static_cast<int>(c));
    }
  }

  // Phase A: lay down ticks. Channel, renegotiation and *times* of
  // population actions are resolved here, each generator on its own forked
  // stream; node picks wait for the sweep.
  std::vector<Tick> ticks;
  std::uint64_t order = 0;
  const auto push = [&](double time, Tick::Kind kind, int index) -> Tick& {
    Tick tick;
    tick.time = time;
    tick.order = order++;
    tick.kind = kind;
    tick.index = index;
    ticks.push_back(tick);
    return ticks.back();
  };
  const auto push_event = [&](double time, const Event& event) {
    push(time, Tick::Kind::kEvent, -1).event = event;
  };

  int next_channel = 0;
  for (const ChannelSpec& spec : channels_) {
    const int id = next_channel++;  // ids are stable even for clipped specs
    if (spec.open_time > horizon_) continue;
    Event open;
    open.type = EventType::kChannelOpen;
    open.channel = id;
    open.weight = spec.weight;
    open.fraction = spec.fraction;
    push_event(spec.open_time, open);
    if (spec.close_time >= 0.0 && spec.close_time <= horizon_) {
      Event close;
      close.type = EventType::kChannelClose;
      close.channel = id;
      push_event(spec.close_time, close);
    }
  }
  // Fork salts: generator kind in the high bits, spec index in the low
  // bits, so streams never collide across generator families.
  const auto fork_salt = [](std::uint64_t kind, std::size_t index) {
    return (kind << 32) + static_cast<std::uint64_t>(index);
  };
  for (std::size_t p = 0; p < poisson_.size(); ++p) {
    const PoissonChannelsSpec& spec = poisson_[p];
    if (spec.rate <= 0.0) continue;
    util::Xoshiro256 rng = root.fork(fork_salt(2, p));
    for (double t = exponential(spec.rate, rng); t <= horizon_;
         t += exponential(spec.rate, rng)) {
      Event open;
      open.type = EventType::kChannelOpen;
      open.channel = next_channel++;
      open.weight = spec.weight;
      open.fraction = spec.fraction;
      push_event(t, open);
      const double close_at = t + exponential(1.0 / spec.mean_hold, rng);
      if (close_at <= horizon_) {
        Event close;
        close.type = EventType::kChannelClose;
        close.channel = open.channel;
        push_event(close_at, close);
      }
    }
  }
  for (std::size_t c = 0; c < crowds_.size(); ++c) {
    const FlashCrowdSpec& spec = crowds_[c];
    if (spec.joins == 0 || spec.time > horizon_) continue;
    push(spec.time, Tick::Kind::kCrowdJoin, static_cast<int>(c));
    const double leave_at = spec.time + spec.leave_delay;
    if (spec.leave_fraction > 0.0 && leave_at <= horizon_) {
      push(leave_at, Tick::Kind::kCrowdLeave, static_cast<int>(c));
    }
  }
  for (std::size_t d = 0; d < diurnal_.size(); ++d) {
    const DiurnalChurnSpec& spec = diurnal_[d];
    const double base = spec.mean_events_per_period / spec.period;
    if (base <= 0.0) continue;
    util::Xoshiro256 rng = root.fork(fork_salt(3, d));
    const double peak = base * (1.0 + spec.amplitude);
    // Thinning: candidate times at the peak rate, accepted with probability
    // rate(t) / peak.
    for (double t = exponential(peak, rng); t <= horizon_;
         t += exponential(peak, rng)) {
      const double rate =
          base * (1.0 + spec.amplitude *
                            std::sin(2.0 * M_PI * t / spec.period));
      if (rng.uniform() * peak < rate) {
        push(t, Tick::Kind::kDiurnal, static_cast<int>(d));
      }
    }
  }
  for (std::size_t f = 0; f < failures_.size(); ++f) {
    if (failures_[f].time <= horizon_) {
      push(failures_[f].time, Tick::Kind::kFailure, static_cast<int>(f));
    }
  }
  for (std::size_t b = 0; b < brownouts_.size(); ++b) {
    const BrownoutSpec& spec = brownouts_[b];
    if (spec.time > horizon_) continue;
    push(spec.time, Tick::Kind::kBrownoutStart, static_cast<int>(b));
    if (spec.duration >= 0.0 && spec.time + spec.duration <= horizon_) {
      push(spec.time + spec.duration, Tick::Kind::kBrownoutEnd,
           static_cast<int>(b));
    }
  }
  for (std::size_t d = 0; d < link_degrades_.size(); ++d) {
    const LinkDegradeSpec& spec = link_degrades_[d];
    if (spec.time > horizon_) continue;
    push(spec.time, Tick::Kind::kLinkStart, static_cast<int>(d));
    if (spec.duration >= 0.0 && spec.time + spec.duration <= horizon_) {
      push(spec.time + spec.duration, Tick::Kind::kLinkEnd,
           static_cast<int>(d));
    }
  }
  for (const Renegotiation& renegotiation : renegotiations_) {
    Event event;
    event.type = EventType::kRenegotiate;
    event.utilization = renegotiation.utilization;
    for (double t = renegotiation.interval; t <= horizon_;
         t += renegotiation.interval) {
      push_event(t, event);
    }
  }

  std::sort(ticks.begin(), ticks.end(), [](const Tick& a, const Tick& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.order < b.order;
  });

  // Phase B: the sweep. Node ids are assigned sequentially exactly as the
  // Runtime will assign them; the alive set mirrors the Runtime's so leave
  // picks always name live peers.
  util::Xoshiro256 sweep = root.fork(4);
  std::vector<int> alive;
  std::vector<char> is_alive(1, 0);  // id-indexed; source id 0 never alive here
  // Per-id adaptive-layer state: the initial-population class ("region",
  // -1 for later joiners) and the base WAN profile restores fall back to.
  std::vector<int> class_of(1, -1);
  std::vector<std::pair<bool, dataplane::LinkProfile>> base_profile(
      1, {false, dataplane::LinkProfile{}});
  int next_id = 1;
  const auto add_peer = [&](int cls, bool wan,
                            const dataplane::LinkProfile& profile) {
    const int id = next_id++;
    alive.push_back(id);
    is_alive.push_back(1);
    class_of.push_back(cls);
    base_profile.emplace_back(wan, profile);
    return id;
  };
  const auto remove_peer = [&](int id) {
    const auto it = std::find(alive.begin(), alive.end(), id);
    *it = alive.back();
    alive.pop_back();
    is_alive[static_cast<std::size_t>(id)] = 0;
  };
  for (std::size_t k = 0; k < script.initial_peers.size(); ++k) {
    const NodeSpec& peer = script.initial_peers[k];
    add_peer(initial_class[k], peer.wan, peer.profile);
  }
  /// Alive peers a degradation may pick from (one class or everyone).
  const auto eligible = [&](int cls) {
    std::vector<int> out;
    for (const int id : alive) {
      if (cls < 0 || class_of[static_cast<std::size_t>(id)] == cls) {
        out.push_back(id);
      }
    }
    return out;
  };

  std::vector<std::vector<int>> crowd_ids(crowds_.size());
  std::vector<std::vector<int>> brownout_ids(brownouts_.size());
  std::vector<std::vector<int>> link_ids(link_degrades_.size());
  for (const Tick& tick : ticks) {
    switch (tick.kind) {
      case Tick::Kind::kEvent: {
        Event event = tick.event;
        event.time = tick.time;
        script.events.push_back(event);
        break;
      }
      case Tick::Kind::kCrowdJoin: {
        const FlashCrowdSpec& spec = crowds_[static_cast<std::size_t>(tick.index)];
        Event event;
        event.type = EventType::kNodeJoin;
        event.time = tick.time;
        for (int j = 0; j < spec.joins; ++j) {
          const NodeSpec node = draw_node(spec.node_class, sweep);
          event.joins.push_back(node);
          crowd_ids[static_cast<std::size_t>(tick.index)].push_back(
              add_peer(-1, node.wan, node.profile));
        }
        script.events.push_back(std::move(event));
        break;
      }
      case Tick::Kind::kCrowdLeave: {
        const FlashCrowdSpec& spec = crowds_[static_cast<std::size_t>(tick.index)];
        std::vector<int> candidates;
        for (const int id : crowd_ids[static_cast<std::size_t>(tick.index)]) {
          if (is_alive[static_cast<std::size_t>(id)]) candidates.push_back(id);
        }
        const auto want = static_cast<std::size_t>(
            spec.leave_fraction * static_cast<double>(spec.joins));
        const std::vector<int> picks = sim::sample_departures(
            static_cast<int>(candidates.size()),
            std::min(want, candidates.size()), sweep);
        if (picks.empty()) break;
        Event event;
        event.type = EventType::kNodeLeave;
        event.time = tick.time;
        for (const int pick : picks) {
          const int id = candidates[static_cast<std::size_t>(pick - 1)];
          event.leaves.push_back(id);
          remove_peer(id);
        }
        script.events.push_back(std::move(event));
        break;
      }
      case Tick::Kind::kDiurnal: {
        const DiurnalChurnSpec& spec = diurnal_[static_cast<std::size_t>(tick.index)];
        Event event;
        event.time = tick.time;
        if (sweep.uniform() < spec.rejoin_probability) {
          event.type = EventType::kNodeJoin;
          const NodeSpec node = draw_node(spec.node_class, sweep);
          event.joins.push_back(node);
          add_peer(-1, node.wan, node.profile);
        } else {
          if (alive.empty()) break;
          event.type = EventType::kNodeLeave;
          const int id = alive[sweep.below(alive.size())];
          event.leaves.push_back(id);
          remove_peer(id);
        }
        script.events.push_back(std::move(event));
        break;
      }
      case Tick::Kind::kFailure: {
        const CorrelatedFailureSpec& spec =
            failures_[static_cast<std::size_t>(tick.index)];
        const auto count = static_cast<std::size_t>(
            spec.fraction * static_cast<double>(alive.size()));
        // Picks index the alive set frozen at this instant.
        const std::vector<int> frozen = alive;
        const std::vector<int> picks = sim::sample_departures(
            static_cast<int>(frozen.size()), count, sweep);
        if (picks.empty()) break;
        Event event;
        event.type = EventType::kNodeLeave;
        event.time = tick.time;
        for (const int pick : picks) {
          const int id = frozen[static_cast<std::size_t>(pick - 1)];
          event.leaves.push_back(id);
          remove_peer(id);
        }
        script.events.push_back(std::move(event));
        break;
      }
      case Tick::Kind::kBrownoutStart: {
        const BrownoutSpec& spec =
            brownouts_[static_cast<std::size_t>(tick.index)];
        const std::vector<int> candidates = eligible(spec.population_class);
        const auto want = static_cast<std::size_t>(
            spec.fraction * static_cast<double>(candidates.size()));
        const std::vector<int> picks = sim::sample_departures(
            static_cast<int>(candidates.size()),
            std::min(want, candidates.size()), sweep);
        if (picks.empty()) break;
        Event event;
        event.type = EventType::kDegrade;
        event.time = tick.time;
        for (const int pick : picks) {
          const int id = candidates[static_cast<std::size_t>(pick - 1)];
          Degradation degrade;
          degrade.node = id;
          degrade.set_factor = true;
          degrade.capacity_factor = spec.capacity_factor;
          event.degrades.push_back(degrade);
          brownout_ids[static_cast<std::size_t>(tick.index)].push_back(id);
        }
        script.events.push_back(std::move(event));
        break;
      }
      case Tick::Kind::kBrownoutEnd: {
        Event event;
        event.type = EventType::kDegrade;
        event.time = tick.time;
        for (const int id : brownout_ids[static_cast<std::size_t>(tick.index)]) {
          if (!is_alive[static_cast<std::size_t>(id)]) continue;
          Degradation degrade;
          degrade.node = id;
          degrade.set_factor = true;
          degrade.capacity_factor = 1.0;
          event.degrades.push_back(degrade);
        }
        if (!event.degrades.empty()) script.events.push_back(std::move(event));
        break;
      }
      case Tick::Kind::kLinkStart: {
        const LinkDegradeSpec& spec =
            link_degrades_[static_cast<std::size_t>(tick.index)];
        const std::vector<int> candidates = eligible(spec.population_class);
        const auto want = static_cast<std::size_t>(
            spec.fraction * static_cast<double>(candidates.size()));
        const std::vector<int> picks = sim::sample_departures(
            static_cast<int>(candidates.size()),
            std::min(want, candidates.size()), sweep);
        if (picks.empty()) break;
        Event event;
        event.type = EventType::kDegrade;
        event.time = tick.time;
        for (const int pick : picks) {
          const int id = candidates[static_cast<std::size_t>(pick - 1)];
          Degradation degrade;
          degrade.node = id;
          degrade.set_profile = true;
          degrade.profile = spec.profile;
          event.degrades.push_back(degrade);
          link_ids[static_cast<std::size_t>(tick.index)].push_back(id);
        }
        script.events.push_back(std::move(event));
        break;
      }
      case Tick::Kind::kLinkEnd: {
        Event event;
        event.type = EventType::kDegrade;
        event.time = tick.time;
        for (const int id : link_ids[static_cast<std::size_t>(tick.index)]) {
          if (!is_alive[static_cast<std::size_t>(id)]) continue;
          Degradation degrade;
          degrade.node = id;
          const auto& base = base_profile[static_cast<std::size_t>(id)];
          if (base.first) {
            degrade.set_profile = true;
            degrade.profile = base.second;
          } else {
            degrade.clear_profile = true;
          }
          event.degrades.push_back(degrade);
        }
        if (!event.degrades.empty()) script.events.push_back(std::move(event));
        break;
      }
    }
  }

  for (std::size_t i = 0; i < script.events.size(); ++i) {
    script.events[i].sequence = i;
  }
  return script;
}

}  // namespace bmp::runtime
