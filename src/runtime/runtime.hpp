// The multi-channel broadcast runtime: an event-driven service loop that
// hosts many concurrent broadcast channels on one shared node population.
//
// Each channel is an engine::Session planned on a *scaled* platform: the
// CapacityBroker grants the channel a fraction g of every node's bounded
// multi-port upload budget, and the session plans against {g * b_i}. All
// sessions share one engine::Planner (sharded plan cache + thread pool), so
// identical survivor platforms across channels dedupe.
//
// The loop consumes a deterministic timestamped Event stream (see
// event.hpp, produced by runtime::Scenario):
//   kChannelOpen   broker admission -> plan -> channel goes live
//   kChannelClose  teardown, fraction reclaimed
//   kNodeLeave     every hosting channel absorbs the departure through
//                  Session::on_departure (incremental repair, full re-plan
//                  fallback)
//   kNodeJoin      population grows; per JoinPolicy, live channels re-plan
//                  (through the shared cache) to recruit the new uploaders
//   kRenegotiate   broker rebalances grants; affected sessions rescale
//                  exactly (no re-plan)
// Determinism contract: node ids are assigned sequentially in event order,
// channel maps are ordered, and nothing depends on wall-clock or thread
// timing, so identical (population, event stream) pairs produce identical
// metrics snapshots (timing.* excluded) and churn logs.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bmp/engine/planner.hpp"
#include "bmp/engine/session.hpp"
#include "bmp/runtime/capacity_broker.hpp"
#include "bmp/runtime/event.hpp"
#include "bmp/runtime/metrics.hpp"

namespace bmp::runtime {

/// What live channels do when peers join the population.
enum class JoinPolicy {
  kIgnore,  ///< joiners only serve channels opened later
  kReplan,  ///< re-plan every live channel on the grown platform (cached)
};

struct RuntimeConfig {
  engine::PlannerConfig planner;  ///< shared cache / thread pool knobs
  engine::SessionConfig session;  ///< repair-vs-replan policy per channel
  double broker_headroom = 0.0;   ///< budget fraction withheld from channels
  JoinPolicy join_policy = JoinPolicy::kReplan;
  bool collect_timing = true;     ///< record timing.* event-loop latency
};

/// One line of the runtime's churn audit trail: how a channel fared at one
/// population event. `design_rate` is the channel's *post-event* design
/// rate on its broker-granted capacity — the reference the acceptance bar
/// (achieved >= 0.85 x design) is measured against.
struct ChurnReport {
  double time = 0.0;
  int channel = -1;
  EventType type = EventType::kNodeLeave;  ///< kNodeLeave or kNodeJoin
  int departed = 0;
  bool full_replan = false;
  double design_rate = 0.0;
  double achieved_rate = 0.0;
};

class Runtime {
 public:
  /// `initial_peers[k]` becomes runtime node id k + 1; id 0 is the source.
  /// Nodes joining later get the next ids in event order.
  Runtime(RuntimeConfig config, double source_bandwidth,
          const std::vector<NodeSpec>& initial_peers);

  /// Replays a time-sorted stream (throws on out-of-order events).
  void run(const std::vector<Event>& events);
  /// Processes one event; `event.time` must not precede the loop clock.
  void step(const Event& event);

  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] int alive_peers() const { return alive_peers_; }
  [[nodiscard]] std::size_t open_channels() const { return channels_.size(); }
  [[nodiscard]] const CapacityBroker& broker() const { return broker_; }
  [[nodiscard]] const engine::Planner& planner() const { return planner_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] const std::vector<ChurnReport>& churn_log() const {
    return churn_log_;
  }
  /// The live session of `channel`, nullptr if not open.
  [[nodiscard]] const engine::Session* session(int channel) const;

  /// Audits the shared-capacity invariant through Session::capacities():
  /// every node's summed per-channel allocation must stay within its
  /// multi-port budget b_i. Returns human-readable violations (empty = ok).
  [[nodiscard]] std::vector<std::string> validate(double tol = 1e-7) const;

 private:
  struct Node {
    double bandwidth = 0.0;
    bool guarded = false;
    bool alive = true;
  };
  struct Channel {
    Grant grant;
    std::unique_ptr<engine::Session> session;
    /// Session slot (sorted instance id) -> runtime node id; slot 0 = source.
    std::vector<int> node_of_slot;
  };

  void on_channel_open(const Event& event);
  void on_channel_close(const Event& event);
  void on_node_join(const Event& event);
  void on_node_leave(const Event& event);
  void on_renegotiate(const Event& event);

  /// (Re)plans `channel` on the current alive population scaled by its
  /// granted fraction, and rebuilds the slot -> node mapping.
  void build_session(int id, Channel& channel);
  void set_channel_gauges(int id, const Channel& channel);
  [[nodiscard]] std::string channel_metric(int id, const char* what) const;

  RuntimeConfig config_;
  engine::Planner planner_;
  CapacityBroker broker_;
  MetricsRegistry metrics_;
  std::vector<Node> nodes_;  // index = runtime node id, 0 = source
  int alive_peers_ = 0;
  std::map<int, Channel> channels_;  // ordered: deterministic event handling
  std::vector<ChurnReport> churn_log_;
  double now_ = 0.0;
};

}  // namespace bmp::runtime
