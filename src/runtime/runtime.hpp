// The multi-channel broadcast runtime: an event-driven service loop that
// hosts many concurrent broadcast channels on one shared node population.
//
// Each channel is an engine::Session planned on a *scaled* platform: the
// CapacityBroker grants the channel a fraction g of every node's bounded
// multi-port upload budget, and the session plans against {g * b_i}. All
// sessions share one engine::Planner (sharded plan cache + thread pool), so
// identical survivor platforms across channels dedupe.
//
// The loop consumes a deterministic timestamped Event stream (see
// event.hpp, produced by runtime::Scenario):
//   kChannelOpen   broker admission -> plan -> channel goes live
//   kChannelClose  teardown, fraction reclaimed
//   kNodeLeave     every hosting channel absorbs the departure through
//                  Session::on_departure (incremental repair, full re-plan
//                  fallback)
//   kNodeJoin      population grows; per JoinPolicy, live channels re-plan
//                  (through the shared cache) to recruit the new uploaders
//   kRenegotiate   broker rebalances grants; affected sessions rescale
//                  exactly (no re-plan)
// Determinism contract: node ids are assigned sequentially in event order,
// channel maps are ordered, and nothing depends on wall-clock or thread
// timing, so identical (population, event stream) pairs produce identical
// metrics snapshots (timing.* excluded) and churn logs.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bmp/control/controller.hpp"
#include "bmp/dataplane/execution.hpp"
#include "bmp/engine/planner.hpp"
#include "bmp/engine/session.hpp"
#include "bmp/obs/rollup.hpp"
#include "bmp/obs/slo.hpp"
#include "bmp/runtime/capacity_broker.hpp"
#include "bmp/runtime/event.hpp"
#include "bmp/runtime/metrics.hpp"

namespace bmp::obs {
class Profiler;
class TraceSink;
class FlightRecorder;
class LineageSink;
}  // namespace bmp::obs

namespace bmp::runtime {

/// What live channels do when peers join the population.
enum class JoinPolicy {
  kIgnore,  ///< joiners only serve channels opened later
  kReplan,  ///< re-plan every live channel on the grown platform (cached)
};

/// Opt-in chunk-level execution: every channel drives a
/// dataplane::Execution on the scenario's clock — the source streams
/// chunks at the channel's verified rate, churn live-patches the running
/// execution (departed nodes' in-flight chunks dropped, repaired edges
/// spliced in, renegotiated rates applied) without restarting the stream,
/// and dataplane.* metrics report what the stream *actually achieved*
/// against what the planner promised.
struct DataPlaneConfig {
  bool execute = false;
  /// Per-stream engine knobs (chunk_size, window, latency, loss, warmup,
  /// ...), passed through to every channel's Execution. The runtime owns
  /// the stream lifecycle, so four fields are overridden per channel:
  /// total_chunks (0: live until close/drain), emission_rate (paced at the
  /// session's verified rate), start_time (channel open), and seed (forked
  /// per channel from this seed). Size chunk_size so a channel emits
  /// hundreds — not millions — of chunks over the scenario horizon.
  /// collect_latencies defaults on here (unlike standalone Executions):
  /// the runtime drains latencies into dataplane.chunk_latency per event,
  /// so the pending buffer stays bounded.
  dataplane::ExecutionConfig execution = [] {
    dataplane::ExecutionConfig config;
    config.collect_latencies = true;
    // Runtime streams are hardened by default: receivers checksum payloads
    // and re-request corrupted chunks (standalone Executions default to the
    // frozen comparison mode instead — see ExecutionConfig).
    config.verify_payloads = true;
    return config;
  }();
};

/// Tolerance policy for injected faults (kFault events, src/fault). All
/// reactions are deterministic functions of the scenario clock and the
/// dataplane's counters, so chaos runs replay bit-identically.
struct FaultToleranceConfig {
  /// Crash detection: a crashed node sends no leave event, so the runtime
  /// watches each stream's counters on the control grid — a peer whose
  /// delivered count and adjacent pipe activity (attempts + sent) all stand
  /// still for `crash_silence_windows` consecutive windows is declared dead
  /// and a churn repair is synthesized across *every* hosting channel at
  /// once. Requires execution + control mode (the telemetry source); crashes
  /// degrade to immediate synthesized departures without it.
  bool detect_crashes = true;
  int crash_silence_windows = 3;
  /// Planner-outage fallback: channels keep serving their last verified
  /// plan (bounded staleness — rebuilt when the outage ends), and channel
  /// opens that failed against a down planner are queued and retried with
  /// exponential backoff instead of being dropped.
  bool planner_fallback = true;
  double planner_retry_initial = 0.5;  ///< first retry delay (seconds)
  double planner_retry_max = 4.0;      ///< backoff ceiling (seconds)
};

/// Opt-in adaptive control plane (requires execution mode): one
/// control::Controller per channel samples its stream's telemetry on the
/// scenario clock, detects stragglers and degraded edges, and closes the
/// loop — demotions / reroutes / full re-plans flow through
/// engine::Session::adapt (every adapted scheme flow-verified) and are
/// live-patched into the running execution. Deterministic: control.*
/// metrics and the control log replay byte-identically.
struct ControlConfig {
  bool enabled = false;
  control::ControllerConfig controller;
  /// Per-channel SLO monitor on the control sample grid (requires
  /// `enabled`): worst-node windowed sustained ratio, chunk-latency p99 and
  /// time-to-recover SLIs feed a multi-window burn-rate ok/warn/page state
  /// machine (obs::SloMonitor). Alert sequences are byte-identical across
  /// runs and planner thread counts.
  bool slo_enabled = false;
  obs::SloConfig slo;
  /// Control ticks spanned by the windowed sustained SLI: the worst node's
  /// delivered delta over the emission promise across the last N ticks —
  /// windowed (not cumulative), so a healed partition recovers to ok.
  int slo_sustained_window = 4;
};

struct RuntimeConfig {
  engine::PlannerConfig planner;  ///< shared cache / thread pool knobs
  engine::SessionConfig session;  ///< repair-vs-replan policy per channel
  double broker_headroom = 0.0;   ///< budget fraction withheld from channels
  JoinPolicy join_policy = JoinPolicy::kReplan;
  bool collect_timing = true;     ///< record timing.* event-loop latency
  DataPlaneConfig dataplane;      ///< chunk-level execution mode
  ControlConfig control;          ///< telemetry-driven adaptation
  FaultToleranceConfig fault;     ///< reaction policy for injected faults
  /// Cross-layer tracing (null = off): the runtime threads this sink into
  /// its planner, every session/verifier, every execution and the control
  /// plane, and stamps it with the scenario clock — a whole run lands in
  /// one Perfetto-loadable timeline. Non-owning; must outlive the runtime.
  obs::TraceSink* trace = nullptr;
  /// Flight recorder (null = off): recent scenario/control/churn events per
  /// channel, auto-dumped when validate() or a stream's rate audit fails.
  obs::FlightRecorder* recorder = nullptr;
  /// Performance attribution (null = off): the runtime threads this
  /// profiler into its planner, every session verifier and every chunk
  /// stream, and records its own loop phases (runtime/step, session
  /// churn/adapt, broker rebalance, control decide). Counters are
  /// deterministic; wall time only when the profiler opted in. Non-owning;
  /// must outlive the runtime.
  obs::Profiler* profiler = nullptr;
  /// Chunk lineage (null = off): every execution records one hop per
  /// delivered chunk into this sink — the critical-path analyzer's input
  /// (obs::analyze_critical_path). Non-owning; must outlive the runtime.
  obs::LineageSink* lineage = nullptr;
  /// Sharded telemetry rollup (null = off): the runtime pre-registers its
  /// scale-facing series here at construction — chunk-latency /
  /// sustained-ratio / SLO sketches plus bounded top-K heavy-hitter tables
  /// of the worst nodes and edges by retransmit, stall and demotion weight
  /// — and records through interned O(1) handles, replacing any
  /// record-everything-per-node series. One registry per shard (it is
  /// single-threaded, like the runtime); shard snapshots roll up to a
  /// byte-identical global obs::RollupSnapshot regardless of merge order
  /// or planner thread count. Non-owning; must outlive the runtime.
  obs::ShardRegistry* telemetry = nullptr;
  /// Disambiguates node/edge heavy-hitter keys across shards (each shard
  /// numbers its nodes from 0): keys render as
  /// `node:<prefix><id>` / `edge:<prefix><from>-><to>`.
  std::string telemetry_node_prefix;
};

/// One line of the runtime's churn audit trail: how a channel fared at one
/// population event. `design_rate` is the channel's *post-event* design
/// rate on its broker-granted capacity — the reference the acceptance bar
/// (achieved >= 0.85 x design) is measured against.
struct ChurnReport {
  double time = 0.0;
  int channel = -1;
  EventType type = EventType::kNodeLeave;  ///< kNodeLeave or kNodeJoin
  int departed = 0;
  bool full_replan = false;
  double design_rate = 0.0;
  double achieved_rate = 0.0;
};

/// What one channel's chunk stream actually delivered, produced when the
/// channel closes (or at drain()). The acceptance bar of the execution
/// mode: `sustained_ratio` — the worst node's delivered chunks against the
/// time-integral of the channel's design rate since that node joined —
/// must stay >= 0.85 through churn, with live patches only (no restart).
struct StreamReport {
  int channel = -1;
  double open_time = 0.0;
  double end_time = 0.0;
  int emitted = 0;
  std::uint64_t delivered_chunks = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t hol_stalls = 0;
  std::uint64_t duplicates = 0;
  /// Chunks the design rate promised over the channel's life (integral of
  /// the post-event design rate / chunk_size).
  double expected_chunks = 0.0;
  double sustained_ratio = 1.0;
  /// Min steady-state rate over surviving nodes (dataplane measurement).
  double achieved_rate = 0.0;
  /// Highest verified (flow) throughput the channel was ever planned at;
  /// the data plane can never beat the flow bound: achieved <= verified.
  double verified_rate = 0.0;
  bool rate_within_verified = true;
};

/// One line of the adaptation audit trail: what a channel's controller did
/// at one sampling boundary (only boundaries with actions are logged).
struct ControlReport {
  double time = 0.0;
  int channel = -1;
  int demotions = 0;
  int restores = 0;
  int reroutes = 0;
  int stragglers = 0;      ///< straggler count at decision time
  int degraded_edges = 0;
  double drift = 0.0;      ///< L1 capacity drift of the directive
  bool replan = false;     ///< controller escalated past the drift bound
  bool full_replan = false;///< session actually re-planned (incl. fallback)
  double rate_before = 0.0;
  double rate_after = 0.0; ///< flow-verified rate of the adapted overlay
  /// Causal audit: one record per demotion/restore/clamp/replan in the
  /// directive — why the controller acted (control::Evidence).
  std::vector<control::Evidence> evidence;
};

class Runtime {
 public:
  /// `initial_peers[k]` becomes runtime node id k + 1; id 0 is the source.
  /// Nodes joining later get the next ids in event order.
  Runtime(RuntimeConfig config, double source_bandwidth,
          const std::vector<NodeSpec>& initial_peers);

  /// Replays a time-sorted stream (throws on out-of-order events).
  void run(const std::vector<Event>& events);
  /// Processes one event; `event.time` must not precede the loop clock.
  void step(const Event& event);

  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] int alive_peers() const { return alive_peers_; }
  [[nodiscard]] std::size_t open_channels() const { return channels_.size(); }
  [[nodiscard]] const CapacityBroker& broker() const { return broker_; }
  [[nodiscard]] const engine::Planner& planner() const { return planner_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] const std::vector<ChurnReport>& churn_log() const {
    return churn_log_;
  }
  /// The live session of `channel`, nullptr if not open.
  [[nodiscard]] const engine::Session* session(int channel) const;
  /// The live chunk execution of `channel`; nullptr unless execution mode
  /// is on and the channel is open (and not yet drained).
  [[nodiscard]] const dataplane::Execution* execution(int channel) const;
  /// The channel's controller (keyed by runtime node ids); nullptr unless
  /// the control plane is on and the channel is open.
  [[nodiscard]] const control::Controller* controller(int channel) const;
  /// The channel's SLO monitor; nullptr unless control.slo_enabled and the
  /// channel is open.
  [[nodiscard]] const obs::SloMonitor* slo_monitor(int channel) const;
  /// Stream outcomes of closed (or drained) channels, in close order.
  [[nodiscard]] const std::vector<StreamReport>& stream_log() const {
    return stream_log_;
  }
  /// Adaptation actions taken by per-channel controllers, in tick order.
  [[nodiscard]] const std::vector<ControlReport>& control_log() const {
    return control_log_;
  }
  /// Execution mode: advances every live chunk stream to time `t`
  /// (>= now()), lets their tails drain, and finalizes a StreamReport per
  /// still-open channel — the end-of-scenario bookend after run(). The
  /// channels stay open; their executions are released. No-op per channel
  /// when execution mode is off.
  std::vector<StreamReport> drain(double t);

  /// Audits the cross-layer invariants: every node's summed per-channel
  /// allocation (Session::capacities()) stays within its multi-port budget
  /// b_i, the broker's granted fractions fit its usable pool, each
  /// channel's slot map and execution node map agree, and every live
  /// execution passes its own no-orphan audit (dataplane::Execution::
  /// validate — windows, reservations and in-flight copies reconcile even
  /// mid-fault). Returns human-readable violations (empty = ok); failures
  /// auto-dump the flight recorder when one is configured.
  [[nodiscard]] std::vector<std::string> validate(double tol = 1e-7) const;

 private:
  struct Node {
    double bandwidth = 0.0;
    bool guarded = false;
    bool alive = true;
    // Effective-world state (kDegrade events): applied to every channel's
    // execution, invisible to the planner — the control plane's problem.
    double capacity_factor = 1.0;
    bool wan = false;  ///< `profile` overrides the execution-config default
    dataplane::LinkProfile profile;
    // ---- fault state (kFault events) ----
    /// Died by kCrash: already dead in every execution, but the *sessions*
    /// still plan around it until crash detection synthesizes the leave.
    bool crashed = false;
    double crash_time = 0.0;   ///< when the crash landed (detection latency)
    int partition_group = 0;   ///< != group ⇒ traffic between them is lost
    bool blackout = false;     ///< telemetry frozen: controller sees cached
    double corrupt_rate = 0.0; ///< egress payload-corruption probability
  };
  struct Channel {
    Grant grant;
    std::unique_ptr<engine::Session> session;
    /// Session slot (sorted instance id) -> runtime node id; slot 0 = source.
    std::vector<int> node_of_slot;
    // ---- execution mode ----
    std::unique_ptr<dataplane::Execution> execution;
    std::map<int, int> dp_of_node;  ///< runtime node id -> execution node id
    /// Per execution node: channel design integral at its join (so a late
    /// joiner is only expected chunks emitted after it arrived).
    std::map<int, double> expected_at_join;
    double open_time = 0.0;
    double design_integral = 0.0;  ///< integral of design rate / chunk_size
    double max_verified = 0.0;     ///< peak verified rate over the life
    // ---- control plane ----
    std::unique_ptr<control::Controller> controller;
    double control_expected = 0.0;   ///< emission integral since last tick
    double last_control_time = 0.0;  ///< previous sampling boundary
    // ---- SLO monitor ----
    std::unique_ptr<obs::SloMonitor> slo;
    /// Rolling per-tick snapshots for the windowed sustained SLI: the
    /// emission promise integral and each node's delivered bytes at the
    /// last `slo_sustained_window` boundaries.
    struct SloSnapshot {
      double expected = 0.0;
      /// (node id, delivered) rows in ascending id order — built from the
      /// already-sorted control samples, so the windowed comparison is a
      /// two-pointer walk with no per-tick tree allocations.
      std::vector<std::pair<int, double>> delivered;
    };
    std::deque<SloSnapshot> slo_history;
    double slo_expected_total = 0.0;
    // counter snapshots for delta export into the metrics registry
    std::uint64_t seen_delivered = 0;
    std::uint64_t seen_losses = 0;
    std::uint64_t seen_retransmits = 0;
    std::uint64_t seen_stalls = 0;
    std::uint64_t seen_duplicates = 0;
    // ---- fault tolerance ----
    /// Crash-silence tracking per runtime node id: the last observed
    /// activity counter (delivered + adjacent attempts + sent) and how many
    /// consecutive control windows it stood still.
    std::map<int, std::uint64_t> silence_activity;
    std::map<int, int> silent_windows;
    /// Last telemetry actually observed per node/edge — substituted for
    /// blacked-out nodes, so a blackout freezes what the controller sees
    /// (the stale-telemetry guard's input) instead of leaking fresh data.
    std::map<int, control::NodeSample> last_node_sample;
    std::map<std::pair<int, int>, control::EdgeSample> last_edge_sample;
    /// Heavy-hitter delta tracking (telemetry hook): last (lost,
    /// window_stalls) seen per edge, keyed by packed runtime ids
    /// (from << 32 | to). Hash map: looked up only, never iterated, so
    /// the unordered layout cannot leak into the deterministic output.
    std::unordered_map<std::uint64_t,
                       std::pair<std::uint64_t, std::uint64_t>>
        seen_edge_telemetry;
    /// >= 0: the session wanted a full re-plan but the planner was down; it
    /// kept serving the incremental repair since this instant. Rebuilt
    /// through the planner when the outage ends.
    double plan_stale_since = -1.0;
  };
  /// A channel open refused by a planner outage, queued for retry.
  struct PendingOpen {
    Event event;
    double next_retry = 0.0;
    double backoff = 0.0;
  };

  void on_channel_open(const Event& event);
  void on_channel_close(const Event& event);
  void on_node_join(const Event& event);
  void on_node_leave(const Event& event);
  void on_renegotiate(const Event& event);
  void on_degrade(const Event& event);
  void on_fault(const Event& event);

  /// The per-channel churn machinery of on_node_leave, callable on nodes
  /// already marked dead: every hosting channel absorbs the departure
  /// (repair / re-plan), slot maps remap, streams live-patch. `when` stamps
  /// the reports (event time, or the control boundary that detected a
  /// crash).
  void apply_departures(const std::set<int>& departed, double when);
  /// Declares nodes silent past the crash threshold dead and synthesizes
  /// their departure across all hosting channels at once.
  void detect_crashes(const std::set<int>& candidates, double t);
  /// Retries channel opens deferred by a planner outage whose backoff
  /// expired (`force` ignores the backoff — the outage just ended).
  void retry_pending_opens(double t, bool force);
  /// Re-plans channels serving a stale overlay once the planner is back.
  void rebuild_stale_channels();

  /// Execution mode: run every live stream up to `t` on the scenario clock
  /// and accumulate each channel's design-rate integral. With the control
  /// plane on, the advance stops at every sampling boundary on the global
  /// interval grid and ticks each channel's controller there.
  void advance_executions(double t);
  /// One contiguous segment of stream time (no control boundary inside).
  void advance_streams_to(double t);
  /// Samples every live channel's telemetry at boundary `t`, runs its
  /// controller, and applies any resulting directive.
  void control_tick(double t);
  void apply_directive(int id, Channel& channel,
                       const control::Directive& directive, double t);
  /// Reconciles a channel's execution with its (re)planned session: nodes
  /// added/removed, pipes spliced to the current overlay, emission paced at
  /// the verified current rate. Called after every session change.
  void sync_execution(int id, Channel& channel);
  /// Telemetry hook: streams per-edge (lost, window_stall) deltas into the
  /// shard registry's heavy-hitter tables. Called at every control tick
  /// and at stream finalize (so control-less runs still attribute).
  void feed_edge_telemetry(Channel& channel,
                           const dataplane::Execution& exec);
  /// Exports the execution's counter deltas / latencies into dataplane.*.
  void export_dataplane_metrics(int id, Channel& channel);
  /// Lets the stream tail drain, reports, and releases the execution.
  StreamReport finalize_stream(int id, Channel& channel);

  /// (Re)plans `channel` on the current alive population scaled by its
  /// granted fraction, and rebuilds the slot -> node mapping.
  void build_session(int id, Channel& channel);
  void set_channel_gauges(int id, const Channel& channel);
  [[nodiscard]] std::string channel_metric(int id, const char* what) const;

  /// Interned hot-path metric cells (satellite of the telemetry-at-scale
  /// work): the per-event metrics the loop used to reach through
  /// string-keyed map lookups are resolved once — lazily, on first use, so
  /// snapshot contents match the old create-on-first-touch behavior — and
  /// bumped through stable pointers thereafter (MetricsRegistry handles).
  /// None of these series is ever erase()d.
  struct HotMetrics {
    std::uint64_t* events_total = nullptr;
    std::uint64_t* events_by_type[8] = {};
    std::uint64_t* broker_admitted = nullptr;
    std::uint64_t* broker_rejected = nullptr;
    std::uint64_t* broker_released = nullptr;
    double* broker_allocated = nullptr;
    double* channels_open = nullptr;
    double* population_alive = nullptr;
    WindowedHistogram* timing_event_loop = nullptr;
    std::uint64_t* dp_delivered = nullptr;
    std::uint64_t* dp_losses = nullptr;
    std::uint64_t* dp_retransmits = nullptr;
    std::uint64_t* dp_hol_stalls = nullptr;
    std::uint64_t* dp_duplicates = nullptr;
    WindowedHistogram* dp_chunk_latency = nullptr;
    std::uint64_t* control_samples = nullptr;
  };
  /// Shard-registry handles, registered at construction when
  /// config_.telemetry is set (all O(1) to record through).
  struct Telemetry {
    obs::ShardRegistry::CounterHandle delivered;
    obs::ShardRegistry::CounterHandle losses;
    obs::ShardRegistry::CounterHandle retransmits;
    obs::ShardRegistry::CounterHandle hol_stalls;
    obs::ShardRegistry::CounterHandle duplicates;
    obs::ShardRegistry::CounterHandle events;
    obs::ShardRegistry::GaugeHandle alive;
    obs::ShardRegistry::SketchHandle latency;
    obs::ShardRegistry::SketchHandle sustained;
    obs::ShardRegistry::SketchHandle slo_worst;
    obs::ShardRegistry::SketchHandle recovered;
    obs::ShardRegistry::TopKHandle node_retransmits;
    obs::ShardRegistry::TopKHandle node_stalls;
    obs::ShardRegistry::TopKHandle edge_retransmits;
    obs::ShardRegistry::TopKHandle node_demotions;
  };

  RuntimeConfig config_;
  /// Planner-failure injection target, wired into the planner's config
  /// (declared first: the planner copies the pointer at construction).
  /// kPlannerOutageStart/End events toggle `outage_->down`.
  engine::PlannerOutage planner_outage_;
  engine::PlannerOutage* outage_ = nullptr;
  engine::Planner planner_;
  CapacityBroker broker_;
  MetricsRegistry metrics_;
  HotMetrics hot_;
  Telemetry tel_;
  std::vector<Node> nodes_;  // index = runtime node id, 0 = source
  int alive_peers_ = 0;
  std::map<int, Channel> channels_;  // ordered: deterministic event handling
  std::vector<ChurnReport> churn_log_;
  std::vector<StreamReport> stream_log_;
  std::vector<ControlReport> control_log_;
  std::vector<PendingOpen> pending_opens_;
  double now_ = 0.0;
  double dp_clock_ = 0.0;  ///< time every live execution has reached
  /// Scratch buffers for the per-tick telemetry sweep
  /// (feed_edge_telemetry): reused so the steady state allocates nothing.
  std::vector<dataplane::EdgeStats> edge_stats_scratch_;
  std::vector<int> rid_of_dp_scratch_;
  /// Sampling boundaries processed so far: boundary k + 1 sits at
  /// (k + 1) * sample_interval on the scenario clock (an integer counter,
  /// so the grid never accumulates floating-point drift).
  std::int64_t control_ticks_done_ = 0;
};

}  // namespace bmp::runtime
