// MetricsRegistry — counters, gauges and windowed histograms for the
// runtime, with deterministic snapshot export. Metrics are created on
// first touch and held in name-ordered maps, so two runs that perform the
// same operations produce byte-identical snapshots — the property the
// runtime's replay-determinism tests assert on.
//
// Wall-clock observations (event-loop latency) are inherently
// nondeterministic; by convention they live under the `timing.` prefix and
// `MetricsSnapshot::to_string(false)` omits them, giving a deterministic
// view of an otherwise timed run.
//
// The registry is single-threaded by design: it belongs to the runtime's
// event loop. (Planner worker threads never touch it.)
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace bmp::runtime {

struct HistogramStats {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  /// Cumulative bucket counts over ALL observations (not just the window):
  /// buckets[i] = observations <= WindowedHistogram::kBucketBounds[i]. The
  /// implicit +Inf bucket is `count`. Empty when the histogram never saw an
  /// observation.
  std::vector<std::uint64_t> buckets;
};

/// Sliding-window histogram: cumulative count/sum/min/max over all
/// observations plus order statistics over the most recent `window` ones.
class WindowedHistogram {
 public:
  /// Fixed upper bounds of the cumulative export buckets (Prometheus-style
  /// le bounds; the +Inf bucket is implicit). Fixed — not adaptive — so two
  /// runs bucket identically and exports stay byte-comparable.
  static constexpr std::array<double, 14> kBucketBounds = {
      0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
      1.0,   2.5,  5.0,   10.0, 25.0, 50.0, 100.0};

  explicit WindowedHistogram(std::size_t window = 1024);

  void observe(double value);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  /// Quantile q in [0, 1] over the retained window (nearest-rank).
  [[nodiscard]] double quantile(double q) const;
  /// All exported statistics with one sort of the window (what
  /// MetricsRegistry::snapshot uses instead of three quantile() calls).
  [[nodiscard]] HistogramStats stats() const;
  [[nodiscard]] std::size_t window_size() const { return recent_.size(); }

 private:
  std::size_t window_;
  std::vector<double> recent_;  // ring buffer
  std::size_t next_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  /// Per-bin (non-cumulative) counts over all observations; values above
  /// the last bound live only in count_ (the +Inf bucket).
  std::array<std::uint64_t, kBucketBounds.size()> bins_{};
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;

  /// Text export, one metric per line, name-sorted. With
  /// `include_timing == false`, metrics under `timing.` are omitted.
  [[nodiscard]] std::string to_string(bool include_timing = true) const;
};

class MetricsRegistry {
 public:
  /// Nondeterministic (wall-clock) metrics live under this prefix.
  static constexpr std::string_view kTimingPrefix = "timing.";

  /// The one place the `timing.*` exclusion convention is spelled out:
  /// snapshot export, the Prometheus/JSON exporters and the tests all call
  /// this instead of string-matching the prefix themselves.
  [[nodiscard]] static constexpr bool is_timing(std::string_view name) {
    return name.substr(0, kTimingPrefix.size()) == kTimingPrefix;
  }

  /// Interned hot-path handles: resolve a metric's storage cell once (at
  /// setup) and bump it through the pointer thereafter — no per-sample
  /// string compare / map walk. The registries are node-based maps, so the
  /// pointers are stable across later registrations; the one hazard is
  /// erase(): never intern a metric that can be erased (the per-channel
  /// `channel.N.*` gauges), only fleet-wide series. Snapshots see handle
  /// writes and named writes identically.
  [[nodiscard]] std::uint64_t* counter_handle(std::string_view name);
  [[nodiscard]] double* gauge_handle(std::string_view name);
  [[nodiscard]] WindowedHistogram* histogram_handle(std::string_view name);

  void inc(std::string_view name, std::uint64_t delta = 1);
  /// Mirror an externally tracked monotonic count (e.g. broker totals).
  void set_counter(std::string_view name, std::uint64_t value);
  void set(std::string_view name, double value);
  void observe(std::string_view name, double value);
  /// Drops a metric of any kind (per-entity gauges of a closed channel);
  /// no-op when absent.
  void erase(std::string_view name);

  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  [[nodiscard]] double gauge(std::string_view name) const;
  [[nodiscard]] const WindowedHistogram* histogram(std::string_view name) const;

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, WindowedHistogram, std::less<>> histograms_;
};

}  // namespace bmp::runtime
