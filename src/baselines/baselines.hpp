// Baseline overlay constructions the paper positions itself against
// (§II.B): a source-only star, a linear chain, k-ary trees, a simplified
// SplitStream (k interior-disjoint stripe trees, reference [7]) and an
// unstructured random mesh (gossip-style, reference [5]). All respect the
// firewall constraint (guarded nodes never feed guarded nodes) and the
// bounded multi-port bandwidth caps; bench_baselines compares their
// throughput and degrees against the paper's algorithms.
#pragma once

#include <string>

#include "bmp/core/instance.hpp"
#include "bmp/core/scheme.hpp"
#include "bmp/util/rng.hpp"

namespace bmp::baselines {

struct BaselineResult {
  std::string name;
  BroadcastScheme scheme;
  double throughput = 0.0;  ///< verified via min max-flow
};

/// Source feeds every node directly: T = b0 / (n+m), outdegree(0) = n+m.
BaselineResult star(const Instance& instance);

/// Pipeline through the open nodes (sorted by bandwidth), guarded nodes
/// hang off spine nodes (balanced greedily): each spine node forwards T to
/// its successor plus T per attached guarded node.
BaselineResult chain(const Instance& instance);

/// k-ary tree: open nodes (sorted) form the interior in BFS order, guarded
/// nodes fill the leaves. T = min over interior of b_i / #children_i.
BaselineResult kary_tree(const Instance& instance, int arity);

/// Best k-ary tree over arity in [1, 8].
BaselineResult best_kary_tree(const Instance& instance);

/// SplitStream-like striped multicast: `stripes` trees, each open node is
/// interior in exactly one stripe, every other node is a leaf; each stripe
/// carries T / stripes.
BaselineResult splitstream_like(const Instance& instance, int stripes,
                                util::Xoshiro256& rng);

/// Unstructured mesh: every non-source node picks `degree` random eligible
/// in-neighbors; every sender splits its bandwidth evenly over its
/// out-edges. Throughput measured by max-flow.
BaselineResult random_mesh(const Instance& instance, int degree,
                           util::Xoshiro256& rng);

}  // namespace bmp::baselines
