#include "bmp/baselines/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "bmp/flow/maxflow.hpp"

namespace bmp::baselines {

namespace {

BaselineResult finish(std::string name, const Instance& instance,
                      BroadcastScheme scheme) {
  BaselineResult result{std::move(name), std::move(scheme), 0.0};
  if (instance.size() > 1 && result.scheme.edge_count() > 0) {
    result.throughput = flow::scheme_throughput(result.scheme);
  }
  return result;
}

}  // namespace

BaselineResult star(const Instance& instance) {
  BroadcastScheme scheme(instance.size());
  const int receivers = instance.size() - 1;
  if (receivers > 0) {
    const double T = instance.b(0) / receivers;
    for (int i = 1; i < instance.size(); ++i) {
      if (T > 0.0) scheme.add(0, i, T);
    }
  }
  return finish("star", instance, std::move(scheme));
}

BaselineResult chain(const Instance& instance) {
  const int n = instance.n();
  const int m = instance.m();
  BroadcastScheme scheme(instance.size());
  if (n + m == 0) return finish("chain", instance, std::move(scheme));

  // Spine: source then open nodes (already sorted non-increasingly).
  std::vector<int> spine{0};
  for (int i = 1; i <= n; ++i) spine.push_back(i);

  // Attach guarded nodes greedily: each goes where the post-assignment
  // bottleneck b_i / load_i stays largest. load = forwarded spine copies
  // (1 for every spine node with a successor) + attached guardeds.
  std::vector<int> attached(spine.size(), 0);
  const auto load = [&](std::size_t s) {
    const int forwards = s + 1 < spine.size() ? 1 : 0;
    return forwards + attached[s];
  };
  std::vector<std::vector<int>> guarded_of(spine.size());
  for (int g = n + 1; g < instance.size(); ++g) {
    std::size_t best = 0;
    double best_metric = -1.0;
    for (std::size_t s = 0; s < spine.size(); ++s) {
      const double metric = instance.b(spine[s]) / (load(s) + 1);
      if (metric > best_metric) {
        best_metric = metric;
        best = s;
      }
    }
    ++attached[best];
    guarded_of[best].push_back(g);
  }

  // T = min over spine of b / load (nodes with load 0 are unconstrained).
  double T = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < spine.size(); ++s) {
    if (load(s) > 0) T = std::min(T, instance.b(spine[s]) / load(s));
  }
  if (!std::isfinite(T) || T <= 0.0) {
    return finish("chain", instance, std::move(scheme));
  }
  for (std::size_t s = 0; s < spine.size(); ++s) {
    if (s + 1 < spine.size()) scheme.add(spine[s], spine[s + 1], T);
    for (const int g : guarded_of[s]) scheme.add(spine[s], g, T);
  }
  return finish("chain", instance, std::move(scheme));
}

BaselineResult kary_tree(const Instance& instance, int arity) {
  if (arity < 1) throw std::invalid_argument("kary_tree: arity >= 1 required");
  BroadcastScheme scheme(instance.size());
  const int receivers = instance.size() - 1;
  if (receivers == 0) return finish("kary", instance, std::move(scheme));

  // BFS placement: interiors are source + opens (sorted); guardeds go last
  // (leaves). Each placed node becomes the child of the earliest interior
  // node with spare arity.
  std::vector<int> order;
  for (int i = 1; i <= instance.n(); ++i) order.push_back(i);
  for (int g = instance.n() + 1; g < instance.size(); ++g) order.push_back(g);

  std::vector<int> parent(static_cast<std::size_t>(instance.size()), -1);
  std::vector<int> children(static_cast<std::size_t>(instance.size()), 0);
  std::vector<int> frontier{0};  // nodes allowed to take children (open only)
  std::size_t cursor = 0;
  for (const int node : order) {
    while (cursor < frontier.size() &&
           children[static_cast<std::size_t>(frontier[cursor])] >= arity) {
      ++cursor;
    }
    if (cursor >= frontier.size()) {
      // Ran out of open interior capacity; remaining nodes are unreachable
      // under this arity.
      return finish("kary(" + std::to_string(arity) + ")", instance,
                    std::move(scheme));
    }
    const int p = frontier[cursor];
    parent[static_cast<std::size_t>(node)] = p;
    ++children[static_cast<std::size_t>(p)];
    if (!instance.is_guarded(node)) frontier.push_back(node);
  }

  double T = std::numeric_limits<double>::infinity();
  for (int i = 0; i < instance.size(); ++i) {
    if (children[static_cast<std::size_t>(i)] > 0) {
      T = std::min(T, instance.b(i) / children[static_cast<std::size_t>(i)]);
    }
  }
  if (std::isfinite(T) && T > 0.0) {
    for (int v = 1; v < instance.size(); ++v) {
      const int p = parent[static_cast<std::size_t>(v)];
      if (p >= 0) scheme.add(p, v, T);
    }
  }
  return finish("kary(" + std::to_string(arity) + ")", instance,
                std::move(scheme));
}

BaselineResult best_kary_tree(const Instance& instance) {
  BaselineResult best = kary_tree(instance, 1);
  for (int arity = 2; arity <= 8; ++arity) {
    BaselineResult candidate = kary_tree(instance, arity);
    if (candidate.throughput > best.throughput) best = std::move(candidate);
  }
  best.name = "best " + best.name;
  return best;
}

BaselineResult splitstream_like(const Instance& instance, int stripes,
                                util::Xoshiro256& rng) {
  if (stripes < 1) throw std::invalid_argument("splitstream_like: stripes >= 1");
  const int n = instance.n();
  BroadcastScheme scheme(instance.size());
  const int receivers = instance.size() - 1;
  if (receivers == 0 || n == 0) {
    // Without open nodes there is only the star.
    return star(instance);
  }

  // Assign each open node to exactly one stripe (shuffled round-robin):
  // SplitStream's interior-disjointness.
  std::vector<int> opens(static_cast<std::size_t>(n));
  std::iota(opens.begin(), opens.end(), 1);
  for (std::size_t i = opens.size(); i > 1; --i) {
    std::swap(opens[i - 1], opens[rng.below(i)]);
  }
  std::vector<std::vector<int>> interior(static_cast<std::size_t>(stripes));
  for (std::size_t k = 0; k < opens.size(); ++k) {
    interior[k % static_cast<std::size_t>(stripes)].push_back(opens[k]);
  }

  // children[i] = total children of node i across all stripes.
  std::vector<int> children(static_cast<std::size_t>(instance.size()), 0);
  std::vector<std::vector<std::pair<int, int>>> stripe_edges(
      static_cast<std::size_t>(stripes));
  for (int s = 0; s < stripes; ++s) {
    auto& edges = stripe_edges[static_cast<std::size_t>(s)];
    // Interior path: source -> i1 -> i2 -> ... (sorted by bandwidth so big
    // nodes sit near the root).
    auto path = interior[static_cast<std::size_t>(s)];
    std::sort(path.begin(), path.end(),
              [&](int a, int b) { return instance.b(a) > instance.b(b); });
    int prev = 0;
    for (const int node : path) {
      edges.emplace_back(prev, node);
      ++children[static_cast<std::size_t>(prev)];
      prev = node;
    }
    // Every node outside the stripe's interior is a leaf here, attached to
    // the interior node (or source) with the most bandwidth per child.
    std::vector<int> hosts{0};
    hosts.insert(hosts.end(), path.begin(), path.end());
    for (int v = 1; v < instance.size(); ++v) {
      if (!instance.is_guarded(v) &&
          std::find(path.begin(), path.end(), v) != path.end()) {
        continue;
      }
      // Attach to the host maximizing bandwidth per child.
      int best_host = hosts[0];
      double best_metric = -1.0;
      for (const int h : hosts) {
        const double metric =
            instance.b(h) / (children[static_cast<std::size_t>(h)] + 1);
        if (metric > best_metric) {
          best_metric = metric;
          best_host = h;
        }
      }
      edges.emplace_back(best_host, v);
      ++children[static_cast<std::size_t>(best_host)];
    }
  }

  double T = std::numeric_limits<double>::infinity();
  for (int i = 0; i < instance.size(); ++i) {
    if (children[static_cast<std::size_t>(i)] > 0) {
      T = std::min(T, static_cast<double>(stripes) * instance.b(i) /
                          children[static_cast<std::size_t>(i)]);
    }
  }
  if (std::isfinite(T) && T > 0.0) {
    const double per_stripe = T / stripes;
    for (const auto& edges : stripe_edges) {
      for (const auto& [from, to] : edges) scheme.add(from, to, per_stripe);
    }
  }
  return finish("splitstream(" + std::to_string(stripes) + ")", instance,
                std::move(scheme));
}

BaselineResult random_mesh(const Instance& instance, int degree,
                           util::Xoshiro256& rng) {
  if (degree < 1) throw std::invalid_argument("random_mesh: degree >= 1");
  BroadcastScheme scheme(instance.size());
  const int N = instance.size();
  // In-neighbor choices.
  std::vector<std::vector<int>> out(static_cast<std::size_t>(N));
  for (int v = 1; v < N; ++v) {
    std::vector<int> eligible;
    for (int u = 0; u < N; ++u) {
      if (u == v) continue;
      if (instance.is_guarded(u) && instance.is_guarded(v)) continue;
      eligible.push_back(u);
    }
    for (std::size_t i = eligible.size(); i > 1; --i) {
      std::swap(eligible[i - 1], eligible[rng.below(i)]);
    }
    const int take = std::min<int>(degree, static_cast<int>(eligible.size()));
    for (int k = 0; k < take; ++k) {
      out[static_cast<std::size_t>(eligible[static_cast<std::size_t>(k)])]
          .push_back(v);
    }
  }
  for (int u = 0; u < N; ++u) {
    const auto& targets = out[static_cast<std::size_t>(u)];
    if (targets.empty() || instance.b(u) <= 0.0) continue;
    const double share = instance.b(u) / static_cast<double>(targets.size());
    for (const int v : targets) scheme.add(u, v, share);
  }
  return finish("mesh(d=" + std::to_string(degree) + ")", instance,
                std::move(scheme));
}

}  // namespace bmp::baselines
