// Algorithm 2 "GreedyTest" tests (§IV.B): the Fig. 1 execution, exactness
// against the brute-force word enumeration (Lemma 4.5), monotonicity, and
// the dichotomic search for T*_ac.
#include <gtest/gtest.h>

#include <cmath>

#include "bmp/core/acyclic_search.hpp"
#include "bmp/core/bounds.hpp"
#include "bmp/core/exact.hpp"
#include "bmp/core/greedy_test.hpp"
#include "bmp/core/word_throughput.hpp"
#include "test_helpers.hpp"

namespace bmp {
namespace {

using util::Rational;

TEST(GreedyTest, Fig1ProducesPaperWordAtT4) {
  const RationalInstance inst = testing::fig1_rational();
  const auto word = greedy_test(inst, Rational(4));
  ASSERT_TRUE(word.has_value());
  // Table I / Fig. 5: σ = 031425, i.e. word GOGOG.
  EXPECT_EQ(to_string(*word), "GOGOG");
}

TEST(GreedyTest, Fig1FailsAbove4) {
  const RationalInstance inst = testing::fig1_rational();
  EXPECT_FALSE(greedy_test(inst, Rational(41, 10)).has_value());
  EXPECT_FALSE(greedy_test(inst, Rational(22, 5)).has_value());
}

TEST(GreedyTest, ReturnedWordIsValid) {
  util::Xoshiro256 rng(17);
  for (int rep = 0; rep < 200; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(6));
    const int m = static_cast<int>(rng.below(6));
    const auto pair = testing::random_int_instance(rng, n, m);
    // Probe a few integer and half-integer rates.
    for (std::int64_t num = 1; num <= 12; ++num) {
      const Rational T(num, 2);
      const auto word = greedy_test(pair.rat, T);
      if (word.has_value()) {
        EXPECT_TRUE(check_word(pair.rat, *word, T))
            << to_string(*word) << " at T=" << T;
      }
    }
  }
}

// Lemma 4.5: GreedyTest succeeds iff some word is valid. We compare against
// full enumeration on small instances, in exact arithmetic.
TEST(GreedyTest, ExactnessAgainstEnumeration) {
  util::Xoshiro256 rng(23);
  for (int rep = 0; rep < 120; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(4));
    const int m = static_cast<int>(rng.below(4));
    const auto pair = testing::random_int_instance(rng, n, m, 8);
    const ExactAcyclic exact = optimal_acyclic_exact(pair.rat);
    // Greedy must accept exactly at the optimum...
    EXPECT_TRUE(greedy_test(pair.rat, exact.throughput).has_value())
        << "n=" << n << " m=" << m << " T*=" << exact.throughput;
    // ...and reject slightly above it.
    const Rational above = exact.throughput * Rational(1000001, 1000000);
    EXPECT_FALSE(greedy_test(pair.rat, above).has_value())
        << "n=" << n << " m=" << m << " T*=" << exact.throughput;
  }
}

TEST(GreedyTest, MonotoneInT) {
  util::Xoshiro256 rng(29);
  for (int rep = 0; rep < 50; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(8));
    const int m = static_cast<int>(rng.below(8));
    const Instance inst = testing::random_instance(rng, n, m);
    bool was_feasible = true;
    for (double T = 0.05; T < 2.0 * cyclic_upper_bound(inst); T += 0.1) {
      const bool ok = greedy_test(inst, T).has_value();
      if (!was_feasible) {
        EXPECT_FALSE(ok) << "feasibility must be monotone, T=" << T;
      }
      was_feasible = ok;
    }
  }
}

TEST(DichotomicSearch, MatchesExactOptimumOnSmallInstances) {
  util::Xoshiro256 rng(31);
  for (int rep = 0; rep < 80; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(4));
    const int m = static_cast<int>(rng.below(4));
    const auto pair = testing::random_int_instance(rng, n, m, 10);
    const double exact = optimal_acyclic_exact(pair.rat).throughput.to_double();
    const double searched = optimal_acyclic_throughput(pair.dbl);
    EXPECT_NEAR(searched, exact, 1e-7 * std::max(1.0, exact))
        << "n=" << n << " m=" << m;
  }
}

TEST(DichotomicSearch, OpenOnlyMatchesClosedForm) {
  util::Xoshiro256 rng(37);
  for (int rep = 0; rep < 60; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(12));
    const Instance inst = testing::random_instance(rng, n, 0);
    EXPECT_NEAR(optimal_acyclic_throughput(inst), acyclic_open_optimal(inst),
                1e-8);
  }
}

TEST(DichotomicSearch, NoReceivers) {
  const Instance inst(2.5, {}, {});
  EXPECT_DOUBLE_EQ(optimal_acyclic_throughput(inst), 2.5);
}

TEST(DichotomicSearch, GuardedOnlyIsSourceSplit) {
  // Only the source can feed guarded nodes: T*_ac = b0/m.
  const Instance inst(6.0, {}, {2.0, 2.0, 2.0});
  EXPECT_NEAR(optimal_acyclic_throughput(inst), 2.0, 1e-9);
}

TEST(DichotomicSearch, AcyclicNeverExceedsCyclicBound) {
  util::Xoshiro256 rng(41);
  for (int rep = 0; rep < 100; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(10));
    const int m = static_cast<int>(rng.below(10));
    const Instance inst = testing::random_instance(rng, n, m);
    EXPECT_LE(optimal_acyclic_throughput(inst),
              cyclic_upper_bound(inst) + 1e-9);
  }
}

// Theorem 6.2 lower bound, checked as a property on random instances:
// T*_ac >= (5/7) T*.
TEST(DichotomicSearch, FiveSeventhsBoundHolds) {
  util::Xoshiro256 rng(43);
  for (int rep = 0; rep < 300; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(12));
    const int m = static_cast<int>(rng.below(12));
    const Instance inst = testing::random_instance(rng, n, m, 0.1, 50.0);
    const double t_ac = optimal_acyclic_throughput(inst);
    const double t_star = cyclic_upper_bound(inst);
    EXPECT_GE(t_ac, 5.0 / 7.0 * t_star - 1e-7)
        << "n=" << n << " m=" << m;
  }
}

TEST(GreedyPolicies, AblationsNeverBeatPaperPolicy) {
  util::Xoshiro256 rng(47);
  for (int rep = 0; rep < 60; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(6));
    const int m = static_cast<int>(rng.below(6));
    const Instance inst = testing::random_instance(rng, n, m);
    const double full = optimal_acyclic_throughput(inst, GreedyPolicy::kPaper);
    for (const auto policy :
         {GreedyPolicy::kNoLookahead, GreedyPolicy::kNoLastGuardedRule,
          GreedyPolicy::kBandwidthGreedy}) {
      const double ablated = optimal_acyclic_throughput(inst, policy);
      EXPECT_LE(ablated, full + 1e-7);
    }
  }
}

// Regression: tight homogeneous instances hit GreedyTest's decision
// boundaries exactly at dyadic T (e.g. (n,m,Delta)=(16,12,14) at T=3/4 and
// T=11/16), where double roundoff used to flip the branch and spuriously
// reject a feasible throughput, breaking the dichotomic search's
// monotonicity assumption.
TEST(GreedyTest, TieBreakingOnTightHomogeneousBoundaries) {
  const Instance inst(
      1.0, std::vector<double>(16, 25.0 / 16.0),  // o = (m-1+Delta)/n
      std::vector<double>(12, 1.0 / 6.0));        // g = (n-Delta)/m
  EXPECT_TRUE(greedy_test(inst, 0.75).has_value());
  EXPECT_TRUE(greedy_test(inst, 0.6875).has_value());
  EXPECT_GE(optimal_acyclic_throughput(inst), 0.96);
  // Exact-rational execution confirms T = 3/4 is feasible per Lemma 4.5.
  const RationalInstance rinst(
      Rational(1), std::vector<Rational>(16, Rational(25, 16)),
      std::vector<Rational>(12, Rational(1, 6)));
  EXPECT_TRUE(greedy_test(rinst, Rational(3, 4)).has_value());
  EXPECT_TRUE(greedy_test(rinst, Rational(11, 16)).has_value());
}

// Denser monotonicity fuzz on structured (boundary-rich) instances.
TEST(GreedyTest, MonotoneOnTightHomogeneousGrid) {
  for (int n = 2; n <= 14; n += 3) {
    for (int m = 1; m <= 13; m += 3) {
      for (int d = 0; d <= 4; ++d) {
        std::vector<double> open(static_cast<std::size_t>(n),
                                 (m - 1 + n * d / 4.0) / n);
        std::vector<double> guarded(static_cast<std::size_t>(m),
                                    (n - n * d / 4.0) / m);
        const Instance inst(1.0, open, guarded);
        bool was_ok = true;
        for (int t = 1; t <= 64; ++t) {
          const bool ok = greedy_test(inst, t / 64.0).has_value();
          if (!was_ok) {
            EXPECT_FALSE(ok) << "n=" << n << " m=" << m << " d=" << d
                             << " T=" << t / 64.0;
          }
          was_ok = ok;
        }
      }
    }
  }
}

TEST(SolveAcyclic, ReturnsConsistentBundle) {
  const Instance inst = testing::fig1_instance();
  const AcyclicSolution sol = solve_acyclic(inst);
  EXPECT_NEAR(sol.throughput, 4.0, 1e-7);
  EXPECT_EQ(count_open(sol.word), inst.n());
  EXPECT_EQ(count_guarded(sol.word), inst.m());
  EXPECT_TRUE(sol.scheme.validate(inst).empty());
  EXPECT_TRUE(sol.scheme.is_acyclic());
  EXPECT_LE(sol.scheme.max_inflow_deviation(sol.throughput), 1e-6);
}

}  // namespace
}  // namespace bmp
