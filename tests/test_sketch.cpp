// Sketch + TopK property tests (ISSUE 10): the DDSketch-style log-bucket
// histogram's relative-error contract against exact sorted quantiles, the
// lossless commutative/associative merge (byte-level bucket equality for
// every merge order and grouping), the zero-bucket / negative-input edge
// cases, and the space-saving heavy-hitter summary's overestimate
// invariant, deterministic eviction, and order-independent union merge.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "bmp/obs/sketch.hpp"

namespace bmp {
namespace {

/// Deterministic pseudo-random stream (no <random> — the test must feed
/// every platform the same values). Values span several decades, the range
/// sketches exist for.
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return state_ >> 11;
  }
  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next() % (1u << 24)) /
           static_cast<double>(1u << 24);
  }
  /// Log-uniform over [1e-3, 1e3) — exercises ~6 decades of buckets.
  double log_uniform() { return std::pow(10.0, uniform() * 6.0 - 3.0); }

 private:
  std::uint64_t state_;
};

/// Nearest-rank quantile of a sorted non-empty vector — the exact
/// statistic the sketch's contract is stated against.
double exact_quantile(const std::vector<double>& sorted, double q) {
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

/// Byte-level equality of two sketches: same bucket store, same extrema.
void expect_identical(const obs::Sketch& a, const obs::Sketch& b) {
  EXPECT_EQ(a.bucket_offset(), b.bucket_offset());
  EXPECT_EQ(a.counts(), b.counts());
  EXPECT_EQ(a.zero_count(), b.zero_count());
  EXPECT_EQ(a.count(), b.count());
  // min/max merge exactly (no arithmetic), so bitwise equality holds.
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

// ------------------------------------------------------------ Sketch

TEST(Sketch, QuantilesWithinRelativeErrorOfExactSort) {
  const double alpha = 0.01;
  obs::Sketch sketch(obs::SketchConfig{alpha, 1e-9});
  Lcg rng(2026);
  std::vector<double> values;
  for (int k = 0; k < 20000; ++k) {
    const double v = rng.log_uniform();
    values.push_back(v);
    sketch.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double exact = exact_quantile(values, q);
    const double approx = sketch.quantile(q);
    // The documented contract: |v - x_q| <= alpha * x_q (tiny epsilon for
    // the floating-point boundary computation itself).
    EXPECT_LE(std::fabs(approx - exact), alpha * exact + 1e-12)
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
  // Sum and mean reconstruct from bucket representatives under the same
  // relative bound.
  double exact_sum = 0.0;
  for (const double v : values) exact_sum += v;
  EXPECT_LE(std::fabs(sketch.sum() - exact_sum), alpha * exact_sum + 1e-9);
  EXPECT_EQ(sketch.count(), values.size());
}

TEST(Sketch, SubMinimumValuesCollapseIntoZeroBucket) {
  obs::Sketch sketch(obs::SketchConfig{0.01, 1e-6});
  sketch.record(0.0);
  sketch.record(1e-9);   // below min_value
  sketch.record(2.0);
  EXPECT_EQ(sketch.zero_count(), 2u);
  EXPECT_EQ(sketch.count(), 3u);
  // The zero bucket reads back as 0.0; the median here is a zero.
  EXPECT_EQ(sketch.quantile(0.5), 0.0);
  EXPECT_GT(sketch.quantile(1.0), 0.0);
}

TEST(Sketch, RejectsNegativeAndNonFinite) {
  obs::Sketch sketch;
  EXPECT_THROW(sketch.record(-1.0), std::invalid_argument);
  EXPECT_THROW(sketch.record(std::nan("")), std::invalid_argument);
  EXPECT_THROW(sketch.record(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_EQ(sketch.count(), 0u);
}

TEST(Sketch, MergeEqualsSketchOfConcatenatedStream) {
  Lcg rng(7);
  obs::Sketch left;
  obs::Sketch right;
  obs::Sketch whole;
  for (int k = 0; k < 5000; ++k) {
    const double v = rng.log_uniform();
    (k % 2 == 0 ? left : right).record(v);
    whole.record(v);
  }
  left.merge(right);
  expect_identical(left, whole);
}

TEST(Sketch, MergeIsCommutativeAndAssociative) {
  Lcg rng(13);
  std::vector<obs::Sketch> shards(3);
  for (int k = 0; k < 3000; ++k) {
    shards[static_cast<std::size_t>(k % 3)].record(rng.log_uniform());
  }
  // (a + b) + c
  obs::Sketch abc = shards[0];
  abc.merge(shards[1]);
  abc.merge(shards[2]);
  // a + (b + c)
  obs::Sketch bc = shards[1];
  bc.merge(shards[2]);
  obs::Sketch a_bc = shards[0];
  a_bc.merge(bc);
  // (c + a) + b — a different order entirely
  obs::Sketch cab = shards[2];
  cab.merge(shards[0]);
  cab.merge(shards[1]);
  expect_identical(abc, a_bc);
  expect_identical(abc, cab);
}

TEST(Sketch, MergeRejectsMismatchedConfigs) {
  obs::Sketch coarse(obs::SketchConfig{0.05, 1e-9});
  obs::Sketch fine(obs::SketchConfig{0.01, 1e-9});
  EXPECT_THROW(coarse.merge(fine), std::invalid_argument);
}

TEST(Sketch, WeightedRecordMatchesRepeatedRecord) {
  obs::Sketch weighted;
  obs::Sketch repeated;
  weighted.record(3.5, 7);
  for (int k = 0; k < 7; ++k) repeated.record(3.5);
  expect_identical(weighted, repeated);
}

// -------------------------------------------------------------- TopK

TEST(TopK, ExactWhileUnderCapacity) {
  obs::TopK top(8);
  top.offer("a", 5);
  top.offer("b", 3);
  top.offer("a", 2);
  const std::vector<obs::TopKEntry> rows = top.top();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].key, "a");
  EXPECT_EQ(rows[0].count, 7u);
  EXPECT_EQ(rows[0].error, 0u);  // no eviction happened: counts are exact
  EXPECT_EQ(rows[1].key, "b");
  EXPECT_EQ(top.total_weight(), 10u);
}

TEST(TopK, OverestimateInvariantUnderEviction) {
  // Space-saving invariant: for every reported row,
  //   true_count <= count  and  count - error <= true_count.
  obs::TopK top(4);
  Lcg rng(99);
  std::map<std::string, std::uint64_t> truth;
  for (int k = 0; k < 4000; ++k) {
    // Heavy skew: every other offer hits "hot", the rest spread over 20
    // cold keys — hot's true share (50%) dwarfs total/capacity (25%), the
    // regime where space-saving guarantees the hitter stays tracked.
    const std::string key =
        k % 2 == 0 ? "hot" : "n" + std::to_string(rng.next() % 20);
    top.offer(key);
    ++truth[key];
  }
  for (const obs::TopKEntry& row : top.top()) {
    const std::uint64_t exact = truth[row.key];
    EXPECT_GE(row.count, exact) << row.key;
    EXPECT_LE(row.count - row.error, exact) << row.key;
  }
  EXPECT_EQ(top.top(1).at(0).key, "hot");
}

TEST(TopK, EvictionVictimIsDeterministic) {
  // Two equal-count candidates: the lexicographically smallest key is
  // recycled, making the summary a pure function of the stream.
  obs::TopK one(2);
  obs::TopK two(2);
  for (obs::TopK* top : {&one, &two}) {
    top->offer("bb", 3);
    top->offer("aa", 3);
    top->offer("zz", 1);  // evicts "aa" (min count ties break on key)
  }
  const std::vector<obs::TopKEntry> rows = one.top();
  ASSERT_EQ(rows.size(), 2u);
  // "zz" inherited "aa"'s count of 3 as its overestimate, so it sorts
  // first with count 4 / error 3; the space-saving invariant still brackets
  // its true weight: 4 - 3 = 1 <= true(1) <= 4.
  EXPECT_EQ(rows[0].key, "zz");
  EXPECT_EQ(rows[0].count, 4u);
  EXPECT_EQ(rows[0].error, 3u);
  EXPECT_EQ(rows[1].key, "bb");
  EXPECT_EQ(rows[1].count, 3u);
  EXPECT_EQ(rows[1].error, 0u);
  // Determinism: an identical stream gives an identical summary.
  const std::vector<obs::TopKEntry> again = two.top();
  ASSERT_EQ(again.size(), rows.size());
  for (std::size_t k = 0; k < rows.size(); ++k) {
    EXPECT_EQ(again[k].key, rows[k].key);
    EXPECT_EQ(again[k].count, rows[k].count);
    EXPECT_EQ(again[k].error, rows[k].error);
  }
}

TEST(TopK, MergeIsOrderIndependent) {
  Lcg rng(5);
  std::vector<obs::TopK> shards(4, obs::TopK(4));
  for (int k = 0; k < 2000; ++k) {
    const auto shard = static_cast<std::size_t>(k % 4);
    const auto id = static_cast<int>(rng.next() % 32);
    shards[shard].offer("n" + std::to_string(id * id / 40));
  }
  const auto fold = [&](const std::vector<std::size_t>& order) {
    obs::TopK out(4);
    for (const std::size_t s : order) out.merge(shards[s]);
    return out;
  };
  const obs::TopK forward = fold({0, 1, 2, 3});
  const obs::TopK reverse = fold({3, 2, 1, 0});
  const obs::TopK shuffled = fold({2, 0, 3, 1});
  const std::vector<obs::TopKEntry> expected = forward.top(forward.tracked());
  for (const obs::TopK* other : {&reverse, &shuffled}) {
    EXPECT_EQ(other->tracked(), forward.tracked());
    EXPECT_EQ(other->total_weight(), forward.total_weight());
    const std::vector<obs::TopKEntry> rows = other->top(other->tracked());
    ASSERT_EQ(rows.size(), expected.size());
    for (std::size_t k = 0; k < rows.size(); ++k) {
      EXPECT_EQ(rows[k].key, expected[k].key);
      EXPECT_EQ(rows[k].count, expected[k].count);
      EXPECT_EQ(rows[k].error, expected[k].error);
    }
  }
  // Union semantics: the merge may track more than `capacity` keys
  // (bounded by shards * capacity); truncation happens only at top(k).
  EXPECT_LE(forward.tracked(), 4u * 4u);
  EXPECT_LE(forward.top(4).size(), 4u);
}

TEST(TopK, TopOrderIsTotalEvenAmongTies) {
  obs::TopK top(8);
  top.offer("b", 5);
  top.offer("a", 5);
  top.offer("c", 5);
  const std::vector<obs::TopKEntry> rows = top.top();
  ASSERT_EQ(rows.size(), 3u);
  // Equal count, equal error: key ascending decides.
  EXPECT_EQ(rows[0].key, "a");
  EXPECT_EQ(rows[1].key, "b");
  EXPECT_EQ(rows[2].key, "c");
}

}  // namespace
}  // namespace bmp
